package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkLambdaSweep/serial-8         	      10	 104910283 ns/op	 8438031 B/op	   75637 allocs/op
BenchmarkLambdaSweep/pooled-8         	      38	  29458127 ns/op	 8443132 B/op	   75684 allocs/op
BenchmarkLambdaSweep/cached-8         	   24218	     49054 ns/op	         0.9990 hitrate	   43248 B/op	     364 allocs/op
PASS
ok  	repro	5.043s
`

func TestParseBenchOutput(t *testing.T) {
	got := ParseBenchOutput(sampleOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	cached := got[2]
	if cached.Name != "BenchmarkLambdaSweep/cached-8" {
		t.Errorf("name = %q", cached.Name)
	}
	if cached.Iterations != 24218 {
		t.Errorf("iterations = %d, want 24218", cached.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 49054, "hitrate": 0.9990, "B/op": 43248, "allocs/op": 364,
	} {
		if v := cached.Metrics[unit]; v != want {
			t.Errorf("metric %q = %v, want %v", unit, v, want)
		}
	}
	if got[0].Metrics["ns/op"] != 104910283 {
		t.Errorf("serial ns/op = %v", got[0].Metrics["ns/op"])
	}
}

func TestParseBenchOutputIgnoresNoise(t *testing.T) {
	if got := ParseBenchOutput("PASS\nok  \trepro\t1.0s\nBenchmarkBroken abc def\n"); len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}

func TestCheckZeroAlloc(t *testing.T) {
	benchmarks := []Benchmark{
		{Name: "BenchmarkSweepScalar-8", Metrics: map[string]float64{"ns/op": 5e7, "allocs/op": 1639}},
		{Name: "BenchmarkSweepBatched-8", Metrics: map[string]float64{"ns/op": 2e7, "allocs/op": 0}},
	}
	if err := checkZeroAlloc(benchmarks, "BenchmarkSweepBatched"); err != nil {
		t.Errorf("clean benchmark failed the gate: %v", err)
	}
	if err := checkZeroAlloc(benchmarks, "BenchmarkSweepScalar"); err == nil {
		t.Error("allocating benchmark passed the gate")
	}
	if err := checkZeroAlloc(benchmarks, "BenchmarkRenamedAway"); err == nil {
		t.Error("pattern matching nothing must fail, not pass vacuously")
	}
	if err := checkZeroAlloc(benchmarks, "("); err == nil {
		t.Error("invalid regex must be reported")
	}
	noMem := []Benchmark{{Name: "BenchmarkSweepBatched-8", Metrics: map[string]float64{"ns/op": 2e7}}}
	if err := checkZeroAlloc(noMem, "BenchmarkSweepBatched"); err == nil {
		t.Error("missing allocs/op metric must fail the gate")
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkLambdaSweep/cached-8": "BenchmarkLambdaSweep/cached",
		"BenchmarkClusterSweep/3node-4": "BenchmarkClusterSweep/3node",
		"BenchmarkPlain":                "BenchmarkPlain",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
