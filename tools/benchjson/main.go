// Command benchjson records the repo's performance trajectory: it runs a
// `go test -bench` suite, parses the standard benchmark output (including
// custom b.ReportMetric units like hitrate and points/s) into a stable
// JSON document, and compares two such documents for regressions.
//
// Record a suite:
//
//	go run ./tools/benchjson -bench BenchmarkLambdaSweep -pkg . -out BENCH_sweep.json
//	go run ./tools/benchjson -bench BenchmarkClusterSweep -pkg ./cmd/mus-serve -out BENCH_cluster.json
//
// Gate a change (exit 1 when any benchmark's ns/op regressed by more than
// -threshold relative to the committed baseline):
//
//	go run ./tools/benchjson -compare -old BENCH_sweep.json -new BENCH_sweep.new.json -threshold 0.30
//
// Compare mode can additionally gate allocation-freedom: every benchmark
// in -new whose name matches -zeroalloc must report exactly 0 allocs/op,
// and at least one benchmark must match (a typo'd pattern that matches
// nothing would otherwise pass vacuously):
//
//	go run ./tools/benchjson -compare -old ... -new ... -zeroalloc BenchmarkSweepBatched
//
// Benchmark names are matched with the trailing GOMAXPROCS suffix
// stripped ("/cached-8" equals "/cached-4"), so baselines recorded on one
// machine compare on another; benchmarks present on only one side are
// reported but never fail the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result: the full name as printed
// (GOMAXPROCS suffix included) and every value-unit pair on its line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is one recorded suite run.
type Document struct {
	Suite      string      `json:"suite"`
	Package    string      `json:"package"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Generated  time.Time   `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark regex to run (go test -bench)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		benchtime = flag.String("benchtime", "", "per-benchmark time or iteration budget (go test -benchtime)")
		out       = flag.String("out", "", "output JSON path (default stdout)")
		compare   = flag.Bool("compare", false, "compare -old against -new instead of running")
		oldPath   = flag.String("old", "", "baseline JSON (compare mode)")
		newPath   = flag.String("new", "", "candidate JSON (compare mode)")
		threshold = flag.Float64("threshold", 0.30, "max tolerated ns/op regression, relative (0.30 = +30%)")
		zeroalloc = flag.String("zeroalloc", "", "regex of benchmarks that must report 0 allocs/op in -new (compare mode)")
	)
	flag.Parse()
	if *compare {
		if err := runCompare(*oldPath, *newPath, *threshold, *zeroalloc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -bench is required (or -compare)")
		os.Exit(2)
	}
	if err := runRecord(*bench, *pkg, *benchtime, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runRecord executes the suite and writes its JSON document.
func runRecord(bench, pkg, benchtime, out string) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", pkg}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	benchmarks := ParseBenchOutput(string(raw))
	if len(benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in go test output (suite %q, package %q)", bench, pkg)
	}
	doc := Document{
		Suite:      bench,
		Package:    pkg,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Generated:  time.Now().UTC().Truncate(time.Second),
		Benchmarks: benchmarks,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// benchLineRE matches the name and iteration count of one benchmark
// output line; the value-unit pairs after it are split by whitespace.
var benchLineRE = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.+)$`)

// ParseBenchOutput extracts every benchmark result line from `go test
// -bench` output. Each line carries alternating value/unit tokens after
// the iteration count ("123456 ns/op 0 B/op 0.97 hitrate"); all pairs are
// recorded, so custom ReportMetric units travel with the standard ones.
func ParseBenchOutput(out string) []Benchmark {
	var res []Benchmark
	for _, line := range strings.Split(out, "\n") {
		m := benchLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		fields := strings.Fields(m[3])
		metrics := make(map[string]float64, len(fields)/2)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		res = append(res, Benchmark{Name: m[1], Iterations: iters, Metrics: metrics})
	}
	return res
}

// baseName strips the trailing GOMAXPROCS suffix ("-8") so baselines
// recorded on machines with different core counts still match.
var procSuffixRE = regexp.MustCompile(`-\d+$`)

func baseName(name string) string { return procSuffixRE.ReplaceAllString(name, "") }

// runCompare diffs two documents on ns/op and fails when any benchmark
// present in both regressed beyond the threshold, or when a benchmark
// matching the zeroalloc pattern reports a non-zero allocs/op.
func runCompare(oldPath, newPath string, threshold float64, zeroalloc string) error {
	if oldPath == "" || newPath == "" {
		return fmt.Errorf("-compare needs both -old and -new")
	}
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		return err
	}
	if zeroalloc != "" {
		if err := checkZeroAlloc(newDoc.Benchmarks, zeroalloc); err != nil {
			return err
		}
	}
	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[baseName(b.Name)] = b
	}
	var regressions []string
	names := make([]string, 0, len(newDoc.Benchmarks))
	byName := make(map[string]Benchmark, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		n := baseName(b.Name)
		names = append(names, n)
		byName[n] = b
	}
	sort.Strings(names)
	for _, n := range names {
		nb := byName[n]
		ob, ok := oldBy[n]
		if !ok {
			fmt.Printf("NEW      %-55s %12.0f ns/op (no baseline)\n", n, nb.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			continue
		}
		delta := (newNs - oldNs) / oldNs
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%, threshold %+.0f%%)", n, oldNs, newNs, 100*delta, 100*threshold))
		}
		fmt.Printf("%-8s %-55s %12.0f → %12.0f ns/op  %+7.1f%%\n", verdict, n, oldNs, newNs, 100*delta)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed:\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("no ns/op regression beyond %+.0f%% (%d benchmarks compared)\n", 100*threshold, len(names))
	return nil
}

// checkZeroAlloc enforces the allocation-free gate: every candidate
// benchmark matching pattern must report exactly 0 allocs/op. A pattern
// that matches no benchmark is itself an error — it means the gated
// benchmark was renamed or dropped, and the gate would otherwise pass
// without checking anything.
func checkZeroAlloc(benchmarks []Benchmark, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("-zeroalloc pattern: %w", err)
	}
	matched := 0
	var dirty []string
	for _, b := range benchmarks {
		if !re.MatchString(baseName(b.Name)) {
			continue
		}
		matched++
		allocs, ok := b.Metrics["allocs/op"]
		if !ok {
			dirty = append(dirty, fmt.Sprintf("%s: no allocs/op recorded (run with -benchmem)", b.Name))
		} else if allocs != 0 {
			dirty = append(dirty, fmt.Sprintf("%s: %.0f allocs/op, want 0", b.Name, allocs))
		} else {
			fmt.Printf("ZEROALLOC %-54s 0 allocs/op\n", baseName(b.Name))
		}
	}
	if matched == 0 {
		return fmt.Errorf("-zeroalloc %q matched no benchmark in the candidate document", pattern)
	}
	if len(dirty) > 0 {
		return fmt.Errorf("%d benchmark(s) failed the zero-allocation gate:\n  %s", len(dirty), strings.Join(dirty, "\n  "))
	}
	return nil
}

// readDoc loads one recorded suite document.
func readDoc(path string) (Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}
