// Command linkcheck verifies that intra-repository markdown links resolve:
// every [text](target) whose target is neither an external URL nor a bare
// anchor must point at an existing file or directory, relative to the file
// containing the link. The CI docs job runs it over every tracked .md file
// so ARCHITECTURE.md, README.md and friends never drift out of sync with
// the tree.
//
//	go run ./tools/linkcheck README.md ARCHITECTURE.md docs/...
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target); images and nested
// brackets are close enough to this form for a docs tree of this size.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md>...")
		os.Exit(2)
	}
	bad := 0
	for _, name := range os.Args[1:] {
		n, err := checkFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken intra-repo links\n", bad)
		os.Exit(1)
	}
}

// checkFile reports every broken repository-relative link in one file.
func checkFile(name string) (int, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return 0, err
	}
	bad := 0
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			// Drop a trailing #anchor; the file part must still exist.
			if j := strings.Index(target, "#"); j >= 0 {
				target = target[:j]
				if target == "" {
					continue
				}
			}
			resolved := filepath.Join(filepath.Dir(name), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link %q (resolved %s)\n", name, i+1, m[1], resolved)
				bad++
			}
		}
	}
	return bad, nil
}

// skip reports whether a link target is outside this checker's scope.
func skip(target string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:", "#"} {
		if strings.HasPrefix(target, prefix) {
			return true
		}
	}
	return false
}
