// Command doccheck fails when an exported identifier in the given package
// directories lacks a doc comment — the repository's golint-equivalent
// documentation gate, run by the CI docs job over internal/... so the
// godoc story never regresses. It needs only the standard library.
//
//	go run ./tools/doccheck internal/qbd internal/sim internal/stats internal/service
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, root := range os.Args[1:] {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			n, err := checkDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			bad += n
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// packageDirs expands a "dir/..." suffix into every subdirectory holding
// Go files; a plain directory is returned as itself.
func packageDirs(root string) ([]string, error) {
	recursive := strings.HasSuffix(root, "/...")
	if !recursive {
		return []string{root}, nil
	}
	root = strings.TrimSuffix(root, "/...")
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// checkDir reports every undocumented exported identifier in one package
// directory (test files excluded).
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(kind, name, docstr string) {
		if strings.TrimSpace(docstr) == "" {
			fmt.Printf("%s: %s %s undocumented\n", dir, kind, name)
			bad++
		}
	}
	exported := func(name string) bool {
		// For methods the name arrives as Type.Method; both parts count.
		for _, part := range strings.Split(name, ".") {
			if !ast.IsExported(part) {
				return false
			}
		}
		return true
	}
	for _, p := range pkgs {
		d := doc.New(p, dir, 0)
		report("package", p.Name, d.Doc)
		for _, f := range d.Funcs {
			if exported(f.Name) {
				report("func", f.Name, f.Doc)
			}
		}
		for _, t := range d.Types {
			if !exported(t.Name) {
				continue
			}
			report("type", t.Name, t.Doc)
			for _, m := range t.Methods {
				if exported(m.Name) {
					report("method", t.Name+"."+m.Name, m.Doc)
				}
			}
			for _, f := range t.Funcs {
				if exported(f.Name) {
					report("func", f.Name, f.Doc)
				}
			}
			// Constructors and grouped values attached to the type.
			for _, v := range append(t.Consts, t.Vars...) {
				reportValues(v, report)
			}
		}
		for _, v := range append(d.Consts, d.Vars...) {
			reportValues(v, report)
		}
	}
	return bad, nil
}

// reportValues checks one const/var declaration group: the group comment
// covers every name in it.
func reportValues(v *doc.Value, report func(kind, name, docstr string)) {
	docstr := v.Doc
	if strings.TrimSpace(docstr) == "" && v.Decl != nil {
		// A group may document each spec individually instead.
		allSpecsDocumented := len(v.Decl.Specs) > 0
		for _, spec := range v.Decl.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || (vs.Doc == nil && vs.Comment == nil) {
				allSpecsDocumented = false
				break
			}
		}
		if allSpecsDocumented {
			return
		}
	}
	for _, n := range v.Names {
		if ast.IsExported(n) {
			report("value", n, docstr)
			return // one report per group is enough
		}
	}
}
