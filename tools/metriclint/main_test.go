package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const badSource = `package sample

func register(r *Registry) {
	r.Counter("mus_http_requests_total", "good counter")
	r.Counter("mus_http_requests", "counter without _total")
	r.Gauge("mus_jobs_running_total", "gauge with _total")
	r.Histogram("mus_http_request_duration", "histogram without unit")
	r.Histogram("mus_Http_Duration_seconds", "uppercase")
	r.Gauge("mus_jobs_queue_depth", "")
	r.CounterFunc("mus_engine_solves_total", "fine", nil)
	r.Counter(dynamicName, "computed names are skipped")
	mock.Counter("requests", "non-mus literal is not claimed")
}
`

func lintSource(t *testing.T, src string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := lintFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestLintFileFlagsViolations(t *testing.T) {
	vs := lintSource(t, badSource)
	if len(vs) != 5 {
		t.Fatalf("got %d violations, want 5:\n%s", len(vs), strings.Join(vs, "\n"))
	}
	for i, wantFrag := range []string{
		"must end in _total",
		"must not end in _total",
		"unit suffix",
		"does not match",
		"empty help",
	} {
		if !strings.Contains(vs[i], wantFrag) {
			t.Errorf("violation %d = %q, want substring %q", i, vs[i], wantFrag)
		}
	}
}

func TestLintFileCleanSource(t *testing.T) {
	if vs := lintSource(t, `package sample

func register(r *Registry) {
	r.Counter("mus_cluster_forwards_total", "ok")
	r.Histogram("mus_http_request_duration_seconds", "ok", nil)
	r.Gauge("mus_jobs_queue_depth", "ok")
}
`); len(vs) != 0 {
		t.Fatalf("clean source produced violations:\n%s", strings.Join(vs, "\n"))
	}
}
