// Command metriclint statically enforces the repo's metric naming
// contract: every metric registered through internal/obs — any call to
// Counter, CounterFunc, Gauge, GaugeFunc or Histogram with a literal
// name — must match the Prometheus convention
//
//	mus_<subsystem>_<name>[_unit]
//
// with counters ending in _total, gauges and histograms not, and
// histograms ending in a recognised unit (_seconds, _bytes, _points, …).
// The obs registry panics on most of these at process start; this linter
// moves the failure to CI, before any process starts, and additionally
// demands a non-empty help string.
//
// It also enforces the span naming contract: every literal span name
// passed to a tracer StartRoot/StartSpan/StartLeaf call must match
//
//	mus.<subsystem>.<op>
//
// (dot-separated, lowercase). Span names are grep keys across node
// boundaries — a misspelled one silently detaches a subtree from every
// assembled trace, which no runtime check can catch.
//
//	go run ./tools/metriclint ./...
//
// Exit status 1 with one line per violation; 0 when clean.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// nameRE mirrors internal/obs: lowercase mus_<subsystem>_<name>[_unit].
var nameRE = regexp.MustCompile(`^mus_[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// spanNameRE mirrors internal/obs/trace: dot-separated lowercase
// mus.<subsystem>.<op>, with underscores allowed past the first segment.
var spanNameRE = regexp.MustCompile(`^mus\.[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)

// spanMethods are the tracer span-creation entry points; the span name is
// the second argument of each (after the context / parent context).
var spanMethods = map[string]bool{
	"StartRoot": true,
	"StartSpan": true,
	"StartLeaf": true,
}

// registryMethods are the obs.Registry registration entry points, mapped
// to their metric kind.
var registryMethods = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

// histogramUnits are the suffixes a histogram name may end in — a
// histogram without a unit is unreadable on a dashboard.
var histogramUnits = []string{"seconds", "bytes", "points", "requests", "ops"}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var violations []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// The registry's own package defines these methods; calls in
				// its tests exercise invalid names on purpose.
				if d.Name() == "testdata" || path == filepath.Join("internal", "obs") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			vs, err := lintFile(path)
			if err != nil {
				return err
			}
			violations = append(violations, vs...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "metriclint:", err)
			os.Exit(1)
		}
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintFile parses one source file and checks every registry call in it.
func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if spanMethods[sel.Sel.Name] && len(call.Args) >= 2 {
			if name, ok := stringLit(call.Args[1]); ok && !spanNameRE.MatchString(name) {
				pos := fset.Position(call.Pos())
				out = append(out, fmt.Sprintf("%s:%d: span %q does not match mus.<subsystem>.<op>", pos.Filename, pos.Line, name))
			}
			return true
		}
		kind, ok := registryMethods[sel.Sel.Name]
		if !ok || len(call.Args) < 2 {
			return true
		}
		name, ok := stringLit(call.Args[0])
		if !ok {
			// A computed name can't be checked statically; the registry's
			// startup panic still covers it.
			return true
		}
		if !strings.HasPrefix(name, "mus_") {
			// Same-named method on an unrelated type (e.g. a mock); only
			// mus_-prefixed literals are claimed by the convention.
			return true
		}
		pos := fset.Position(call.Pos())
		report := func(msg string) {
			out = append(out, fmt.Sprintf("%s:%d: %s %q %s", pos.Filename, pos.Line, kind, name, msg))
		}
		if !nameRE.MatchString(name) {
			report("does not match mus_<subsystem>_<name>[_unit]")
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				report("must end in _total")
			}
		default:
			if strings.HasSuffix(name, "_total") {
				report("must not end in _total (only counters do)")
			}
		}
		if kind == "histogram" && !hasHistogramUnit(name) {
			report(fmt.Sprintf("must end in a unit suffix (one of _%s)", strings.Join(histogramUnits, ", _")))
		}
		if help, ok := stringLit(call.Args[1]); ok && strings.TrimSpace(help) == "" {
			report("has an empty help string")
		}
		return true
	})
	return out, nil
}

// stringLit unwraps a basic string literal argument.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// hasHistogramUnit reports whether a histogram name ends in a recognised
// unit suffix.
func hasHistogramUnit(name string) bool {
	for _, u := range histogramUnits {
		if strings.HasSuffix(name, "_"+u) {
			return true
		}
	}
	return false
}
