// Clientsweep: the SDK walkthrough — talk to a running mus-serve daemon
// through the typed client instead of hand-rolled HTTP. It probes
// readiness, solves one configuration, streams a dense λ-sweep as NDJSON
// (points print as the server solves them, long before the sweep
// finishes), and shows structured error handling with errors.As.
//
// Start a daemon first, then run:
//
//	mus-serve -addr :8350 &
//	go run ./examples/clientsweep -server http://localhost:8350
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/api"
	"repro/client"
)

func main() {
	serverURL := flag.String("server", "http://localhost:8350", "base URL of a running mus-serve daemon")
	flag.Parse()
	ctx := context.Background()
	c := client.New(*serverURL)

	// Readiness probe — the same call a load balancer makes.
	h, err := c.Health(ctx)
	if err != nil {
		log.Fatalf("no daemon at %s (start one with: mus-serve -addr :8350): %v", *serverURL, err)
	}
	fmt.Printf("daemon ready: %d workers, solver cache %d, sim cache %d\n\n",
		h.Workers, h.CacheCapacity, h.SimCacheCapacity)

	// One typed solve — the Figure 5 λ=8, N=12 point with its cost.
	solve, err := c.Solve(ctx, api.SolveRequest{
		System:      api.System{Servers: 12, Lambda: 8},
		HoldingCost: 4, ServerCost: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve N=12 λ=8: L=%.3f W=%.3f cost=%.2f (%s)\n\n",
		solve.Perf.MeanJobs, solve.Perf.MeanResponse, *solve.Cost, solve.Method)

	// A dense λ-sweep, streamed: each NDJSON line arrives as soon as that
	// grid point is solved, so the first results print in milliseconds
	// while the far end of the grid is still computing.
	values := make([]float64, 48)
	for i := range values {
		values[i] = 4 + 5.5*float64(i)/float64(len(values)-1)
	}
	fmt.Println("streaming λ-sweep (N=10, spectral):")
	start := time.Now()
	var first time.Duration
	err = c.SweepStream(ctx, api.SweepRequest{
		System: api.System{Servers: 10},
		Param:  api.ParamLambda,
		Values: values,
	}, func(pt api.SweepPoint) error {
		if pt.Index == 0 {
			first = time.Since(start)
		}
		if pt.Error != "" {
			fmt.Printf("  λ=%6.3f  failed: %s\n", pt.Value, pt.Error)
			return nil
		}
		if pt.Index%8 == 0 {
			fmt.Printf("  λ=%6.3f  load=%.3f  L=%8.3f  W=%7.3f   (t=%v)\n",
				pt.Value, pt.Perf.Load, pt.Perf.MeanJobs, pt.Perf.MeanResponse,
				time.Since(start).Round(time.Millisecond))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first point after %v, all %d points after %v\n\n",
		first.Round(time.Millisecond), len(values), time.Since(start).Round(time.Millisecond))

	// Structured errors: an unstable configuration comes back as a typed
	// *api.Error with a machine-readable code, not a string to parse.
	_, err = c.Solve(ctx, api.SolveRequest{System: api.System{Servers: 2, Lambda: 50}})
	var ae *api.Error
	if errors.As(err, &ae) {
		fmt.Printf("typed error from the daemon: code=%s message=%q\n", ae.Code, ae.Message)
		if ae.Code == api.CodeUnstableSystem {
			fmt.Println("→ a dashboard would suggest adding servers here")
		}
	}

	// The daemon did all the work; show what the shared cache absorbed.
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaemon counters: %d requests, %d solves, cache hit rate %.0f%%\n",
		st.Requests, st.Solves, 100*st.Cache.HitRate)
}
