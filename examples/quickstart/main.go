// Quickstart: describe a cluster of unreliable servers, check stability,
// and compute its exact steady-state performance with the spectral
// expansion of Palmer & Mitrani (DSN 2006).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
)

func main() {
	// Operative periods follow the paper's fit to the Sun Microsystems
	// breakdown data: 72% of periods are short (mean ≈ 6 time units), 28%
	// long (mean ≈ 110), giving C² ≈ 4.6 — far from exponential.
	operative := dist.MustHyperExp(
		[]float64{0.7246, 0.2754},
		[]float64{0.1663, 0.0091},
	)
	// Repairs are close to exponential with mean 0.04.
	repair := dist.Exp(25)

	sys := core.System{
		Servers:     10,
		ArrivalRate: 8, // jobs per time unit (Poisson)
		ServiceRate: 1, // each operative server completes 1 job/unit
		Operative:   operative,
		Repair:      repair,
	}

	fmt.Printf("cluster: N=%d, λ=%g, µ=%g\n", sys.Servers, sys.ArrivalRate, sys.ServiceRate)
	fmt.Printf("server availability: %.4f\n", sys.Availability())
	fmt.Printf("offered load:        %.4f (stable: %v)\n", sys.Load(), sys.Stable())
	fmt.Printf("operational modes:   s = %d\n\n", sys.Modes())

	perf, err := sys.Solve() // exact spectral-expansion solution
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean jobs in system  L = %.4f\n", perf.MeanJobs)
	fmt.Printf("mean response time   W = %.4f\n", perf.MeanResponse)
	fmt.Printf("tail decay           z = %.4f (P(queue=j) ~ z^j)\n\n", perf.TailDecay)

	fmt.Println("queue-length distribution:")
	for j := 0; j <= 12; j += 2 {
		fmt.Printf("  P(exactly %2d jobs) = %.5f   P(more than %2d) = %.5f\n",
			j, perf.QueueProb(j), j, perf.QueueTail(j+1))
	}

	// How wrong would the classical exponential-breakdown model be? With the
	// fitted 0.04 repairs outages are so short that the shape is almost
	// irrelevant — so ask the question where it bites: repairs that take an
	// engineer (mean 5 time units, the Figure 6/7 regime).
	slow := sys
	slow.Repair = dist.Exp(0.2)
	slowPerf, err := slow.Solve()
	if err != nil {
		log.Fatal(err)
	}
	expSys := slow
	expSys.Operative = dist.Exp(1 / operative.Mean()) // same mean, C² = 1
	expPerf, err := expSys.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith slow repairs (mean 5): true (H2) L = %.2f, exponential model says %.2f\n",
		slowPerf.MeanJobs, expPerf.MeanJobs)
	fmt.Printf("the classical exponential assumption underestimates the queue by %.1f%%\n",
		100*(slowPerf.MeanJobs-expPerf.MeanJobs)/slowPerf.MeanJobs)

	// Where does the queue actually build? Condition on the number of
	// operative servers (the mode structure makes this exact).
	fmt.Println("\nconditional view (slow repairs):")
	for _, st := range slowPerf.OperativeBreakdown() {
		if st.Prob < 1e-6 {
			continue
		}
		fmt.Printf("  %2d servers up: P = %.4f, E[jobs | state] = %.1f\n",
			st.Operative, st.Prob, st.MeanQueue)
	}
}
