// Transient behaviour (an extension beyond the paper's stationary
// analysis): how long does the cluster take to settle after a cold start,
// and how long to drain the backlog after a mass outage? Both questions use
// the same generator as the exact solver, evaluated by uniformization.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qbd"
	"repro/internal/transient"
)

func main() {
	sys := core.System{
		Servers:     6,
		ArrivalRate: 4.5,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(0.2), // engineer-speed repairs, mean 5
	}
	perf, err := sys.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stationary mean queue L∞ = %.3f (load %.3f)\n\n", perf.MeanJobs, sys.Load())

	params, err := sys.Params()
	if err != nil {
		log.Fatal(err)
	}
	sv, err := transient.NewSolver(params, transient.Options{MaxLevel: 220})
	if err != nil {
		log.Fatal(err)
	}

	// Scenario A: cold start — empty queue, every server up.
	allUp := params.Size() - 1
	cold, err := sv.InitialState(0, allUp)
	if err != nil {
		log.Fatal(err)
	}
	// Scenario B: the morning after a mass outage — 120 jobs backed up.
	backlog, err := sv.InitialState(120, allUp)
	if err != nil {
		log.Fatal(err)
	}

	times := []float64{0, 5, 15, 30, 60, 120, 240, 480}
	coldPath, err := sv.MeanQueuePath(cold, times)
	if err != nil {
		log.Fatal(err)
	}
	drainPath, err := sv.MeanQueuePath(backlog, times)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "t\tE[Z(t)] cold start\tE[Z(t)] after backlog")
	for i, t := range times {
		fmt.Fprintf(w, "%.0f\t%.3f\t%.3f\n", t, coldPath[i], drainPath[i])
	}
	w.Flush()

	settle, err := sv.TimeToSettle(cold, []float64{5, 10, 20, 40, 80, 160, 320, 640, 1280}, perf.MeanJobs, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold start reaches within 5%% of L∞ by t ≈ %.0f\n", settle)

	// Sanity: the transient distribution at large t matches the exact
	// stationary solution (two very different algorithms).
	far, err := sv.At(cold, 3000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=3000: E[Z] = %.3f vs stationary %.3f; P(Z=0): %.4f vs %.4f\n",
		far.MeanQueue(), perf.MeanJobs, far.LevelProb(0), perf.QueueProb(0))
	_ = qbd.QueueCCDF(perf.Solution(), 5) // (CCDF also available if needed)
}
