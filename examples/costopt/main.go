// Cost optimisation: "if there is a trade-off between the cost of making
// jobs wait and that of providing servers, what is the optimal number of
// servers?" — the paper's third introduction question (eq. 22, Figure 5).
//
// The example reproduces Figure 5's optima and then shows how the optimum
// moves when the holding-cost/server-cost ratio changes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dist"
)

func main() {
	base := core.System{
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}

	// Part 1: the paper's Figure 5 — c1 = 4, c2 = 1.
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	fmt.Println("Figure 5 reproduction (c1 = 4, c2 = 1):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "λ\toptimal N\tcost C\tL at optimum\tpaper optimum")
	paper := map[float64]int{7: 11, 8: 12, 8.5: 13}
	for _, lambda := range []float64{7, 8, 8.5} {
		sys := base
		sys.ArrivalRate = lambda
		best, err := core.OptimizeServers(sys, cm, 9, 17, core.Spectral)
		if err != nil {
			log.Fatalf("λ=%v: %v", lambda, err)
		}
		fmt.Fprintf(w, "%.1f\t%d\t%.3f\t%.3f\t%d\n",
			lambda, best.Servers, best.Cost, best.Perf.MeanJobs, paper[lambda])
	}
	w.Flush()

	// Part 2: sensitivity — how the optimum moves with the cost ratio.
	fmt.Println("\nSensitivity of the optimum to the cost ratio c1/c2 (λ = 8):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "c1/c2\toptimal N\tcost\tuser share c1·L\tprovider share c2·N")
	sys := base
	sys.ArrivalRate = 8
	for _, ratio := range []float64{1, 2, 4, 8, 16, 32} {
		cm := core.CostModel{HoldingCost: ratio, ServerCost: 1}
		best, err := core.OptimizeServers(sys, cm, 9, 22, core.Spectral)
		if err != nil {
			log.Fatalf("ratio %v: %v", ratio, err)
		}
		fmt.Fprintf(w, "%.0f\t%d\t%.2f\t%.2f\t%d\n",
			ratio, best.Servers, best.Cost, ratio*best.Perf.MeanJobs, best.Servers)
	}
	w.Flush()
	fmt.Println("\nThe dearer the waiting relative to hardware, the more servers the optimum buys —")
	fmt.Println("and the heavier the load, the larger the optimal cluster (the paper's observation).")
}
