// End-to-end pipeline: raw breakdown event log → cleaned period samples →
// fitted hyperexponential distributions → validated queueing model — the
// whole arc of the paper in one program.
//
// It generates a synthetic Sun-style log (the substitution for the
// proprietary data set), runs the §2 statistical analysis, then feeds the
// *fitted* distributions into the §3 model and compares three answers for
// the mean queue length: the naive exponential model, the fitted
// hyperexponential model, and a discrete-event simulation of the original
// process.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/figures"
	"repro/internal/stats"
)

func main() {
	// 1. "Collect" the data: 140,000 breakdown events across a fleet.
	events, err := dataset.Generate(dataset.GenConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw log: %d events\n", len(events))

	// 2. Clean and analyse (§2): drop anomalous rows, estimate moments,
	// fit hyperexponentials, run Kolmogorov–Smirnov.
	rep, err := figures.AnalyzeDataset(events)
	if err != nil {
		log.Fatal(err)
	}
	clean := dataset.Clean(events)
	fmt.Printf("cleaned: dropped %d anomalous rows (%.2f%%)\n", rep.EventsDropped, 100*rep.DroppedFraction)
	fmt.Printf("operative periods: mean %.4g, C² %.3g → fitted %v\n",
		rep.Operative.Moments[0], rep.Operative.CV2, rep.Operative.FittedH2)
	fmt.Printf("  KS: exponential D=%.4f (pass=%v)  H2 D=%.4f (pass=%v)\n",
		rep.Operative.KSExponential.D, rep.Operative.KSExponential.Pass(0.05),
		rep.Operative.KSH2.D, rep.Operative.KSH2.Pass(0.05))
	fmt.Printf("inoperative periods: mean %.4g → fitted %v\n\n",
		rep.Inoperative.Moments[0], rep.Inoperative.FittedH2)

	// 3. Build the queueing model (§3) from the *fitted* operative
	// distribution. The fitted repairs are so short (mean 0.04) that any
	// distributional shape would be invisible, so — like the paper's own
	// Figures 6 and 7 — we plan for a deployment where repairs take an
	// engineer visit: exponential with mean 5 (η = 0.2).
	engineerRepair := dist.Exp(0.2)
	sys := core.System{
		Servers:     10,
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   rep.Operative.FittedH2,
		Repair:      engineerRepair,
	}
	fitted, err := sys.Solve()
	if err != nil {
		log.Fatal(err)
	}

	// The classical (wrong) assumption: exponential operative periods with
	// the same mean.
	naive := sys
	naive.Operative = dist.Exp(1 / rep.Operative.Moments[0])
	naivePerf, err := naive.Solve()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Ground truth: simulate the process that actually generated the
	// data (the paper-true operative distribution), under the same slow
	// repairs.
	truth, err := core.System{
		Servers:     10,
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   dataset.PaperOperative(),
		Repair:      engineerRepair,
	}.Simulate(core.SimOptions{Seed: 42, Horizon: 400000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mean queue length L at N=10, λ=8, repair mean 5:")
	fmt.Printf("  exponential model (classical assumption): %.3f\n", naivePerf.MeanJobs)
	fmt.Printf("  fitted hyperexponential model (paper):    %.3f\n", fitted.MeanJobs)
	fmt.Printf("  simulation of the true process:           %.3f ± %.3f\n",
		truth.MeanQueue, truth.MeanQueueHalfWidth)
	fmt.Printf("\nexponential error: %.1f%%   fitted-model error: %.1f%%\n",
		100*relErr(naivePerf.MeanJobs, truth.MeanQueue),
		100*relErr(fitted.MeanJobs, truth.MeanQueue))
	fmt.Println("\nThe fitted hyperexponential model tracks reality; the exponential one is optimistic.")

	// Bonus: the empirical 90th percentile of the queue, via the exact
	// distribution (the response-time *distribution* remains the paper's
	// open problem, but the queue-length distribution is fully available).
	q := 0.0
	j := 0
	for ; q < 0.9 && j < 10000; j++ {
		q += fitted.QueueProb(j)
	}
	fmt.Printf("90th percentile of queue length (fitted model): %d jobs\n", j-1)
	_ = stats.Mean(clean.Operative) // (see §2 report for the full statistics)
}

func relErr(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}
