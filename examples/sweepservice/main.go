// Sweepservice: drive the internal/service evaluation engine directly —
// fire a dense concurrent λ-sweep (the Figure 8 workload), re-run an
// overlapping sweep, and watch the solver cache absorb the repeat work.
// This is the same engine that powers the figures package and the
// mus-serve daemon; the point of the walkthrough is the operational story:
// batches keep every core busy, and the fingerprint-keyed cache makes
// overlapping sweeps nearly free.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
)

func main() {
	base := core.System{
		Servers:     10,
		ArrivalRate: 1, // overwritten per sweep point
		ServiceRate: 1,
		// The paper's fitted Sun operative periods (C² ≈ 4.6) and repairs.
		Operative: dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:    dist.Exp(25),
	}
	eng := service.NewEngine(service.Config{})
	fmt.Printf("engine: %d workers, cache capacity %d\n\n", eng.Workers(), service.DefaultCacheSize)

	// A dense λ-sweep across the stable region — 48 exact spectral solves,
	// dispatched as one concurrent batch.
	lambdas := make([]float64, 48)
	for i := range lambdas {
		lambdas[i] = 4 + 5.5*float64(i)/float64(len(lambdas)-1)
	}
	start := time.Now()
	perfs, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	fmt.Println("λ-sweep (N=10, exact spectral solution):")
	for i := 0; i < len(lambdas); i += 8 {
		fmt.Printf("  λ=%6.3f  load=%.3f  L=%8.3f  W=%7.3f\n",
			lambdas[i], perfs[i].Load, perfs[i].MeanJobs, perfs[i].MeanResponse)
	}
	fmt.Printf("cold sweep: %d points in %v\n\n", len(lambdas), cold.Round(time.Millisecond))

	// An overlapping workload: the same grid shifted by half a step keeps
	// half the points identical — a capacity dashboard refreshing, or two
	// figures sharing configurations. The identical half is served from
	// memory.
	shifted := make([]float64, len(lambdas))
	copy(shifted, lambdas)
	for i := 1; i < len(shifted); i += 2 {
		shifted[i] += 0.01
	}
	start = time.Now()
	if _, err := eng.SweepLambda(context.Background(), base, shifted, core.Spectral); err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	fmt.Printf("overlapping sweep (half the points cached): %v\n", warm.Round(time.Millisecond))

	// And the fully repeated sweep costs almost nothing.
	start = time.Now()
	if _, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fully repeated sweep:                       %v\n\n", time.Since(start).Round(time.Millisecond))

	st := eng.Stats()
	fmt.Println("engine statistics:")
	fmt.Printf("  solver runs:        %d (of %d evaluations submitted)\n",
		st.Solves, st.Cache.Hits+st.Cache.Misses)
	fmt.Printf("  cache hits/misses:  %d/%d (hit rate %.1f%%)\n",
		st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRate())
	fmt.Printf("  cached solutions:   %d (capacity %d, evictions %d)\n",
		st.Cache.Entries, st.Cache.Capacity, st.Cache.Evictions)
	fmt.Printf("  in-flight joins:    %d\n", st.SharedInFlight)
}
