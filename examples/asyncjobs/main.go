// Asyncjobs: the asynchronous-job SDK walkthrough — run workloads too
// large for one synchronous HTTP request through /v1/jobs. It submits a
// dense λ-sweep as a job, polls its advancing progress, fetches partial
// NDJSON results mid-run, waits for completion, then submits a second job
// and cancels it, showing the canceled terminal state and the queue
// counters in /v1/stats.
//
// Start a daemon first, then run:
//
//	mus-serve -addr :8350 &
//	go run ./examples/asyncjobs -server http://localhost:8350
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"repro/api"
	"repro/client"
)

func main() {
	serverURL := flag.String("server", "http://localhost:8350", "base URL of a running mus-serve daemon")
	flag.Parse()
	ctx := context.Background()
	c := client.New(*serverURL)
	if _, err := c.Health(ctx); err != nil {
		log.Fatalf("no daemon at %s (start one with: mus-serve -addr :8350): %v", *serverURL, err)
	}

	// Submit a dense λ-sweep as a job: the POST returns in milliseconds
	// with a job ID while the daemon grinds through the grid.
	values := make([]float64, 2000)
	for i := range values {
		values[i] = 2 + 7.8*float64(i)/float64(len(values)-1)
	}
	st, err := c.SubmitJob(ctx, api.NewSweepJob(api.SweepRequest{
		System: api.System{Servers: 10},
		Param:  api.ParamLambda,
		Values: values,
	}))
	if err != nil {
		// A loaded daemon rejects rather than queueing without bound.
		var ae *api.Error
		if errors.As(err, &ae) && ae.Code == api.CodeQueueFull {
			log.Fatalf("daemon queue is full — back off and resubmit: %v", ae)
		}
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (%s), %d grid points\n", st.ID, st.State, len(values))

	// Fetch partial results while the job runs: the NDJSON snapshot holds
	// whatever prefix of the grid is solved at that moment.
	partial := 0
	state, err := c.JobSweepPartial(ctx, st.ID, func(pt api.SweepPoint) error {
		partial++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mid-run snapshot: %d points available while %s\n", partial, state)

	// Poll to completion with the SDK's backoff, watching progress move.
	lastReported := -1
	final, err := c.WaitJob(ctx, st.ID, func(js api.JobStatus) {
		pct := 0
		if js.Progress.Total > 0 {
			pct = 100 * js.Progress.Completed / js.Progress.Total
		}
		if pct/20 != lastReported {
			lastReported = pct / 20
			fmt.Printf("  %s: %d/%d points (%d%%)\n", js.State, js.Progress.Completed, js.Progress.Total, pct)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if final.State != api.JobStateDone {
		log.Fatalf("job ended %s: %v", final.State, final.Error)
	}
	res, err := c.JobResult(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	last := res.Sweep.Points[len(res.Sweep.Points)-1]
	fmt.Printf("done: %d points; heaviest grid point λ=%.3f has L=%.2f\n\n",
		len(res.Sweep.Points), last.Value, last.Perf.MeanJobs)

	// Cancelation: submit another long job and abandon it. The daemon
	// releases its in-flight evaluations and records the canceled state.
	second, err := c.SubmitJob(ctx, api.NewSweepJob(api.SweepRequest{
		System: api.System{Servers: 12},
		Param:  api.ParamLambda,
		Values: values,
	}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, second.ID); err != nil {
		log.Fatal(err)
	}
	fin, err := c.WaitJob(ctx, second.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second job %s ended %s after %d/%d points\n",
		second.ID, fin.State, fin.Progress.Completed, fin.Progress.Total)

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob counters: %d submitted, %d done, %d canceled, queue %d/%d\n",
		stats.Jobs.Submitted, stats.Jobs.Done, stats.Jobs.Canceled,
		stats.Jobs.Queued, stats.Jobs.QueueCapacity)
}
