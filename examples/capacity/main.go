// Capacity planning: "what is the minimum number of servers that would
// ensure a desired level of performance?" — the paper's second introduction
// question, answered here for a grid of response-time SLAs (the Figure 9
// scenario: λ = 7.5, fitted breakdown behaviour, η = 25).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dist"
)

func main() {
	base := core.System{
		ArrivalRate: 7.5,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
	minStable, err := core.MinServersForStability(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λ = %g, availability = %.4f ⇒ at least N = %d for stability\n\n",
		base.ArrivalRate, base.Availability(), minStable)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SLA target W ≤\tmin servers\tachieved W\tachieved L\tP(wait > 0... ≥N jobs)")
	for _, target := range []float64{3.0, 2.0, 1.5, 1.2, 1.1, 1.05} {
		pt, err := core.MinServersForResponseTime(base, target, 40, core.Spectral)
		if err != nil {
			log.Fatalf("target %v: %v", target, err)
		}
		fmt.Fprintf(w, "%.2f\t%d\t%.4f\t%.4f\t%.4f\n",
			target, pt.Servers, pt.Perf.MeanResponse, pt.Perf.MeanJobs, pt.Perf.QueueTail(pt.Servers))
	}
	w.Flush()

	fmt.Println("\nThe paper reads W ≤ 1.5 off Figure 9: \"at least 9 servers should be deployed\".")
	fmt.Println("Tightening the SLA towards the service-time floor (W → 1/µ = 1) grows N rapidly,")
	fmt.Println("because each extra server only trims the residual waiting caused by breakdowns.")
}
