package repro

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/figures"
	"repro/internal/markov"
	"repro/internal/obs/trace"
	"repro/internal/qbd"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transient"
)

// One benchmark per table/figure in the paper's evaluation, plus ablation
// benches for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The figure benches execute the same experiment code as cmd/mus-figures
// (Quick variants where a figure needs long simulations) and report the
// headline metric through b.ReportMetric so the regenerated values are
// visible in benchmark output.

var (
	benchOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	benchRepair = dist.Exp(25)
)

func benchFigure(b *testing.B, build func(figures.Options) (*figures.Figure, error), opts figures.Options) {
	b.Helper()
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = build(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := figures.Render(io.Discard, fig); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFigure3 regenerates the §2 operative-period density fit
// (empirical histogram + fitted H2 + KS decisions) on the synthetic log.
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, figures.Figure3, figures.Options{Quick: true, Seed: 1})
}

// BenchmarkFigure4 regenerates the §2 inoperative-period density fit.
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, figures.Figure4, figures.Options{Quick: true, Seed: 1})
}

// BenchmarkFigure5 regenerates the cost-vs-N curves (λ = 7, 8, 8.5) and
// their optima (paper: N* = 11, 12, 13).
func BenchmarkFigure5(b *testing.B) {
	var fig *figures.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = figures.Figure5(figures.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		b.ReportMetric(s.ArgminY(), "optN_"+s.Label)
	}
}

// BenchmarkFigure6 regenerates queue size vs operative-period C²
// (λ = 8.5, 8.6; simulated C² = 0 point).
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, figures.Figure6, figures.Options{Quick: true, Seed: 1})
}

// BenchmarkFigure7 regenerates queue size vs mean repair time for
// exponential vs hyperexponential operative periods.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, figures.Figure7, figures.Options{})
}

// BenchmarkFigure8 regenerates the exact-vs-approximation load sweep.
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, figures.Figure8, figures.Options{})
}

// BenchmarkFigure9 regenerates response time vs N (exact and approximate)
// and the min-N-for-SLA answer (paper: 9).
func BenchmarkFigure9(b *testing.B) {
	benchFigure(b, figures.Figure9, figures.Options{})
}

// BenchmarkFitPipeline regenerates the §2 in-text "table": moments, fitted
// H2 parameters and KS statistics for both period types.
func BenchmarkFitPipeline(b *testing.B) {
	events, err := dataset.Generate(dataset.GenConfig{Events: 20000, Servers: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *figures.FitReport
	for i := 0; i < b.N; i++ {
		rep, err = figures.AnalyzeDataset(events)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Operative.CV2, "opCV2")
	b.ReportMetric(rep.Operative.KSH2.D, "opKS_D")
}

// --- Ablation benches (DESIGN.md) ---

func benchParams(b *testing.B, n int, lambda float64) qbd.Params {
	b.Helper()
	env, err := markov.NewEnv(n, benchOps, benchRepair)
	if err != nil {
		b.Fatal(err)
	}
	return qbd.Params{Lambda: lambda, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(1)}
}

// BenchmarkSolverComparison measures the three exact solution methods as
// the environment grows: spectral expansion vs matrix-geometric vs the
// truncated-chain oracle.
func BenchmarkSolverComparison(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		p := benchParams(b, n, 0.8*float64(n))
		b.Run(fmt.Sprintf("spectral/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qbd.SolveSpectral(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("matrixgeometric/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qbd.SolveMatrixGeometric(p, qbd.MGOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("truncated/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qbd.SolveTruncated(p, 300); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundaryElimination contrasts the O(N·s³) staged boundary
// elimination against the naive dense (N+1)s×(N+1)s assembly of the same
// spectral solution.
func BenchmarkBoundaryElimination(b *testing.B) {
	for _, n := range []int{4, 8} {
		p := benchParams(b, n, 0.8*float64(n))
		b.Run(fmt.Sprintf("staged/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qbd.SolveSpectral(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dense/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qbd.SolveSpectralDense(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDominantEigenvalue contrasts the determinant-scan path used by
// the geometric approximation with extracting z_s from the full companion
// eigensolve.
func BenchmarkDominantEigenvalue(b *testing.B) {
	p := benchParams(b, 10, 8)
	b.Run("detscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qbd.DominantEigenvalue(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fulleigensolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, err := qbd.SolveSpectral(p)
			if err != nil {
				b.Fatal(err)
			}
			_ = sol.TailDecay()
		}
	})
}

// BenchmarkFitting contrasts the three hyperexponential fitting routes on
// the paper's operative-period moments.
func BenchmarkFitting(b *testing.B) {
	moments := make([]float64, 5)
	for k := 1; k <= 5; k++ {
		moments[k-1] = benchOps.Moment(k)
	}
	b.Run("closedform3moments", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.FitH2Moments(moments[0], moments[1], moments[2]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("newton", func(b *testing.B) {
		start := dist.MustHyperExp([]float64{0.5, 0.5}, []float64{0.1, 0.02})
		for i := 0; i < b.N; i++ {
			if _, err := dist.FitHNNewton(start, moments[:3]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brutesearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dist.FitHNSearch(2, moments[:3]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulation measures the discrete-event simulator on the Figure 6
// configuration (N = 10, heavy load).
func BenchmarkSimulation(b *testing.B) {
	cfg := sim.Config{
		Servers:   10,
		Lambda:    8.5,
		Mu:        1,
		Operative: benchOps,
		Repair:    dist.Exp(0.2),
		Warmup:    1000,
		Horizon:   20000,
		Seed:      1,
	}
	var res sim.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanQueue, "L")
}

// BenchmarkKolmogorovSmirnov measures the §2 goodness-of-fit test on a
// 50-bin histogram.
func BenchmarkKolmogorovSmirnov(b *testing.B) {
	events, err := dataset.Generate(dataset.GenConfig{Events: 20000, Servers: 40, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	clean := dataset.Clean(events)
	h, err := stats.NewHistogram(clean.Operative, 50, 0, 250)
	if err != nil {
		b.Fatal(err)
	}
	cdf := benchOps.CDF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.KolmogorovSmirnov(h, cdf)
	}
}

// BenchmarkEnvEnumeration measures mode-space construction (eq. 12) as N
// grows toward the paper's reported numerical limit (N ≈ 24).
func BenchmarkEnvEnumeration(b *testing.B) {
	for _, n := range []int{10, 24} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := markov.NewEnv(n, benchOps, benchRepair)
				if err != nil {
					b.Fatal(err)
				}
				_ = env.AMatrix()
			}
		})
	}
}

// BenchmarkTransient measures the uniformization extension: the transient
// distribution of a cold-started cluster at t = 100.
func BenchmarkTransient(b *testing.B) {
	p := benchParams(b, 4, 2.5)
	sv, err := transient.NewSolver(p, transient.Options{MaxLevel: 120})
	if err != nil {
		b.Fatal(err)
	}
	v0, err := sv.InitialState(0, p.Size()-1)
	if err != nil {
		b.Fatal(err)
	}
	var d *transient.Distribution
	for i := 0; i < b.N; i++ {
		d, err = sv.At(v0, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.MeanQueue(), "EZt100")
}

// BenchmarkLambdaSweep measures the internal/service evaluation engine on
// a Figure 8 style λ-sweep (N = 10, 32 points): the serial baseline solves
// one point at a time on one goroutine; pooled fans the batch across the
// worker pool with the cache disabled; cached repeats the pooled sweep
// against a warm solver cache, the steady state of overlapping figure runs
// and mus-serve traffic. Expected ordering: cached ≪ pooled < serial on
// any multi-core machine.
func BenchmarkLambdaSweep(b *testing.B) {
	base := core.System{
		Servers:     10,
		ArrivalRate: 1,
		ServiceRate: 1,
		Operative:   benchOps,
		Repair:      benchRepair,
	}
	lambdas := make([]float64, 32)
	for i := range lambdas {
		lambdas[i] = 5 + 4*float64(i)/float64(len(lambdas)) // loads ≈ 0.50–0.89
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range lambdas {
				sys := base
				sys.ArrivalRate = l
				if _, err := sys.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		eng := service.NewEngine(service.Config{CacheSize: -1})
		for i := 0; i < b.N; i++ {
			if _, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := service.NewEngine(service.Config{})
		if _, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(eng.Stats().Cache.HitRate(), "hitrate")
	})
}

// sweepBenchLambdas is the 64-point λ-grid (loads ≈ 0.50–0.89, N = 10)
// shared by BenchmarkSweepScalar and BenchmarkSweepBatched so their ns/op
// are directly comparable per grid point.
func sweepBenchLambdas() []float64 {
	lambdas := make([]float64, 64)
	for i := range lambdas {
		lambdas[i] = 5 + 4*float64(i)/float64(len(lambdas))
	}
	return lambdas
}

// BenchmarkSweepScalar is the per-point baseline of the batched sweep
// comparison: each iteration solves one grid point through the scalar
// spectral path, rebuilding every λ-invariant structure from scratch, as
// a sweep did before the batched solver existed. ns/op is the cost of one
// grid point.
func BenchmarkSweepScalar(b *testing.B) {
	p := benchParams(b, 10, 1)
	lambdas := sweepBenchLambdas()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lambda = lambdas[i%len(lambdas)]
		sol, err := qbd.SolveSpectral(p)
		if err != nil {
			b.Fatal(err)
		}
		sink += sol.MeanQueue()
	}
	_ = sink
}

// BenchmarkSweepBatched measures the same grid through a warm
// qbd.SweepWorker: λ-invariant work hoisted at construction, every point
// evaluated into reused workspaces. ns/op is the cost of one grid point
// and allocs/op must be exactly 0 — CI gates on both (≥2× vs
// BenchmarkSweepScalar via tools/benchjson -threshold, 0 allocs via
// -zeroalloc).
func BenchmarkSweepBatched(b *testing.B) {
	p := benchParams(b, 10, 1)
	sv, err := qbd.NewSweepSolver(p)
	if err != nil {
		b.Fatal(err)
	}
	w := sv.NewWorker()
	var sol qbd.SpectralSolution
	lambdas := sweepBenchLambdas()
	for _, l := range lambdas { // warm the workspaces outside the timer
		if err := w.SolveInto(l, &sol); err != nil {
			b.Fatal(err)
		}
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.SolveInto(lambdas[i%len(lambdas)], &sol); err != nil {
			b.Fatal(err)
		}
		sink += sol.MeanQueue()
	}
	_ = sink
}

// BenchmarkOptimizeServers measures the full Figure 5 style optimisation
// (sweep + exact solve per point) for one arrival rate.
func BenchmarkOptimizeServers(b *testing.B) {
	sys := core.System{
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   benchOps,
		Repair:      benchRepair,
	}
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	var best core.ServerSweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		best, err = core.OptimizeServers(sys, cm, 9, 17, core.Spectral)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(best.Servers), "optN")
}

// BenchmarkReplications measures the parallel speedup of the replicated
// simulation engine: the same 8-replication run at 1 worker and at
// GOMAXPROCS. Replications are embarrassingly parallel, so the speedup
// should be near-linear until the core count exceeds the replication
// count; reported L is identical for every worker count by construction.
func BenchmarkReplications(b *testing.B) {
	cfg := sim.RepConfig{
		Config: sim.Config{
			Servers:   10,
			Lambda:    8.5,
			Mu:        1,
			Operative: benchOps,
			Repair:    dist.Exp(0.2),
			Warmup:    500,
			Horizon:   10000,
			Seed:      1,
		},
		Replications: 8,
	}
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		if p > 2 {
			counts = append(counts, 2)
		}
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			var res sim.RepResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sim.RunReplicated(context.Background(), c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanQueue.Mean, "L")
			b.ReportMetric(res.MeanQueue.HalfWidth, "CI95")
		})
	}
}

// BenchmarkSimulateService measures the engine's memoised simulation path:
// the first call runs 4 replications, every subsequent call is a cache hit.
func BenchmarkSimulateService(b *testing.B) {
	eng := service.NewEngine(service.Config{})
	sys := core.System{
		Servers:     10,
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   benchOps,
		Repair:      benchRepair,
	}
	opts := core.SimOptions{Seed: 1, Warmup: 500, Horizon: 10000, Replications: 4}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = int64(i + 1) // unique key: every call simulates
			if _, err := eng.Simulate(context.Background(), sys, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := eng.Simulate(context.Background(), sys, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Simulate(context.Background(), sys, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdmissionDecision gates the admission controller's hot path:
// Decide reads one atomic model snapshot and must never solve inline or
// allocate — every job submission pays this cost before the scheduler is
// consulted. The solver-call counter pins solve-freedom; the CI benchjson
// gate pins 0 allocs/op (-zeroalloc).
func BenchmarkAdmissionDecision(b *testing.B) {
	var solves atomic.Int64
	now := time.Unix(1_700_000_000, 0)
	flow := admission.Flow{Busy: 1, Servers: 2}
	ctl := admission.New(admission.Config{
		Sample: func() admission.Flow { return flow },
		Evaluate: func(ctx context.Context, sys core.System, m core.Method) (*core.Performance, error) {
			solves.Add(1)
			return &core.Performance{MeanJobs: 2, MeanResponse: 1}, nil
		},
		Interval: -1,
		Now:      func() time.Time { return now },
	})
	if err := ctl.Refit(context.Background()); err != nil {
		b.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	flow = admission.Flow{Arrivals: 5, Completions: 10, Busy: 1, Servers: 2, Backlog: 10}
	if err := ctl.Refit(context.Background()); err != nil {
		b.Fatal(err)
	}
	if ctl.Snapshot() == nil {
		b.Fatal("no model published")
	}
	fitted := solves.Load()
	b.ReportAllocs()
	b.ResetTimer()
	// Backlogs sweep 0..63 so both branches (admit and shed-with-hint)
	// are exercised every 64 iterations.
	for i := 0; i < b.N; i++ {
		_ = ctl.Decide(i & 63)
	}
	b.StopTimer()
	if got := solves.Load(); got != fitted {
		b.Fatalf("Decide ran %d inline solves; the hot path must never solve", got-fitted)
	}
}

// BenchmarkSpanRecord gates the tracing record path: StartLeaf/Set/End is
// what every instrumented seam (HTTP request, store append, solver call)
// pays per operation, so it must recycle spans through the pool and never
// allocate. The CI benchjson gate pins 0 allocs/op (-zeroalloc).
func BenchmarkSpanRecord(b *testing.B) {
	tr := trace.New(trace.Config{Node: "bench"})
	root, ctx := tr.StartRoot(context.Background(), "mus.http.request", trace.SpanContext{})
	defer root.End()
	// Warm the span pool outside the timer so steady state is measured.
	for i := 0; i < 100; i++ {
		sp := trace.StartLeaf(ctx, "mus.engine.solve")
		sp.Set(trace.Int("servers", 12))
		sp.End()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trace.StartLeaf(ctx, "mus.engine.solve")
		sp.Set(trace.Int("servers", 12))
		sp.Set(trace.Float("lambda", 8))
		sp.End()
	}
}
