package api

// PathCluster is the cluster-introspection endpoint (GET): per-node
// health, ownership counts and forward/local routing counters of the
// answering node's cluster view.
const PathCluster = "/v1/cluster"

// HeaderForwarded marks a request that already crossed one cluster hop.
// A node receiving it serves locally no matter what its own ring says, so
// disagreeing ring views (mid-deploy, mid-failover) degrade to one extra
// hop instead of a forwarding loop.
const HeaderForwarded = "X-Mus-Forwarded"

// RetryAfterDraining is the Retry-After value (seconds) a draining node
// attaches to its node_unavailable rejections: long enough for the
// restart to finish, short enough that clients re-probe promptly.
const RetryAfterDraining = 1

// ClusterNodeStatus is one peer's entry in a ClusterResponse — the
// reporting node's view of that peer's health and of the traffic it has
// routed there.
type ClusterNodeStatus struct {
	// ID is the node's ring identity — the string every member and every
	// sharding client hashes, so it must be configured identically
	// cluster-wide.
	ID string `json:"id"`
	// URL is the node's base URL.
	URL string `json:"url"`
	// Self marks the reporting node's own entry.
	Self bool `json:"self,omitempty"`
	// Healthy is the reporting node's current verdict: true until probes
	// (or a forwarding failure) say otherwise. The self entry is always
	// healthy.
	Healthy bool `json:"healthy"`
	// ConsecutiveFailures counts probe/forward failures since the last
	// success; it resets to 0 when the node answers again.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent probe or forwarding failure, cleared
	// on recovery.
	LastError string `json:"last_error,omitempty"`
	// Owned counts requests (and scattered sweep points) whose ring owner
	// was this node, as scored by the reporting node.
	Owned uint64 `json:"owned"`
	// Forwarded counts requests and sweep points the reporting node
	// actually sent to this node (zero on the self entry — local serves
	// are counted in ClusterResponse.LocalServed).
	Forwarded uint64 `json:"forwarded"`
}

// ClusterResponse reports the answering node's cluster state
// (GET /v1/cluster). Counters are from this node's perspective; ask every
// node for the full picture.
type ClusterResponse struct {
	// Enabled is false on a node running without -peers, in which case
	// only Self and the local cache fields are meaningful.
	Enabled bool `json:"enabled"`
	// Self is this node's ring ID.
	Self string `json:"self"`
	// Nodes lists every ring member (including self) in ring order.
	Nodes []ClusterNodeStatus `json:"nodes,omitempty"`
	// LocalServed counts requests and sweep points this node evaluated on
	// its own engine — because it owned them, or as the failover of last
	// resort when every remote choice was down.
	LocalServed uint64 `json:"local_served"`
	// ForwardedTotal counts requests and sweep points this node sent to
	// peers, summed over Nodes[].Forwarded.
	ForwardedTotal uint64 `json:"forwarded_total"`
	// Failovers counts routing decisions that skipped at least one down
	// node — forwarded to a lower-ranked peer or served locally because
	// the owner was unreachable.
	Failovers uint64 `json:"failovers"`
	// Rescatters counts sweep sub-streams whose unanswered points were
	// re-dispatched after the carrying node died (or skipped points)
	// mid-flight.
	Rescatters uint64 `json:"rescatters"`
	// CacheHitRate is the local engine's solver-cache hit rate — the
	// number cache-affinity routing exists to raise: with same-fingerprint
	// requests pinned to one owner, each node's cache serves its own shard
	// instead of duplicating every other node's.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Evaluations counts evaluations the local engine answered by any
	// means (cache, in-flight join, or fresh solve); with Solves it bounds
	// the affinity multiplier Evaluations/Solves.
	Evaluations uint64 `json:"evaluations"`
	// Solves counts evaluations that ran the local solver.
	Solves uint64 `json:"solves"`
	// Obs is the answering node's flattened metric snapshot (see
	// StatsResponse.Obs) — how client.Cluster.ClusterStats gathers every
	// node's metrics in one concurrent pass without scraping /metrics.
	Obs map[string]float64 `json:"obs,omitempty"`
}
