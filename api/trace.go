package api

import "context"

// requestIDKey carries the request correlation ID through a context.
type requestIDKey struct{}

// ContextWithRequestID returns a context carrying the given correlation
// ID. The server's request-ID middleware stores the (incoming or
// generated) X-Request-ID here; everything downstream — error envelopes,
// trace lines, cluster forwards, async job execution — reads it back with
// RequestIDFrom, so one ID stitches a request's whole path through the
// cluster.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom recovers the correlation ID stored by
// ContextWithRequestID, or "" when the context carries none. The client
// SDK stamps this value as the outgoing X-Request-ID header, which is how
// a forwarded request and its origin share one trace ID.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
