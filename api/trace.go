package api

import (
	"context"
	"time"
)

// Distributed-tracing wire surface. The span model itself lives in
// internal/obs/trace; these are the propagation headers the cluster
// exchanges and the DTOs GET /v1/traces serves.
const (
	// PathTraces lists recently retained trace roots; PathTraces + "/{id}"
	// (see TracePath) returns one assembled cross-node trace tree.
	PathTraces = "/v1/traces"
	// HeaderTraceparent is the W3C trace-context header
	// (00-<trace id>-<span id>-<flags>) read by the server middleware and
	// stamped by the client SDK on every outgoing request.
	HeaderTraceparent = "Traceparent"
	// HeaderMusTrace is the repo-native alias for HeaderTraceparent,
	// honored on ingress when no traceparent is present.
	HeaderMusTrace = "X-Mus-Trace"
)

// TracePath returns the URL path of one trace's assembled tree.
func TracePath(id string) string { return PathTraces + "/" + id }

// TraceSpan is one completed span in an assembled trace tree.
type TraceSpan struct {
	// TraceID is the 32-hex-digit trace the span belongs to.
	TraceID string `json:"trace_id"`
	// SpanID is the span's own 16-hex-digit ID.
	SpanID string `json:"span_id"`
	// Parent is the parent span's ID, empty for the trace root.
	Parent string `json:"parent,omitempty"`
	// Name is the operation name (mus.<subsystem>.<op>).
	Name string `json:"name"`
	// Node is the cluster node that recorded the span.
	Node string `json:"node,omitempty"`
	// Root marks a local root: the entry span a node started for an
	// incoming request (its parent, if any, lives on another node).
	Root bool `json:"root,omitempty"`
	// Start is the span's start time.
	Start time.Time `json:"start"`
	// DurationMS is the span's elapsed time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Error is the failure message of a failed span.
	Error string `json:"error,omitempty"`
	// Attrs are the span's attributes, rendered as strings.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceSummary is one retained trace root in the GET /v1/traces listing.
type TraceSummary struct {
	// TraceID identifies the trace.
	TraceID string `json:"trace_id"`
	// Name is the root span's operation name.
	Name string `json:"name"`
	// Node is the node that completed the root span.
	Node string `json:"node,omitempty"`
	// Start is the root span's start time.
	Start time.Time `json:"start"`
	// DurationMS is the root span's elapsed time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Error is the root's failure message, empty on success.
	Error string `json:"error,omitempty"`
}

// TraceListResponse is the GET /v1/traces payload: retained roots,
// newest first, gathered across the cluster by the serving node.
type TraceListResponse struct {
	// Traces are the retained roots.
	Traces []TraceSummary `json:"traces"`
}

// TraceResponse is the GET /v1/traces/{id} payload: every span of one
// trace still buffered anywhere in the cluster, assembled into one tree.
type TraceResponse struct {
	// TraceID identifies the trace.
	TraceID string `json:"trace_id"`
	// Spans are the trace's spans, sorted by start time.
	Spans []TraceSpan `json:"spans"`
	// Nodes lists the cluster nodes that contributed spans.
	Nodes []string `json:"nodes,omitempty"`
	// Orphans counts spans whose parent is neither present nor a
	// declared local root — 0 in a fully connected tree.
	Orphans int `json:"orphans"`
}

// requestIDKey carries the request correlation ID through a context.
type requestIDKey struct{}

// ContextWithRequestID returns a context carrying the given correlation
// ID. The server's request-ID middleware stores the (incoming or
// generated) X-Request-ID here; everything downstream — error envelopes,
// trace lines, cluster forwards, async job execution — reads it back with
// RequestIDFrom, so one ID stitches a request's whole path through the
// cluster.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom recovers the correlation ID stored by
// ContextWithRequestID, or "" when the context carries none. The client
// SDK stamps this value as the outgoing X-Request-ID header, which is how
// a forwarded request and its origin share one trace ID.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
