package api

import (
	"math"

	"repro/internal/core"
)

// SolveRequest asks for one steady-state evaluation (POST /v1/solve).
type SolveRequest struct {
	System
	// Method selects the solver: spectral (default), approx or mg.
	Method string `json:"method,omitempty"`
	// HoldingCost is c₁; with ServerCost it requests C = c₁L + c₂N in
	// the response.
	HoldingCost float64 `json:"holding_cost,omitempty"`
	// ServerCost is c₂, the per-server provisioning cost.
	ServerCost float64 `json:"server_cost,omitempty"`
}

// Resolve validates the request and converts it to model types in one
// pass — the form server handlers consume. Failures are *Error values.
func (r SolveRequest) Resolve() (core.System, core.Method, error) {
	sys, err := r.ToSystem()
	if err != nil {
		return core.System{}, 0, err
	}
	m, err := ParseMethod(r.Method)
	if err != nil {
		return core.System{}, 0, err
	}
	if r.HoldingCost < 0 || r.ServerCost < 0 {
		return core.System{}, 0, InvalidArgument("holding_cost", "costs must be ≥ 0")
	}
	return sys, m, nil
}

// Validate reports wire-level problems as *Error values.
func (r SolveRequest) Validate() error {
	_, _, err := r.Resolve()
	return err
}

// SolveResponse reports one steady-state evaluation.
type SolveResponse struct {
	// Fingerprint is the canonical configuration key (cache identity).
	Fingerprint string `json:"fingerprint"`
	// Method echoes the solver that produced Perf.
	Method string `json:"method"`
	// Availability is η/(ξ+η), the per-server operative fraction.
	Availability float64 `json:"availability"`
	// Modes is s, the size of the operational-mode environment (eq. 12).
	Modes int `json:"modes"`
	// Stable reports the ergodicity condition; always true in a 200.
	Stable bool `json:"stable"`
	// Perf is the steady-state metrics block.
	Perf Performance `json:"perf"`
	// Cost is C = c₁L + c₂N, present only when costs were supplied.
	Cost *float64 `json:"cost,omitempty"`
}

// Sweep parameter names accepted by the "param" request field.
const (
	// ParamLambda sweeps the arrival rate λ over the values grid.
	ParamLambda = "lambda"
	// ParamServers sweeps the fleet size N; every value must be integral.
	ParamServers = "servers"
)

// SweepRequest asks for a batch evaluation over a parameter grid
// (POST /v1/sweep). With "Accept: application/x-ndjson" the response is
// a stream of SweepPoint lines instead of one SweepResponse.
type SweepRequest struct {
	System
	// Method selects the solver: spectral (default), approx or mg.
	Method string `json:"method,omitempty"`
	// Param names the swept parameter: lambda or servers.
	Param string `json:"param"`
	// Values is the grid (1 to MaxSweepPoints points).
	Values []float64 `json:"values"`
}

// Validate reports wire-level problems as *Error values. Per-point
// failures (an unstable or invalid grid point) are not wire-level: they
// surface in the matching SweepPoint's Error field instead.
func (r SweepRequest) Validate() error {
	_, err := r.Systems()
	return err
}

// baseWire neutralises the swept field of the base system: its wire value
// is irrelevant (every grid point overwrites it), so an absent field must
// not fail validation.
func (r SweepRequest) baseWire() System {
	wire := r.System
	switch r.Param {
	case ParamServers:
		if wire.Servers == 0 {
			wire.Servers = 1
		}
	case ParamLambda:
		if wire.Lambda == 0 {
			wire.Lambda = 1
		}
	}
	return wire
}

// Systems validates the request and expands the grid into one
// core.System per value. Individual entries may be invalid or unstable
// (reported per point by the server); the error return only fires for
// wire-level problems — a bad param, an empty or oversized grid,
// fractional server counts, or an unconvertible base system.
func (r SweepRequest) Systems() ([]core.System, error) {
	if _, err := ParseMethod(r.Method); err != nil {
		return nil, err
	}
	if len(r.Values) == 0 {
		return nil, InvalidArgument("values", "sweep needs at least one value")
	}
	if len(r.Values) > MaxSweepPoints {
		return nil, InvalidArgument("values", "sweep of %d points exceeds the %d-point limit", len(r.Values), MaxSweepPoints)
	}
	switch r.Param {
	case ParamLambda:
	case ParamServers:
		for _, v := range r.Values {
			if v != math.Trunc(v) {
				return nil, InvalidArgument("values", "servers sweep value %v is not an integer", v)
			}
		}
	default:
		return nil, InvalidArgument("param", "unknown sweep param %q (want lambda or servers)", r.Param)
	}
	// The base system must convert; grid points may still fail per point
	// (e.g. servers=0), which the sweep reports point-wise.
	base, err := r.baseWire().ToSystem()
	if err != nil {
		return nil, err
	}
	out := make([]core.System, len(r.Values))
	for i, v := range r.Values {
		sys := base
		switch r.Param {
		case ParamLambda:
			sys.ArrivalRate = v
		case ParamServers:
			sys.Servers = int(v)
		}
		out[i] = sys
	}
	return out, nil
}

// SweepPoint is one grid point of a sweep: exactly one of Perf and Error
// is set. In an NDJSON stream each line is one SweepPoint, emitted in
// grid order as soon as the point is solved.
type SweepPoint struct {
	// Index is the point's position in the request's values grid.
	Index int `json:"index"`
	// Value is the swept parameter value at this point.
	Value float64 `json:"value"`
	// Perf is the steady-state metrics block (absent on failure).
	Perf *Performance `json:"perf,omitempty"`
	// Error describes a per-point failure (absent on success).
	Error string `json:"error,omitempty"`
}

// SweepResponse is the buffered (non-streaming) sweep reply; points are
// in grid order.
type SweepResponse struct {
	// Method echoes the solver used.
	Method string `json:"method"`
	// Param echoes the swept parameter.
	Param string `json:"param"`
	// Points holds one entry per requested value, in order.
	Points []SweepPoint `json:"points"`
}

// OptimizeRequest asks one of the paper's two provisioning questions
// (POST /v1/optimize): with TargetResponse set, the smallest N meeting
// the SLA (Figure 9); otherwise the N in [MinServers, MaxServers]
// minimising C = c₁L + c₂N (Figure 5).
type OptimizeRequest struct {
	System
	// Method selects the solver: spectral (default), approx or mg.
	Method string `json:"method,omitempty"`
	// HoldingCost is c₁ of the cost objective.
	HoldingCost float64 `json:"holding_cost,omitempty"`
	// ServerCost is c₂ of the cost objective.
	ServerCost float64 `json:"server_cost,omitempty"`
	// MinServers is the bottom of the searched fleet-size range
	// (default 1 in SLA mode; required in cost mode).
	MinServers int `json:"min_servers,omitempty"`
	// MaxServers is the top of the searched range (default 64 in SLA
	// mode; required in cost mode).
	MaxServers int `json:"max_servers,omitempty"`
	// TargetResponse switches to SLA mode: find the smallest N with
	// W ≤ TargetResponse.
	TargetResponse float64 `json:"target_response,omitempty"`
}

// Bounds returns the effective search range, applying the SLA-mode
// defaults [1, 64] for absent bounds.
func (r OptimizeRequest) Bounds() (minN, maxN int) {
	minN, maxN = r.MinServers, r.MaxServers
	if r.TargetResponse > 0 {
		if minN == 0 {
			minN = 1
		}
		if maxN == 0 {
			maxN = 64
		}
	}
	return minN, maxN
}

// Resolve validates the request and converts it to model types in one
// pass: the base system (the wire Servers field is ignored — N is the
// decision variable), the solver, and the effective search range.
// Failures are *Error values.
func (r OptimizeRequest) Resolve() (base core.System, m core.Method, minN, maxN int, err error) {
	m, err = ParseMethod(r.Method)
	if err != nil {
		return core.System{}, 0, 0, 0, err
	}
	base, err = r.BaseSystem()
	if err != nil {
		return core.System{}, 0, 0, 0, err
	}
	if r.TargetResponse < 0 {
		return core.System{}, 0, 0, 0, InvalidArgument("target_response", "target response %v must be positive", r.TargetResponse)
	}
	if r.TargetResponse == 0 && r.HoldingCost <= 0 && r.ServerCost <= 0 {
		return core.System{}, 0, 0, 0, InvalidArgument("target_response", "optimize needs holding_cost/server_cost or target_response")
	}
	minN, maxN = r.Bounds()
	if minN < 1 || maxN < minN {
		return core.System{}, 0, 0, 0, InvalidArgument("min_servers", "invalid server range [%d, %d]", minN, maxN)
	}
	return base, m, minN, maxN, nil
}

// Validate reports wire-level problems as *Error values.
func (r OptimizeRequest) Validate() error {
	_, _, _, _, err := r.Resolve()
	return err
}

// BaseSystem converts the embedded system for an optimisation: the wire
// Servers field is ignored (N is the decision variable), so conversion
// succeeds even when it is absent.
func (r OptimizeRequest) BaseSystem() (core.System, error) {
	wire := r.System
	if wire.Servers == 0 {
		wire.Servers = 1
	}
	return wire.ToSystem()
}

// OptimizeResponse reports the winning fleet size.
type OptimizeResponse struct {
	// Objective restates the solved question in human-readable form.
	Objective string `json:"objective"`
	// Servers is the optimal (or smallest satisfying) N.
	Servers int `json:"servers"`
	// Cost is the objective value at Servers (cost mode only).
	Cost *float64 `json:"cost,omitempty"`
	// Perf is the steady-state metrics block at Servers.
	Perf Performance `json:"perf"`
}

// SimulateRequest asks for a replicated discrete-event simulation with
// confidence intervals (POST /v1/simulate).
type SimulateRequest struct {
	System
	// Seed is the base RNG seed; replication i derives its own stream
	// from it, so results are reproducible for a fixed request.
	Seed int64 `json:"seed,omitempty"`
	// Warmup is the discarded initial period per replication.
	Warmup float64 `json:"warmup,omitempty"`
	// Horizon is the measured period per replication.
	Horizon float64 `json:"horizon,omitempty"`
	// Replications is R_max (default DefaultReplications).
	Replications int `json:"replications,omitempty"`
	// MinReplications is the count run before the stopping rule applies.
	MinReplications int `json:"min_replications,omitempty"`
	// RelPrecision is ε: stop once the CI half-width on L is within
	// ε·mean (0 = run exactly Replications).
	RelPrecision float64 `json:"rel_precision,omitempty"`
	// Confidence is the CI level in (0, 1) (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
}

// Resolve validates the request and converts it to model types in one
// pass — the system plus simulation options with the API defaults
// applied. Failures are *Error values.
func (r SimulateRequest) Resolve() (core.System, core.SimOptions, error) {
	sys, err := r.ToSystem()
	if err != nil {
		return core.System{}, core.SimOptions{}, err
	}
	switch {
	case r.Confidence != 0 && !(r.Confidence > 0 && r.Confidence < 1):
		return core.System{}, core.SimOptions{}, InvalidArgument("confidence", "confidence %v outside (0, 1)", r.Confidence)
	case r.RelPrecision < 0:
		return core.System{}, core.SimOptions{}, InvalidArgument("rel_precision", "rel_precision %v must be ≥ 0", r.RelPrecision)
	case r.Replications < 0 || r.MinReplications < 0:
		return core.System{}, core.SimOptions{}, InvalidArgument("replications", "replication counts must be ≥ 0")
	case r.Warmup < 0 || r.Horizon < 0:
		return core.System{}, core.SimOptions{}, InvalidArgument("warmup", "warmup and horizon must be ≥ 0")
	}
	return sys, r.Options(), nil
}

// Validate reports wire-level problems as *Error values.
func (r SimulateRequest) Validate() error {
	_, _, err := r.Resolve()
	return err
}

// Options converts the request to simulation options, applying the API's
// DefaultReplications when the request names none.
func (r SimulateRequest) Options() core.SimOptions {
	opts := core.SimOptions{
		Seed:            r.Seed,
		Warmup:          r.Warmup,
		Horizon:         r.Horizon,
		Replications:    r.Replications,
		MinReplications: r.MinReplications,
		RelPrecision:    r.RelPrecision,
		Confidence:      r.Confidence,
	}
	if opts.Replications == 0 {
		opts.Replications = DefaultReplications
	}
	return opts
}

// SimulateResponse reports replicated-simulation estimates; each CI is a
// Student-t interval at the returned confidence level.
type SimulateResponse struct {
	// Fingerprint is the canonical configuration key.
	Fingerprint string `json:"fingerprint"`
	// Replications is the number of replications actually run.
	Replications int `json:"replications"`
	// Converged reports whether the precision criterion was met (true
	// when none was requested).
	Converged bool `json:"converged"`
	// Confidence is the level of every interval in this response.
	Confidence float64 `json:"confidence"`
	// MeanQueue estimates L.
	MeanQueue CI `json:"mean_queue"`
	// MeanResponse estimates W.
	MeanResponse CI `json:"mean_response"`
	// Availability estimates the operative fraction.
	Availability CI `json:"availability"`
	// Completed counts jobs finished across all replications.
	Completed int64 `json:"completed"`
}

// CacheStats is the wire form of one engine cache's counters.
type CacheStats struct {
	// Hits counts lookups served from memory.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the backing computation.
	Misses uint64 `json:"misses"`
	// Evictions counts LRU evictions.
	Evictions uint64 `json:"evictions"`
	// Entries is the current population.
	Entries int `json:"entries"`
	// Capacity is the configured bound (0 = disabled).
	Capacity int `json:"capacity"`
	// HitRate is Hits/(Hits+Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
}

// StatsResponse reports engine, worker-pool and cache counters
// (GET /v1/stats).
type StatsResponse struct {
	// UptimeSeconds is the daemon's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts HTTP requests served.
	Requests uint64 `json:"requests"`
	// Workers is the solver concurrency bound.
	Workers int `json:"workers"`
	// Evaluations counts evaluations answered by any means (cache hit,
	// in-flight join, or fresh solve); with Solves it bounds the node's
	// cache-affinity multiplier Evaluations/Solves.
	Evaluations uint64 `json:"evaluations"`
	// Solves counts solver invocations that actually ran.
	Solves uint64 `json:"solves"`
	// SolverErrors counts solver invocations that failed.
	SolverErrors uint64 `json:"solver_errors"`
	// SharedInFlight counts evaluations that joined an in-flight twin.
	SharedInFlight uint64 `json:"shared_in_flight"`
	// SimRuns counts replicated simulations that actually ran.
	SimRuns uint64 `json:"sim_runs"`
	// SimErrors counts replicated simulations that failed.
	SimErrors uint64 `json:"sim_errors"`
	// BatchGroups counts shared sweep batch solvers actually constructed
	// (λ-invariant work hoisted once per environment group).
	BatchGroups uint64 `json:"batch_groups"`
	// BatchFallbacks counts batched sweep points solved through the
	// scalar fallback after a failed batch-solver construction.
	BatchFallbacks uint64 `json:"batch_fallbacks"`
	// WarmedEntries counts cache entries restored from a boot snapshot.
	WarmedEntries uint64 `json:"warmed_entries"`
	// Cache reports solver memoization effectiveness.
	Cache CacheStats `json:"cache"`
	// SimCache reports simulation memoization effectiveness.
	SimCache CacheStats `json:"sim_cache"`
	// Jobs reports the asynchronous job scheduler's queue depth and
	// state-machine population.
	Jobs JobStats `json:"jobs"`
	// Obs is the node's flattened metric snapshot — every registered
	// series as "name{labels}" → value, histograms contributing their
	// _count and _sum. The same registry renders the full exposition
	// (buckets included) at GET /metrics; this block is the JSON view for
	// dashboards and the cluster SDK's per-node gather.
	Obs map[string]float64 `json:"obs,omitempty"`
}

// HealthResponse answers the load-balancer probe (GET /v1/healthz): the
// daemon is ready — its engine exists, its worker pool is sized, and its
// caches are configured. Any 200 means "route traffic here".
type HealthResponse struct {
	// Status is "ok" whenever the daemon can serve at all.
	Status string `json:"status"`
	// Workers is the engine's solver concurrency bound.
	Workers int `json:"workers"`
	// CacheCapacity is the solver cache bound (0 = disabled).
	CacheCapacity int `json:"cache_capacity"`
	// SimCacheCapacity is the simulation cache bound (0 = disabled).
	SimCacheCapacity int `json:"sim_cache_capacity"`
	// UptimeSeconds is the daemon's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
}
