package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Code is a machine-readable error classification carried on the wire.
// Clients branch on codes, never on message text.
type Code string

// The error codes of the v1 API. Every error envelope carries exactly one.
const (
	// CodeInvalidArgument marks a malformed or out-of-range request
	// (HTTP 400). Field, when set, names the offending request field.
	CodeInvalidArgument Code = "invalid_argument"
	// CodeUnstableSystem marks a well-formed configuration that violates
	// the ergodicity condition (paper eq. 11) and therefore has no steady
	// state (HTTP 422).
	CodeUnstableSystem Code = "unstable_system"
	// CodeUnsatisfiable marks a well-formed optimisation whose constraints
	// cannot be met — e.g. no N in the range achieves the response-time
	// target (HTTP 422).
	CodeUnsatisfiable Code = "unsatisfiable"
	// CodeCanceled marks a request abandoned by the caller before the
	// engine finished (HTTP 499, nginx's "client closed request").
	CodeCanceled Code = "canceled"
	// CodeDeadlineExceeded marks a request that ran past its deadline
	// (HTTP 504).
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeNotFound marks a reference to a job (or other resource) the
	// server does not hold — never assigned, or already garbage-collected
	// after its retention TTL (HTTP 404).
	CodeNotFound Code = "not_found"
	// CodeQueueFull marks a job submission rejected because the scheduler's
	// bounded queue is at capacity — the API's backpressure signal; resubmit
	// after a delay (HTTP 429).
	CodeQueueFull Code = "queue_full"
	// CodeNotReady marks a result fetched before the job reached a terminal
	// state; poll GET /v1/jobs/{id} until Terminal (HTTP 409).
	CodeNotReady Code = "not_ready"
	// CodeNodeUnavailable marks a node that cannot take the request right
	// now — it is draining for shutdown, or a cluster peer needed to serve
	// the request is unreachable. Retry the same request elsewhere (or
	// after the Retry-After delay); the request itself is fine (HTTP 503).
	CodeNodeUnavailable Code = "node_unavailable"
	// CodeInternal marks an unexpected engine failure (HTTP 500).
	CodeInternal Code = "internal"
)

// StatusClientClosedRequest is the non-standard HTTP status reported when
// the client cancels a request mid-evaluation (nginx convention).
const StatusClientClosedRequest = 499

// Error is the structured error of the v1 API: every non-2xx response
// carries one inside an ErrorEnvelope. It implements the error interface,
// so clients recover it with errors.As after any SDK call.
type Error struct {
	// Code classifies the failure; see the Code constants.
	Code Code `json:"code"`
	// Message is a human-readable description. Not meant for matching.
	Message string `json:"message"`
	// Field optionally names the request field that caused an
	// invalid_argument failure.
	Field string `json:"field,omitempty"`
}

// Error renders the code, field and message as one line.
func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s (field %q): %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// HTTPStatus maps the error code to its canonical HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeUnstableSystem, CodeUnsatisfiable:
		return http.StatusUnprocessableEntity
	case CodeCanceled:
		return StatusClientClosedRequest
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeNotFound:
		return http.StatusNotFound
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeNotReady:
		return http.StatusConflict
	case CodeNodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// CodeForStatus recovers the most specific code implied by an HTTP status;
// it is the client-side fallback when a response carries no decodable
// envelope (e.g. a proxy-generated 502).
func CodeForStatus(status int) Code {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusUnprocessableEntity:
		return CodeUnsatisfiable
	case StatusClientClosedRequest:
		return CodeCanceled
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case http.StatusConflict:
		return CodeNotReady
	case http.StatusServiceUnavailable:
		return CodeNodeUnavailable
	default:
		return CodeInternal
	}
}

// ErrorEnvelope is the body of every non-2xx response:
//
//	{"error": {"code": "...", "message": "...", "field": "..."}, "request_id": "..."}
type ErrorEnvelope struct {
	// Error is the structured failure.
	Error *Error `json:"error"`
	// RequestID echoes the X-Request-ID header of the failed request so
	// log lines on both sides of the wire can be joined.
	RequestID string `json:"request_id,omitempty"`
}

// InvalidArgument builds an invalid_argument error for one request field.
func InvalidArgument(field, format string, args ...any) *Error {
	return &Error{Code: CodeInvalidArgument, Field: field, Message: fmt.Sprintf(format, args...)}
}

// Internal builds an internal error from an engine failure.
func Internal(err error) *Error {
	return &Error{Code: CodeInternal, Message: err.Error()}
}

// JobNotFound builds the not_found error for an unknown (or expired) job.
func JobNotFound(id string) *Error {
	return &Error{Code: CodeNotFound, Field: "id", Message: fmt.Sprintf("no job %q (unknown, or expired past the retention TTL)", id)}
}

// QueueFull builds the queue_full backpressure error.
func QueueFull(capacity int) *Error {
	return &Error{Code: CodeQueueFull, Message: fmt.Sprintf("job queue is at its %d-job capacity; resubmit after a delay", capacity)}
}

// NotReady builds the not_ready error for a result fetched before the job
// reached a terminal state.
func NotReady(id, state string) *Error {
	return &Error{Code: CodeNotReady, Message: fmt.Sprintf("job %q is still %s; poll %s until terminal", id, state, JobPath(id))}
}

// NodeUnavailable builds the node_unavailable error: the node cannot take
// the request right now, but the request itself is fine — retry it on
// another node or after a delay.
func NodeUnavailable(format string, args ...any) *Error {
	return &Error{Code: CodeNodeUnavailable, Message: fmt.Sprintf(format, args...)}
}

// Unstable builds the unstable_system error for a configuration violating
// eq. 11, naming the smallest stabilising fleet size when one exists (a
// degenerate configuration — zero availability, say — has none).
func Unstable(sys core.System) *Error {
	msg := fmt.Sprintf("unstable: load %.4g ≥ 1", sys.Load())
	if n, err := core.MinServersForStability(sys); err == nil {
		msg = fmt.Sprintf("%s, need at least %d servers", msg, n)
	}
	return &Error{Code: CodeUnstableSystem, Message: msg}
}

// NodeFailure reports whether an error indicts the contacted node rather
// than the request: transport failures (which never carry an *Error) and
// node_unavailable rejections (the node is draining). Both the cluster
// router and the sharding client use this one predicate to decide when
// to fail over to the next-ranked node — every structured evaluation
// outcome is authoritative and must not be retried elsewhere.
func NodeFailure(err error) bool {
	if err == nil {
		return false
	}
	var ae *Error
	if !errors.As(err, &ae) {
		return true
	}
	return ae.Code == CodeNodeUnavailable
}

// Classify lifts an arbitrary error into the wire taxonomy: an *Error
// passes through unchanged, context cancellation and deadline expiry map
// to their dedicated codes, and everything else is internal.
func Classify(err error) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Message: err.Error()}
	}
	return Internal(err)
}
