package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func TestSystemToSystemDefaults(t *testing.T) {
	sys, err := System{Servers: 12, Lambda: 8}.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.ServiceRate != 1 {
		t.Errorf("mu defaulted to %v, want 1", sys.ServiceRate)
	}
	want := core.System{
		Servers:     12,
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
	if sys.Fingerprint() != want.Fingerprint() {
		t.Errorf("defaults do not match the paper's fitted parameters")
	}
}

func TestSystemToSystemErrors(t *testing.T) {
	cases := []struct {
		name  string
		wire  System
		field string
	}{
		{"no servers", System{Lambda: 8}, "system"},
		{"no lambda", System{Servers: 3}, "system"},
		{"bad operative", System{Servers: 3, Lambda: 1, OpWeights: []float64{0.5}, OpRates: []float64{1, 2}}, "op_weights"},
		{"bad repair", System{Servers: 3, Lambda: 1, RepWeights: []float64{2}, RepRates: []float64{1}}, "rep_weights"},
	}
	for _, c := range cases {
		_, err := c.wire.ToSystem()
		var ae *Error
		if !errors.As(err, &ae) {
			t.Fatalf("%s: error %v is not *api.Error", c.name, err)
		}
		if ae.Code != CodeInvalidArgument || ae.Field != c.field {
			t.Errorf("%s: got code=%s field=%q, want invalid_argument/%q", c.name, ae.Code, ae.Field, c.field)
		}
	}
}

func TestFromSystemRoundTrip(t *testing.T) {
	sys := core.System{
		Servers:     7,
		ArrivalRate: 5.5,
		ServiceRate: 2,
		Operative:   dist.MustHyperExp([]float64{0.3, 0.7}, []float64{1, 2}),
		Repair:      dist.Exp(10),
	}
	back, err := FromSystem(sys).ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != sys.Fingerprint() {
		t.Errorf("round trip changed the system: %s vs %s", back.Fingerprint(), sys.Fingerprint())
	}
}

func TestParseMethod(t *testing.T) {
	for name, want := range map[string]core.Method{
		"":                 core.Spectral,
		"spectral":         core.Spectral,
		"approx":           core.Approximation,
		"approximation":    core.Approximation,
		"mg":               core.MatrixGeometric,
		"matrix-geometric": core.MatrixGeometric,
	} {
		got, err := ParseMethod(name)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMethod("quantum"); err == nil {
		t.Error("ParseMethod accepted an unknown method")
	}
}

func TestSolveRequestValidate(t *testing.T) {
	ok := SolveRequest{System: System{Servers: 3, Lambda: 1}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := SolveRequest{System: System{Servers: 3, Lambda: 1}, Method: "quantum"}
	var ae *Error
	if err := bad.Validate(); !errors.As(err, &ae) || ae.Field != "method" {
		t.Errorf("bad method: got %v", bad.Validate())
	}
}

func TestSweepRequestValidateAndSystems(t *testing.T) {
	req := SweepRequest{
		System: System{Servers: 10},
		Param:  ParamLambda,
		Values: []float64{4, 5, 6},
	}
	systems, err := req.Systems()
	if err != nil {
		t.Fatalf("lambda sweep without base lambda must validate: %v", err)
	}
	for i, sys := range systems {
		if sys.ArrivalRate != req.Values[i] || sys.Servers != 10 {
			t.Errorf("point %d: N=%d λ=%v", i, sys.Servers, sys.ArrivalRate)
		}
	}

	nreq := SweepRequest{System: System{Lambda: 8}, Param: ParamServers, Values: []float64{0, 9, 12}}
	systems, err = nreq.Systems()
	if err != nil {
		t.Fatalf("servers sweep without base servers must validate: %v", err)
	}
	if systems[0].Servers != 0 || systems[2].Servers != 12 {
		t.Errorf("server grid not applied: %d, %d", systems[0].Servers, systems[2].Servers)
	}

	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"bad param", SweepRequest{System: System{Servers: 3, Lambda: 1}, Param: "mu", Values: []float64{1}}},
		{"empty values", SweepRequest{System: System{Servers: 3, Lambda: 1}, Param: ParamLambda}},
		{"fractional servers", SweepRequest{System: System{Lambda: 8}, Param: ParamServers, Values: []float64{9.5}}},
		{"too many points", SweepRequest{System: System{Servers: 3, Lambda: 1}, Param: ParamLambda, Values: make([]float64, MaxSweepPoints+1)}},
	}
	for _, c := range cases {
		var ae *Error
		if err := c.req.Validate(); !errors.As(err, &ae) || ae.Code != CodeInvalidArgument {
			t.Errorf("%s: got %v, want invalid_argument", c.name, c.req.Validate())
		}
	}
}

func TestOptimizeRequestValidate(t *testing.T) {
	sla := OptimizeRequest{System: System{Lambda: 7.5}, TargetResponse: 1.5}
	if err := sla.Validate(); err != nil {
		t.Fatalf("SLA mode without explicit range rejected: %v", err)
	}
	if minN, maxN := sla.Bounds(); minN != 1 || maxN != 64 {
		t.Errorf("SLA bounds = [%d, %d], want [1, 64]", minN, maxN)
	}
	cost := OptimizeRequest{System: System{Lambda: 8}, HoldingCost: 4, ServerCost: 1, MinServers: 9, MaxServers: 17}
	if err := cost.Validate(); err != nil {
		t.Fatalf("cost mode rejected: %v", err)
	}
	for name, bad := range map[string]OptimizeRequest{
		"no objective":   {System: System{Lambda: 8}},
		"inverted range": {System: System{Lambda: 8}, HoldingCost: 4, ServerCost: 1, MinServers: 5, MaxServers: 3},
	} {
		var ae *Error
		if err := bad.Validate(); !errors.As(err, &ae) || ae.Code != CodeInvalidArgument {
			t.Errorf("%s: got %v, want invalid_argument", name, bad.Validate())
		}
	}
}

func TestSimulateRequestValidateAndOptions(t *testing.T) {
	req := SimulateRequest{System: System{Servers: 3, Lambda: 1.8}}
	if err := req.Validate(); err != nil {
		t.Fatalf("minimal simulate request rejected: %v", err)
	}
	if got := req.Options().Replications; got != DefaultReplications {
		t.Errorf("default replications = %d, want %d", got, DefaultReplications)
	}
	for name, bad := range map[string]SimulateRequest{
		"confidence":  {System: System{Servers: 3, Lambda: 1}, Confidence: 2},
		"precision":   {System: System{Servers: 3, Lambda: 1}, RelPrecision: -0.1},
		"neg horizon": {System: System{Servers: 3, Lambda: 1}, Horizon: -5},
		"neg reps":    {System: System{Servers: 3, Lambda: 1}, Replications: -1},
	} {
		var ae *Error
		if err := bad.Validate(); !errors.As(err, &ae) || ae.Code != CodeInvalidArgument {
			t.Errorf("%s: got %v, want invalid_argument", name, bad.Validate())
		}
	}
}

func TestErrorHTTPStatusMapping(t *testing.T) {
	for code, status := range map[Code]int{
		CodeInvalidArgument:  http.StatusBadRequest,
		CodeUnstableSystem:   http.StatusUnprocessableEntity,
		CodeUnsatisfiable:    http.StatusUnprocessableEntity,
		CodeCanceled:         StatusClientClosedRequest,
		CodeDeadlineExceeded: http.StatusGatewayTimeout,
		CodeNodeUnavailable:  http.StatusServiceUnavailable,
		CodeInternal:         http.StatusInternalServerError,
	} {
		if got := (&Error{Code: code}).HTTPStatus(); got != status {
			t.Errorf("%s → %d, want %d", code, got, status)
		}
	}
	// CodeForStatus inverts the mapping (up to the 422 ambiguity).
	for _, status := range []int{400, 499, 500, 503, 504} {
		if got := (&Error{Code: CodeForStatus(status)}).HTTPStatus(); got != status {
			t.Errorf("status %d did not survive the round trip (got %d)", status, got)
		}
	}
}

func TestClassify(t *testing.T) {
	ae := &Error{Code: CodeUnstableSystem, Message: "x"}
	if got := Classify(fmt.Errorf("wrapped: %w", ae)); got != ae {
		t.Errorf("Classify lost the typed error: %v", got)
	}
	if got := Classify(context.Canceled); got.Code != CodeCanceled {
		t.Errorf("canceled → %s", got.Code)
	}
	if got := Classify(fmt.Errorf("deep: %w", context.DeadlineExceeded)); got.Code != CodeDeadlineExceeded {
		t.Errorf("deadline → %s", got.Code)
	}
	if got := Classify(errors.New("boom")); got.Code != CodeInternal {
		t.Errorf("plain error → %s", got.Code)
	}
}

func TestErrorEnvelopeWireShape(t *testing.T) {
	env := ErrorEnvelope{
		Error:     &Error{Code: CodeInvalidArgument, Message: "bad", Field: "lambda"},
		RequestID: "req-1",
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	inner, ok := loose["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object in %s", raw)
	}
	if inner["code"] != "invalid_argument" || inner["field"] != "lambda" {
		t.Errorf("envelope wire form wrong: %s", raw)
	}
	if loose["request_id"] != "req-1" {
		t.Errorf("request_id missing: %s", raw)
	}
}

func TestUnstableError(t *testing.T) {
	sys, err := System{Servers: 2, Lambda: 50}.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	ae := Unstable(sys)
	if ae.Code != CodeUnstableSystem || ae.HTTPStatus() != http.StatusUnprocessableEntity {
		t.Errorf("unstable error misclassified: %+v", ae)
	}
	if math.IsNaN(sys.Load()) || sys.Load() < 1 {
		t.Errorf("test system unexpectedly stable: load %v", sys.Load())
	}
}

func TestFromPerformance(t *testing.T) {
	sys, err := System{Servers: 10, Lambda: 6}.ToSystem()
	if err != nil {
		t.Fatal(err)
	}
	perf, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wire := FromPerformance(perf)
	if wire.MeanJobs != perf.MeanJobs || wire.MeanResponse != perf.MeanResponse ||
		wire.TailDecay != perf.TailDecay || wire.Load != perf.Load {
		t.Errorf("FromPerformance dropped fields: %+v vs %+v", wire, perf)
	}
}
