package api

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// TestPlanRequestBoundsDefaults: a plan is a what-if about the tier, so
// absent bounds default to [1, 64] in every mode — unlike optimize, which
// demands them.
func TestPlanRequestBoundsDefaults(t *testing.T) {
	cases := []struct {
		name    string
		req     PlanRequest
		wantMin int
		wantMax int
	}{
		{"all defaulted", PlanRequest{}, 1, 64},
		{"min only", PlanRequest{MinServers: 5}, 5, 64},
		{"max only", PlanRequest{MaxServers: 10}, 1, 10},
		{"both set", PlanRequest{MinServers: 9, MaxServers: 17}, 9, 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			minN, maxN := tc.req.Bounds()
			if minN != tc.wantMin || maxN != tc.wantMax {
				t.Errorf("Bounds() = [%d, %d], want [%d, %d]", minN, maxN, tc.wantMin, tc.wantMax)
			}
		})
	}
}

// TestPlanRequestValidate is the wire-level acceptance table for
// POST /v1/plan bodies: every rejection must be an *Error with a helpful
// field, and measured mode must not demand a system the server is going
// to supply itself.
func TestPlanRequestValidate(t *testing.T) {
	cost := func(r PlanRequest) PlanRequest {
		r.HoldingCost, r.ServerCost = 4, 1
		return r
	}
	cases := []struct {
		name     string
		req      PlanRequest
		wantCode Code
	}{
		{"cost objective ok", cost(PlanRequest{System: System{Lambda: 2}}), ""},
		{"sla objective ok", PlanRequest{System: System{Lambda: 2}, TargetResponse: 1.5}, ""},
		{"measured needs no system", cost(PlanRequest{Measured: true}), ""},
		{"no objective at all", PlanRequest{System: System{Lambda: 2}}, CodeInvalidArgument},
		{"negative target", PlanRequest{System: System{Lambda: 2}, TargetResponse: -1}, CodeInvalidArgument},
		{"inverted range", cost(PlanRequest{System: System{Lambda: 2}, MinServers: 5, MaxServers: 2}), CodeInvalidArgument},
		{"unknown method", cost(PlanRequest{System: System{Lambda: 2}, Method: "quantum"}), CodeInvalidArgument},
		{"request mode bad system", cost(PlanRequest{System: System{Lambda: -1}}), CodeInvalidArgument},
		{"measured ignores bad system", cost(PlanRequest{Measured: true, System: System{Lambda: -1}}), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if tc.wantCode == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want ok", err)
				}
				return
			}
			var ae *Error
			if !errors.As(err, &ae) || ae.Code != tc.wantCode {
				t.Fatalf("Validate() = %v, want *Error code %q", err, tc.wantCode)
			}
		})
	}
}

// TestPlanRequestResolveObjective pins the solver selection and the
// request-mode base system: the wire Servers field is never the decision
// — it is overwritten so N can be searched.
func TestPlanRequestResolveObjective(t *testing.T) {
	req := PlanRequest{System: System{Lambda: 2, Servers: 7}, Method: "mg", TargetResponse: 2}
	m, minN, maxN, err := req.ResolveObjective()
	if err != nil {
		t.Fatal(err)
	}
	if m != core.MatrixGeometric || minN != 1 || maxN != 64 {
		t.Errorf("ResolveObjective() = (%v, %d, %d)", m, minN, maxN)
	}
	base, err := req.BaseSystem()
	if err != nil {
		t.Fatal(err)
	}
	if base.Servers != 7 {
		t.Errorf("BaseSystem kept Servers = %d, want the wire value 7", base.Servers)
	}
	// A zero wire Servers must still convert (N is the search variable).
	base, err = PlanRequest{System: System{Lambda: 2}, TargetResponse: 2}.BaseSystem()
	if err != nil {
		t.Fatal(err)
	}
	if base.Servers != 1 {
		t.Errorf("defaulted BaseSystem Servers = %d, want 1", base.Servers)
	}
}
