package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzValidate throws arbitrary JSON at every request type's decode +
// Validate path — the exact surface a hostile HTTP body reaches — and
// demands three invariants: no panic, every rejection is a structured
// *Error (the wire contract of the error envelope), and a request that
// validates also resolves to model types without error (Validate and the
// server's Resolve/Systems path can never disagree).
func FuzzValidate(f *testing.F) {
	seeds := []string{
		`{"servers": 12, "lambda": 8}`,
		`{"servers": 4, "lambda": 2, "mu": 1.5, "method": "mg"}`,
		`{"servers": 4, "param": "lambda", "values": [1, 2, 3]}`,
		`{"param": "servers", "lambda": 3, "values": [2, 4, 8]}`,
		`{"param": "servers", "lambda": 3, "values": [2.5]}`,
		`{"lambda": 3, "holding_cost": 4, "server_cost": 1, "min_servers": 1, "max_servers": 16}`,
		`{"lambda": 3, "target_response": 2.5}`,
		`{"servers": 8, "lambda": 3, "replications": 4, "rel_precision": 0.1}`,
		`{"servers": 8, "lambda": 3, "confidence": 1.5}`,
		`{"kind": "sweep", "sweep": {"servers": 4, "param": "lambda", "values": [1]}}`,
		`{"kind": "simulate", "simulate": {"servers": 8, "lambda": 3}}`,
		`{"kind": "optimize"}`,
		`{"op_weights": [0.5, 0.5], "op_rates": [0.1], "servers": 1, "lambda": 0.1}`,
		`{"servers": 1e9, "lambda": -1}`,
		`null`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkStructured := func(what string, err error) {
			t.Helper()
			var ae *Error
			if err != nil && !errors.As(err, &ae) {
				t.Errorf("%s rejected %q with unstructured error %v", what, data, err)
			}
		}
		decode := func(v any) bool {
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			return dec.Decode(v) == nil
		}
		var solve SolveRequest
		if decode(&solve) {
			err := solve.Validate()
			checkStructured("SolveRequest.Validate", err)
			if _, _, rerr := solve.Resolve(); (err == nil) != (rerr == nil) {
				t.Errorf("SolveRequest: Validate err %v but Resolve err %v for %q", err, rerr, data)
			}
		}
		var sweep SweepRequest
		if decode(&sweep) {
			err := sweep.Validate()
			checkStructured("SweepRequest.Validate", err)
			systems, serr := sweep.Systems()
			if (err == nil) != (serr == nil) {
				t.Errorf("SweepRequest: Validate err %v but Systems err %v for %q", err, serr, data)
			}
			if serr == nil && len(systems) != len(sweep.Values) {
				t.Errorf("SweepRequest: %d systems for %d values", len(systems), len(sweep.Values))
			}
		}
		var opt OptimizeRequest
		if decode(&opt) {
			checkStructured("OptimizeRequest.Validate", opt.Validate())
			if minN, maxN := opt.Bounds(); opt.Validate() == nil && (minN < 1 || maxN < minN) {
				t.Errorf("OptimizeRequest: valid request with bad bounds [%d, %d] for %q", minN, maxN, data)
			}
		}
		var sim SimulateRequest
		if decode(&sim) {
			err := sim.Validate()
			checkStructured("SimulateRequest.Validate", err)
			if err == nil && sim.Options().Replications <= 0 {
				t.Errorf("SimulateRequest: valid request yields %d replications for %q", sim.Options().Replications, data)
			}
		}
		var job JobRequest
		if decode(&job) {
			checkStructured("JobRequest.Validate", job.Validate())
		}
	})
}
