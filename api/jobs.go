package api

import "time"

// PathJobs is the asynchronous-job collection endpoint: POST submits a
// job, and the per-job paths (see JobPath, JobResultPath) poll, fetch and
// cancel it. Jobs exist for workloads too large for one synchronous
// request — a 10k-point sweep or a high-precision replicated simulation
// survives connection loss, reports progress, streams partial results and
// can be canceled.
const PathJobs = "/v1/jobs"

// JobPath returns the status/cancel path of one job:
// GET polls its JobStatus, DELETE cancels it.
func JobPath(id string) string { return PathJobs + "/" + id }

// JobResultPath returns the result path of one job: GET fetches its
// JobResult once terminal, or — for sweep jobs, with
// "Accept: application/x-ndjson" — the SweepPoint lines solved so far,
// even while the job is still running.
func JobResultPath(id string) string { return JobPath(id) + "/result" }

// Job kinds accepted by the JobRequest "kind" field. Each names the
// synchronous endpoint whose payload the job runs asynchronously.
const (
	// JobKindSweep runs a SweepRequest (the /v1/sweep payload).
	JobKindSweep = "sweep"
	// JobKindOptimize runs an OptimizeRequest (the /v1/optimize payload).
	JobKindOptimize = "optimize"
	// JobKindSimulate runs a SimulateRequest (the /v1/simulate payload).
	JobKindSimulate = "simulate"
)

// Job states. The machine is queued → running → done|failed|canceled;
// the three right-hand states are terminal.
const (
	// JobStateQueued means the job is waiting for a scheduler worker.
	JobStateQueued = "queued"
	// JobStateRunning means the job is executing on the engine.
	JobStateRunning = "running"
	// JobStateDone means the job finished and its result is fetchable.
	JobStateDone = "done"
	// JobStateFailed means the job's evaluation failed; JobStatus.Error
	// carries the structured failure.
	JobStateFailed = "failed"
	// JobStateCanceled means the job was canceled — by DELETE before or
	// during execution, or by daemon shutdown.
	JobStateCanceled = "canceled"
)

// JobRequest submits one asynchronous job (POST /v1/jobs): Kind selects
// the workload and exactly one matching payload field must be set. The
// payload is validated at submission — a malformed payload is rejected
// synchronously with the same error the synchronous endpoint would give.
type JobRequest struct {
	// Kind selects the workload: sweep, optimize or simulate.
	Kind string `json:"kind"`
	// Sweep is the payload of a sweep job (kind "sweep").
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// Optimize is the payload of an optimize job (kind "optimize").
	Optimize *OptimizeRequest `json:"optimize,omitempty"`
	// Simulate is the payload of a simulate job (kind "simulate").
	Simulate *SimulateRequest `json:"simulate,omitempty"`
}

// NewSweepJob wraps a sweep payload as a job request.
func NewSweepJob(req SweepRequest) JobRequest {
	return JobRequest{Kind: JobKindSweep, Sweep: &req}
}

// NewOptimizeJob wraps an optimize payload as a job request.
func NewOptimizeJob(req OptimizeRequest) JobRequest {
	return JobRequest{Kind: JobKindOptimize, Optimize: &req}
}

// NewSimulateJob wraps a simulate payload as a job request.
func NewSimulateJob(req SimulateRequest) JobRequest {
	return JobRequest{Kind: JobKindSimulate, Simulate: &req}
}

// Validate reports wire-level problems as *Error values: an unknown kind,
// a missing or mismatched payload, or a payload its own Validate rejects.
func (r JobRequest) Validate() error {
	set := 0
	for _, p := range []bool{r.Sweep != nil, r.Optimize != nil, r.Simulate != nil} {
		if p {
			set++
		}
	}
	if set > 1 {
		return InvalidArgument("kind", "job carries %d payloads, want exactly one", set)
	}
	switch r.Kind {
	case JobKindSweep:
		if r.Sweep == nil {
			return InvalidArgument("sweep", "kind %q needs a sweep payload", r.Kind)
		}
		return r.Sweep.Validate()
	case JobKindOptimize:
		if r.Optimize == nil {
			return InvalidArgument("optimize", "kind %q needs an optimize payload", r.Kind)
		}
		return r.Optimize.Validate()
	case JobKindSimulate:
		if r.Simulate == nil {
			return InvalidArgument("simulate", "kind %q needs a simulate payload", r.Kind)
		}
		return r.Simulate.Validate()
	default:
		return InvalidArgument("kind", "unknown job kind %q (want sweep, optimize or simulate)", r.Kind)
	}
}

// DetailNodeRestarting is the JobStatus.Detail value of a job recovered
// from the write-ahead log during boot replay: the node restarted while
// the job was queued or running, and the scheduler has re-queued it to
// resume from its last persisted point.
const DetailNodeRestarting = "node_restarting"

// JobProgress counts a job's work units. Sweep jobs report one unit per
// grid point, advancing as points are solved; optimize and simulate jobs
// report a single unit completed on success.
type JobProgress struct {
	// Total is the number of work units the job will execute.
	Total int `json:"total"`
	// Completed is the number of work units finished so far.
	Completed int `json:"completed"`
}

// JobStatus is the poll view of one job (POST /v1/jobs response and
// GET /v1/jobs/{id}): identity, state-machine position, progress and
// timestamps.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Kind echoes the submitted job kind.
	Kind string `json:"kind"`
	// State is the job's state-machine position; see the JobState
	// constants.
	State string `json:"state"`
	// Progress counts completed work units.
	Progress JobProgress `json:"progress"`
	// CreatedAt is the submission time.
	CreatedAt time.Time `json:"created_at"`
	// StartedAt is set once a scheduler worker picks the job up.
	StartedAt *time.Time `json:"started_at,omitempty"`
	// FinishedAt is set once the job reaches a terminal state.
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Error carries the structured failure of a failed job.
	Error *Error `json:"error,omitempty"`
	// Node is the node that accepted the job and coordinates its
	// execution (clustered daemons only).
	Node string `json:"node,omitempty"`
	// RequestID is the X-Request-ID of the submission that created the
	// job, so a WaitJob poller can correlate its poll responses with the
	// original submission's logs.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the 32-hex-digit distributed trace the submission
	// belonged to — the job's worker-side spans join the same trace, so
	// GET /v1/traces/{trace_id} shows the submission and the execution
	// as one tree, across restarts.
	TraceID string `json:"trace_id,omitempty"`
	// Detail qualifies State with recovery context; see
	// DetailNodeRestarting.
	Detail string `json:"detail,omitempty"`
	// Shards lists a clustered sweep job's environment shards and their
	// planned ring owners, in grid order of first appearance.
	Shards []JobShard `json:"shards,omitempty"`
}

// JobShard is one environment shard of a clustered sweep job: the grid
// points sharing one λ-excluded environment fingerprint, executed
// together on the fingerprint's ring-owner node so the engine's batched
// solver hoists their λ-invariant work once. Node is the planned owner at
// dispatch; a mid-job failover re-scatters the shard's unanswered points
// to the next-ranked live node without updating this plan.
type JobShard struct {
	// Fingerprint is the shard's environment fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Node is the shard's planned ring-owner node.
	Node string `json:"node"`
	// Points counts the grid points in the shard.
	Points int `json:"points"`
	// Completed counts the shard's solved points so far.
	Completed int `json:"completed"`
}

// JobListResponse is the job-history view (GET /v1/jobs): every job the
// scheduler retains — queued, running, terminal-but-unexpired, and
// WAL-recovered — newest first.
type JobListResponse struct {
	// Jobs holds one status per retained job, newest first.
	Jobs []JobStatus `json:"jobs"`
}

// Terminal reports whether the job has reached a final state — done,
// failed or canceled — and will never change again.
func (s JobStatus) Terminal() bool {
	switch s.State {
	case JobStateDone, JobStateFailed, JobStateCanceled:
		return true
	}
	return false
}

// JobResult is the outcome of a done job (GET /v1/jobs/{id}/result):
// exactly one payload field is set, matching the job's kind, and it is
// byte-for-byte the response the synchronous endpoint would have given.
type JobResult struct {
	// ID echoes the job identifier.
	ID string `json:"id"`
	// Kind echoes the job kind and names the set payload field.
	Kind string `json:"kind"`
	// Sweep is the result of a sweep job.
	Sweep *SweepResponse `json:"sweep,omitempty"`
	// Optimize is the result of an optimize job.
	Optimize *OptimizeResponse `json:"optimize,omitempty"`
	// Simulate is the result of a simulate job.
	Simulate *SimulateResponse `json:"simulate,omitempty"`
}

// JobStats reports the job scheduler's population and queue counters
// (part of GET /v1/stats).
type JobStats struct {
	// Queued counts jobs waiting for a worker.
	Queued int `json:"queued"`
	// Running counts jobs currently executing.
	Running int `json:"running"`
	// Done counts retained jobs that finished successfully.
	Done int `json:"done"`
	// Failed counts retained jobs whose evaluation failed.
	Failed int `json:"failed"`
	// Canceled counts retained jobs that were canceled.
	Canceled int `json:"canceled"`
	// QueueCapacity is the configured bound on queued jobs; submissions
	// beyond it are rejected with code queue_full.
	QueueCapacity int `json:"queue_capacity"`
	// Submitted counts accepted submissions since daemon start.
	Submitted uint64 `json:"submitted"`
	// Rejected counts submissions refused with queue_full.
	Rejected uint64 `json:"rejected"`
}
