package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"
)

func jobCode(t *testing.T, err error) Code {
	t.Helper()
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *Error", err)
	}
	return ae.Code
}

func TestJobRequestValidate(t *testing.T) {
	sweep := SweepRequest{System: System{Servers: 4}, Param: ParamLambda, Values: []float64{1, 2}}
	valid := []JobRequest{
		NewSweepJob(sweep),
		NewOptimizeJob(OptimizeRequest{System: System{Lambda: 3}, HoldingCost: 4, ServerCost: 1, MinServers: 1, MaxServers: 8}),
		NewSimulateJob(SimulateRequest{System: System{Servers: 8, Lambda: 3}}),
	}
	for _, req := range valid {
		if err := req.Validate(); err != nil {
			t.Errorf("Validate(%s job) = %v", req.Kind, err)
		}
	}
	invalid := []struct {
		name string
		req  JobRequest
	}{
		{"unknown kind", JobRequest{Kind: "resolve", Sweep: &sweep}},
		{"empty kind", JobRequest{}},
		{"missing payload", JobRequest{Kind: JobKindSweep}},
		{"mismatched payload", JobRequest{Kind: JobKindSimulate, Sweep: &sweep}},
		{"two payloads", JobRequest{Kind: JobKindSweep, Sweep: &sweep, Simulate: &SimulateRequest{}}},
		{"invalid payload", NewSweepJob(SweepRequest{Param: "bogus", Values: []float64{1}})},
	}
	for _, tc := range invalid {
		if err := tc.req.Validate(); jobCode(t, err) != CodeInvalidArgument {
			t.Errorf("%s: want invalid_argument, got %v", tc.name, err)
		}
	}
}

func TestJobStatusTerminal(t *testing.T) {
	terminal := map[string]bool{
		JobStateQueued:   false,
		JobStateRunning:  false,
		JobStateDone:     true,
		JobStateFailed:   true,
		JobStateCanceled: true,
	}
	for state, want := range terminal {
		if got := (JobStatus{State: state}).Terminal(); got != want {
			t.Errorf("Terminal(%s) = %v, want %v", state, got, want)
		}
	}
}

func TestJobErrorCodesRoundTripHTTPStatus(t *testing.T) {
	cases := []struct {
		code   Code
		status int
	}{
		{CodeNotFound, http.StatusNotFound},
		{CodeQueueFull, http.StatusTooManyRequests},
		{CodeNotReady, http.StatusConflict},
	}
	for _, tc := range cases {
		e := &Error{Code: tc.code}
		if got := e.HTTPStatus(); got != tc.status {
			t.Errorf("HTTPStatus(%s) = %d, want %d", tc.code, got, tc.status)
		}
		if got := CodeForStatus(tc.status); got != tc.code {
			t.Errorf("CodeForStatus(%d) = %s, want %s", tc.status, got, tc.code)
		}
	}
}

func TestJobErrorBuilders(t *testing.T) {
	if e := JobNotFound("j1"); e.Code != CodeNotFound || e.Field != "id" {
		t.Errorf("JobNotFound: %+v", e)
	}
	if e := QueueFull(64); e.Code != CodeQueueFull {
		t.Errorf("QueueFull: %+v", e)
	}
	if e := NotReady("j1", JobStateRunning); e.Code != CodeNotReady {
		t.Errorf("NotReady: %+v", e)
	}
}

func TestJobPaths(t *testing.T) {
	if got := JobPath("j42"); got != "/v1/jobs/j42" {
		t.Errorf("JobPath = %q", got)
	}
	if got := JobResultPath("j42"); got != "/v1/jobs/j42/result" {
		t.Errorf("JobResultPath = %q", got)
	}
}

func TestJobStatusJSONOmitsUnsetTimestamps(t *testing.T) {
	started := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	st := JobStatus{ID: "j1", Kind: JobKindSweep, State: JobStateRunning, CreatedAt: started, StartedAt: &started}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["finished_at"]; ok {
		t.Errorf("finished_at serialised on a running job: %s", b)
	}
	if _, ok := m["started_at"]; !ok {
		t.Errorf("started_at missing: %s", b)
	}
	var back JobStatus
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != st.ID || back.State != st.State || !back.StartedAt.Equal(started) {
		t.Errorf("round trip %+v", back)
	}
}
