package api

import (
	"repro/internal/core"
)

// PathPlan is the capacity-planning endpoint (POST): the same two
// provisioning questions as PathOptimize, but asked about the serving
// tier itself. In request mode the caller supplies the rates; in
// measured mode the server fills them from its own fitted self-model —
// cluster-aggregated across live nodes when clustering is enabled — so
// "how many servers should this deployment run?" needs no parameters at
// all.
const PathPlan = "/v1/plan"

// RetryAfterQueueFull is the static Retry-After value (seconds) stamped
// on queue_full 429 rejections when no admission self-model exists yet
// (first window after boot, or -admission off). It guarantees the SDK's
// retry loop always receives a hint — a hintless 429 fails fast and
// strands the caller — while the model-derived drain estimate replaces
// it the moment one is available.
const RetryAfterQueueFull = 1

// Plan sources reported by PlanResponse.Source.
const (
	// PlanSourceRequest means the rates came from the request body.
	PlanSourceRequest = "request"
	// PlanSourceMeasured means the rates came from the serving tier's own
	// fitted self-model (aggregated across the cluster when enabled).
	PlanSourceMeasured = "measured"
)

// PlanRates is the wire form of the rate quadruple a plan was computed
// from — the measured counterpart of the paper's (λ, µ, ξ, η).
type PlanRates struct {
	// Lambda is the arrival rate λ, submissions per second (cluster-wide
	// total in measured cluster mode).
	Lambda float64 `json:"lambda"`
	// Mu is the per-server service rate µ, completions per second.
	Mu float64 `json:"mu"`
	// Xi is the per-server breakdown rate ξ, events per second.
	Xi float64 `json:"xi"`
	// Eta is the per-server repair rate η, events per second.
	Eta float64 `json:"eta"`
}

// PlanRequest asks a provisioning question about the serving tier
// (POST /v1/plan): with TargetResponse set, the smallest N meeting the
// SLA; otherwise the N in [MinServers, MaxServers] minimising
// C = c₁L + c₂N. With Measured set the embedded system's rates are
// ignored and the server's own fitted self-model supplies them; the
// request then only carries the objective.
type PlanRequest struct {
	System
	// Measured switches the rate source from the request body to the
	// serving tier's fitted self-model. Requires -admission on the server.
	Measured bool `json:"measured,omitempty"`
	// Method selects the solver: spectral (default), approx or mg.
	Method string `json:"method,omitempty"`
	// HoldingCost is c₁ of the cost objective.
	HoldingCost float64 `json:"holding_cost,omitempty"`
	// ServerCost is c₂ of the cost objective.
	ServerCost float64 `json:"server_cost,omitempty"`
	// MinServers is the bottom of the searched fleet-size range
	// (default 1).
	MinServers int `json:"min_servers,omitempty"`
	// MaxServers is the top of the searched range (default 64).
	MaxServers int `json:"max_servers,omitempty"`
	// TargetResponse switches to SLA mode: find the smallest N with
	// W ≤ TargetResponse.
	TargetResponse float64 `json:"target_response,omitempty"`
}

// Bounds returns the effective search range. Unlike optimize, plan
// defaults absent bounds to [1, 64] in every mode: a plan is a what-if
// about the tier, not a hand-built experiment, so it should answer with
// no boilerplate.
func (r PlanRequest) Bounds() (minN, maxN int) {
	minN, maxN = r.MinServers, r.MaxServers
	if minN == 0 {
		minN = 1
	}
	if maxN == 0 {
		maxN = 64
	}
	return minN, maxN
}

// ResolveObjective validates the mode-independent fields — solver,
// objective, range — and returns the model types. The base system is
// resolved separately (BaseSystem in request mode; the server's measured
// rates otherwise). Failures are *Error values.
func (r PlanRequest) ResolveObjective() (m core.Method, minN, maxN int, err error) {
	m, err = ParseMethod(r.Method)
	if err != nil {
		return 0, 0, 0, err
	}
	if r.TargetResponse < 0 {
		return 0, 0, 0, InvalidArgument("target_response", "target response %v must be positive", r.TargetResponse)
	}
	if r.TargetResponse == 0 && r.HoldingCost <= 0 && r.ServerCost <= 0 {
		return 0, 0, 0, InvalidArgument("target_response", "plan needs holding_cost/server_cost or target_response")
	}
	minN, maxN = r.Bounds()
	if minN < 1 || maxN < minN {
		return 0, 0, 0, InvalidArgument("min_servers", "invalid server range [%d, %d]", minN, maxN)
	}
	return m, minN, maxN, nil
}

// BaseSystem converts the embedded system for a request-mode plan: the
// wire Servers field is ignored (N is the decision variable).
func (r PlanRequest) BaseSystem() (core.System, error) {
	wire := r.System
	if wire.Servers == 0 {
		wire.Servers = 1
	}
	return wire.ToSystem()
}

// Validate reports wire-level problems as *Error values. In measured
// mode the embedded system is not consulted — the server supplies it.
func (r PlanRequest) Validate() error {
	_, _, _, err := r.ResolveObjective()
	if err != nil {
		return err
	}
	if !r.Measured {
		_, err = r.BaseSystem()
	}
	return err
}

// PlanResponse reports the recommended fleet size and the model it was
// derived from.
type PlanResponse struct {
	// Objective restates the solved question in human-readable form.
	Objective string `json:"objective"`
	// Source reports where the rates came from: PlanSourceRequest or
	// PlanSourceMeasured.
	Source string `json:"source"`
	// Nodes counts the cluster nodes whose measured rates were aggregated
	// (1 standalone; 0 in request mode).
	Nodes int `json:"nodes,omitempty"`
	// Rates is the rate quadruple the plan was computed from.
	Rates PlanRates `json:"rates"`
	// Servers is the recommended (optimal or smallest satisfying) N.
	Servers int `json:"servers"`
	// Cost is the objective value at Servers (cost mode only).
	Cost *float64 `json:"cost,omitempty"`
	// Perf is the predicted steady-state metrics block at Servers.
	Perf Performance `json:"perf"`
	// Availability is η/(ξ+η) of the planned system.
	Availability float64 `json:"availability"`
	// MinStable is the smallest N satisfying the ergodicity condition
	// (eq. 11) — the floor under any recommendation.
	MinStable int `json:"min_stable"`
}
