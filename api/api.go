// Package api is the versioned wire contract of the mus-serve evaluation
// daemon: every request and response body of the v1 HTTP API is defined
// here once, shared by the server handlers (cmd/mus-serve), the Go SDK
// (package client), the CLIs' remote modes and every test — so there is
// exactly one schema to integrate against.
//
// The package owns three things:
//
//   - the DTOs — System (the common system object every POST embeds),
//     Performance, CI, and one request/response pair per endpoint — each
//     request carrying a Validate method that reports wire-level problems
//     as structured *Error values;
//   - the error taxonomy — Error{Code, Message, Field} with
//     machine-readable codes, the ErrorEnvelope body of every non-2xx
//     response, and the Code↔HTTP-status mapping;
//   - the converters to the model layer — System.ToSystem,
//     FromSystem, FromPerformance, ParseMethod — so handlers and clients
//     never hand-roll translations.
//
// Sweeps stream: a /v1/sweep request sent with "Accept:
// application/x-ndjson" is answered as newline-delimited JSON, one
// SweepPoint per line flushed as soon as that grid point is solved,
// instead of one buffered SweepResponse.
package api

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

// The v1 endpoint paths served by mus-serve.
const (
	// PathSolve is the steady-state evaluation endpoint (POST).
	PathSolve = "/v1/solve"
	// PathSweep is the grid-evaluation endpoint (POST); it also streams
	// NDJSON when asked to (see ContentTypeNDJSON).
	PathSweep = "/v1/sweep"
	// PathOptimize is the provisioning-optimisation endpoint (POST).
	PathOptimize = "/v1/optimize"
	// PathSimulate is the replicated-simulation endpoint (POST).
	PathSimulate = "/v1/simulate"
	// PathStats is the engine-counters endpoint (GET).
	PathStats = "/v1/stats"
	// PathHealthz is the load-balancer readiness probe (GET).
	PathHealthz = "/v1/healthz"
	// PathMetrics is the Prometheus scrape target (GET): the node's full
	// metric registry in the text exposition format. Unlike the /v1 JSON
	// endpoints it is unversioned — the exposition format carries its own
	// version in the Content-Type.
	PathMetrics = "/metrics"
)

// Wire media types and headers.
const (
	// ContentTypeJSON is the default request and response body type.
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON, sent as an Accept header on /v1/sweep, switches
	// the response to newline-delimited JSON: one SweepPoint per line,
	// flushed as each grid point completes.
	ContentTypeNDJSON = "application/x-ndjson"
	// HeaderRequestID carries the request correlation ID. The server
	// generates one when the client sends none, echoes it on every
	// response, and embeds it in error envelopes.
	HeaderRequestID = "X-Request-ID"
	// HeaderJobState accompanies a partial NDJSON job-result response
	// (GET /v1/jobs/{id}/result with Accept: application/x-ndjson): the
	// job's state at snapshot time, so a reader can tell a complete stream
	// ("done") from a mid-run one ("running").
	HeaderJobState = "X-Job-State"
)

// Method names accepted by the "method" request field. ParseMethod also
// accepts the aliases "approximation" and "matrix-geometric".
const (
	// MethodSpectral selects the exact spectral-expansion solution
	// (the default when the field is empty).
	MethodSpectral = "spectral"
	// MethodApprox selects the geometric heavy-traffic approximation.
	MethodApprox = "approx"
	// MethodMG selects the matrix-geometric (R-matrix) solution.
	MethodMG = "mg"
)

// MaxSweepPoints bounds the values grid of one sweep request.
const MaxSweepPoints = 10000

// DefaultReplications is the replication count a simulate request gets
// when it does not name one — enough for cross-replication Student-t
// confidence intervals on every estimate.
const DefaultReplications = 8

// ParseMethod resolves a wire method name to the core solver selector.
// The empty string means spectral.
func ParseMethod(name string) (core.Method, error) {
	switch name {
	case "", MethodSpectral:
		return core.Spectral, nil
	case MethodApprox, "approximation":
		return core.Approximation, nil
	case MethodMG, "matrix-geometric":
		return core.MatrixGeometric, nil
	default:
		return 0, InvalidArgument("method", "unknown method %q (want spectral, approx or mg)", name)
	}
}

// System is the wire form of core.System — the common system object every
// POST body embeds. Omitted distribution fields default to the paper's
// fitted Sun parameters (H2 operative periods with C² ≈ 4.6, exponential
// repairs with rate 25) and Mu defaults to 1, so a minimal request is just
// {"servers": N, "lambda": λ}.
type System struct {
	// Servers is N, the number of parallel servers (≥ 1).
	Servers int `json:"servers"`
	// Lambda is the Poisson arrival rate λ (> 0).
	Lambda float64 `json:"lambda"`
	// Mu is the service rate µ of one operative server (default 1).
	Mu float64 `json:"mu,omitempty"`
	// OpWeights and OpRates describe the hyperexponential operative-period
	// distribution (phase probabilities α and rates ξ).
	OpWeights []float64 `json:"op_weights,omitempty"`
	// OpRates are the operative-period phase rates.
	OpRates []float64 `json:"op_rates,omitempty"`
	// RepWeights and RepRates describe the hyperexponential repair-period
	// distribution.
	RepWeights []float64 `json:"rep_weights,omitempty"`
	// RepRates are the repair-period phase rates.
	RepRates []float64 `json:"rep_rates,omitempty"`
}

// ToSystem converts the wire form to a validated core.System, applying
// the documented defaults. Failures are *Error values with Field set.
func (s System) ToSystem() (core.System, error) {
	sys := core.System{
		Servers:     s.Servers,
		ArrivalRate: s.Lambda,
		ServiceRate: s.Mu,
	}
	if sys.ServiceRate == 0 {
		sys.ServiceRate = 1
	}
	var err error
	switch {
	case len(s.OpWeights) == 0 && len(s.OpRates) == 0:
		sys.Operative = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	default:
		sys.Operative, err = dist.NewHyperExp(s.OpWeights, s.OpRates)
		if err != nil {
			return core.System{}, InvalidArgument("op_weights", "operative distribution: %v", err)
		}
	}
	switch {
	case len(s.RepWeights) == 0 && len(s.RepRates) == 0:
		sys.Repair = dist.Exp(25)
	default:
		sys.Repair, err = dist.NewHyperExp(s.RepWeights, s.RepRates)
		if err != nil {
			return core.System{}, InvalidArgument("rep_weights", "repair distribution: %v", err)
		}
	}
	if err := sys.Validate(); err != nil {
		return core.System{}, InvalidArgument("system", "%v", err)
	}
	return sys, nil
}

// FromSystem converts a model system to its wire form — how CLIs and
// other Go callers that already hold a core.System build requests.
func FromSystem(sys core.System) System {
	s := System{
		Servers: sys.Servers,
		Lambda:  sys.ArrivalRate,
		Mu:      sys.ServiceRate,
	}
	if sys.Operative != nil {
		s.OpWeights = append([]float64(nil), sys.Operative.Weights...)
		s.OpRates = append([]float64(nil), sys.Operative.Rates...)
	}
	if sys.Repair != nil {
		s.RepWeights = append([]float64(nil), sys.Repair.Weights...)
		s.RepRates = append([]float64(nil), sys.Repair.Rates...)
	}
	return s
}

// Performance is the wire form of core.Performance — the steady-state
// metrics block of solve, sweep and optimize responses.
type Performance struct {
	// MeanJobs is L, the mean number of jobs present.
	MeanJobs float64 `json:"mean_jobs"`
	// MeanResponse is W = L/λ (Little's law).
	MeanResponse float64 `json:"mean_response"`
	// TailDecay is z_s, the geometric decay rate of the queue-length tail.
	TailDecay float64 `json:"tail_decay"`
	// Load is the offered load relative to capacity (stable iff < 1).
	Load float64 `json:"load"`
}

// FromPerformance converts solver output to its wire form.
func FromPerformance(p *core.Performance) Performance {
	return Performance{
		MeanJobs:     p.MeanJobs,
		MeanResponse: p.MeanResponse,
		TailDecay:    p.TailDecay,
		Load:         p.Load,
	}
}

// CI is one point estimate with its confidence half-width: the true value
// lies in [Mean−HalfWidth, Mean+HalfWidth] at the response's confidence
// level.
type CI struct {
	// Mean is the point estimate.
	Mean float64 `json:"mean"`
	// HalfWidth brackets Mean at the enclosing response's confidence.
	HalfWidth float64 `json:"half_width"`
}

// String renders the interval as "mean ± half-width".
func (c CI) String() string { return fmt.Sprintf("%.6g ± %.3g", c.Mean, c.HalfWidth) }
