// Package repro is a complete Go reproduction of J. Palmer & I. Mitrani,
// "Empirical and Analytical Evaluation of Systems with Multiple Unreliable
// Servers" (University of Newcastle CS-TR-936; DSN 2006).
//
// The library models a cluster of N parallel servers serving a Poisson
// stream from one unbounded queue, where every server alternates between
// hyperexponentially distributed operative periods and repair periods. It
// contains:
//
//   - internal/core — the public model: System, exact/approximate solvers,
//     cost optimisation, capacity planning and canonical fingerprints;
//   - internal/service — the concurrent evaluation engine: a bounded
//     worker pool with an LRU solver cache keyed by System.Fingerprint,
//     shared by the figures package, the benchmarks and mus-serve;
//   - internal/qbd — the spectral-expansion solver (paper §3.1), the
//     geometric heavy-traffic approximation (§3.2), a matrix-geometric
//     baseline and a truncated-chain oracle;
//   - internal/markov — the operational-mode state space (eq. 9, 12);
//   - internal/dist, internal/stats, internal/optimize — the §2 statistics:
//     hyperexponential fitting, histograms, Kolmogorov–Smirnov testing;
//   - internal/dataset — a synthetic stand-in for the proprietary Sun
//     breakdown log;
//   - internal/sim — a discrete-event simulator used for the C² = 0 point
//     of Figure 6 and as an independent oracle;
//   - internal/figures — one experiment per paper figure, with every
//     analytical sweep routed through the evaluation engine;
//   - cmd/* — CLI tools, including the mus-serve HTTP daemon;
//     examples/* — runnable walkthroughs.
//
// bench_test.go regenerates every figure of the evaluation as a Go
// benchmark; see EXPERIMENTS.md for the paper-vs-measured record.
package repro
