// Package repro is a complete Go reproduction of J. Palmer & I. Mitrani,
// "Empirical and Analytical Evaluation of Systems with Multiple Unreliable
// Servers" (University of Newcastle CS-TR-936; DSN 2006), grown into a
// concurrent evaluation service.
//
// The library models a cluster of N parallel servers serving a Poisson
// stream from one unbounded queue, where every server alternates between
// hyperexponentially distributed operative periods and repair periods. It
// contains the wire layer, two subsystems and the numerical substrate
// beneath them:
//
//   - api — the versioned wire contract of the mus-serve daemon: every
//     request/response DTO, the structured Error taxonomy with
//     machine-readable codes, request validation, and converters to
//     internal/core — one schema shared by server, SDK, CLIs and tests;
//   - client — the Go SDK: a typed, context-aware method per endpoint,
//     retries on 5xx honouring Retry-After, errors.As-recoverable
//     *api.Error failures, NDJSON sweep streaming (SweepStream), the
//     asynchronous-job surface (SubmitJob, WaitJob, JobSweepPartial,
//     CancelJob), and client-side cluster sharding (NewCluster) that
//     sends each request straight to its ring owner;
//   - internal/core — the public model: System, exact/approximate solvers,
//     replicated simulation with confidence intervals (SimResult), cost
//     optimisation, capacity planning and canonical fingerprints;
//   - internal/service — the evaluation engine: a bounded worker pool with
//     an LRU solver cache keyed by System.Fingerprint and a separate
//     simulation cache keyed by (fingerprint, seed, precision), shared by
//     the figures package, the benchmarks and mus-serve;
//   - internal/service/jobs — the asynchronous job scheduler over the
//     engine: durable-in-memory records with a queued → running →
//     done/failed/canceled state machine, progress counters, a bounded
//     queue with queue_full backpressure, per-job cancelation, graceful
//     Drain and TTL garbage collection;
//   - internal/cluster — the multi-node tier federating N mus-serve
//     daemons into one sharded service: a rendezvous hash ring over
//     System.Fingerprint (internal/cluster/ring), a health-probed node
//     registry with up/down state, a forwarding proxy for single-point
//     requests and point-wise sweep scatter/gather with deterministic
//     failover — same fingerprint, same node, so each node's solver
//     cache holds its shard of the keyspace instead of a copy of all of
//     it;
//   - internal/qbd — the spectral-expansion solver (paper §3.1), the
//     geometric heavy-traffic approximation (§3.2), a matrix-geometric
//     baseline and a truncated-chain oracle;
//   - internal/markov — the operational-mode state space (eq. 9, 12);
//   - internal/dist, internal/stats, internal/optimize — the §2 statistics
//     (hyperexponential fitting, histograms, Kolmogorov–Smirnov) plus the
//     Student-t confidence intervals behind the replicated simulator;
//   - internal/dataset — a synthetic stand-in for the proprietary Sun
//     breakdown log;
//   - internal/sim — the discrete-event simulator: single runs (Figure 6's
//     C² = 0 point) and the parallel independent-replications engine with
//     per-replication RNG streams and relative-precision stopping;
//   - internal/figures — one experiment per paper figure, with every
//     analytical sweep routed through the evaluation engine and a
//     SimAgreement experiment checking CI coverage of the exact solution;
//   - cmd/* — CLI tools (mus-solve and mus-sim accept -server to run
//     against a remote daemon through the client SDK, and -async to route
//     large workloads through the job API) and the mus-serve HTTP daemon
//     (/v1/solve, /v1/sweep with NDJSON streaming, /v1/optimize,
//     /v1/simulate, the /v1/jobs asynchronous job API, /v1/stats,
//     /v1/cluster, /v1/healthz; -peers/-node-id federate daemons into a
//     sharded cluster, and SIGTERM drains gracefully within
//     -drain-timeout);
//     examples/* — runnable walkthroughs; tools/* — the CI documentation
//     gates.
//
// bench_test.go regenerates every figure of the evaluation as a Go
// benchmark, including BenchmarkReplications (parallel simulation
// speedup).
//
// Repository guides: ARCHITECTURE.md (package map and request data flow),
// EXPERIMENTS.md (paper-vs-measured record, simulated-vs-analytical
// agreement), ROADMAP.md (direction), README.md (usage and the full
// mus-serve API reference).
package repro
