// Package repro is a complete Go reproduction of J. Palmer & I. Mitrani,
// "Empirical and Analytical Evaluation of Systems with Multiple Unreliable
// Servers" (University of Newcastle CS-TR-936; DSN 2006), grown into a
// concurrent evaluation service.
//
// The library models a cluster of N parallel servers serving a Poisson
// stream from one unbounded queue, where every server alternates between
// hyperexponentially distributed operative periods and repair periods. It
// contains two subsystems and the numerical substrate beneath them:
//
//   - internal/core — the public model: System, exact/approximate solvers,
//     replicated simulation with confidence intervals (SimResult), cost
//     optimisation, capacity planning and canonical fingerprints;
//   - internal/service — the evaluation engine: a bounded worker pool with
//     an LRU solver cache keyed by System.Fingerprint and a separate
//     simulation cache keyed by (fingerprint, seed, precision), shared by
//     the figures package, the benchmarks and mus-serve;
//   - internal/qbd — the spectral-expansion solver (paper §3.1), the
//     geometric heavy-traffic approximation (§3.2), a matrix-geometric
//     baseline and a truncated-chain oracle;
//   - internal/markov — the operational-mode state space (eq. 9, 12);
//   - internal/dist, internal/stats, internal/optimize — the §2 statistics
//     (hyperexponential fitting, histograms, Kolmogorov–Smirnov) plus the
//     Student-t confidence intervals behind the replicated simulator;
//   - internal/dataset — a synthetic stand-in for the proprietary Sun
//     breakdown log;
//   - internal/sim — the discrete-event simulator: single runs (Figure 6's
//     C² = 0 point) and the parallel independent-replications engine with
//     per-replication RNG streams and relative-precision stopping;
//   - internal/figures — one experiment per paper figure, with every
//     analytical sweep routed through the evaluation engine and a
//     SimAgreement experiment checking CI coverage of the exact solution;
//   - cmd/* — CLI tools, including the mus-serve HTTP daemon
//     (/v1/solve, /v1/sweep, /v1/optimize, /v1/simulate, /v1/stats);
//     examples/* — runnable walkthroughs; tools/* — the CI documentation
//     gates.
//
// bench_test.go regenerates every figure of the evaluation as a Go
// benchmark, including BenchmarkReplications (parallel simulation
// speedup).
//
// Repository guides: ARCHITECTURE.md (package map and request data flow),
// EXPERIMENTS.md (paper-vs-measured record, simulated-vs-analytical
// agreement), ROADMAP.md (direction), README.md (usage and the full
// mus-serve API reference).
package repro
