package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKolmogorovCDFKnownValues(t *testing.T) {
	// Known asymptotic critical constants: K(1.2238) ≈ 0.90, K(1.3581) ≈
	// 0.95, K(1.6276) ≈ 0.99.
	cases := []struct{ lambda, want float64 }{
		{1.2238, 0.90},
		{1.3581, 0.95},
		{1.6276, 0.99},
	}
	for _, c := range cases {
		if got := KolmogorovCDF(c.lambda); math.Abs(got-c.want) > 0.001 {
			t.Errorf("K(%v) = %v, want %v", c.lambda, got, c.want)
		}
	}
	if KolmogorovCDF(0) != 0 {
		t.Error("K(0) must be 0")
	}
	if got := KolmogorovCDF(5); math.Abs(got-1) > 1e-12 {
		t.Errorf("K(5) = %v, want ≈1", got)
	}
}

func TestCriticalValuesMatchPaper(t *testing.T) {
	// Paper §2 quotes, for 50 points: 0.19 at 5% and 0.23 at 1%, 0.17 at
	// 10%; for 40 points: 0.21 at 5% and 0.19 at 10%.
	r50 := KSResult{NPoints: 50}
	if cv := r50.CriticalValue(0.05); math.Abs(cv-0.19) > 0.005 {
		t.Errorf("50 pts, 5%%: %v, paper says 0.19", cv)
	}
	if cv := r50.CriticalValue(0.01); math.Abs(cv-0.23) > 0.005 {
		t.Errorf("50 pts, 1%%: %v, paper says 0.23", cv)
	}
	if cv := r50.CriticalValue(0.10); math.Abs(cv-0.17) > 0.005 {
		t.Errorf("50 pts, 10%%: %v, paper says 0.17", cv)
	}
	r40 := KSResult{NPoints: 40}
	if cv := r40.CriticalValue(0.05); math.Abs(cv-0.21) > 0.005 {
		t.Errorf("40 pts, 5%%: %v, paper says 0.21", cv)
	}
	if cv := r40.CriticalValue(0.10); math.Abs(cv-0.19) > 0.005 {
		t.Errorf("40 pts, 10%%: %v, paper says 0.19", cv)
	}
}

func TestPaperKSDecisions(t *testing.T) {
	// The paper's reported statistics and decisions:
	//   exp fit to operative periods: D = 0.4742 at 50 pts → strongly rejected
	//   H2 fit to operative periods:  D = 0.1412 at 50 pts → passes 5% and 10%
	//   H2 fit to inoperative:        D = 0.1832 at 40 pts → passes 5% and 10%
	expOps := KSResult{D: 0.4742, NPoints: 50}
	if expOps.Pass(0.05) || expOps.Pass(0.01) {
		t.Error("exponential fit must be rejected at 5% and 1%")
	}
	h2Ops := KSResult{D: 0.1412, NPoints: 50}
	if !h2Ops.Pass(0.05) || !h2Ops.Pass(0.10) {
		t.Error("H2 operative fit must pass at 5% and 10%")
	}
	h2Out := KSResult{D: 0.1832, NPoints: 40}
	if !h2Out.Pass(0.05) || !h2Out.Pass(0.10) {
		t.Error("H2 inoperative fit must pass at 5% and 10%")
	}
}

func TestKolmogorovSmirnovSelfFit(t *testing.T) {
	// A large exponential sample against its own CDF: small D, passes.
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	h, err := NewHistogram(data, 50, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := KolmogorovSmirnov(h, func(x float64) float64 { return 1 - math.Exp(-x) })
	if res.NPoints != 50 {
		t.Fatalf("NPoints = %d", res.NPoints)
	}
	if !res.Pass(0.05) {
		t.Errorf("self-fit should pass: D = %v, crit = %v", res.D, res.CriticalValue(0.05))
	}
}

func TestKolmogorovSmirnovDetectsWrongMean(t *testing.T) {
	// Exponential(1) data against Exponential(3) hypothesis: rejected.
	rng := rand.New(rand.NewSource(10))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	h, err := NewHistogram(data, 50, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := KolmogorovSmirnov(h, func(x float64) float64 { return 1 - math.Exp(-x/3) })
	if res.Pass(0.05) {
		t.Errorf("wrong-mean fit should fail: D = %v", res.D)
	}
}

func TestKolmogorovSmirnovPoints(t *testing.T) {
	xs := []float64{1, 2, 3}
	emp := []float64{0.3, 0.6, 1.0}
	res, err := KolmogorovSmirnovPoints(xs, emp, func(x float64) float64 { return x / 3 })
	if err != nil {
		t.Fatal(err)
	}
	want := math.Abs(2.0/3 - 0.6) // max deviation at x=2
	if math.Abs(res.D-want) > 1e-12 {
		t.Errorf("D = %v, want %v", res.D, want)
	}
	if _, err := KolmogorovSmirnovPoints(xs, emp[:2], nil); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestPValueConsistentWithPass(t *testing.T) {
	r := KSResult{D: 0.1412, NPoints: 50}
	p := r.PValue()
	if p < 0.10 {
		t.Errorf("p-value %v inconsistent with passing at 10%%", p)
	}
	r2 := KSResult{D: 0.4742, NPoints: 50}
	if p2 := r2.PValue(); p2 > 0.01 {
		t.Errorf("p-value %v inconsistent with strong rejection", p2)
	}
}

func TestCriticalValueDegenerate(t *testing.T) {
	if !math.IsNaN((KSResult{NPoints: 0}).CriticalValue(0.05)) {
		t.Error("0 points must give NaN")
	}
	if !math.IsNaN((KSResult{NPoints: 10}).CriticalValue(0)) {
		t.Error("alpha 0 must give NaN")
	}
}
