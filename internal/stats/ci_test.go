package stats

import (
	"math"
	"testing"
)

// Reference two-sided 95% critical values t_{df, 0.975} (standard tables).
func TestTQuantileAgainstTables(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.7062},
		{2, 4.3027},
		{4, 2.7764},
		{9, 2.2622},
		{19, 2.0930},
		{29, 2.0452},
		{99, 1.9842},
		{999, 1.9623},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.df)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("TQuantile(0.975, %d) = %.5f, want %.4f", c.df, got, c.want)
		}
	}
	// 99% two-sided, df = 9: 3.2498.
	if got := TQuantile(0.995, 9); math.Abs(got-3.2498) > 5e-4 {
		t.Errorf("TQuantile(0.995, 9) = %.5f, want 3.2498", got)
	}
	// Symmetry and the median.
	if got := TQuantile(0.5, 7); got != 0 {
		t.Errorf("TQuantile(0.5, 7) = %v, want 0", got)
	}
	if lo, hi := TQuantile(0.025, 9), TQuantile(0.975, 9); math.Abs(lo+hi) > 1e-9 {
		t.Errorf("quantiles not symmetric: %v vs %v", lo, hi)
	}
}

func TestMeanCI(t *testing.T) {
	// Known sample: mean 5, sd 1, n = 4 → half-width t_{3,0.975}·1/2 =
	// 3.1824/2.
	sample := []float64{4, 5, 5, 6}
	ci, err := MeanCI(sample, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 5 {
		t.Errorf("mean %v, want 5", ci.Mean)
	}
	sd := math.Sqrt(2.0 / 3.0)
	want := TQuantile(0.975, 3) * sd / 2
	if math.Abs(ci.HalfWidth-want) > 1e-12 {
		t.Errorf("half-width %v, want %v", ci.HalfWidth, want)
	}
	if !ci.Contains(5) || ci.Contains(5+ci.HalfWidth*1.01) {
		t.Error("Contains misbehaves at the interval edges")
	}
	if math.Abs(ci.Relative()-ci.HalfWidth/5) > 1e-15 {
		t.Errorf("Relative() = %v", ci.Relative())
	}
	if ci.Lo() != 5-ci.HalfWidth || ci.Hi() != 5+ci.HalfWidth {
		t.Error("Lo/Hi inconsistent with Mean ± HalfWidth")
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Error("single observation must error")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Error("level outside (0,1) must error")
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x²(3−2x).
	x := 0.3
	if got, want := regIncBeta(2, 2, x), x*x*(3-2*x); math.Abs(got-want) > 1e-12 {
		t.Errorf("I_0.3(2,2) = %v, want %v", got, want)
	}
}
