// Package stats implements the empirical machinery of Palmer & Mitrani §2:
// equal-width histograms with the paper's density and moment estimators
// (eqs. 1–3), raw-sample statistics, and the Kolmogorov–Smirnov
// goodness-of-fit test (eq. 4) with asymptotic critical values. It also
// provides the Student-t confidence intervals (MeanCI, TQuantile) that the
// replicated simulator uses to bracket its estimates of L and W across
// independent replications.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Histogram groups observations into equal-width intervals over [Lo, Hi],
// mirroring the paper's construction: "the observed range of values was
// divided into intervals of equal length". Observations outside the range
// are counted in Outside and excluded from the estimators.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	N       int // observations inside [Lo, Hi]
	Outside int // observations dropped as out of range
}

// NewHistogram bins data into the given number of equal-width intervals over
// [lo, hi].
func NewHistogram(data []float64, bins int, lo, hi float64) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins %d < 1", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid range [%v, %v]", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range data {
		if x < lo || x > hi || math.IsNaN(x) {
			h.Outside++
			continue
		}
		i := int((x - lo) / w)
		if i == bins { // x == hi lands in the last bin
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h, nil
}

// HistogramFromData bins data over [0, max(data)], the natural range for the
// non-negative durations in the breakdown logs.
func HistogramFromData(data []float64, bins int) (*Histogram, error) {
	if len(data) == 0 {
		return nil, errors.New("stats: empty data")
	}
	mx := data[0]
	for _, x := range data {
		if x > mx {
			mx = x
		}
	}
	if mx <= 0 {
		return nil, fmt.Errorf("stats: data maximum %v not positive", mx)
	}
	return NewHistogram(data, bins, 0, mx)
}

// Width returns the common interval length δ.
func (h *Histogram) Width() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// Midpoints returns the interval mid-points x_i.
func (h *Histogram) Midpoints() []float64 {
	w := h.Width()
	xs := make([]float64, len(h.Counts))
	for i := range xs {
		xs[i] = h.Lo + (float64(i)+0.5)*w
	}
	return xs
}

// UpperEdges returns the interval right end-points. The empirical CDF value
// F̃(x_i) = Σ_{j≤i} p_j (eq. 3) is the mass up to the i-th interval's right
// edge, so goodness-of-fit comparisons must evaluate the hypothetical CDF
// there — evaluating at mid-points introduces a half-bin offset that
// inflates D even for the true distribution.
func (h *Histogram) UpperEdges() []float64 {
	w := h.Width()
	xs := make([]float64, len(h.Counts))
	for i := range xs {
		xs[i] = h.Lo + float64(i+1)*w
	}
	return xs
}

// Probabilities returns p_i = f_i/n (paper §2).
func (h *Histogram) Probabilities() []float64 {
	ps := make([]float64, len(h.Counts))
	if h.N == 0 {
		return ps
	}
	for i, c := range h.Counts {
		ps[i] = float64(c) / float64(h.N)
	}
	return ps
}

// Densities returns the empirical density d_i = p_i/δ_i (paper §2).
func (h *Histogram) Densities() []float64 {
	ds := h.Probabilities()
	w := h.Width()
	for i := range ds {
		ds[i] /= w
	}
	return ds
}

// CDF returns the empirical cumulative distribution at the mid-points,
// F̃(x_i) = Σ_{j≤i} p_j (paper eq. 3).
func (h *Histogram) CDF() []float64 {
	ps := h.Probabilities()
	acc := 0.0
	for i, p := range ps {
		acc += p
		ps[i] = acc
	}
	return ps
}

// Moment returns the k-th estimated raw moment M̃_k = Σ x_i^k·p_i (paper
// eq. 1), treating each observation as sitting at its interval mid-point.
func (h *Histogram) Moment(k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("stats: moment order %d < 1", k))
	}
	xs := h.Midpoints()
	ps := h.Probabilities()
	var m float64
	for i := range xs {
		m += math.Pow(xs[i], float64(k)) * ps[i]
	}
	return m
}

// Moments returns the first k estimated raw moments.
func (h *Histogram) Moments(k int) []float64 {
	ms := make([]float64, k)
	for i := 1; i <= k; i++ {
		ms[i-1] = h.Moment(i)
	}
	return ms
}

// Mean returns M̃₁.
func (h *Histogram) Mean() float64 { return h.Moment(1) }

// Var returns Ṽ = M̃₂ − M̃₁² (paper eq. 2).
func (h *Histogram) Var() float64 {
	m1 := h.Moment(1)
	return h.Moment(2) - m1*m1
}

// CV2 returns C̃² = M̃₂/M̃₁² − 1 (paper eq. 2).
func (h *Histogram) CV2() float64 {
	m1 := h.Moment(1)
	return h.Moment(2)/(m1*m1) - 1
}

// Sample statistics computed directly from raw observations (used to
// cross-check the histogram estimators).

// Mean returns the arithmetic mean of data.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range data {
		s += x
	}
	return s / float64(len(data))
}

// RawMoment returns the k-th raw sample moment.
func RawMoment(data []float64, k int) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range data {
		s += math.Pow(x, float64(k))
	}
	return s / float64(len(data))
}

// Variance returns the (population) sample variance.
func Variance(data []float64) float64 {
	m := Mean(data)
	return RawMoment(data, 2) - m*m
}

// CV2 returns the squared coefficient of variation of data.
func CV2(data []float64) float64 {
	m := Mean(data)
	return RawMoment(data, 2)/(m*m) - 1
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of data by linear
// interpolation on the sorted sample.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
