package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramBasic(t *testing.T) {
	data := []float64{0.5, 1.5, 1.6, 2.5, 9.5}
	h, err := NewHistogram(data, 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 5 || h.Outside != 0 {
		t.Fatalf("N=%d Outside=%d, want 5/0", h.N, h.Outside)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts wrong: %v", h.Counts)
	}
}

func TestNewHistogramEdgeValues(t *testing.T) {
	// hi itself must land in the last bin; values outside are counted.
	h, err := NewHistogram([]float64{0, 10, -1, 11, math.NaN()}, 5, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("boundary handling wrong: %v", h.Counts)
	}
	if h.Outside != 3 {
		t.Fatalf("Outside = %d, want 3", h.Outside)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("expected error for 0 bins")
	}
	if _, err := NewHistogram(nil, 5, 1, 1); err == nil {
		t.Error("expected error for empty range")
	}
	if _, err := HistogramFromData(nil, 5); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := HistogramFromData([]float64{0, 0}, 5); err == nil {
		t.Error("expected error for all-zero data")
	}
}

func TestHistogramDensitiesIntegrateToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.ExpFloat64() * 5
	}
	h, err := HistogramFromData(data, 40)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for _, d := range h.Densities() {
		integral += d * h.Width()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("∫density = %v, want 1", integral)
	}
}

func TestHistogramCDFMonotoneEndsAtOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, 500)
		for i := range data {
			data[i] = math.Abs(rng.NormFloat64()) + 0.001
		}
		h, err := HistogramFromData(data, 1+rng.Intn(30))
		if err != nil {
			return false
		}
		cdf := h.CDF()
		prev := 0.0
		for _, v := range cdf {
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return math.Abs(cdf[len(cdf)-1]-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMomentsMatchSampleMoments(t *testing.T) {
	// With many narrow bins, the binned estimators converge to the raw ones.
	rng := rand.New(rand.NewSource(11))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = rng.ExpFloat64() * 2
	}
	h, err := HistogramFromData(data, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(h.Mean()-Mean(data)) / Mean(data); rel > 0.01 {
		t.Errorf("mean: binned %v vs raw %v", h.Mean(), Mean(data))
	}
	if rel := math.Abs(h.Moment(2)-RawMoment(data, 2)) / RawMoment(data, 2); rel > 0.02 {
		t.Errorf("M2: binned %v vs raw %v", h.Moment(2), RawMoment(data, 2))
	}
	if math.Abs(h.CV2()-CV2(data)) > 0.05 {
		t.Errorf("CV²: binned %v vs raw %v", h.CV2(), CV2(data))
	}
}

func TestHistogramMomentPanics(t *testing.T) {
	h, _ := NewHistogram([]float64{1}, 2, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Moment(0)")
		}
	}()
	h.Moment(0)
}

func TestRawSampleStats(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	if m := Mean(data); m != 2.5 {
		t.Errorf("mean = %v, want 2.5", m)
	}
	if v := Variance(data); math.Abs(v-1.25) > 1e-12 {
		t.Errorf("var = %v, want 1.25", v)
	}
	if m2 := RawMoment(data, 2); math.Abs(m2-7.5) > 1e-12 {
		t.Errorf("M2 = %v, want 7.5", m2)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestCV2OfExponentialSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	if cv2 := CV2(data); math.Abs(cv2-1) > 0.03 {
		t.Errorf("CV² of exponential sample = %v, want ≈1", cv2)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{4, 1, 3, 2}
	if q := Quantile(data, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(data, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(data, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}
