package stats

import (
	"fmt"
	"math"
)

// KSResult reports a Kolmogorov–Smirnov goodness-of-fit comparison between
// an empirical CDF and a hypothetical one (paper eq. 4). NPoints is the
// number of comparison points x_i, which is what the paper uses as the
// sample size for the critical values ("The calculated value of the
// Kolmogorov-Smirnov statistic, using 50 points x_i...").
type KSResult struct {
	D       float64
	NPoints int
}

// KolmogorovSmirnov evaluates D = max_i |F(x_i) − F̃(x_i)| for a histogram's
// empirical CDF against the hypothetical CDF F. The comparison points are
// the interval upper edges, where the empirical CDF of eq. (3) is actually
// defined.
func KolmogorovSmirnov(h *Histogram, cdf func(float64) float64) KSResult {
	xs := h.UpperEdges()
	emp := h.CDF()
	var d float64
	for i, x := range xs {
		if diff := math.Abs(cdf(x) - emp[i]); diff > d {
			d = diff
		}
	}
	return KSResult{D: d, NPoints: len(xs)}
}

// KolmogorovSmirnovPoints evaluates D over explicit (x_i, F̃(x_i)) pairs.
func KolmogorovSmirnovPoints(xs, empCDF []float64, cdf func(float64) float64) (KSResult, error) {
	if len(xs) != len(empCDF) {
		return KSResult{}, fmt.Errorf("stats: %d points but %d CDF values", len(xs), len(empCDF))
	}
	var d float64
	for i, x := range xs {
		if diff := math.Abs(cdf(x) - empCDF[i]); diff > d {
			d = diff
		}
	}
	return KSResult{D: d, NPoints: len(xs)}, nil
}

// KolmogorovCDF returns K(λ) = P(√n·D ≤ λ), the asymptotic Kolmogorov
// distribution, via the alternating series 1 − 2Σ_{k≥1}(−1)^{k−1}e^{−2k²λ²}.
func KolmogorovCDF(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	var s float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		s += sign * term
		sign = -sign
		if term < 1e-16 {
			break
		}
	}
	return 1 - 2*s
}

// CriticalValue returns the largest D that passes the test at significance
// level alpha, using the asymptotic approximation D_crit = c(α)/√n with
// K(c) = 1 − α. For the paper's levels: c(0.10) ≈ 1.22, c(0.05) ≈ 1.36,
// c(0.01) ≈ 1.63.
func (r KSResult) CriticalValue(alpha float64) float64 {
	if r.NPoints <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	return kolmogorovQuantile(1-alpha) / math.Sqrt(float64(r.NPoints))
}

// Pass reports whether the fit is accepted at significance level alpha
// (higher alpha = stricter test, as the paper notes).
func (r KSResult) Pass(alpha float64) bool {
	return r.D < r.CriticalValue(alpha)
}

// PValue returns the asymptotic p-value P(D_n > d) ≈ 1 − K(√n·d).
func (r KSResult) PValue() float64 {
	return 1 - KolmogorovCDF(math.Sqrt(float64(r.NPoints))*r.D)
}

// kolmogorovQuantile inverts KolmogorovCDF by bisection.
func kolmogorovQuantile(p float64) float64 {
	lo, hi := 1e-6, 5.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if KolmogorovCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
