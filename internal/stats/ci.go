package stats

import (
	"fmt"
	"math"
)

// CI is a two-sided Student-t confidence interval for a population mean,
// estimated from n independent observations (in the simulator, one
// observation per replication): Mean ± HalfWidth covers the true mean with
// probability Level under the usual normality-of-means assumption.
type CI struct {
	// Mean is the sample mean x̄.
	Mean float64
	// HalfWidth is t_{n−1, (1+Level)/2} · s/√n, the interval half-width.
	HalfWidth float64
	// Level is the confidence level (e.g. 0.95).
	Level float64
	// N is the number of observations the interval was built from.
	N int
}

// Lo returns the interval lower end-point Mean − HalfWidth.
func (c CI) Lo() float64 { return c.Mean - c.HalfWidth }

// Hi returns the interval upper end-point Mean + HalfWidth.
func (c CI) Hi() float64 { return c.Mean + c.HalfWidth }

// Contains reports whether x lies inside the interval — the coverage check
// used when validating an analytical result against simulation.
func (c CI) Contains(x float64) bool { return x >= c.Lo() && x <= c.Hi() }

// Relative returns HalfWidth/|Mean|, the relative precision achieved; it
// is +Inf when the mean is zero, so a relative-precision stopping rule
// never terminates on a degenerate estimate.
func (c CI) Relative() float64 {
	if c.Mean == 0 {
		return math.Inf(1)
	}
	return c.HalfWidth / math.Abs(c.Mean)
}

// String renders the interval as "mean ± half-width (level% CI, n=N)".
func (c CI) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%g%% CI, n=%d)", c.Mean, c.HalfWidth, 100*c.Level, c.N)
}

// MeanCI builds the two-sided Student-t interval at the given confidence
// level from a sample of independent observations. It needs at least two
// observations to estimate the variance.
func MeanCI(sample []float64, level float64) (CI, error) {
	n := len(sample)
	if n < 2 {
		return CI{}, fmt.Errorf("stats: confidence interval needs ≥ 2 observations, got %d", n)
	}
	if !(level > 0 && level < 1) {
		return CI{}, fmt.Errorf("stats: confidence level %v must be in (0, 1)", level)
	}
	mean := Mean(sample)
	var ss float64
	for _, x := range sample {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1)) // unbiased sample standard deviation
	t := TQuantile((1+level)/2, n-1)
	return CI{
		Mean:      mean,
		HalfWidth: t * sd / math.Sqrt(float64(n)),
		Level:     level,
		N:         n,
	}, nil
}

// TQuantile returns the p-quantile (0 < p < 1) of the Student-t
// distribution with df degrees of freedom — e.g. TQuantile(0.975, 9) ≈
// 2.262, the multiplier for a 95% interval from 10 replications. It inverts
// the t CDF by bisection on the regularized incomplete beta function, which
// is monotone and keeps the computation dependency-free and deterministic.
func TQuantile(p float64, df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: t quantile needs df ≥ 1, got %d", df))
	}
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: t quantile probability %v outside (0, 1)", p))
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	// Two-sided tail mass α = 2(1−p); t solves I_{ν/(ν+t²)}(ν/2, 1/2) = α.
	alpha := 2 * (1 - p)
	cdf := func(t float64) float64 { // P(T ≤ t) for t ≥ 0
		x := float64(df) / (float64(df) + t*t)
		return 1 - 0.5*regIncBeta(float64(df)/2, 0.5, x)
	}
	lo, hi := 0.0, 2.0
	for cdf(hi) < p && hi < 1e9 {
		hi *= 2
	}
	for i := 0; i < 200 && hi-lo > 1e-12*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		a := float64(df) / (float64(df) + mid*mid)
		if regIncBeta(float64(df)/2, 0.5, a) > alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// evaluated by the standard Lentz continued fraction (converges fast for
// x < (a+1)/(a+b+2); the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) covers the
// rest).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function
// (Numerical Recipes §6.4 form) by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		num := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		num = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
