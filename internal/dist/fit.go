package dist

import (
	"fmt"
	"math"

	"repro/internal/optimize"
)

// FitH2Moments fits a two-phase hyperexponential to the first three raw
// moments in closed form (the paper's §2 route for n = 2). A two-phase
// mixture of exponentials has E[Xᵏ] = k!·(p·aᵏ + (1−p)·bᵏ) for phase means
// a, b, so a, b are the roots of the quadratic whose power sums are
// µₖ = mₖ/k!; the weight follows from the first moment. The phases come
// out ordered by descending rate (short phase first, as the paper lists
// its fits). Requires C² > 1 — below that no hyperexponential matches.
func FitH2Moments(m1, m2, m3 float64) (*HyperExp, error) {
	if m1 <= 0 || m2 <= 0 || m3 <= 0 {
		return nil, fmt.Errorf("dist: moments %v, %v, %v must be positive", m1, m2, m3)
	}
	mu1, mu2, mu3 := m1, m2/2, m3/6
	denom := mu2 - mu1*mu1
	if denom <= 0 {
		return nil, fmt.Errorf("dist: C² = %v ≤ 1, not hyperexponential", m2/(m1*m1)-1)
	}
	// a, b solve t² − c1·t + c0 = 0 with µ₂ = c1·µ₁ − c0, µ₃ = c1·µ₂ − c0·µ₁.
	c1 := (mu3 - mu1*mu2) / denom
	c0 := c1*mu1 - mu2
	disc := c1*c1 - 4*c0
	if disc < 0 {
		return nil, fmt.Errorf("dist: moment set has no real two-phase fit (disc = %v)", disc)
	}
	root := math.Sqrt(disc)
	long := (c1 + root) / 2  // longer phase mean
	short := (c1 - root) / 2 // shorter phase mean
	if short <= 0 || long <= short {
		return nil, fmt.Errorf("dist: degenerate phase means %v, %v", short, long)
	}
	pLong := (mu1 - short) / (long - short)
	if pLong <= 0 || pLong >= 1 {
		return nil, fmt.Errorf("dist: weight %v outside (0, 1)", pLong)
	}
	return NewHyperExp(
		[]float64{1 - pLong, pLong},
		[]float64{1 / short, 1 / long},
	)
}

// FitHNNewton fits an n-phase hyperexponential to 2n−1 raw moments by a
// damped Newton iteration on the moment equations, started from the given
// distribution. The unknowns are the first n−1 weights and the n rates
// (the last weight is 1 − Σ); rates iterate in log space so the solver
// cannot step across zero. This is the route the paper reports as fragile
// for n = 3 — optimize.ErrNoConvergence is the expected failure mode.
func FitHNNewton(start *HyperExp, moments []float64) (*HyperExp, error) {
	if start == nil {
		return nil, fmt.Errorf("dist: nil starting point")
	}
	n := start.Phases()
	if len(moments) != 2*n-1 {
		return nil, fmt.Errorf("dist: %d-phase fit needs %d moments, got %d", n, 2*n-1, len(moments))
	}
	for k, m := range moments {
		if m <= 0 {
			return nil, fmt.Errorf("dist: moment %d = %v must be positive", k+1, m)
		}
	}
	x0 := make([]float64, 2*n-1)
	copy(x0, start.Weights[:n-1])
	for i, r := range start.Rates {
		x0[n-1+i] = math.Log(r)
	}
	unpack := func(x []float64) ([]float64, []float64) {
		w := make([]float64, n)
		var sum float64
		for i := 0; i < n-1; i++ {
			w[i] = x[i]
			sum += x[i]
		}
		w[n-1] = 1 - sum
		r := make([]float64, n)
		for i := 0; i < n; i++ {
			r[i] = math.Exp(x[n-1+i])
		}
		return w, r
	}
	resid := func(x []float64) []float64 {
		w, r := unpack(x)
		out := make([]float64, 2*n-1)
		fact := 1.0
		for k := 1; k <= 2*n-1; k++ {
			fact *= float64(k)
			var s float64
			for i := 0; i < n; i++ {
				s += w[i] / math.Pow(r[i], float64(k))
			}
			out[k-1] = fact*s/moments[k-1] - 1
		}
		return out
	}
	sol, err := optimize.Newton(resid, x0, optimize.NewtonOptions{})
	if err != nil {
		return nil, fmt.Errorf("dist: H%d Newton fit: %w", n, err)
	}
	w, r := unpack(sol)
	h, err := NewHyperExp(w, r)
	if err != nil {
		return nil, fmt.Errorf("dist: H%d Newton fit left the parameter domain: %w", n, err)
	}
	return h, nil
}

// FitResult is the outcome of FitHNSearch: the best distribution found and
// the residual objective (sum of squared relative moment errors).
type FitResult struct {
	Dist      *HyperExp
	Objective float64
}

// FitHNSearch fits an n-phase hyperexponential to the given raw moments by
// derivative-free search (paper eq. 8: "the values of the parameters were
// obtained by a brute-force search"). Weights are parameterised by softmax
// and rates in log space, so every candidate is a valid distribution; the
// Nelder–Mead simplex minimises the summed squared relative moment errors
// from a geometric spread of starting rates around 1/M₁.
func FitHNSearch(phases int, moments []float64) (FitResult, error) {
	if phases < 1 {
		return FitResult{}, fmt.Errorf("dist: %d phases", phases)
	}
	if len(moments) < phases {
		return FitResult{}, fmt.Errorf("dist: %d moments cannot identify %d phases", len(moments), phases)
	}
	for k, m := range moments {
		if m <= 0 {
			return FitResult{}, fmt.Errorf("dist: moment %d = %v must be positive", k+1, m)
		}
	}
	n := phases
	// x holds n−1 weight logits (the last phase's logit is pinned at 0, so
	// the softmax has no flat direction to stall the simplex) and n log
	// rates.
	unpack := func(x []float64) ([]float64, []float64) {
		w := make([]float64, n)
		sum := 1.0
		for i := 0; i < n-1; i++ {
			w[i] = math.Exp(x[i])
			sum += w[i]
		}
		w[n-1] = 1
		for i := range w {
			w[i] /= sum
		}
		r := make([]float64, n)
		for i := 0; i < n; i++ {
			r[i] = math.Exp(x[n-1+i])
		}
		return w, r
	}
	objective := func(x []float64) float64 {
		w, r := unpack(x)
		var obj float64
		fact := 1.0
		for k := 1; k <= len(moments); k++ {
			fact *= float64(k)
			var s float64
			for i := 0; i < n; i++ {
				s += w[i] / math.Pow(r[i], float64(k))
			}
			d := fact*s/moments[k-1] - 1
			obj += d * d
		}
		if math.IsNaN(obj) || math.IsInf(obj, 0) {
			return math.MaxFloat64
		}
		return obj
	}
	// The moment surface is ill-conditioned and multimodal, so run the
	// simplex from several geometric rate spreads around 1/M₁ (equal
	// weights), restart each from its incumbent, and keep the global best.
	var best []float64
	obj := math.MaxFloat64
	for _, spread := range []float64{0.75, 1.5, 2.5, 4} {
		x0 := make([]float64, 2*n-1)
		base := math.Log(1 / moments[0])
		for i := 0; i < n; i++ {
			x0[n-1+i] = base + spread*(float64(i)-float64(n-1)/2)
		}
		cur, val := x0, math.MaxFloat64
		for restart := 0; restart < 4 && val > 1e-18; restart++ {
			cur, val = optimize.NelderMead(objective, cur, optimize.NelderMeadOptions{MaxIter: 8000})
		}
		if val < obj {
			best, obj = cur, val
		}
		if obj < 1e-18 {
			break
		}
	}
	w, r := unpack(best)
	h, err := NewHyperExp(w, r)
	if err != nil {
		return FitResult{}, fmt.Errorf("dist: H%d search produced an invalid distribution: %w", n, err)
	}
	return FitResult{Dist: h, Objective: obj}, nil
}
