// Package dist provides the period distributions of Palmer & Mitrani §2:
// the n-phase hyperexponential family the analytical model is built on,
// plus the deterministic and Erlang shapes that only the simulator can
// handle (the C² ≤ 1 points of Figure 6). It also implements the paper's
// three fitting routes — the closed-form three-moment H2 fit, a damped
// Newton solve of the moment equations and the brute-force rate search of
// eq. (8).
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Distribution is a positive continuous distribution that the simulator can
// sample and the analytical pipeline can summarise by its mean.
type Distribution interface {
	// Mean is the first moment.
	Mean() float64
	// Sample draws one variate using the given source.
	Sample(rng *rand.Rand) float64
	// String renders the distribution for reports and logs.
	String() string
}

// HyperExp is an n-phase hyperexponential: with probability Weights[i] the
// period is exponential with rate Rates[i]. The paper uses the two-phase
// member (H2) for both operative and inoperative periods.
type HyperExp struct {
	// Weights are the phase probabilities α (non-negative, summing to 1).
	Weights []float64
	// Rates are the phase rates ξ (positive).
	Rates []float64
}

// NewHyperExp validates and builds a hyperexponential distribution.
func NewHyperExp(weights, rates []float64) (*HyperExp, error) {
	if len(weights) == 0 || len(weights) != len(rates) {
		return nil, fmt.Errorf("dist: %d weights vs %d rates", len(weights), len(rates))
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || w > 1 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: weight %d = %v outside [0, 1]", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("dist: weights sum to %v, want 1", sum)
	}
	for i, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("dist: rate %d = %v must be positive and finite", i, r)
		}
	}
	return &HyperExp{
		Weights: append([]float64(nil), weights...),
		Rates:   append([]float64(nil), rates...),
	}, nil
}

// MustHyperExp is NewHyperExp panicking on invalid parameters; it is meant
// for literal parameter sets such as the paper's fitted distributions.
func MustHyperExp(weights, rates []float64) *HyperExp {
	h, err := NewHyperExp(weights, rates)
	if err != nil {
		panic(err)
	}
	return h
}

// Exp returns the exponential distribution with the given rate as a
// single-phase hyperexponential, so it plugs into the analytical model.
func Exp(rate float64) *HyperExp {
	return MustHyperExp([]float64{1}, []float64{rate})
}

// Phases returns n, the number of exponential phases.
func (h *HyperExp) Phases() int { return len(h.Weights) }

// Mean returns Σ αᵢ/ξᵢ.
func (h *HyperExp) Mean() float64 {
	var m float64
	for i, w := range h.Weights {
		m += w / h.Rates[i]
	}
	return m
}

// Rate returns the reciprocal mean — the "ξ" and "η" of the paper's
// availability formula η/(ξ+η), which depends only on the mean periods.
func (h *HyperExp) Rate() float64 { return 1 / h.Mean() }

// Moment returns the k-th raw moment, k!·Σ αᵢ/ξᵢᵏ.
func (h *HyperExp) Moment(k int) float64 {
	if k < 0 {
		return math.NaN()
	}
	fact := 1.0
	for i := 2; i <= k; i++ {
		fact *= float64(i)
	}
	var s float64
	for i, w := range h.Weights {
		s += w / math.Pow(h.Rates[i], float64(k))
	}
	return fact * s
}

// Variance returns the second central moment.
func (h *HyperExp) Variance() float64 {
	m := h.Mean()
	return h.Moment(2) - m*m
}

// CV2 returns the squared coefficient of variation; ≥ 1 for every
// hyperexponential, with equality only for the plain exponential.
func (h *HyperExp) CV2() float64 {
	m := h.Mean()
	return h.Moment(2)/(m*m) - 1
}

// Density returns the probability density Σ αᵢ·ξᵢ·e^(−ξᵢx) at x ≥ 0.
func (h *HyperExp) Density(x float64) float64 {
	if x < 0 {
		return 0
	}
	var d float64
	for i, w := range h.Weights {
		d += w * h.Rates[i] * math.Exp(-h.Rates[i]*x)
	}
	return d
}

// CDF returns P(X ≤ x) = Σ αᵢ·(1 − e^(−ξᵢx)).
func (h *HyperExp) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	var c float64
	for i, w := range h.Weights {
		c += w * (1 - math.Exp(-h.Rates[i]*x))
	}
	return c
}

// Sample draws one variate: choose a phase by weight, then an exponential
// of that phase's rate.
func (h *HyperExp) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var acc float64
	for i, w := range h.Weights {
		acc += w
		if u < acc {
			return rng.ExpFloat64() / h.Rates[i]
		}
	}
	return rng.ExpFloat64() / h.Rates[len(h.Rates)-1]
}

// String renders the mixture like "H2{0.725·Exp(0.166), 0.275·Exp(0.0091)}".
func (h *HyperExp) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "H%d{", len(h.Weights))
	for i, w := range h.Weights {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.4g·Exp(%.4g)", w, h.Rates[i])
	}
	sb.WriteString("}")
	return sb.String()
}

// Deterministic is the fixed-length period (C² = 0) used for the leftmost
// point of Figure 6 — representable only by the simulator.
type Deterministic struct {
	// Value is the constant period length.
	Value float64
}

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

// Sample returns the constant value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// String renders like "Det(34.62)".
func (d Deterministic) String() string { return fmt.Sprintf("Det(%.4g)", d.Value) }

// Erlang is the k-stage Erlang distribution (C² = 1/k), covering the
// 0 < C² < 1 range between deterministic and exponential periods.
type Erlang struct {
	// K is the number of exponential stages.
	K int
	// Rate is the per-stage rate, so the mean is K/Rate.
	Rate float64
}

// Mean returns K/Rate.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// CV2 returns 1/K.
func (e Erlang) CV2() float64 { return 1 / float64(e.K) }

// Sample draws the sum of K exponential stages.
func (e Erlang) Sample(rng *rand.Rand) float64 {
	var t float64
	for i := 0; i < e.K; i++ {
		t += rng.ExpFloat64() / e.Rate
	}
	return t
}

// String renders like "Erlang(k=4, rate=2)".
func (e Erlang) String() string { return fmt.Sprintf("Erlang(k=%d, rate=%.4g)", e.K, e.Rate) }

// WithMeanCV2 builds a distribution with the requested mean and squared
// coefficient of variation, choosing the shape family by C² exactly as the
// simulator experiments do: deterministic at 0, Erlang below 1 (nearest
// integer stage count, so the achieved C² is the closest representable
// 1/k), exponential at 1 and a balanced-means two-phase hyperexponential
// above 1.
func WithMeanCV2(mean, cv2 float64) (Distribution, error) {
	if mean <= 0 || math.IsNaN(mean) {
		return nil, fmt.Errorf("dist: mean %v must be positive", mean)
	}
	if cv2 < 0 || math.IsNaN(cv2) {
		return nil, fmt.Errorf("dist: C² = %v must be non-negative", cv2)
	}
	switch {
	case cv2 == 0:
		return Deterministic{Value: mean}, nil
	case cv2 < 1:
		k := int(math.Round(1 / cv2))
		if k < 1 {
			k = 1
		}
		return Erlang{K: k, Rate: float64(k) / mean}, nil
	case cv2 == 1:
		return Exp(1 / mean), nil
	default:
		// Balanced means: both phases contribute mean/2.
		p := 0.5 * (1 + math.Sqrt((cv2-1)/(cv2+1)))
		return NewHyperExp(
			[]float64{p, 1 - p},
			[]float64{2 * p / mean, 2 * (1 - p) / mean},
		)
	}
}

// HyperExp2FixedShortPhase builds the Figure 6 family: a two-phase
// hyperexponential with the short phase pinned at the given mean (the
// paper keeps the fitted ξ₂ fixed) whose overall mean and C² match the
// targets. Solving the first two moment equations with the short phase
// fixed gives the long-phase mean and the weights in closed form.
func HyperExp2FixedShortPhase(mean, cv2, shortMean float64) (*HyperExp, error) {
	if mean <= 0 || shortMean <= 0 {
		return nil, fmt.Errorf("dist: means %v, %v must be positive", mean, shortMean)
	}
	if cv2 < 1 {
		return nil, fmt.Errorf("dist: C² = %v below 1 is not hyperexponential", cv2)
	}
	if mean == shortMean {
		if cv2 == 1 {
			return Exp(1 / mean), nil
		}
		return nil, fmt.Errorf("dist: short phase equals the target mean, C² = %v unreachable", cv2)
	}
	// halfM2 = E[X²]/2 = p·a² + (1−p)·b² with a the short-phase mean.
	a := shortMean
	halfM2 := mean * mean * (cv2 + 1) / 2
	b := (halfM2 - mean*a) / (mean - a)
	if b <= 0 {
		return nil, fmt.Errorf("dist: no positive long phase for mean %v, C² %v, short %v", mean, cv2, a)
	}
	p := (mean - b) / (a - b)
	// The C² = 1 boundary lands exactly on p = 0; absorb rounding there.
	if p < 0 && p > -1e-9 {
		p = 0
	}
	if p > 1 && p < 1+1e-9 {
		p = 1
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("dist: weight %v outside [0, 1] for mean %v, C² %v, short %v", p, mean, cv2, a)
	}
	return NewHyperExp([]float64{p, 1 - p}, []float64{1 / a, 1 / b})
}
