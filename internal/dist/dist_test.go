package dist

import (
	"math"
	"math/rand"
	"testing"
)

var paperOps = MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})

func TestHyperExpMoments(t *testing.T) {
	h := paperOps
	wantMean := 0.7246/0.1663 + 0.2754/0.0091
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", h.Mean(), wantMean)
	}
	if math.Abs(h.Mean()-34.62) > 0.1 {
		t.Errorf("mean = %v, paper ≈ 34.62", h.Mean())
	}
	if math.Abs(h.CV2()-4.6) > 0.2 {
		t.Errorf("C² = %v, paper ≈ 4.6", h.CV2())
	}
	if math.Abs(h.Moment(1)-h.Mean()) > 1e-12 {
		t.Errorf("Moment(1) = %v, Mean = %v", h.Moment(1), h.Mean())
	}
	if got := h.Rate(); math.Abs(got*h.Mean()-1) > 1e-12 {
		t.Errorf("Rate·Mean = %v, want 1", got*h.Mean())
	}
}

func TestExpMatchesClosedForms(t *testing.T) {
	e := Exp(2)
	if e.Phases() != 1 {
		t.Fatalf("phases = %d", e.Phases())
	}
	if math.Abs(e.Mean()-0.5) > 1e-15 {
		t.Errorf("mean = %v", e.Mean())
	}
	if math.Abs(e.CV2()-1) > 1e-12 {
		t.Errorf("C² = %v, want 1", e.CV2())
	}
	if got, want := e.CDF(0.5), 1-math.Exp(-1); math.Abs(got-want) > 1e-15 {
		t.Errorf("CDF(0.5) = %v, want %v", got, want)
	}
	if got, want := e.Density(0.5), 2*math.Exp(-1); math.Abs(got-want) > 1e-15 {
		t.Errorf("density(0.5) = %v, want %v", got, want)
	}
}

func TestNewHyperExpRejectsBadParameters(t *testing.T) {
	cases := []struct {
		w, r []float64
	}{
		{nil, nil},
		{[]float64{1}, []float64{1, 2}},
		{[]float64{0.5, 0.6}, []float64{1, 2}},  // sums to 1.1
		{[]float64{-0.1, 1.1}, []float64{1, 2}}, // negative weight
		{[]float64{0.5, 0.5}, []float64{1, 0}},  // zero rate
		{[]float64{0.5, 0.5}, []float64{1, -2}}, // negative rate
		{[]float64{0.5, 0.5}, []float64{1, math.Inf(1)}},
	}
	for i, c := range cases {
		if _, err := NewHyperExp(c.w, c.r); err == nil {
			t.Errorf("case %d: expected error for weights %v rates %v", i, c.w, c.r)
		}
	}
}

func TestCDFDensityConsistency(t *testing.T) {
	// Numerically integrate the density and compare with the CDF.
	h := paperOps
	const dx = 0.01
	var acc float64
	for x := 0.0; x < 50; x += dx {
		acc += h.Density(x+dx/2) * dx
		if diff := math.Abs(acc - h.CDF(x+dx)); diff > 1e-3 {
			t.Fatalf("∫density − CDF = %v at x=%v", diff, x+dx)
		}
	}
}

func TestSampleMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := []Distribution{
		paperOps,
		Exp(25),
		Deterministic{Value: 3.5},
		Erlang{K: 4, Rate: 2},
	}
	for _, d := range dists {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		got := sum / n
		if rel := math.Abs(got-d.Mean()) / d.Mean(); rel > 0.02 {
			t.Errorf("%v: sample mean %v vs analytical %v", d, got, d.Mean())
		}
	}
}

func TestWithMeanCV2Families(t *testing.T) {
	cases := []struct {
		mean, cv2 float64
		wantType  string
	}{
		{34.62, 0, "dist.Deterministic"},
		{34.62, 0.25, "dist.Erlang"},
		{34.62, 1, "*dist.HyperExp"},
		{34.62, 4.6, "*dist.HyperExp"},
	}
	for _, c := range cases {
		d, err := WithMeanCV2(c.mean, c.cv2)
		if err != nil {
			t.Fatalf("mean %v C² %v: %v", c.mean, c.cv2, err)
		}
		if math.Abs(d.Mean()-c.mean) > 1e-9*c.mean {
			t.Errorf("C²=%v: mean %v, want %v", c.cv2, d.Mean(), c.mean)
		}
		switch v := d.(type) {
		case *HyperExp:
			if math.Abs(v.CV2()-math.Max(c.cv2, 1)) > 1e-9 {
				t.Errorf("C²=%v: got %v", c.cv2, v.CV2())
			}
		case Erlang:
			if math.Abs(v.CV2()-c.cv2) > 1e-9 {
				t.Errorf("C²=%v: Erlang gives %v", c.cv2, v.CV2())
			}
		}
	}
	if _, err := WithMeanCV2(-1, 1); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := WithMeanCV2(1, -2); err == nil {
		t.Error("negative C² accepted")
	}
}

func TestHyperExp2FixedShortPhase(t *testing.T) {
	const (
		mean      = 34.62
		shortMean = 1 / 0.1663
	)
	for _, cv2 := range []float64{1, 2, 4.6, 10, 18} {
		h, err := HyperExp2FixedShortPhase(mean, cv2, shortMean)
		if err != nil {
			t.Fatalf("C²=%v: %v", cv2, err)
		}
		if math.Abs(h.Mean()-mean) > 1e-9*mean {
			t.Errorf("C²=%v: mean %v", cv2, h.Mean())
		}
		if math.Abs(h.CV2()-cv2) > 1e-9*math.Max(cv2, 1) {
			t.Errorf("C²=%v: got C² %v", cv2, h.CV2())
		}
		if math.Abs(1/h.Rates[0]-shortMean) > 1e-12 {
			t.Errorf("C²=%v: short phase mean %v moved from %v", cv2, 1/h.Rates[0], shortMean)
		}
	}
	// The C² = 4.6 member should reproduce the paper's fit.
	h, err := HyperExp2FixedShortPhase(mean, 4.6, shortMean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Weights[0]-0.7246) > 0.01 {
		t.Errorf("weight %v, paper 0.7246", h.Weights[0])
	}
	if _, err := HyperExp2FixedShortPhase(mean, 0.5, shortMean); err == nil {
		t.Error("C² < 1 accepted")
	}
}

func TestFitH2MomentsRoundTrip(t *testing.T) {
	want := paperOps
	got, err := FitH2Moments(want.Moment(1), want.Moment(2), want.Moment(3))
	if err != nil {
		t.Fatal(err)
	}
	// Short phase (higher rate) must come out first, like the paper's fits.
	if got.Rates[0] < got.Rates[1] {
		t.Errorf("phases not ordered by descending rate: %v", got.Rates)
	}
	for i := range want.Rates {
		if math.Abs(got.Rates[i]-want.Rates[i]) > 1e-6*want.Rates[i] {
			t.Errorf("rate %d = %v, want %v", i, got.Rates[i], want.Rates[i])
		}
		if math.Abs(got.Weights[i]-want.Weights[i]) > 1e-6 {
			t.Errorf("weight %d = %v, want %v", i, got.Weights[i], want.Weights[i])
		}
	}
	// Exponential moments (C² = 1) have no hyperexponential fit.
	e := Exp(2)
	if _, err := FitH2Moments(e.Moment(1), e.Moment(2), e.Moment(3)); err == nil {
		t.Error("C² = 1 moment set accepted")
	}
}

func TestFitHNNewtonRoundTrip(t *testing.T) {
	want := paperOps
	moments := []float64{want.Moment(1), want.Moment(2), want.Moment(3)}
	start := MustHyperExp([]float64{0.5, 0.5}, []float64{0.1, 0.02})
	got, err := FitHNNewton(start, moments)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if rel := math.Abs(got.Moment(k)-moments[k-1]) / moments[k-1]; rel > 1e-6 {
			t.Errorf("moment %d off by %v", k, rel)
		}
	}
	if _, err := FitHNNewton(start, moments[:2]); err == nil {
		t.Error("wrong moment count accepted")
	}
}

func TestFitHNSearchMatchesMoments(t *testing.T) {
	want := paperOps
	moments := []float64{want.Moment(1), want.Moment(2), want.Moment(3)}
	res, err := FitHNSearch(2, moments)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-6 {
		t.Errorf("objective = %v, want ≈ 0", res.Objective)
	}
	for k := 1; k <= 3; k++ {
		if rel := math.Abs(res.Dist.Moment(k)-moments[k-1]) / moments[k-1]; rel > 1e-3 {
			t.Errorf("moment %d off by %v", k, rel)
		}
	}
}
