package admission

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// controllerHarness scripts the controller's inputs: a mutable Flow the
// test advances between refits, a manual clock, and a counting fake
// evaluator.
type controllerHarness struct {
	flow   Flow
	now    time.Time
	solves int
	perf   core.Performance
	fail   error
}

func (h *controllerHarness) controller(cfg Config) *Controller {
	cfg.Sample = func() Flow { return h.flow }
	cfg.Evaluate = func(_ context.Context, _ core.System, _ core.Method) (*core.Performance, error) {
		h.solves++
		if h.fail != nil {
			return nil, h.fail
		}
		p := h.perf
		return &p, nil
	}
	cfg.Now = func() time.Time { return h.now }
	cfg.Interval = -1 // tests drive Refit directly
	return New(cfg)
}

func (h *controllerHarness) advance(d time.Duration) { h.now = h.now.Add(d) }

// TestControllerAdmitsWithoutData: before any usable window the controller
// has no model and must admit everything with no hint.
func TestControllerAdmitsWithoutData(t *testing.T) {
	h := &controllerHarness{now: at(0)}
	c := h.controller(Config{})
	if err := c.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	d := c.Decide(1 << 20)
	if !d.Admit || d.ModelDerived {
		t.Fatalf("no-data decision = %+v, want default-admit", d)
	}
	if s := c.RetryAfterSeconds(); s != 0 {
		t.Fatalf("RetryAfterSeconds = %d, want 0 before a model exists", s)
	}
	if c.Snapshot() != nil {
		t.Fatal("snapshot published without data")
	}
}

// fitModel drives two refits that produce a known fit: λ̂ = 0.5, µ̂ = 1,
// N = 2, near-perfect availability ⇒ capacity ≈ 2 jobs/s, and with
// TargetWait = 2s an admission limit of ≈ 4 jobs.
func fitModel(t *testing.T, h *controllerHarness, c *Controller) {
	t.Helper()
	h.flow = Flow{Arrivals: 0, Completions: 0, Busy: 1, Servers: 2, Backlog: 0}
	if err := c.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.advance(10 * time.Second)
	h.flow = Flow{Arrivals: 5, Completions: 10, Busy: 1, Servers: 2, Backlog: 10}
	if err := c.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestControllerShedsOnOverload: with a fitted model, a backlog beyond the
// admission limit is shed with a drain-time Retry-After; a backlog under
// it is admitted and carries the predicted queue length.
func TestControllerShedsOnOverload(t *testing.T) {
	h := &controllerHarness{now: at(0), perf: core.Performance{MeanJobs: 0.6, MeanResponse: 1.2}}
	c := h.controller(Config{TargetWait: 2 * time.Second})
	fitModel(t, h, c)

	m := c.Snapshot()
	if m == nil || !m.Stable {
		t.Fatalf("snapshot = %+v, want a stable fit", m)
	}
	if m.Rates.Arrival != 0.5 || m.Rates.Service != 1 {
		t.Fatalf("fitted rates = %+v, want λ̂ 0.5, µ̂ 1", m.Rates)
	}
	if h.solves != 1 {
		t.Fatalf("evaluator ran %d times, want 1", h.solves)
	}

	if d := c.Decide(3); !d.Admit || d.PredictedQueue != 0.6 {
		t.Fatalf("under-limit decision = %+v, want admit with L̂ 0.6", d)
	}
	d := c.Decide(10)
	if d.Admit || !d.ModelDerived {
		t.Fatalf("over-limit decision = %+v, want a model-derived shed", d)
	}
	// excess ≈ 10 − limit(≈4) = 6; (6+1)/capacity(≈2) ≈ 3.5s.
	if d.RetryAfter < 3*time.Second || d.RetryAfter > 4*time.Second {
		t.Fatalf("RetryAfter = %v, want ≈ 3.5s drain", d.RetryAfter)
	}
	// The refit observed backlog 10, so the backlog-free hint agrees.
	if s := c.RetryAfterSeconds(); s != 4 {
		t.Fatalf("RetryAfterSeconds = %d, want 4 (⌈3.5⌉)", s)
	}
	// Deciding never re-solves: the model is read, not recomputed.
	if h.solves != 1 {
		t.Fatalf("Decide solved the model inline (%d solves)", h.solves)
	}
}

// TestControllerUnstableFitSheds: when the fitted λ̂ exceeds capacity there
// is no steady state to solve; the controller must still publish the fit
// (capacity and limit drive shedding) without invoking the solver.
func TestControllerUnstableFitSheds(t *testing.T) {
	h := &controllerHarness{now: at(0), perf: core.Performance{MeanJobs: 0.6}}
	c := h.controller(Config{TargetWait: 2 * time.Second})
	fitModel(t, h, c)

	h.advance(10 * time.Second)
	// A 10 s burst of 100 arrivals against the same single-worker
	// completion rate lifts λ̂ past the ≈2 job/s fitted capacity.
	h.flow = Flow{Arrivals: 105, Completions: 20, Busy: 1, Servers: 2, Backlog: 50}
	if err := c.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := c.Snapshot()
	if m == nil || m.Stable {
		t.Fatalf("snapshot = %+v, want an unstable fit", m)
	}
	if h.solves != 1 {
		t.Fatalf("unstable fit ran the solver (%d solves)", h.solves)
	}
	d := c.Decide(50)
	if d.Admit {
		t.Fatal("overloaded tier admitted a deep backlog")
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want ≥ 1s", d.RetryAfter)
	}
}

// TestControllerSolverFailureKeepsModel: a solver error must count as a
// refit failure and leave the previous snapshot in place.
func TestControllerSolverFailureKeepsModel(t *testing.T) {
	h := &controllerHarness{now: at(0), perf: core.Performance{MeanJobs: 0.6}}
	c := h.controller(Config{TargetWait: 2 * time.Second})
	fitModel(t, h, c)
	prev := c.Snapshot()

	h.advance(10 * time.Second)
	h.flow = Flow{Arrivals: 6, Completions: 12, Busy: 1, Servers: 2, Backlog: 1}
	h.fail = errors.New("solver exploded")
	if err := c.Refit(context.Background()); err == nil {
		t.Fatal("failing solver did not surface an error")
	}
	if c.Snapshot() != prev {
		t.Fatal("failed refit replaced the model snapshot")
	}
}

// TestControllerIdleTierNeverSheds: arrivals with no completions yet (the
// tier is busy on its very first job) must not fit a garbage µ̂; the
// controller keeps admitting.
func TestControllerIdleTierNeverSheds(t *testing.T) {
	h := &controllerHarness{now: at(0)}
	c := h.controller(Config{})
	h.flow = Flow{Arrivals: 0, Completions: 0, Busy: 0, Servers: 2}
	if err := c.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.advance(10 * time.Second)
	h.flow = Flow{Arrivals: 50, Completions: 0, Busy: 2, Servers: 2, Backlog: 48}
	if err := c.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot() != nil {
		t.Fatal("published a model with an unmeasurable service rate")
	}
	if d := c.Decide(48); !d.Admit {
		t.Fatal("shed without a model")
	}
}

// TestControllerMetricsRegister: the mus_admission_* series must satisfy
// the registry's naming contract (Register panics on violations) and
// surface the fitted rates under the exported snapshot keys.
func TestControllerMetricsRegister(t *testing.T) {
	h := &controllerHarness{now: at(0), perf: core.Performance{MeanJobs: 0.6, MeanResponse: 1.2}}
	c := h.controller(Config{TargetWait: 2 * time.Second})
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	fitModel(t, h, c)
	c.Decide(1)
	c.Decide(1000)

	snap := reg.Snapshot()
	if got := snap[MetricArrivalRate]; got != 0.5 {
		t.Errorf("%s = %v, want 0.5", MetricArrivalRate, got)
	}
	if got := snap[MetricServiceRate]; got != 1 {
		t.Errorf("%s = %v, want 1", MetricServiceRate, got)
	}
	if got := snap["mus_admission_predicted_queue_jobs"]; got != 0.6 {
		t.Errorf("predicted queue = %v, want 0.6", got)
	}
	if got := snap["mus_admission_shed_total"]; got != 1 {
		t.Errorf("shed_total = %v, want 1", got)
	}
	if got := snap["mus_admission_admitted_total"]; got != 1 {
		t.Errorf("admitted_total = %v, want 1", got)
	}
	if got := snap["mus_admission_model_solve_seconds_count"]; got != 1 {
		t.Errorf("model_solve_seconds_count = %v, want 1", got)
	}
}
