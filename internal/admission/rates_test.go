package admission

import (
	"math"
	"testing"
	"time"
)

func at(sec int) time.Time { return time.Unix(1_700_000_000, 0).Add(time.Duration(sec) * time.Second) }

// TestRateEstimatorFirstWindow: before any sample there is no rate, and a
// single sample (no delta yet) still reports not-ok — the first-window
// emptiness contract callers rely on to fall back to admit-everything.
func TestRateEstimatorFirstWindow(t *testing.T) {
	e := NewRateEstimator(10 * time.Second)
	if r, ok := e.Rate(); ok {
		t.Fatalf("empty estimator reported rate %v", r)
	}
	e.Observe(at(0), 42)
	if r, ok := e.Rate(); ok {
		t.Fatalf("single-sample estimator reported rate %v", r)
	}
}

// TestRateEstimatorFirstDelta: the second sample yields the first usable
// window and the exact instantaneous rate.
func TestRateEstimatorFirstDelta(t *testing.T) {
	e := NewRateEstimator(10 * time.Second)
	e.Observe(at(0), 100)
	e.Observe(at(10), 150)
	r, ok := e.Rate()
	if !ok || r != 5 {
		t.Fatalf("Rate = %v, %v; want 5, true", r, ok)
	}
}

// TestRateEstimatorCounterReset: a cumulative counter that goes backwards
// means the process restarted and re-zeroed. The impossible negative delta
// must be dropped (the smoothed rate survives), the reset counted, and
// estimation must resume from the new origin.
func TestRateEstimatorCounterReset(t *testing.T) {
	e := NewRateEstimator(10 * time.Second)
	e.Observe(at(0), 0)
	e.Observe(at(10), 100) // 10/s
	if r, _ := e.Rate(); r != 10 {
		t.Fatalf("pre-reset rate = %v, want 10", r)
	}
	e.Observe(at(20), 5) // restart: counter re-zeroed and re-grew to 5
	if r, ok := e.Rate(); !ok || r != 10 {
		t.Fatalf("rate across reset = %v, %v; want the surviving 10, true", r, ok)
	}
	if e.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", e.Resets())
	}
	// The next window measures against the new origin: delta 20 over 10s.
	e.Observe(at(30), 25)
	r, _ := e.Rate()
	// halfLife 10s over a 10s window blends half-and-half: (10+2)/2.
	if math.Abs(r-6) > 1e-9 {
		t.Fatalf("post-reset rate = %v, want 6", r)
	}
}

// TestRateEstimatorNonAdvancingClock: a sample at or before the previous
// timestamp cannot form a window and must be ignored.
func TestRateEstimatorNonAdvancingClock(t *testing.T) {
	e := NewRateEstimator(10 * time.Second)
	e.Observe(at(0), 0)
	e.Observe(at(10), 50)
	e.Observe(at(10), 500) // same instant: no window
	if r, _ := e.Rate(); r != 5 {
		t.Fatalf("rate = %v, want 5", r)
	}
}

// TestRateEstimatorConvergence: against a synthetic arrival process that
// switches from 2/s to 5/s, the smoothed estimate must converge to the new
// true rate within a few half-lives.
func TestRateEstimatorConvergence(t *testing.T) {
	e := NewRateEstimator(10 * time.Second)
	var count float64
	for i := 0; i <= 60; i++ { // 60 s at 2/s
		e.Observe(at(i), count)
		count += 2
	}
	for i := 61; i <= 120; i++ { // 60 s at 5/s: six half-lives of decay
		e.Observe(at(i), count)
		count += 5
	}
	r, ok := e.Rate()
	if !ok {
		t.Fatal("no rate after 120 samples")
	}
	if math.Abs(r-5) > 0.1 {
		t.Fatalf("rate = %v, want ≈ 5 after convergence", r)
	}
}

// TestSmootherTracksLevel: the gauge smoother primes on the first sample
// and converges onto a changed level.
func TestSmootherTracksLevel(t *testing.T) {
	s := NewSmoother(10 * time.Second)
	if _, ok := s.Value(); ok {
		t.Fatal("empty smoother reported a value")
	}
	s.Observe(at(0), 4)
	if v, ok := s.Value(); !ok || v != 4 {
		t.Fatalf("Value = %v, %v; want 4, true", v, ok)
	}
	for i := 1; i <= 60; i++ {
		s.Observe(at(i), 8)
	}
	if v, _ := s.Value(); math.Abs(v-8) > 0.1 {
		t.Fatalf("Value = %v, want ≈ 8", v)
	}
}
