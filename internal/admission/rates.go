// Package admission closes the serving tier's self-modeling loop: it
// turns the daemon's own cumulative counters into smoothed arrival,
// service, failure and repair rate estimates, periodically fits them into
// a core.System describing the serving tier itself, solves that system
// with the paper's own model, and derives both the load-shedding decision
// and the Retry-After hint from the predicted queue behaviour — replacing
// the static queue bound the scheduler alone would enforce.
//
// The split of responsibilities is strict: Refit (slow path, one solver
// call per interval) samples counters, fits rates and stores an immutable
// model snapshot behind an atomic pointer; Decide (hot path, every job
// submission) only reads that snapshot and compares the live backlog
// against the precomputed admission limit. The decision never solves the
// model inline.
package admission

import (
	"math"
	"time"
)

// DefaultHalfLife is the smoothing half-life of the rate estimators: a
// window delta observed one half-life ago carries half the weight of one
// observed now.
const DefaultHalfLife = 30 * time.Second

// RateEstimator turns samples of one cumulative counter into a smoothed
// event rate (events per second). Deltas between consecutive samples are
// converted to instantaneous rates and blended by an exponentially
// weighted moving average whose weight follows the sample spacing, so
// irregular sampling does not skew the estimate.
//
// The estimator is deliberately conservative about sparse data: before the
// first sample (first-window emptiness) and after only one sample there is
// no delta, so Rate reports not-ok and callers fall back to admitting
// everything. A counter that goes backwards — the daemon restarted and its
// cumulative counters re-zeroed — re-primes the estimator at the new
// origin instead of recording an enormous negative rate.
//
// Not safe for concurrent use: the Controller owns its estimators and
// drives them from a single refit goroutine.
type RateEstimator struct {
	halfLife time.Duration
	last     float64
	lastAt   time.Time
	primed   bool
	rate     float64
	haveRate bool
	resets   uint64
}

// NewRateEstimator builds an estimator with the given smoothing half-life
// (DefaultHalfLife when non-positive).
func NewRateEstimator(halfLife time.Duration) *RateEstimator {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &RateEstimator{halfLife: halfLife}
}

// Observe records one sample of the cumulative counter at the given time.
// Samples at or before the previous sample's timestamp are ignored; a
// count below the previous one is treated as a counter reset.
func (e *RateEstimator) Observe(when time.Time, count float64) {
	if math.IsNaN(count) || math.IsInf(count, 0) {
		return
	}
	if !e.primed {
		e.last, e.lastAt, e.primed = count, when, true
		return
	}
	dt := when.Sub(e.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	delta := count - e.last
	if delta < 0 {
		// The counter went backwards: the process restarted and re-zeroed.
		// The delta spans two counter lifetimes and means nothing — drop
		// it and restart the window from the new origin, keeping the
		// previously smoothed rate (the workload did not reset with the
		// counter).
		e.resets++
		e.last, e.lastAt = count, when
		return
	}
	inst := delta / dt
	if !e.haveRate {
		e.rate, e.haveRate = inst, true
	} else {
		alpha := 1 - math.Exp2(-dt/e.halfLife.Seconds())
		e.rate += alpha * (inst - e.rate)
	}
	e.last, e.lastAt = count, when
}

// Rate returns the smoothed rate in events per second. ok is false until
// at least one usable window delta has been observed — callers must treat
// a not-ok estimator as "no data", never as rate zero.
func (e *RateEstimator) Rate() (rate float64, ok bool) {
	return e.rate, e.haveRate
}

// Resets counts counter resets observed (restarts survived).
func (e *RateEstimator) Resets() uint64 { return e.resets }

// Smoother is the gauge companion of RateEstimator: an exponentially
// weighted moving average of a sampled level (busy workers, broken
// servers) with the same spacing-aware weighting. Not safe for concurrent
// use.
type Smoother struct {
	halfLife time.Duration
	value    float64
	lastAt   time.Time
	primed   bool
}

// NewSmoother builds a smoother with the given half-life (DefaultHalfLife
// when non-positive).
func NewSmoother(halfLife time.Duration) *Smoother {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &Smoother{halfLife: halfLife}
}

// Observe records one sample of the level at the given time.
func (s *Smoother) Observe(when time.Time, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if !s.primed {
		s.value, s.lastAt, s.primed = v, when, true
		return
	}
	dt := when.Sub(s.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	alpha := 1 - math.Exp2(-dt/s.halfLife.Seconds())
	s.value += alpha * (v - s.value)
	s.lastAt = when
}

// Value returns the smoothed level; ok is false before the first sample.
func (s *Smoother) Value() (v float64, ok bool) { return s.value, s.primed }
