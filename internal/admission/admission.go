package admission

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/obs/olog"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultInterval is the refit period: how often the controller
	// re-samples counters, re-fits rates and re-solves the self-model.
	DefaultInterval = 5 * time.Second
	// DefaultTargetWait is the admission SLO: a submission predicted to
	// wait longer than this before starting is shed.
	DefaultTargetWait = 30 * time.Second
	// DefaultMaxRetryAfter caps the model-derived Retry-After hint; the
	// client SDK clamps at 30s anyway, so a larger hint only wastes header
	// bytes.
	DefaultMaxRetryAfter = 30 * time.Second

	// DefaultFailureRate and DefaultRepairRate model the serving tier's
	// workers as effectively reliable when no breakdown/repair events have
	// been measured: one failure per ~11 days with one-second repairs puts
	// availability within 1e-6 of 1 while keeping every rate strictly
	// positive for the solver.
	DefaultFailureRate = 1e-6
	DefaultRepairRate  = 1.0
)

// rateClamp bounds fitted failure/repair rates: measured event counts over
// tiny populations can produce arbitrarily extreme per-server rates, and
// the solver wants strictly positive finite ones.
const (
	minFittedRate = 1e-6
	maxFittedRate = 1e6
)

// Flow is one synchronous sample of the modeled tier's counters, taken by
// the Controller on every refit. Arrivals, Completions, Failures and
// Repairs are cumulative (monotone within one process lifetime); Busy and
// Down are current levels; Backlog and Servers describe the queue.
type Flow struct {
	// Arrivals counts submissions offered to the tier (accepted and
	// rejected alike — rejected work is still offered load).
	Arrivals float64
	// Completions counts jobs that left service for any terminal state.
	Completions float64
	// Busy is the number of currently executing jobs.
	Busy float64
	// Backlog is the number of jobs queued or running.
	Backlog int
	// Servers is the worker count of the modeled tier (N of the fitted
	// system).
	Servers int
	// Failures counts server breakdown events (0 = unmeasured: the fitted
	// model falls back to effectively reliable servers).
	Failures float64
	// Repairs counts repair completions.
	Repairs float64
	// Down is the number of servers currently broken.
	Down float64
}

// Rates is one fitted rate set — the measured counterpart of the paper's
// (λ, µ, ξ, η) quadruple, exposed for /v1/plan's measured mode.
type Rates struct {
	// Arrival is λ̂, offered submissions per second.
	Arrival float64 `json:"arrival"`
	// Service is µ̂, completions per second per busy worker.
	Service float64 `json:"service"`
	// Failure is ξ̂, breakdowns per second per operative worker.
	Failure float64 `json:"failure"`
	// Repair is η̂, repairs per second per broken worker.
	Repair float64 `json:"repair"`
}

// Model is one immutable fit of the serving tier: the fitted system, the
// solver's predictions, and the derived admission limit. Stored behind an
// atomic pointer so the Decide hot path reads it lock-free.
type Model struct {
	// FittedAt is the refit timestamp.
	FittedAt time.Time
	// System is the fitted self-model (the serving tier as an M/M/N queue
	// with breakdowns and repairs).
	System core.System
	// Rates echoes the fitted rate quadruple.
	Rates Rates
	// Stable reports eq. 11 for the fitted system; when false the solver
	// was not run (no steady state exists) and MeanJobs/MeanWait are 0.
	Stable bool
	// MeanJobs is L̂, the predicted steady-state queue length.
	MeanJobs float64
	// MeanWait is Ŵ, the predicted steady-state response time.
	MeanWait float64
	// Capacity is N·µ̂·availability — the tier's predicted drain rate in
	// jobs per second.
	Capacity float64
	// Limit is the admission backlog bound: the largest backlog that can
	// clear within the target wait at the predicted capacity.
	Limit float64
	// Backlog is the backlog observed at fit time (the fallback input for
	// Retry-After hints computed without a live backlog).
	Backlog int
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Admit is false when the submission should be shed with a 429.
	Admit bool
	// RetryAfter is the model-derived drain hint for a shed submission
	// (how long until the backlog is predicted to fall back under the
	// admission limit), clamped to [1s, MaxRetryAfter]. Zero when
	// admitted.
	RetryAfter time.Duration
	// PredictedQueue is the model's steady-state L̂ (0 without a model or
	// for an unstable fit).
	PredictedQueue float64
	// ModelDerived reports whether a model snapshot backed the decision;
	// false means the controller had no data and admitted by default.
	ModelDerived bool
}

// Config assembles a Controller. Sample and Evaluate are required.
type Config struct {
	// Sample reads the modeled tier's counters; called once per refit,
	// never on the Decide hot path.
	Sample func() Flow
	// Evaluate solves one fitted system — the service engine's Evaluate,
	// so refits share the worker pool, cache and singleflight tier.
	Evaluate func(ctx context.Context, sys core.System, m core.Method) (*core.Performance, error)
	// Method selects the solver for refits (default core.Spectral).
	Method core.Method
	// Interval is the refit period (default DefaultInterval); negative
	// disables the background loop so tests drive Refit deterministically.
	Interval time.Duration
	// HalfLife is the estimators' smoothing half-life (default
	// DefaultHalfLife).
	HalfLife time.Duration
	// TargetWait is the admission SLO (default DefaultTargetWait).
	TargetWait time.Duration
	// MaxRetryAfter caps the drain hint (default DefaultMaxRetryAfter).
	MaxRetryAfter time.Duration
	// Now substitutes the clock (default time.Now).
	Now func() time.Time
	// Logger receives one line per refit outcome change (default discard).
	Logger *olog.Logger
}

// Controller runs the measure → fit → solve → shed loop. Safe for
// concurrent use: Refit runs on one goroutine, Decide and the metric
// callbacks read atomics only.
type Controller struct {
	sample        func() Flow
	evaluate      func(context.Context, core.System, core.Method) (*core.Performance, error)
	method        core.Method
	interval      time.Duration
	targetWait    time.Duration
	maxRetryAfter time.Duration
	now           func() time.Time
	log           *olog.Logger

	arr  *RateEstimator
	comp *RateEstimator
	fail *RateEstimator
	rep  *RateEstimator
	busy *Smoother
	down *Smoother

	model atomic.Pointer[Model]

	admitted    atomic.Uint64
	shed        atomic.Uint64
	refits      atomic.Uint64
	refitErrors atomic.Uint64

	// solveHist records model-solve durations once RegisterMetrics wires a
	// registry; nil until then (tests without metrics).
	solveMu   sync.Mutex
	solveHist *obs.Histogram

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New validates cfg and builds a Controller. Call Start to launch the
// background refit loop and Close to stop it; tests usually skip Start and
// call Refit directly.
func New(cfg Config) *Controller {
	if cfg.Sample == nil {
		panic("admission: Config.Sample is required")
	}
	if cfg.Evaluate == nil {
		panic("admission: Config.Evaluate is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.TargetWait <= 0 {
		cfg.TargetWait = DefaultTargetWait
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = DefaultMaxRetryAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = olog.Nop()
	}
	return &Controller{
		sample:        cfg.Sample,
		evaluate:      cfg.Evaluate,
		method:        cfg.Method,
		interval:      cfg.Interval,
		targetWait:    cfg.TargetWait,
		maxRetryAfter: cfg.MaxRetryAfter,
		now:           cfg.Now,
		log:           cfg.Logger,
		arr:           NewRateEstimator(cfg.HalfLife),
		comp:          NewRateEstimator(cfg.HalfLife),
		fail:          NewRateEstimator(cfg.HalfLife),
		rep:           NewRateEstimator(cfg.HalfLife),
		busy:          NewSmoother(cfg.HalfLife),
		down:          NewSmoother(cfg.HalfLife),
		stop:          make(chan struct{}),
	}
}

// Start launches the background refit loop (unless the configured interval
// is negative). Call Close to stop it.
func (c *Controller) Start() {
	if c.interval < 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := c.Refit(context.Background()); err != nil {
					c.log.Warn("admission refit failed", olog.F{K: "err", V: err.Error()})
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// Close stops the background refit loop. Idempotent.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Refit runs one measure → fit → solve pass: sample the counters, advance
// the estimators, and — when enough data exists — fit a core.System for
// the serving tier, solve it, and publish the new model snapshot. With
// insufficient data (first window, idle tier) the previous snapshot is
// kept, or none is published and Decide admits everything. A solver
// failure keeps the previous snapshot and counts a refit error.
func (c *Controller) Refit(ctx context.Context) error {
	now := c.now()
	f := c.sample()
	c.arr.Observe(now, f.Arrivals)
	c.comp.Observe(now, f.Completions)
	c.fail.Observe(now, f.Failures)
	c.rep.Observe(now, f.Repairs)
	c.busy.Observe(now, f.Busy)
	c.down.Observe(now, f.Down)

	lam, haveArr := c.arr.Rate()
	crate, haveComp := c.comp.Rate()
	if !haveArr || !haveComp || lam <= 0 {
		// First window, single sample, or a tier nobody is submitting to:
		// nothing to model, nothing to shed.
		return nil
	}
	busyAvg, _ := c.busy.Value()
	if crate <= 0 || busyAvg <= 0 {
		// Load is arriving but nothing has completed yet, so the service
		// rate is unmeasurable; keep whatever model exists rather than
		// fitting µ̂ from nothing.
		return nil
	}
	servers := f.Servers
	if servers < 1 {
		servers = 1
	}
	mu := crate / math.Min(math.Max(busyAvg, 1e-3), float64(servers))
	xi, eta := c.fitBreakdowns(servers)

	sys := core.System{
		Servers:     servers,
		ArrivalRate: lam,
		ServiceRate: mu,
		Operative:   dist.Exp(xi),
		Repair:      dist.Exp(eta),
	}
	if err := sys.Validate(); err != nil {
		c.refitErrors.Add(1)
		return fmt.Errorf("admission: fitted system invalid: %w", err)
	}
	m := &Model{
		FittedAt: now,
		System:   sys,
		Rates:    Rates{Arrival: lam, Service: mu, Failure: xi, Repair: eta},
		Capacity: float64(servers) * mu * sys.Availability(),
		Backlog:  f.Backlog,
	}
	m.Limit = math.Max(m.Capacity*c.targetWait.Seconds(), 1)
	if sys.Stable() {
		start := time.Now()
		perf, err := c.evaluate(ctx, sys, c.method)
		c.observeSolve(time.Since(start))
		if err != nil {
			c.refitErrors.Add(1)
			return fmt.Errorf("admission: solving self-model: %w", err)
		}
		m.Stable = true
		m.MeanJobs = perf.MeanJobs
		m.MeanWait = perf.MeanResponse
	}
	// An unstable fit still publishes: Capacity and Limit are exactly what
	// overload shedding needs, and the missing L̂ only means the predicted
	// queue gauge reads 0 until the tier is stable again.
	c.model.Store(m)
	c.refits.Add(1)
	return nil
}

// fitBreakdowns derives per-server breakdown (ξ̂) and repair (η̂) rates
// from the measured event rates, normalised by the smoothed operative and
// broken populations. Without measured events the defaults model the tier
// as effectively reliable.
func (c *Controller) fitBreakdowns(servers int) (xi, eta float64) {
	xi, eta = DefaultFailureRate, DefaultRepairRate
	frate, haveFail := c.fail.Rate()
	rrate, haveRep := c.rep.Rate()
	if !haveFail || !haveRep || frate <= 0 || rrate <= 0 {
		return xi, eta
	}
	downAvg, _ := c.down.Value()
	up := math.Max(float64(servers)-downAvg, 1)
	xi = clampRate(frate / up)
	eta = clampRate(rrate / math.Max(downAvg, 1e-2))
	return xi, eta
}

// clampRate bounds one fitted rate to the solver-safe range.
func clampRate(r float64) float64 {
	return math.Min(math.Max(r, minFittedRate), maxFittedRate)
}

// Decide is the admission hot path: compare the live backlog against the
// current model's admission limit. It reads one atomic snapshot and never
// samples counters, takes locks or solves anything — BenchmarkAdmissionDecision
// gates it allocation-free.
func (c *Controller) Decide(backlog int) Decision {
	m := c.model.Load()
	if m == nil {
		c.admitted.Add(1)
		return Decision{Admit: true}
	}
	if float64(backlog) <= m.Limit {
		c.admitted.Add(1)
		return Decision{Admit: true, PredictedQueue: m.MeanJobs, ModelDerived: true}
	}
	c.shed.Add(1)
	return Decision{
		RetryAfter:     c.drainHint(m, backlog),
		PredictedQueue: m.MeanJobs,
		ModelDerived:   true,
	}
}

// RetryAfterSeconds returns the current model-derived Retry-After hint in
// whole seconds, computed from the backlog observed at the last refit —
// the value stamped on 429/503 rejections raised by layers that do not
// hold a live backlog (the scheduler's own gate, the drain middleware).
// Zero means "no model yet": the caller falls back to its static hint.
func (c *Controller) RetryAfterSeconds() int {
	m := c.model.Load()
	if m == nil {
		return 0
	}
	return int(math.Ceil(c.drainHint(m, m.Backlog).Seconds()))
}

// drainHint predicts how long the tier needs to drain the backlog excess
// back under the admission limit at the model's capacity, clamped to
// [1s, MaxRetryAfter].
func (c *Controller) drainHint(m *Model, backlog int) time.Duration {
	if m.Capacity <= 0 {
		return c.maxRetryAfter
	}
	excess := float64(backlog) - m.Limit
	if excess < 0 {
		excess = 0
	}
	// +1: even a backlog at the limit needs one service completion before
	// a retried submission helps, so the hint never rounds down to an
	// instant retry storm.
	d := time.Duration((excess + 1) / m.Capacity * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > c.maxRetryAfter {
		d = c.maxRetryAfter
	}
	return d
}

// Snapshot returns the current model (nil before the first successful
// refit) — read-only: snapshots are immutable once published.
func (c *Controller) Snapshot() *Model {
	return c.model.Load()
}

// MeasuredRates returns the last fitted rate quadruple for /v1/plan's
// measured mode; ok is false before the first successful refit.
func (c *Controller) MeasuredRates() (Rates, bool) {
	m := c.model.Load()
	if m == nil {
		return Rates{}, false
	}
	return m.Rates, true
}

// observeSolve records one model-solve duration when a registry is wired.
func (c *Controller) observeSolve(d time.Duration) {
	c.solveMu.Lock()
	h := c.solveHist
	c.solveMu.Unlock()
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// The snapshot keys under which a node's fitted rates appear in its obs
// map (StatsResponse.Obs, ClusterResponse.Obs) — the cluster-aggregation
// contract /v1/plan's measured mode reads from peers.
const (
	MetricArrivalRate = "mus_admission_arrival_rate"
	MetricServiceRate = "mus_admission_service_rate"
	MetricFailureRate = "mus_admission_failure_rate"
	MetricRepairRate  = "mus_admission_repair_rate"
)

// RegisterMetrics registers the controller's mus_admission_* series on r.
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	rates := func(pick func(Rates) float64) func() float64 {
		return func() float64 {
			m := c.model.Load()
			if m == nil {
				return 0
			}
			return pick(m.Rates)
		}
	}
	r.GaugeFunc(MetricArrivalRate,
		"Fitted arrival rate λ̂ of the serving tier's self-model, submissions per second.",
		rates(func(rt Rates) float64 { return rt.Arrival }))
	r.GaugeFunc(MetricServiceRate,
		"Fitted per-worker service rate µ̂ of the self-model, completions per second.",
		rates(func(rt Rates) float64 { return rt.Service }))
	r.GaugeFunc(MetricFailureRate,
		"Fitted per-server breakdown rate ξ̂ of the self-model, events per second.",
		rates(func(rt Rates) float64 { return rt.Failure }))
	r.GaugeFunc(MetricRepairRate,
		"Fitted per-server repair rate η̂ of the self-model, events per second.",
		rates(func(rt Rates) float64 { return rt.Repair }))
	r.GaugeFunc("mus_admission_predicted_queue_jobs",
		"Predicted steady-state queue length L̂ of the self-model (0 while unstable or unfitted).",
		func() float64 {
			m := c.model.Load()
			if m == nil {
				return 0
			}
			return m.MeanJobs
		})
	r.GaugeFunc("mus_admission_predicted_wait_seconds",
		"Predicted steady-state response time Ŵ of the self-model.",
		func() float64 {
			m := c.model.Load()
			if m == nil {
				return 0
			}
			return m.MeanWait
		})
	r.GaugeFunc("mus_admission_backlog_limit_jobs",
		"Model-derived admission bound: the largest backlog that clears within the target wait.",
		func() float64 {
			m := c.model.Load()
			if m == nil {
				return 0
			}
			return m.Limit
		})
	r.CounterFunc("mus_admission_admitted_total",
		"Submissions admitted by the admission controller.",
		c.admitted.Load)
	r.CounterFunc("mus_admission_shed_total",
		"Submissions shed by the admission controller with a model-derived Retry-After.",
		c.shed.Load)
	r.CounterFunc("mus_admission_refits_total",
		"Self-model refits that published a new snapshot.",
		c.refits.Load)
	r.CounterFunc("mus_admission_refit_errors_total",
		"Self-model refits that failed (invalid fit or solver error).",
		c.refitErrors.Load)
	r.CounterFunc("mus_admission_counter_resets_total",
		"Cumulative-counter resets survived by the rate estimators (node restarts).",
		func() uint64 {
			return c.arr.Resets() + c.comp.Resets() + c.fail.Resets() + c.rep.Resets()
		})
	c.solveMu.Lock()
	c.solveHist = r.Histogram("mus_admission_model_solve_seconds",
		"Self-model solve latency per refit, buckets in seconds.", nil)
	c.solveMu.Unlock()
}
