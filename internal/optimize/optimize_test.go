package optimize

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectKnownRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root = %v, want √2", root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 1e-12); err != nil || r != 0 {
		t.Fatalf("r=%v err=%v, want exact endpoint 0", r, err)
	}
	if r, err := Bisect(f, -1, 0, 1e-12); err != nil || r != 0 {
		t.Fatalf("r=%v err=%v, want exact endpoint 0", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentKnownRoots(t *testing.T) {
	cases := []struct {
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
	}
	for i, c := range cases {
		r, err := Brent(c.f, c.a, c.b, 1e-13)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(r-c.want) > 1e-9 {
			t.Errorf("case %d: root = %v, want %v", i, r, c.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentMatchesBisectProperty(t *testing.T) {
	f := func(shift float64) bool {
		s := math.Mod(math.Abs(shift), 10) // root location in (0, 10)
		fn := func(x float64) float64 { return math.Tanh(x - s) }
		rb, err1 := Bisect(fn, -1, 11, 1e-12)
		rr, err2 := Brent(fn, -1, 11, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rb-s) < 1e-9 && math.Abs(rr-s) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-10)
	if math.Abs(min-3) > 1e-8 {
		t.Fatalf("min = %v, want 3", min)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := NelderMead(rosen, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 20000, Tol: 1e-16})
	if v > 1e-10 {
		t.Fatalf("min value %v at %v, want ~0 at (1,1)", v, x)
	}
	if math.Abs(x[0]-1) > 1e-4 || math.Abs(x[1]-1) > 1e-4 {
		t.Fatalf("min at %v, want (1,1)", x)
	}
}

func TestNelderMeadQuadraticND(t *testing.T) {
	target := []float64{1, -2, 3, -4}
	f := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s += d * d
		}
		return s
	}
	x, v := NelderMead(f, make([]float64, 4), NelderMeadOptions{MaxIter: 10000})
	if v > 1e-10 {
		t.Fatalf("min value %v at %v", v, x)
	}
}

func TestNewtonSolves2x2(t *testing.T) {
	// x² + y² = 5, x·y = 2 → (2, 1) from a nearby start.
	f := func(x []float64) []float64 {
		return []float64{x[0]*x[0] + x[1]*x[1] - 5, x[0]*x[1] - 2}
	}
	x, err := Newton(f, []float64{2.5, 0.5}, NewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-8 || math.Abs(x[1]-1) > 1e-8 {
		t.Fatalf("solution %v, want (2,1)", x)
	}
}

func TestNewtonReportsNonConvergence(t *testing.T) {
	// f(x) = 1 + x² has no real root: Newton must fail, not loop.
	f := func(x []float64) []float64 { return []float64{1 + x[0]*x[0]} }
	_, err := Newton(f, []float64{3}, NewtonOptions{MaxIter: 50})
	if err == nil {
		t.Fatal("expected non-convergence error")
	}
}

func TestNewtonDimensionMismatch(t *testing.T) {
	f := func(x []float64) []float64 { return []float64{x[0], x[0]} }
	if _, err := Newton(f, []float64{1}, NewtonOptions{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
