// Package optimize provides the small numerical-optimisation toolkit used by
// the distribution-fitting procedures (paper §2) and the cost-optimisation
// experiments (paper §4): bisection and Brent root finding, golden-section
// line search, Nelder–Mead simplex minimisation and a damped Newton solver
// for nonlinear systems.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("optimize: interval does not bracket a root")

// ErrNoConvergence is returned when an iteration exceeds its budget.
var ErrNoConvergence = errors.New("optimize: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. The result is within tol of a true root.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%v)=%v, f(%v)=%v", ErrNoBracket, a, fa, b, fb)
	}
	for i := 0; i < 200 && math.Abs(b-a) > tol; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, nil
}

// Brent finds a root of f in a bracketing interval [a, b] using Brent's
// method (inverse quadratic interpolation with bisection fallback).
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%v)=%v, f(%v)=%v", ErrNoBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConvergence
}

// GoldenSection minimises a unimodal f on [a, b] to within tol and returns
// the minimiser.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for math.Abs(b-a) > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// NelderMeadOptions configures the simplex minimiser. The zero value selects
// sensible defaults.
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex iterations (default 2000).
	MaxIter int
	// Tol is the convergence threshold on the simplex f-spread (default 1e-12).
	Tol float64
	// Step is the initial simplex edge relative to |x0[i]| (default 0.1, with
	// an absolute floor of 0.01 for zero coordinates).
	Step float64
}

// NelderMead minimises f starting from x0 using the Nelder–Mead downhill
// simplex. Returns the best point and its value. It is derivative-free,
// which suits the paper's brute-force hyperexponential rate search where the
// moment equations are too ill-conditioned for Newton iterations.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64) {
	if opts.MaxIter == 0 {
		opts.MaxIter = 2000
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-12
	}
	if opts.Step == 0 {
		opts.Step = 0.1
	}
	n := len(x0)
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	// Build the initial simplex.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			d := opts.Step * math.Abs(p[i-1])
			if d == 0 {
				d = 0.01
			}
			p[i-1] += d
		}
		pts[i] = p
		vals[i] = f(p)
	}
	order := func() {
		// Insertion sort by value: simplexes are tiny.
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
	}
	order()
	for it := 0; it < opts.MaxIter; it++ {
		if math.Abs(vals[n]-vals[0]) <= opts.Tol*(math.Abs(vals[0])+opts.Tol) {
			break
		}
		// Centroid of all but the worst.
		cen := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				cen[j] += pts[i][j]
			}
		}
		for j := range cen {
			cen[j] /= float64(n)
		}
		mix := func(t float64) []float64 {
			p := make([]float64, n)
			for j := range p {
				p[j] = cen[j] + t*(pts[n][j]-cen[j])
			}
			return p
		}
		xr := mix(-alpha)
		fr := f(xr)
		switch {
		case fr < vals[0]:
			xe := mix(-gamma)
			if fe := f(xe); fe < fr {
				pts[n], vals[n] = xe, fe
			} else {
				pts[n], vals[n] = xr, fr
			}
		case fr < vals[n-1]:
			pts[n], vals[n] = xr, fr
		default:
			xc := mix(rho)
			if fc := f(xc); fc < vals[n] {
				pts[n], vals[n] = xc, fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
		order()
	}
	return pts[0], vals[0]
}

// NewtonOptions configures the damped Newton solver. The zero value selects
// sensible defaults.
type NewtonOptions struct {
	// MaxIter bounds Newton steps (default 100).
	MaxIter int
	// Tol is the residual ∞-norm target (default 1e-10).
	Tol float64
	// FDStep is the relative finite-difference step (default 1e-7).
	FDStep float64
}

// Newton solves the nonlinear system f(x) = 0 by damped Newton iteration
// with a forward-difference Jacobian and halving line search. It returns
// ErrNoConvergence when the residual fails to reach Tol — the behaviour the
// paper reports for the 3-phase hyperexponential moment equations.
func Newton(f func([]float64) []float64, x0 []float64, opts NewtonOptions) ([]float64, error) {
	if opts.MaxIter == 0 {
		opts.MaxIter = 100
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-10
	}
	if opts.FDStep == 0 {
		opts.FDStep = 1e-7
	}
	n := len(x0)
	x := append([]float64(nil), x0...)
	fx := f(x)
	if len(fx) != n {
		return nil, fmt.Errorf("optimize: system returns %d residuals for %d unknowns", len(fx), n)
	}
	for it := 0; it < opts.MaxIter; it++ {
		if infNorm(fx) < opts.Tol {
			return x, nil
		}
		jac := numJacobian(f, x, fx, opts.FDStep)
		step, err := solveDense(jac, fx)
		if err != nil {
			return nil, fmt.Errorf("optimize: singular Jacobian at iteration %d: %w", it, err)
		}
		// Damped update: halve until the residual decreases (max 30 halvings).
		base := infNorm(fx)
		lambda := 1.0
		var nx []float64
		var nfx []float64
		improved := false
		for h := 0; h < 30; h++ {
			nx = make([]float64, n)
			for i := range nx {
				nx[i] = x[i] - lambda*step[i]
			}
			nfx = f(nx)
			if r := infNorm(nfx); r < base && !math.IsNaN(r) {
				improved = true
				break
			}
			lambda /= 2
		}
		if !improved {
			return x, ErrNoConvergence
		}
		x, fx = nx, nfx
	}
	if infNorm(fx) < opts.Tol {
		return x, nil
	}
	return x, ErrNoConvergence
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func numJacobian(f func([]float64) []float64, x, fx []float64, rel float64) [][]float64 {
	n := len(x)
	jac := make([][]float64, n)
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	xp := append([]float64(nil), x...)
	for j := 0; j < n; j++ {
		h := rel * (math.Abs(x[j]) + 1)
		xp[j] = x[j] + h
		fp := f(xp)
		xp[j] = x[j]
		for i := 0; i < n; i++ {
			jac[i][j] = (fp[i] - fx[i]) / h
		}
	}
	return jac
}

// solveDense solves the small dense system J·s = r with partial pivoting.
// Kept local to avoid a dependency cycle with internal/linalg.
func solveDense(jac [][]float64, r []float64) ([]float64, error) {
	n := len(r)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append(append([]float64(nil), jac[i]...), r[i])
	}
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
				p = i
			}
		}
		a[k], a[p] = a[p], a[k]
		if a[k][k] == 0 {
			return nil, errors.New("optimize: singular matrix")
		}
		for i := k + 1; i < n; i++ {
			m := a[i][k] / a[k][k]
			if m == 0 {
				continue
			}
			for j := k; j <= n; j++ {
				a[i][j] -= m * a[k][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := a[i][n]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}
