package store

import (
	"fmt"
	"testing"
	"time"

	"repro/api"
)

// sweepEntry builds a representative submit entry for job id.
func sweepEntry(id string) Entry {
	return Entry{
		Kind:   EntrySubmit,
		Job:    id,
		Time:   time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		Origin: "node-a",
		Request: &api.JobRequest{
			Kind: api.JobKindSweep,
			Sweep: &api.SweepRequest{
				System: api.System{
					Servers:    4,
					Mu:         1,
					OpWeights:  []float64{1},
					OpRates:    []float64{0.05},
					RepWeights: []float64{1},
					RepRates:   []float64{0.5},
				},
				Param:  "lambda",
				Values: []float64{0.1, 0.5, 0.9},
			},
		},
	}
}

func TestJobLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenJobLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenJobLog: %v", err)
	}
	entries := []Entry{
		sweepEntry("job-1"),
		{Kind: EntryState, Job: "job-1", Time: time.Now().UTC(), State: api.JobStateRunning},
		{Kind: EntryPoints, Job: "job-1", Time: time.Now().UTC(), Points: []api.SweepPoint{
			{Index: 0, Value: 0.1}, {Index: 1, Value: 0.5},
		}},
		{Kind: EntryState, Job: "job-1", Time: time.Now().UTC(), State: api.JobStateDone},
	}
	for _, e := range entries {
		if err := l.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, err = OpenJobLog(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var got []Entry
	if err := l.Replay(func(e Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(entries))
	}
	if got[0].Kind != EntrySubmit || got[0].Job != "job-1" || got[0].Origin != "node-a" {
		t.Fatalf("submit entry mangled: %+v", got[0])
	}
	if got[0].Request == nil || got[0].Request.Sweep == nil || len(got[0].Request.Sweep.Values) != 3 {
		t.Fatalf("request payload mangled: %+v", got[0].Request)
	}
	if got[2].Kind != EntryPoints || len(got[2].Points) != 2 || got[2].Points[1].Value != 0.5 {
		t.Fatalf("points entry mangled: %+v", got[2])
	}
	if got[3].State != api.JobStateDone {
		t.Fatalf("state entry mangled: %+v", got[3])
	}
}

func TestJobLogCompactDropsExpiredJobs(t *testing.T) {
	l, err := OpenJobLog(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenJobLog: %v", err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("job-%d", i)
		if err := l.Append(sweepEntry(id)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Append(Entry{Kind: EntryState, Job: id, Time: time.Now().UTC(), State: api.JobStateDone}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	retained := map[string]bool{"job-1": true, "job-4": true}
	if err := l.Compact(func(id string) bool { return retained[id] }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	perJob := map[string]int{}
	if err := l.Replay(func(e Entry) error { perJob[e.Job]++; return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(perJob) != 2 || perJob["job-1"] != 2 || perJob["job-4"] != 2 {
		t.Fatalf("compaction kept the wrong set: %v", perJob)
	}
}

func TestJobLogSkipsUndecodableEntries(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenJobLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenJobLog: %v", err)
	}
	defer l.Close()
	if err := l.Append(sweepEntry("job-1")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// A CRC-valid record that is not JSON: a future format extension or a
	// hand-edited log. Replay must skip it, not fail the boot.
	if err := l.wal.Append([]byte("not-json")); err != nil {
		t.Fatalf("raw Append: %v", err)
	}
	if err := l.Append(Entry{Kind: EntryState, Job: "job-1", Time: time.Now().UTC(), State: api.JobStateRunning}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	var kinds []EntryKind
	if err := l.Replay(func(e Entry) error { kinds = append(kinds, e.Kind); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(kinds) != 2 || kinds[0] != EntrySubmit || kinds[1] != EntryState {
		t.Fatalf("replayed kinds = %v, want [submit state]", kinds)
	}
}

func TestSnapshotRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/snapshot.json"
	type payload struct {
		Keys []string `json:"keys"`
		N    int      `json:"n"`
	}
	var missing payload
	if err := ReadSnapshot(path, &missing); err != ErrNoSnapshot {
		t.Fatalf("ReadSnapshot(missing) = %v, want ErrNoSnapshot", err)
	}
	want := payload{Keys: []string{"a", "b"}, N: 42}
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	var got payload
	if err := ReadSnapshot(path, &got); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.N != want.N || len(got.Keys) != 2 || got.Keys[1] != "b" {
		t.Fatalf("snapshot round trip: got %+v, want %+v", got, want)
	}
	// Overwrite is atomic: a second write fully replaces the first.
	if err := WriteSnapshot(path, payload{N: 7}); err != nil {
		t.Fatalf("WriteSnapshot overwrite: %v", err)
	}
	got = payload{}
	if err := ReadSnapshot(path, &got); err != nil {
		t.Fatalf("ReadSnapshot after overwrite: %v", err)
	}
	if got.N != 7 || len(got.Keys) != 0 {
		t.Fatalf("overwrite not atomic: %+v", got)
	}
}
