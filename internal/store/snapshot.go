package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrNoSnapshot reports that no snapshot file exists — the normal state
// of a first boot, distinct from a snapshot that exists but is unreadable.
var ErrNoSnapshot = errors.New("store: no snapshot")

// WriteSnapshot atomically replaces the snapshot at path with the JSON
// encoding of v: the bytes are written to a sibling tmp file, fsynced,
// and renamed into place, so a crash mid-write leaves the previous
// snapshot intact. Snapshots are advisory (they only warm caches), so
// unlike WAL appends they are all-or-nothing rather than incremental.
func WriteSnapshot(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// ReadSnapshot decodes the snapshot at path into v. A missing file
// returns ErrNoSnapshot; a present-but-undecodable file returns the
// decode error (the caller decides whether a stale snapshot is fatal —
// for cache warming it never is).
func ReadSnapshot(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return ErrNoSnapshot
		}
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("store: decode snapshot %s: %w", path, err)
	}
	return nil
}
