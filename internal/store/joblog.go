package store

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/api"
	"repro/internal/obs/trace"
)

// EntryKind names one job-log record type.
type EntryKind string

// Job-log record kinds. A job's life on disk is one submit entry, zero or
// more state and points entries, and at most one result entry.
const (
	// EntrySubmit records an accepted job: its request, origin node and
	// submission time. It is the entry that makes a job durable — the
	// scheduler syncs the log before acknowledging the submission.
	EntrySubmit EntryKind = "submit"
	// EntryState records a state-machine transition (running, done,
	// failed, canceled), with the structured error for failures.
	EntryState EntryKind = "state"
	// EntryPoints records a batch of solved sweep points in grid order.
	// Because emission order is grid order, the concatenation of a job's
	// points entries is always a prefix of its final result — which is
	// what lets a restarted node resume a sweep at the first unsolved
	// index instead of re-solving everything.
	EntryPoints EntryKind = "points"
	// EntryResult records a terminal job's full result payload.
	EntryResult EntryKind = "result"
)

// Entry is one job-log record. Kind selects which optional fields are
// meaningful; Job and Time are always set.
type Entry struct {
	// Kind is the record type; see the Entry* constants.
	Kind EntryKind `json:"kind"`
	// Job is the job identifier the record belongs to.
	Job string `json:"job"`
	// Time is when the recorded event happened.
	Time time.Time `json:"time"`
	// Origin is the node that accepted the job (submit entries).
	Origin string `json:"origin,omitempty"`
	// RequestID is the X-Request-ID of the submission that created the
	// job (submit entries), replayed so a restarted node's job records
	// still answer "which request started this".
	RequestID string `json:"request_id,omitempty"`
	// Trace is the submission's W3C traceparent (submit entries): the
	// distributed trace context a resumed job re-attaches to after a
	// restart, so its recovery spans join the original trace.
	Trace string `json:"trace,omitempty"`
	// Request is the submitted payload (submit entries).
	Request *api.JobRequest `json:"request,omitempty"`
	// State is the entered state (state entries).
	State string `json:"state,omitempty"`
	// Error is the structured failure of a failed transition.
	Error *api.Error `json:"error,omitempty"`
	// Points is a batch of solved sweep points (points entries).
	Points []api.SweepPoint `json:"points,omitempty"`
	// Result is the terminal result payload (result entries).
	Result *api.JobResult `json:"result,omitempty"`
}

// JobLog is the typed façade over a WAL that the job scheduler persists
// through: JSON-encoded Entry records behind the WAL's framing,
// durability and replay guarantees. Safe for concurrent use.
type JobLog struct {
	wal *WAL
}

// OpenJobLog opens the job log in dir (see OpenWAL for recovery
// semantics).
func OpenJobLog(dir string, opts Options) (*JobLog, error) {
	w, err := OpenWAL(dir, opts)
	if err != nil {
		return nil, err
	}
	return &JobLog{wal: w}, nil
}

// Append writes one entry. Durability follows the WAL's fsync batching;
// call Sync after appends that must be durable before acknowledgement.
func (l *JobLog) Append(e Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encode entry: %w", err)
	}
	return l.wal.Append(payload)
}

// AppendCtx is Append with a child span (mus.store.append) when ctx
// carries a live trace — the seam that makes WAL writes visible inside a
// request's trace tree. Tracing off degrades to a plain Append.
func (l *JobLog) AppendCtx(ctx context.Context, e Entry) error {
	sp := trace.StartLeaf(ctx, "mus.store.append")
	sp.Set(trace.Str("kind", string(e.Kind)))
	sp.Set(trace.Str("job", e.Job))
	err := l.Append(e)
	sp.Fail(err)
	sp.End()
	return err
}

// Sync forces appended entries to disk.
func (l *JobLog) Sync() error { return l.wal.Sync() }

// SyncCtx is Sync with a child span (mus.store.fsync) when ctx carries a
// live trace — fsync waits are the dominant cost of a durable submit, so
// they get their own span.
func (l *JobLog) SyncCtx(ctx context.Context) error {
	sp := trace.StartLeaf(ctx, "mus.store.fsync")
	err := l.Sync()
	sp.Fail(err)
	sp.End()
	return err
}

// Replay streams every logged entry, oldest first. Entries that fail to
// decode as JSON are skipped (they passed the CRC, so they are a
// format-evolution artifact, not corruption); framing-level corruption
// before the tail still returns ErrCorrupt.
func (l *JobLog) Replay(fn func(Entry) error) error {
	return l.wal.Replay(func(payload []byte) error {
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return nil
		}
		return fn(e)
	})
}

// ReplayCtx is Replay with a child span (mus.store.replay) when ctx
// carries a live trace, annotated with how many entries streamed — the
// boot-time seam of a node restart's recovery trace.
func (l *JobLog) ReplayCtx(ctx context.Context, fn func(Entry) error) error {
	sp := trace.StartLeaf(ctx, "mus.store.replay")
	var n int64
	err := l.Replay(func(e Entry) error {
		n++
		return fn(e)
	})
	sp.Set(trace.Int("entries", n))
	sp.Fail(err)
	sp.End()
	return err
}

// Compact rewrites the log keeping only entries whose job retain accepts
// — the scheduler passes its set of still-retained job IDs, dropping
// completed-and-expired history so boot replay stays proportional to the
// live job population.
func (l *JobLog) Compact(retain func(jobID string) bool) error {
	return l.wal.Compact(func(payload []byte) bool {
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return false
		}
		return retain(e.Job)
	})
}

// Stats exposes the underlying WAL counters.
func (l *JobLog) Stats() WALStats { return l.wal.Stats() }

// Close flushes and closes the underlying WAL.
func (l *JobLog) Close() error { return l.wal.Close() }
