// Package store is the durability layer of the serving tier: an
// append-only, CRC-framed, fsync-batched write-ahead log plus an atomic
// JSON snapshot file, both living under one data directory. The paper
// models servers that break down and recover; this package is what lets
// our own nodes do the same without losing the work they had accepted —
// job records, state transitions and solved sweep points survive a
// kill -9 and are replayed on the next boot, while the snapshot warms the
// solver caches so a restarted node rejoins hot.
//
// Layering, bottom up:
//
//   - Frames. EncodeFrame/DecodeFrames define the record framing: a
//     little-endian length, a CRC-32C of the payload, then the payload.
//     Decoding is strictly defensive — truncated tails, bit flips and
//     zero-length frames terminate the scan cleanly, never panic and
//     never yield a record that was not written whole.
//   - Segments. A WAL is a directory of wal-<gen>-<seq>.log segment
//     files. Appends go to the newest segment and roll to a new one past
//     SegmentSize; fsyncs are batched on FsyncInterval (Sync forces one).
//     On open, the tail segment is scanned and truncated at the first
//     torn frame, so a crash mid-write costs at most the unsynced suffix.
//   - Compaction. Compact rewrites the records a filter keeps into a
//     fresh generation (tmp file, fsync, atomic rename, then the old
//     generation is deleted), so completed-and-expired job records stop
//     costing replay time. A crash at any point leaves either the old
//     generation or the new one — never a mix.
//
// JobLog (joblog.go) types the payloads for the job scheduler;
// WriteSnapshot/ReadSnapshot (snapshot.go) handle the cache snapshot.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Frame layout: 4-byte little-endian payload length, 4-byte CRC-32C
// (Castagnoli) of the payload, then the payload bytes.
const frameHeaderSize = 8

// MaxRecordSize bounds one record's payload. Anything larger on decode is
// treated as corruption: a flipped bit in the length field must not make
// the scanner attempt a gigabyte read.
const MaxRecordSize = 16 << 20

// castagnoli is the CRC-32C table shared by encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed its CRC (or an impossible
// length) before the tail of the log — data loss that truncation cannot
// explain away.
var ErrCorrupt = errors.New("store: corrupt record before log tail")

// EncodeFrame appends one framed record to dst and returns the extended
// slice. Empty payloads are legal to encode but decode as end-of-log (an
// all-zero region — a preallocated or torn tail — is indistinguishable
// from them), so callers framing real records must send at least one byte.
func EncodeFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrames scans data for framed records, calling fn with each intact
// payload in order, and returns how many bytes of data held intact
// records. The scan stops — without error — at the first frame that is
// torn (truncated header or payload), zero-length, over-sized or
// CRC-mismatched: every one of those is what the tail of a crashed log
// looks like, and consumed tells the caller where to truncate. fn's error
// aborts the scan and is returned verbatim. fn must not retain the
// payload slice; it aliases data.
func DecodeFrames(data []byte, fn func(payload []byte) error) (consumed int, err error) {
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			return off, nil // torn or absent header: tail
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || n > MaxRecordSize {
			return off, nil // zero-length or absurd length: tail
		}
		end := off + frameHeaderSize + int(n)
		if end < 0 || end > len(data) {
			return off, nil // torn payload: tail
		}
		payload := data[off+frameHeaderSize : end]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return off, nil // bit flip: tail
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off = end
	}
}

// Options tunes a WAL.
type Options struct {
	// SegmentSize is the byte threshold past which appends roll to a new
	// segment file (default DefaultSegmentSize).
	SegmentSize int64
	// FsyncInterval batches fsyncs: appends mark the log dirty and a
	// background loop syncs every interval (default DefaultFsyncInterval).
	// Zero or negative disables the loop — every Append syncs before
	// returning, the strict-durability mode tests use.
	FsyncInterval time.Duration
}

// DefaultSegmentSize is the segment roll threshold used for a zero
// Options.SegmentSize.
const DefaultSegmentSize = 8 << 20

// DefaultFsyncInterval is the fsync batching period used for a zero
// Options.FsyncInterval: short enough that an acknowledged sweep point
// survives anything but a crash within milliseconds of landing, long
// enough to amortise thousands of point appends per sync.
const DefaultFsyncInterval = 10 * time.Millisecond

// WALStats snapshots a log's lifetime counters.
type WALStats struct {
	// AppendedBytes counts frame bytes written (headers included).
	AppendedBytes uint64
	// AppendedRecords counts records written.
	AppendedRecords uint64
	// Fsyncs counts fsync calls issued.
	Fsyncs uint64
	// Segments is the current segment-file count.
	Segments int
	// ReplayDuration is how long the last Replay took (zero before one).
	ReplayDuration time.Duration
	// ReplayedRecords counts records delivered by the last Replay.
	ReplayedRecords uint64
}

// WAL is an append-only segmented log. It is safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []segmentRef // sorted (gen, seq), last is active
	active   *os.File
	w        *bufio.Writer
	size     int64 // bytes in the active segment
	dirty    bool  // buffered or written-but-unsynced data pending
	closed   bool

	appendedBytes atomic.Uint64
	appendedRecs  atomic.Uint64
	fsyncs        atomic.Uint64
	replayNanos   atomic.Int64
	replayedRecs  atomic.Uint64

	stopSync chan struct{}
	syncDone chan struct{}
}

// segmentRef names one on-disk segment.
type segmentRef struct {
	gen, seq uint64
}

func (s segmentRef) filename() string {
	return fmt.Sprintf("wal-%08d-%08d.log", s.gen, s.seq)
}

// parseSegmentName recovers a segmentRef from a filename, reporting
// whether it is a live segment (tmp files and foreign names are not).
func parseSegmentName(name string) (segmentRef, bool) {
	var s segmentRef
	if _, err := fmt.Sscanf(name, "wal-%08d-%08d.log", &s.gen, &s.seq); err != nil {
		return segmentRef{}, false
	}
	return s, name == s.filename()
}

// OpenWAL opens (or creates) the log under dir: stray tmp files and
// superseded generations are deleted, the tail segment is truncated at
// its first torn frame, and appends resume from there. The caller should
// Replay before appending if it needs the history.
func OpenWAL(dir string, opts Options) (*WAL, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read data dir: %w", err)
	}
	var segs []segmentRef
	maxGen := uint64(0)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if filepath.Ext(e.Name()) == ".tmp" {
			// A compaction that died before its atomic rename; harmless.
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if s, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, s)
			if s.gen > maxGen {
				maxGen = s.gen
			}
		}
	}
	// Only the newest generation is live: older ones are leftovers of a
	// compaction that crashed between its rename and its deletes.
	live := segs[:0]
	for _, s := range segs {
		if s.gen == maxGen {
			live = append(live, s)
		} else {
			_ = os.Remove(filepath.Join(dir, s.filename()))
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })

	w := &WAL{dir: dir, opts: opts, segments: append([]segmentRef(nil), live...)}
	if len(w.segments) == 0 {
		w.segments = []segmentRef{{gen: maxGen, seq: 0}}
		if err := w.openActive(os.O_CREATE | os.O_EXCL); err != nil {
			return nil, err
		}
	} else {
		// Truncate the tail segment at its first torn frame so appends
		// never land after garbage.
		tail := w.segments[len(w.segments)-1]
		path := filepath.Join(dir, tail.filename())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: read tail segment: %w", err)
		}
		good, _ := DecodeFrames(data, nil)
		if good < len(data) {
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, fmt.Errorf("store: truncate torn tail: %w", err)
			}
		}
		if err := w.openActive(0); err != nil {
			return nil, err
		}
	}
	if opts.FsyncInterval > 0 {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// openActive opens the last segment for appending. Callers hold mu or
// have exclusive access.
func (w *WAL) openActive(extraFlags int) error {
	ref := w.segments[len(w.segments)-1]
	f, err := os.OpenFile(filepath.Join(w.dir, ref.filename()),
		os.O_WRONLY|os.O_APPEND|extraFlags, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	w.active = f
	w.size = st.Size()
	w.w = bufio.NewWriter(f)
	return nil
}

// Append frames one record and writes it to the active segment, rolling
// to a new segment past the size threshold. With fsync batching enabled
// the record is durable within one FsyncInterval; otherwise Append syncs
// before returning. Empty payloads are rejected — they would decode as
// end-of-log.
func (w *WAL) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("store: empty record")
	}
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: record of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordSize)
	}
	frame := EncodeFrame(nil, payload)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("store: log is closed")
	}
	if w.size >= w.opts.SegmentSize {
		if err := w.rollLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	if _, err := w.w.Write(frame); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("store: append: %w", err)
	}
	w.size += int64(len(frame))
	w.dirty = true
	w.appendedBytes.Add(uint64(len(frame)))
	w.appendedRecs.Add(1)
	batched := w.opts.FsyncInterval > 0
	var err error
	if !batched {
		err = w.syncLocked()
	}
	w.mu.Unlock()
	return err
}

// rollLocked seals the active segment (flush + fsync) and starts the next
// one in the same generation. Callers hold mu.
func (w *WAL) rollLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	last := w.segments[len(w.segments)-1]
	w.segments = append(w.segments, segmentRef{gen: last.gen, seq: last.seq + 1})
	return w.openActive(os.O_CREATE | os.O_EXCL)
}

// Sync forces buffered appends to disk. It is a no-op on a clean log.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// syncLocked flushes the buffered writer and fsyncs the active segment.
// Callers hold mu.
func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.fsyncs.Add(1)
	w.dirty = false
	return nil
}

// syncLoop is the fsync-batching goroutine: one fsync per interval while
// appends keep arriving.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = w.Sync() // an I/O error surfaces on the next Append/Sync/Close
		case <-w.stopSync:
			return
		}
	}
}

// Replay streams every intact record, oldest first, to fn. A torn tail on
// the final segment is skipped silently (it was truncated at open; a
// crash after open can recreate one); a bad frame before the tail returns
// ErrCorrupt after delivering everything up to it. fn must not retain the
// payload slice.
func (w *WAL) Replay(fn func(payload []byte) error) error {
	start := time.Now()
	w.mu.Lock()
	if err := w.syncLocked(); err != nil { // fn must see every acknowledged append
		w.mu.Unlock()
		return err
	}
	segs := append([]segmentRef(nil), w.segments...)
	w.mu.Unlock()
	var replayed uint64
	for i, s := range segs {
		data, err := os.ReadFile(filepath.Join(w.dir, s.filename()))
		if err != nil {
			return fmt.Errorf("store: replay: %w", err)
		}
		consumed, err := DecodeFrames(data, func(p []byte) error {
			replayed++
			return fn(p)
		})
		if err != nil {
			return err
		}
		if consumed < len(data) && i < len(segs)-1 {
			return fmt.Errorf("%w: segment %s offset %d", ErrCorrupt, s.filename(), consumed)
		}
	}
	w.replayNanos.Store(int64(time.Since(start)))
	w.replayedRecs.Store(replayed)
	return nil
}

// Compact rewrites the log keeping only the records keep accepts: they
// are copied into a single fresh-generation segment via a tmp file, an
// atomic rename publishes it, and the old generation is deleted. Appends
// are blocked for the duration. A crash anywhere leaves a log that opens
// as either the old or the new generation, never a mix.
func (w *WAL) Compact(keep func(payload []byte) bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: log is closed")
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	old := append([]segmentRef(nil), w.segments...)
	next := segmentRef{gen: old[0].gen + 1, seq: 0}
	tmpPath := filepath.Join(w.dir, next.filename()+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	var size int64
	for i, s := range old {
		data, err := os.ReadFile(filepath.Join(w.dir, s.filename()))
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact read: %w", err)
		}
		consumed, err := DecodeFrames(data, func(p []byte) error {
			if !keep(p) {
				return nil
			}
			frame := EncodeFrame(nil, p)
			size += int64(len(frame))
			_, werr := bw.Write(frame)
			return werr
		})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		if consumed < len(data) && i < len(old)-1 {
			tmp.Close()
			return fmt.Errorf("%w: segment %s offset %d", ErrCorrupt, s.filename(), consumed)
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(w.dir, next.filename())); err != nil {
		return fmt.Errorf("store: compact publish: %w", err)
	}
	w.fsyncs.Add(1)
	syncDir(w.dir)
	// The new generation is durable; retire the old one and point appends
	// at the compacted segment.
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: compact retire: %w", err)
	}
	for _, s := range old {
		_ = os.Remove(filepath.Join(w.dir, s.filename()))
	}
	w.segments = []segmentRef{next}
	w.dirty = false
	return w.openActive(0)
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Stats snapshots the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	segs := len(w.segments)
	w.mu.Unlock()
	return WALStats{
		AppendedBytes:   w.appendedBytes.Load(),
		AppendedRecords: w.appendedRecs.Load(),
		Fsyncs:          w.fsyncs.Load(),
		Segments:        segs,
		ReplayDuration:  time.Duration(w.replayNanos.Load()),
		ReplayedRecords: w.replayedRecs.Load(),
	}
}

// Close flushes, fsyncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	if w.stopSync != nil {
		close(w.stopSync)
		<-w.syncDone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if cerr := w.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the directory the log lives in.
func (w *WAL) Dir() string { return w.dir }
