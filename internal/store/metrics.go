package store

import "repro/internal/obs"

// RegisterMetrics exposes the WAL's lifetime counters on a metrics
// registry. Everything is collected at scrape time from atomics the log
// already maintains, so the append hot path gains no new writes. Call
// once per log per registry; duplicate registration panics by design.
func (w *WAL) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("mus_store_appended_bytes_total",
		"Frame bytes appended to the write-ahead log (headers included).",
		w.appendedBytes.Load)
	r.CounterFunc("mus_store_appended_records_total",
		"Records appended to the write-ahead log.",
		w.appendedRecs.Load)
	r.CounterFunc("mus_store_fsyncs_total",
		"Fsync calls issued by the write-ahead log (batched appends share one).",
		w.fsyncs.Load)
	r.GaugeFunc("mus_store_segments",
		"Write-ahead log segment files currently on disk.",
		func() float64 { return float64(w.Stats().Segments) })
	r.GaugeFunc("mus_store_replay_seconds",
		"Wall-clock duration of the last boot replay, in seconds.",
		func() float64 { return w.Stats().ReplayDuration.Seconds() })
	r.GaugeFunc("mus_store_replayed_records",
		"Records delivered by the last boot replay.",
		func() float64 { return float64(w.Stats().ReplayedRecords) })
}

// RegisterMetrics exposes the job log's underlying WAL counters.
func (l *JobLog) RegisterMetrics(r *obs.Registry) { l.wal.RegisterMetrics(r) }
