package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendAll writes every payload and forces them to disk.
func appendAll(t *testing.T, w *WAL, payloads [][]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// replayAll collects every replayed payload.
func replayAll(t *testing.T, w *WAL) [][]byte {
	t.Helper()
	var got [][]byte
	if err := w.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("a"), []byte("hello world"), bytes.Repeat([]byte{0xAB}, 4096)}
	var buf []byte
	for _, p := range payloads {
		buf = EncodeFrame(buf, p)
	}
	var got [][]byte
	consumed, err := DecodeFrames(buf, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d: got %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestDecodeFramesTornAndCorruptTails(t *testing.T) {
	good := EncodeFrame(nil, []byte("first"))
	good = EncodeFrame(good, []byte("second"))
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated header", append(append([]byte(nil), good...), 0x07, 0x00)},
		{"truncated payload", append(append([]byte(nil), good...), EncodeFrame(nil, []byte("torn-record"))[:12]...)},
		{"zero-length frame", append(append([]byte(nil), good...), make([]byte, 32)...)},
		{"bit-flipped crc", func() []byte {
			d := EncodeFrame(append([]byte(nil), good...), []byte("flipped"))
			d[len(d)-1] ^= 0x01
			return d
		}()},
		{"absurd length", append(append([]byte(nil), good...), 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := 0
			consumed, err := DecodeFrames(tc.data, func(p []byte) error { n++; return nil })
			if err != nil {
				t.Fatalf("DecodeFrames: %v", err)
			}
			if consumed != len(good) {
				t.Fatalf("consumed %d, want %d (the intact prefix)", consumed, len(good))
			}
			if n != 2 {
				t.Fatalf("decoded %d records, want 2", n)
			}
		})
	}
}

func TestWALAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	payloads := make([][]byte, 50)
	for i := range payloads {
		payloads[i] = fmt.Appendf(nil, "record-%03d", i)
	}
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	appendAll(t, w, payloads)
	if got := replayAll(t, w); len(got) != len(payloads) {
		t.Fatalf("live replay: %d records, want %d", len(got), len(payloads))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w, err = OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	got := replayAll(t, w)
	if len(got) != len(payloads) {
		t.Fatalf("reopen replay: %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d: got %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	appendAll(t, w, [][]byte{[]byte("one"), []byte("two")})
	tail := filepath.Join(dir, w.segments[len(w.segments)-1].filename())
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-write: half a frame at the end of the tail.
	torn := EncodeFrame(nil, []byte("torn-away"))[:10]
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open tail: %v", err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatalf("write torn bytes: %v", err)
	}
	f.Close()

	w, err = OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer w.Close()
	if got := replayAll(t, w); len(got) != 2 {
		t.Fatalf("replay after truncation: %d records, want 2", len(got))
	}
	// Appends after truncation land cleanly where the torn frame was.
	appendAll(t, w, [][]byte{[]byte("three")})
	got := replayAll(t, w)
	if len(got) != 3 || string(got[2]) != "three" {
		t.Fatalf("replay after post-truncation append: %q", got)
	}
}

func TestWALCorruptionBeforeTailIsFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(fmt.Appendf(nil, "record-%02d-%s", i, "padding-to-force-rotation")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if len(w.segments) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(w.segments))
	}
	first := filepath.Join(dir, w.segments[0].filename())
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read first segment: %v", err)
	}
	data[frameHeaderSize] ^= 0x01 // flip one payload bit in a non-final segment
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatalf("rewrite first segment: %v", err)
	}
	w, err = OpenWAL(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	err = w.Replay(func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestWALSegmentRotationPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	var payloads [][]byte
	for i := 0; i < 100; i++ {
		payloads = append(payloads, fmt.Appendf(nil, "rotated-record-%03d", i))
	}
	appendAll(t, w, payloads)
	if s := w.Stats(); s.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", s.Segments)
	}
	got := replayAll(t, w)
	if len(got) != len(payloads) {
		t.Fatalf("replay: %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d out of order: got %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestWALCompactKeepsOnlyRetained(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := w.Append(fmt.Appendf(nil, "%d:record-with-some-padding", i%2)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Compact(func(p []byte) bool { return p[0] == '1' }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	got := replayAll(t, w)
	if len(got) != 20 {
		t.Fatalf("after compaction: %d records, want 20", len(got))
	}
	for _, p := range got {
		if p[0] != '1' {
			t.Fatalf("compaction kept a dropped record: %q", p)
		}
	}
	// Appends continue on the compacted generation and survive reopen.
	appendAll(t, w, [][]byte{[]byte("1:after-compaction")})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w, err = OpenWAL(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	got = replayAll(t, w)
	if len(got) != 21 || string(got[20]) != "1:after-compaction" {
		t.Fatalf("post-compaction reopen: %d records, tail %q", len(got), got[len(got)-1])
	}
}

func TestWALOpenCleansCompactionLeftovers(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	appendAll(t, w, [][]byte{[]byte("old-generation")})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a compaction that crashed after publishing generation 1
	// but before deleting generation 0, plus a stray tmp file from an
	// even later attempt.
	next := segmentRef{gen: 1, seq: 0}
	frame := EncodeFrame(nil, []byte("new-generation"))
	if err := os.WriteFile(filepath.Join(dir, next.filename()), frame, 0o644); err != nil {
		t.Fatalf("write new generation: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002-00000000.log.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatalf("write tmp straggler: %v", err)
	}
	w, err = OpenWAL(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	got := replayAll(t, w)
	if len(got) != 1 || string(got[0]) != "new-generation" {
		t.Fatalf("replay after leftover cleanup: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != next.filename() {
			t.Fatalf("straggler survived open: %s", e.Name())
		}
	}
}

func TestWALBatchedFsync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	for i := 0; i < 100; i++ {
		if err := w.Append([]byte("batched-record")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background fsync never ran")
		}
		time.Sleep(time.Millisecond)
	}
	// Replay syncs first, so it always sees every acknowledged append.
	if got := replayAll(t, w); len(got) != 100 {
		t.Fatalf("replay under batching: %d records, want 100", len(got))
	}
	if s := w.Stats(); s.Fsyncs >= s.AppendedRecords {
		t.Fatalf("batching had no effect: %d fsyncs for %d appends", s.Fsyncs, s.AppendedRecords)
	}
}

func TestWALRejectsEmptyAndOversizedRecords(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	if err := w.Append(nil); err == nil {
		t.Fatal("Append(nil) succeeded; empty records would decode as end-of-log")
	}
	if err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized Append succeeded; it could never be replayed")
	}
}

// TestWALReplayEquivalenceProperty is the property test the issue asks
// for: for random op sequences (appends interleaved with syncs, segment
// rolls, reopens and keep-everything compactions), replay(append(ops))
// yields exactly ops, in order.
func TestWALReplayEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 10; trial++ {
		dir := t.TempDir()
		opts := Options{SegmentSize: int64(64 + rng.Intn(2048))}
		w, err := OpenWAL(dir, opts)
		if err != nil {
			t.Fatalf("trial %d: OpenWAL: %v", trial, err)
		}
		var ops [][]byte
		nOps := 50 + rng.Intn(200)
		for i := 0; i < nOps; i++ {
			switch rng.Intn(10) {
			case 0: // reopen mid-stream
				if err := w.Close(); err != nil {
					t.Fatalf("trial %d: Close: %v", trial, err)
				}
				if w, err = OpenWAL(dir, opts); err != nil {
					t.Fatalf("trial %d: reopen: %v", trial, err)
				}
			case 1: // keep-everything compaction
				if err := w.Compact(func([]byte) bool { return true }); err != nil {
					t.Fatalf("trial %d: Compact: %v", trial, err)
				}
			case 2:
				if err := w.Sync(); err != nil {
					t.Fatalf("trial %d: Sync: %v", trial, err)
				}
			default:
				p := make([]byte, 1+rng.Intn(300))
				rng.Read(p)
				if err := w.Append(p); err != nil {
					t.Fatalf("trial %d: Append: %v", trial, err)
				}
				ops = append(ops, p)
			}
		}
		got := replayAll(t, w)
		if len(got) != len(ops) {
			t.Fatalf("trial %d: replay yielded %d records, want %d", trial, len(got), len(ops))
		}
		for i := range ops {
			if !bytes.Equal(got[i], ops[i]) {
				t.Fatalf("trial %d: record %d diverged", trial, i)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("trial %d: Close: %v", trial, err)
		}
	}
}

// FuzzWALDecode drives the frame scanner over arbitrary bytes: it must
// never panic, never consume past len(data), and the consumed prefix must
// re-decode to exactly the same records (no mis-replay: decoding is a
// pure function of the intact prefix).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Add(EncodeFrame(nil, []byte("seed-record")))
	torn := EncodeFrame(nil, []byte("first"))
	torn = append(torn, EncodeFrame(nil, []byte("torn"))[:9]...)
	f.Add(torn)
	flipped := EncodeFrame(nil, []byte("flip-me"))
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		var records [][]byte
		consumed, err := DecodeFrames(data, func(p []byte) error {
			records = append(records, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("DecodeFrames returned %v; scanning must never error", err)
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d outside [0,%d]", consumed, len(data))
		}
		// Re-encoding the decoded records must reproduce the consumed
		// prefix byte-for-byte, and re-decoding it must be a fixpoint.
		var rebuilt []byte
		for _, p := range records {
			rebuilt = EncodeFrame(rebuilt, p)
		}
		if !bytes.Equal(rebuilt, data[:consumed]) {
			t.Fatalf("re-encoded records differ from consumed prefix")
		}
		n := 0
		consumed2, err := DecodeFrames(rebuilt, func(p []byte) error {
			if !bytes.Equal(p, records[n]) {
				t.Fatalf("record %d changed across re-decode", n)
			}
			n++
			return nil
		})
		if err != nil || consumed2 != len(rebuilt) || n != len(records) {
			t.Fatalf("re-decode: consumed %d/%d, %d records, err %v", consumed2, len(rebuilt), n, err)
		}
	})
}
