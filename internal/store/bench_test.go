package store

import (
	"fmt"
	"testing"
	"time"
)

// benchRecord is a realistic job-log payload size: a points entry of a
// few solved sweep points, JSON-encoded (~200 bytes).
var benchRecord = []byte(`{"kind":"points","job":"j-bench","points":[` +
	`{"index":0,"value":0.10,"perf":{"mean_jobs":1.23,"mean_response":4.56,"tail_decay":0.9,"load":0.4}},` +
	`{"index":1,"value":0.11,"perf":{"mean_jobs":1.25,"mean_response":4.60,"tail_decay":0.9,"load":0.41}}]}`)

// BenchmarkWALAppend measures the batched-fsync append path — the cost a
// sweep job pays per persisted points batch. SetBytes makes the reported
// MB/s the log's append throughput.
func BenchmarkWALAppend(b *testing.B) {
	w, err := OpenWAL(b.TempDir(), Options{FsyncInterval: DefaultFsyncInterval})
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	b.SetBytes(int64(len(benchRecord)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(benchRecord); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
	b.StopTimer()
	if err := w.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
}

// BenchmarkWALReplay10k measures boot-replay time over a 10k-record log —
// the recovery-time budget of the crash-recovery acceptance test.
func BenchmarkWALReplay10k(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWAL(dir, Options{FsyncInterval: time.Second})
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	for i := 0; i < 10_000; i++ {
		if err := w.Append(fmt.Appendf(nil, "%s#%05d", benchRecord, i)); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatalf("Sync: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := w.Replay(func([]byte) error { n++; return nil }); err != nil {
			b.Fatalf("Replay: %v", err)
		}
		if n != 10_000 {
			b.Fatalf("replayed %d records, want 10000", n)
		}
	}
	b.StopTimer()
	w.Close()
}
