// Package watchdog guards streaming calls against silent stalls: a
// derived context is cancelled after a fixed period of inactivity unless
// the caller keeps ticking it. Both the cluster router's sweep scatter
// and the SDK's cluster stream use it to turn "the peer accepted the
// stream and then went quiet" — a partition or wedge that produces no
// read error — into an ordinary cancellation they can fail over from.
package watchdog

import (
	"context"
	"time"
)

// New returns a child of parent that is cancelled once idle elapses with
// no Tick call, plus the two controls: tick resets the idle clock
// (cheap, safe from any goroutine, never blocks), and stop releases the
// watchdog and must be called when the guarded call returns (it joins
// the internal goroutine, so no timer or goroutine leaks outlive the
// call). After stop, the returned context is cancelled.
func New(parent context.Context, idle time.Duration) (ctx context.Context, tick func(), stop func()) {
	wctx, cancel := context.WithCancel(parent)
	progress := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTimer(idle)
		defer t.Stop()
		for {
			select {
			case <-progress:
				if !t.Stop() {
					<-t.C
				}
				t.Reset(idle)
			case <-t.C:
				cancel()
				return
			case <-wctx.Done():
				return
			}
		}
	}()
	tick = func() {
		select {
		case progress <- struct{}{}:
		default:
		}
	}
	stop = func() {
		cancel()
		<-done
	}
	return wctx, tick, stop
}
