package watchdog

import (
	"context"
	"testing"
	"time"
)

func TestIdleCancels(t *testing.T) {
	ctx, _, stop := New(context.Background(), 20*time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle watchdog never fired")
	}
}

func TestTickHoldsOpen(t *testing.T) {
	ctx, tick, stop := New(context.Background(), 80*time.Millisecond)
	defer stop()
	// Tick well inside the idle window several times: the context must
	// survive far past the bare idle duration.
	for i := 0; i < 10; i++ {
		time.Sleep(20 * time.Millisecond)
		tick()
		if ctx.Err() != nil {
			t.Fatalf("watchdog fired despite tick %d", i)
		}
	}
	stop()
	if ctx.Err() == nil {
		t.Fatal("stop did not cancel the context")
	}
}

func TestStopJoinsAndParentCancelPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, tick, stop := New(parent, time.Hour)
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
	tick() // must not panic or block after cancellation
	stop() // must return promptly
	stop2Done := make(chan struct{})
	go func() { stop(); close(stop2Done) }() // idempotent-ish: second stop must not hang
	select {
	case <-stop2Done:
	case <-time.After(5 * time.Second):
		t.Fatal("second stop hung")
	}
}
