// Package cliutil holds the small parsing helpers shared by the cmd/
// binaries: comma-separated float lists and hyperexponential specifications.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dist"
)

// ParseFloats parses a comma-separated list like "0.7246,0.2754".
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: %q is not a number: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliutil: empty list %q", s)
	}
	return out, nil
}

// ParseHyperExp builds a hyperexponential from comma-separated weights and
// rates flags.
func ParseHyperExp(weights, rates string) (*dist.HyperExp, error) {
	w, err := ParseFloats(weights)
	if err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	r, err := ParseFloats(rates)
	if err != nil {
		return nil, fmt.Errorf("rates: %w", err)
	}
	return dist.NewHyperExp(w, r)
}
