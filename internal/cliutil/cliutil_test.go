package cliutil

import (
	"math"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats(" 1, 2.5 ,3e-2")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 0.03}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("got %v, want %v", got, want)
		}
	}
	if _, err := ParseFloats("a,b"); err == nil {
		t.Error("expected error for non-numeric input")
	}
	if _, err := ParseFloats(""); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestParseHyperExp(t *testing.T) {
	h, err := ParseHyperExp("0.7246,0.2754", "0.1663,0.0091")
	if err != nil {
		t.Fatal(err)
	}
	if h.Phases() != 2 {
		t.Fatalf("phases = %d", h.Phases())
	}
	if math.Abs(h.Mean()-34.62) > 0.2 {
		t.Errorf("mean = %v", h.Mean())
	}
	if _, err := ParseHyperExp("1", "x"); err == nil {
		t.Error("expected rate parse error")
	}
	if _, err := ParseHyperExp("0.5", "1,2"); err == nil {
		t.Error("expected shape mismatch error")
	}
}
