package figures

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/stats"
)

// FitReport carries every §2 number: the estimated moments, the fitted
// distributions and the Kolmogorov–Smirnov decisions, for both period
// types.
type FitReport struct {
	EventsTotal     int
	EventsDropped   int
	DroppedFraction float64

	Operative   PeriodAnalysis
	Inoperative PeriodAnalysis
}

// PeriodAnalysis is the §2 pipeline output for one period type.
type PeriodAnalysis struct {
	Name string
	// Histogram is the KS/display histogram (50 points for operative
	// periods, 40 for inoperative, as in the paper).
	Histogram *stats.Histogram
	// Moments are the estimated raw moments M̃₁..M̃₅ (paper eq. 1 in the
	// fine-interval limit, i.e. the raw sample moments — coarse bins would
	// visibly bias M̃₃ and break the fit).
	Moments []float64
	CV2     float64

	FittedH2 *dist.HyperExp
	// KSExponential tests the single-exponential hypothesis with the sample
	// mean (rejected for operative periods: D = 0.4742 in the paper).
	KSExponential stats.KSResult
	// KSH2 tests the fitted two-phase hyperexponential
	// (passes at 5% and 10% in the paper).
	KSH2 stats.KSResult
}

// sec2Defaults mirror the paper's §2 setup: 50 histogram points over
// [0, 250] for the operative periods, 40 points over [0, 1.2] for the
// inoperative ones.
const (
	opsBins   = 50
	opsRange  = 250.0
	outBins   = 40
	outRange  = 1.2
	ksAlpha5  = 0.05
	ksAlpha10 = 0.10
)

// AnalyzeDataset runs the full §2 statistical pipeline on an event log:
// clean → histogram → moment estimation → hyperexponential fit → KS tests.
func AnalyzeDataset(events []dataset.Event) (*FitReport, error) {
	clean := dataset.Clean(events)
	if len(clean.Operative) == 0 || len(clean.Inoperative) == 0 {
		return nil, fmt.Errorf("figures: no usable periods after cleaning (%d rows dropped)", clean.Dropped)
	}
	ops, err := analyzePeriods("operative", clean.Operative, opsBins, opsRange)
	if err != nil {
		return nil, fmt.Errorf("figures: operative periods: %w", err)
	}
	inop, err := analyzePeriods("inoperative", clean.Inoperative, outBins, outRange)
	if err != nil {
		return nil, fmt.Errorf("figures: inoperative periods: %w", err)
	}
	return &FitReport{
		EventsTotal:     clean.Total,
		EventsDropped:   clean.Dropped,
		DroppedFraction: clean.DroppedFraction(),
		Operative:       *ops,
		Inoperative:     *inop,
	}, nil
}

func analyzePeriods(name string, data []float64, bins int, hi float64) (*PeriodAnalysis, error) {
	h, err := stats.NewHistogram(data, bins, 0, hi)
	if err != nil {
		return nil, err
	}
	// Moment estimation uses the raw sample (eq. 1 with vanishing interval
	// width); the display histogram's coarse bins would bias the higher
	// moments that the fit depends on.
	moments := make([]float64, 5)
	for k := 1; k <= 5; k++ {
		moments[k-1] = stats.RawMoment(data, k)
	}
	fit, err := dist.FitH2Moments(moments[0], moments[1], moments[2])
	if err != nil {
		return nil, fmt.Errorf("H2 fit: %w", err)
	}
	expFit := dist.Exp(1 / moments[0])
	return &PeriodAnalysis{
		Name:          name,
		Histogram:     h,
		Moments:       moments,
		CV2:           stats.CV2(data),
		FittedH2:      fit,
		KSExponential: stats.KolmogorovSmirnov(h, expFit.CDF),
		KSH2:          stats.KolmogorovSmirnov(h, fit.CDF),
	}, nil
}

// Sec2Report runs (and memoises) the §2 statistical pipeline on a freshly
// generated synthetic Sun-style data set.
func Sec2Report(opts Options) (*FitReport, error) {
	return sec2Report(opts)
}

// cachedReport memoises the expensive full-size pipeline across figures;
// the mutex keeps the memo safe when All() builds figures concurrently.
var (
	cachedReportMu sync.Mutex
	cachedReport   *FitReport
)

func sec2Report(opts Options) (*FitReport, error) {
	memoable := opts.Seed == 0 && !opts.Quick
	if memoable {
		cachedReportMu.Lock()
		defer cachedReportMu.Unlock()
		if cachedReport != nil {
			return cachedReport, nil
		}
	}
	cfg := dataset.GenConfig{Seed: opts.Seed}
	if opts.Quick {
		cfg.Events = 20000
		cfg.Servers = 40
	}
	events, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := AnalyzeDataset(events)
	if err != nil {
		return nil, err
	}
	if memoable {
		cachedReport = rep
	}
	return rep, nil
}

// Figure3 reproduces "Densities of operative periods (0−250)": the
// empirical density of the (synthetic) operative periods with the fitted
// 2-phase hyperexponential overlaid, plus the §2 KS decisions as notes.
func Figure3(opts Options) (*Figure, error) {
	rep, err := sec2Report(opts)
	if err != nil {
		return nil, err
	}
	return densityFigure("fig3", "Densities of operative periods (0-250)", rep.Operative), nil
}

// Figure4 reproduces "Densities of inoperative periods (0−1.2)".
func Figure4(opts Options) (*Figure, error) {
	rep, err := sec2Report(opts)
	if err != nil {
		return nil, err
	}
	f := densityFigure("fig4", "Densities of inoperative periods (0-1.2)", rep.Inoperative)
	// The paper's extra observation: a plain exponential with the
	// first-component mean is itself an acceptable fit at 5%.
	first := dist.Exp(rep.Inoperative.FittedH2.Rates[0])
	ks := stats.KolmogorovSmirnov(rep.Inoperative.Histogram, first.CDF)
	f.Notes = append(f.Notes, fmt.Sprintf(
		"single exponential (mean %.3g): D = %.4f, 5%% critical %.4f → pass=%v (paper: passes at 5%%)",
		first.Mean(), ks.D, ks.CriticalValue(ksAlpha5), ks.Pass(ksAlpha5)))
	return f, nil
}

// RenderFitReport prints the §2 headline numbers next to the paper's: the
// dropped-row share, estimated moments, fitted parameters and KS decisions.
func RenderFitReport(w io.Writer, rep *FitReport) {
	fmt.Fprintf(w, "== Section 2: data set analysis ==\n")
	fmt.Fprintf(w, "events: %d total, %d anomalous dropped (%.2f%%; paper: <4%%)\n",
		rep.EventsTotal, rep.EventsDropped, 100*rep.DroppedFraction)
	for _, pa := range []PeriodAnalysis{rep.Operative, rep.Inoperative} {
		fmt.Fprintf(w, "\n-- %s periods --\n", pa.Name)
		fmt.Fprintf(w, "estimated mean %.4g, C² = %.3g", pa.Moments[0], pa.CV2)
		if pa.Name == "operative" {
			fmt.Fprintf(w, " (paper: 34.62, C̃² = 4.6)")
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "fitted H2: %v\n", pa.FittedH2)
		fmt.Fprintf(w, "  phase means %.4g / %.4g, weights %.4g / %.4g\n",
			1/pa.FittedH2.Rates[0], 1/pa.FittedH2.Rates[1], pa.FittedH2.Weights[0], pa.FittedH2.Weights[1])
		fmt.Fprintf(w, "KS exponential: D = %.4f (crit 5%% %.4f) pass=%v\n",
			pa.KSExponential.D, pa.KSExponential.CriticalValue(0.05), pa.KSExponential.Pass(0.05))
		fmt.Fprintf(w, "KS fitted H2:   D = %.4f pass5%%=%v pass10%%=%v\n",
			pa.KSH2.D, pa.KSH2.Pass(0.05), pa.KSH2.Pass(0.10))
	}
	fmt.Fprintf(w, "\npaper reference: exp fit of operative periods D = 0.4742 (rejected); H2 fits pass at 5%% and 10%%\n")
}

func densityFigure(id, title string, pa PeriodAnalysis) *Figure {
	xs := pa.Histogram.Midpoints()
	emp := pa.Histogram.Densities()
	fit := make([]float64, len(xs))
	for i, x := range xs {
		fit[i] = pa.FittedH2.Density(x)
	}
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "period length",
		YLabel: "probability density",
		Series: []Series{
			{Label: "observed", X: xs, Y: emp},
			{Label: "hyperexp fit", X: xs, Y: fit},
		},
		Notes: []string{
			fmt.Sprintf("estimated mean %.4g, C² %.3g", pa.Moments[0], pa.CV2),
			fmt.Sprintf("fitted %v", pa.FittedH2),
			fmt.Sprintf("KS vs exponential: D = %.4f (5%% critical %.4f) → pass=%v",
				pa.KSExponential.D, pa.KSExponential.CriticalValue(ksAlpha5), pa.KSExponential.Pass(ksAlpha5)),
			fmt.Sprintf("KS vs fitted H2: D = %.4f → pass 5%%=%v, pass 10%%=%v",
				pa.KSH2.D, pa.KSH2.Pass(ksAlpha5), pa.KSH2.Pass(ksAlpha10)),
		},
	}
}
