package figures

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestFigure3ReproducesSection2Decisions(t *testing.T) {
	fig, err := Figure3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want observed + fit", len(fig.Series))
	}
	rep, err := sec2Report(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := rep.Operative
	// Paper: exponential strongly rejected (D = 0.4742 ≫ 0.19), H2 passes at
	// 5% and 10% (D = 0.1412).
	if ops.KSExponential.Pass(0.05) {
		t.Errorf("exponential fit passed KS (D = %v); paper strongly rejects", ops.KSExponential.D)
	}
	if ops.KSExponential.D < 0.3 {
		t.Errorf("exponential D = %v, paper has 0.4742 — should be far above critical", ops.KSExponential.D)
	}
	if !ops.KSH2.Pass(0.05) || !ops.KSH2.Pass(0.10) {
		t.Errorf("H2 fit failed KS (D = %v); paper passes at 5%% and 10%%", ops.KSH2.D)
	}
	// Fitted parameters should land near the paper's (means ≈ 6 and 110,
	// weight ≈ 0.72 on the short phase). The histogram binning loses some
	// precision, so compare loosely.
	fit := ops.FittedH2
	short, long := 1/fit.Rates[0], 1/fit.Rates[1]
	wShort := fit.Weights[0]
	if short > long {
		short, long = long, short
		wShort = fit.Weights[1]
	}
	if short < 3 || short > 9 {
		t.Errorf("short phase mean %v, paper ≈ 6", short)
	}
	if long < 90 || long > 130 {
		t.Errorf("long phase mean %v, paper ≈ 110", long)
	}
	if wShort < 0.6 || wShort > 0.85 {
		t.Errorf("short-phase weight %v, paper ≈ 0.72", wShort)
	}
	if math.Abs(ops.CV2-4.6) > 1.0 {
		t.Errorf("C² = %v, paper ≈ 4.6", ops.CV2)
	}
}

func TestFigure4ReproducesSection2Decisions(t *testing.T) {
	fig, err := Figure4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sec2Report(Options{})
	if err != nil {
		t.Fatal(err)
	}
	inop := rep.Inoperative
	if !inop.KSH2.Pass(0.05) {
		t.Errorf("H2 fit failed KS (D = %v); paper passes at 5%% and 10%%", inop.KSH2.D)
	}
	// The exponential hypothesis with the *sample* mean fails less badly
	// than for operative periods (paper: "fails, but not so badly").
	if inop.KSExponential.D >= rep.Operative.KSExponential.D {
		t.Errorf("inoperative exp D = %v should be below operative exp D = %v",
			inop.KSExponential.D, rep.Operative.KSExponential.D)
	}
	// The note about the single exponential with the first-component mean
	// must be present (paper: passes at 5%).
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "single exponential") && strings.Contains(n, "pass=true") {
			found = true
		}
	}
	if !found {
		t.Errorf("single-exponential note missing or failing: %v", fig.Notes)
	}
}

func TestFigure5OptimaMatchPaper(t *testing.T) {
	fig, err := Figure5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"lambda=7.0": 11,
		"lambda=8.0": 12,
		"lambda=8.5": 13,
	}
	for _, s := range fig.Series {
		if got := s.ArgminY(); got != want[s.Label] {
			t.Errorf("%s: optimal N = %v, paper says %v", s.Label, got, want[s.Label])
		}
	}
}

func TestFigure6ShapeMatchesPaper(t *testing.T) {
	fig, err := Figure6(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		// L must grow with C² among the exact points (paper: "the average
		// queue size grows with the coefficient of variation"). The C²=0
		// point is simulated, so it only gets a loose ordering check: below
		// the top of the curve.
		for i := 1; i < len(s.Y); i++ {
			if s.X[i-1] == 0 {
				continue
			}
			if s.Y[i] <= s.Y[i-1] {
				t.Errorf("%s: L not increasing at C²=%v: %v → %v", s.Label, s.X[i], s.Y[i-1], s.Y[i])
			}
		}
		if s.X[0] == 0 && s.Y[0] >= s.Y[len(s.Y)-1] {
			t.Errorf("%s: simulated C²=0 point %v not below the C²=%v value %v",
				s.Label, s.Y[0], s.X[len(s.X)-1], s.Y[len(s.Y)-1])
		}
	}
	// The heavier load (8.6) sits above 8.5 at every shared C².
	l85, l86 := fig.Series[0], fig.Series[1]
	for i := range l85.X {
		if l86.Y[i] <= l85.Y[i] {
			t.Errorf("C²=%v: L(8.6)=%v not above L(8.5)=%v", l85.X[i], l86.Y[i], l85.Y[i])
		}
	}
}

func TestFigure7ExponentialUnderestimates(t *testing.T) {
	fig, err := Figure7(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	expS, hypS := fig.Series[0], fig.Series[1]
	prevGap := 0.0
	for i := range expS.X {
		gap := hypS.Y[i] - expS.Y[i]
		if gap <= 0 {
			t.Errorf("1/η=%v: exponential L %v not below hyperexponential %v", expS.X[i], expS.Y[i], hypS.Y[i])
		}
		if gap < prevGap {
			t.Errorf("1/η=%v: gap %v shrank from %v; paper says predictions get more over-optimistic", expS.X[i], gap, prevGap)
		}
		prevGap = gap
	}
}

func TestFigure8ApproximationConverges(t *testing.T) {
	fig, err := Figure8(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	exact, approx := fig.Series[0], fig.Series[1]
	firstGap := relGap(exact.Y[0], approx.Y[0])
	lastGap := relGap(exact.Y[len(exact.Y)-1], approx.Y[len(approx.Y)-1])
	if lastGap >= firstGap {
		t.Errorf("approximation gap grew with load: %v → %v", firstGap, lastGap)
	}
	if lastGap > 0.1 {
		t.Errorf("gap at heaviest load = %v, should be small", lastGap)
	}
}

func TestFigure9MinServersIsNine(t *testing.T) {
	fig, err := Figure9(Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "minimum N for W ≤ 1.5: 9") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected min-9-servers note, got %v", fig.Notes)
	}
	// Exact W decreases with N.
	exact := fig.Series[0]
	for i := 1; i < len(exact.Y); i++ {
		if exact.Y[i] >= exact.Y[i-1] {
			t.Errorf("W not decreasing at N=%v", exact.X[i])
		}
	}
	// "On this occasion the approximate solution underestimates the average
	// response times": approx sits below exact at every N, and both curves
	// decrease with N (visible in the paper's figure, where the gap stays
	// wide at large N because the geometric form ignores the service floor).
	approx := fig.Series[1]
	for i := range exact.Y {
		if approx.Y[i] >= exact.Y[i] {
			t.Errorf("N=%v: approx %v not below exact %v", exact.X[i], approx.Y[i], exact.Y[i])
		}
	}
	for i := 1; i < len(approx.Y); i++ {
		if approx.Y[i] >= approx.Y[i-1] {
			t.Errorf("approx W not decreasing at N=%v", approx.X[i])
		}
	}
}

func TestRenderAndWriteDat(t *testing.T) {
	fig := &Figure{
		ID:     "demo",
		Title:  "demo figure",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2, 3}, Y: []float64{5, 6}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := Render(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo figure", "a", "b", "note: hello", "10", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	dir := t.TempDir()
	if err := fig.WriteDat(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"demo_a.dat", "demo_b.dat"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestAnalyzeDatasetErrors(t *testing.T) {
	if _, err := AnalyzeDataset(nil); err == nil {
		t.Error("empty log should fail")
	}
	// All-anomalous log.
	events := []dataset.Event{{OutageDuration: 2, TimeBetweenEvents: 1}}
	if _, err := AnalyzeDataset(events); err == nil {
		t.Error("fully-dropped log should fail")
	}
}

func TestSeriesArgmin(t *testing.T) {
	s := Series{X: []float64{1, 2, 3}, Y: []float64{5, 1, 9}}
	if got := s.ArgminY(); got != 2 {
		t.Errorf("argmin = %v, want 2", got)
	}
}

func TestSimAgreementCoversAnalytical(t *testing.T) {
	fig, err := SimAgreement(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	exact, simulated := fig.Series[0], fig.Series[1]
	if len(exact.X) != 4 || len(simulated.X) != 4 {
		t.Fatalf("expected 4 agreement cases, got %d/%d", len(exact.X), len(simulated.X))
	}
	for i := range exact.X {
		if rel := math.Abs(simulated.Y[i]-exact.Y[i]) / exact.Y[i]; rel > 0.35 {
			t.Errorf("case %d: simulated %v vs exact %v (rel %v)", i, simulated.Y[i], exact.Y[i], rel)
		}
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "CI coverage:") {
			found = true
		}
	}
	if !found {
		t.Error("missing CI-coverage summary note")
	}
}
