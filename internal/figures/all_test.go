package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllRunsEveryFigureQuick(t *testing.T) {
	figs, err := All(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "figsim"}
	if len(figs) != len(wantIDs) {
		t.Fatalf("got %d figures, want %d", len(figs), len(wantIDs))
	}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d has ID %q, want %q", i, f.ID, wantIDs[i])
		}
		if len(f.Series) == 0 {
			t.Errorf("%s: no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: bad series lengths %d/%d", f.ID, s.Label, len(s.X), len(s.Y))
			}
		}
		var buf bytes.Buffer
		if err := Render(&buf, f); err != nil {
			t.Errorf("%s: render: %v", f.ID, err)
		}
		if !strings.Contains(buf.String(), f.ID) {
			t.Errorf("%s: render output missing ID", f.ID)
		}
	}
}

func TestRenderFitReport(t *testing.T) {
	rep, err := Sec2Report(Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFitReport(&buf, rep)
	out := buf.String()
	for _, want := range []string{"operative", "inoperative", "KS exponential", "fitted H2", "paper reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("fit report missing %q", want)
		}
	}
}
