package figures

import (
	"testing"

	"repro/internal/service"
)

// TestFiguresRouteThroughInjectedEngine proves the refactor: an injected
// engine sees every analytical solve of a figure, and regenerating the
// figure is answered entirely from its cache.
func TestFiguresRouteThroughInjectedEngine(t *testing.T) {
	eng := service.NewEngine(service.Config{})
	opts := Options{Engine: eng}

	fig, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Solves == 0 {
		t.Fatal("Figure5 ran no solves through the injected engine")
	}
	// 3 λ-series × 9 stable N values.
	if want := uint64(27); st.Solves != want {
		t.Errorf("Figure5 ran %d solves, want %d", st.Solves, want)
	}

	again, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	st2 := eng.Stats()
	if st2.Solves != st.Solves {
		t.Errorf("regenerating Figure5 ran %d extra solves; cache should cover all", st2.Solves-st.Solves)
	}
	if st2.Cache.Hits < 27 {
		t.Errorf("cache hits = %d after a repeat run, want ≥ 27", st2.Cache.Hits)
	}
	// Identical output both times.
	for si, s := range fig.Series {
		for i := range s.Y {
			if again.Series[si].Y[i] != s.Y[i] {
				t.Fatalf("series %d point %d changed between runs: %v vs %v", si, i, s.Y[i], again.Series[si].Y[i])
			}
		}
	}
}

// TestFigure9SharesSweepWithMinServers checks that the min-N answer of
// Figure 9 reuses the N-sweep's cached solves instead of re-running them.
func TestFigure9SharesSweepWithMinServers(t *testing.T) {
	eng := service.NewEngine(service.Config{})
	if _, err := Figure9(Options{Engine: eng}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Cache.Hits == 0 {
		t.Error("the min-N search shares no solves with the N-sweep")
	}
}
