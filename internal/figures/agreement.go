package figures

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// agreementCase is one representative configuration from the Figure 5–9
// parameter set on which the analytical and simulated answers are
// compared.
type agreementCase struct {
	label  string
	system core.System
}

// agreementCases picks one point from each performance figure (5, 7, 8
// and 9; Figure 6's validated point is its own C²=0 simulation) so the
// agreement check spans the whole §4 parameter range: cost optimum,
// long repairs, heavy load, and the SLA region.
func agreementCases() []agreementCase {
	capacity := 10 * paperSystem(10, 1, 25).Availability()
	return []agreementCase{
		{"fig5: N=12, λ=8, η=25", paperSystem(12, 8, 25)},
		{"fig7: N=10, λ=8, 1/η=3", paperSystem(10, 8, 1.0/3)},
		{fmt.Sprintf("fig8: N=10, load=0.95, λ=%.3g", 0.95*capacity), paperSystem(10, 0.95*capacity, 25)},
		{"fig9: N=9, λ=7.5, η=25", paperSystem(9, 7.5, 25)},
	}
}

// SimAgreement validates the spectral-expansion solution against the
// replicated simulator on one representative point per performance figure:
// for each configuration it reports the exact L next to the simulated L
// with its 95% confidence half-width, and notes whether the analytical
// value is covered by the interval — the statistical agreement the paper
// asserts ("the simulated values are in close agreement with the
// analytical results") but cannot quantify with a single replication.
func SimAgreement(opts Options) (*Figure, error) {
	reps, horizon := 8, 150000.0
	if opts.Quick {
		reps, horizon = 3, 20000
	}
	eng := opts.engine()
	fig := &Figure{
		ID:     "figsim",
		Title:  "Analytical vs simulated mean queue length (95% CIs over replications)",
		XLabel: "case",
		YLabel: "mean jobs L",
	}
	analytic := Series{Label: "exact solution"}
	simulated := Series{Label: "simulation"}
	covered := 0
	cases := agreementCases()
	for i, c := range cases {
		perf, err := eng.Evaluate(context.Background(), c.system, core.Spectral)
		if err != nil {
			return nil, fmt.Errorf("figsim: %s: solve: %w", c.label, err)
		}
		res, err := eng.Simulate(context.Background(), c.system, core.SimOptions{
			Seed:         opts.Seed + 901 + int64(i),
			Warmup:       horizon / 10,
			Horizon:      horizon,
			Replications: reps,
		})
		if err != nil {
			return nil, fmt.Errorf("figsim: %s: simulate: %w", c.label, err)
		}
		x := float64(i + 1)
		analytic.X = append(analytic.X, x)
		analytic.Y = append(analytic.Y, perf.MeanJobs)
		simulated.X = append(simulated.X, x)
		simulated.Y = append(simulated.Y, res.MeanQueue)
		in := "inside"
		lo, hi := res.MeanQueue-res.MeanQueueHalfWidth, res.MeanQueue+res.MeanQueueHalfWidth
		if perf.MeanJobs >= lo && perf.MeanJobs <= hi {
			covered++
		} else {
			in = "OUTSIDE"
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: exact L = %.4g, simulated L = %.4g ± %.3g (%d reps) — exact %s the 95%% CI",
			c.label, perf.MeanJobs, res.MeanQueue, res.MeanQueueHalfWidth, res.Replications, in))
	}
	fig.Series = []Series{analytic, simulated}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"CI coverage: %d/%d analytical values inside their simulation interval", covered, len(cases)))
	return fig, nil
}
