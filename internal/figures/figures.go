// Package figures defines one reproducible experiment per table/figure of
// Palmer & Mitrani (DSN 2006) §2 and §4. Each experiment returns labelled
// series that can be rendered as text, written as gnuplot-style .dat files,
// or asserted against the paper's qualitative shape in tests and
// benchmarks.
package figures

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/service"
)

// Series is one labelled curve: points (X[i], Y[i]).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one reproduced table or figure.
type Figure struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes records headline findings (optima, KS decisions, crossings) so
	// the text output is self-describing.
	Notes []string
}

// Options tunes experiment cost. The zero value reproduces the paper-scale
// experiment; Quick shrinks simulation horizons and sweep densities for
// fast smoke runs. Seed fixes the random stream of every experiment that
// generates data or simulates, making figure runs reproducible.
type Options struct {
	Quick bool
	Seed  int64
	// Engine evaluates every analytical λ- and N-sweep. Leave nil to use a
	// process-wide shared engine, so overlapping figures (and repeated
	// runs in one process) reuse each other's solves through its cache.
	Engine *service.Engine
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *service.Engine
)

// engine returns the evaluation engine for this run.
func (o Options) engine() *service.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	defaultEngineOnce.Do(func() {
		defaultEngine = service.NewEngine(service.Config{})
	})
	return defaultEngine
}

// Render writes the figure as an aligned text table with notes.
func Render(w io.Writer, f *Figure) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %16s", s.Label)
	}
	sb.WriteString("\n")
	xs := unionX(f.Series)
	for _, x := range xs {
		fmt.Fprintf(&sb, "%-14.6g", x)
		for _, s := range f.Series {
			if y, ok := lookupY(s, x); ok {
				fmt.Fprintf(&sb, " %16.6g", y)
			} else {
				fmt.Fprintf(&sb, " %16s", "-")
			}
		}
		sb.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteDat writes one gnuplot-style file per series into dir, named
// <figID>_<series>.dat.
func (f *Figure) WriteDat(dir string) error {
	for _, s := range f.Series {
		name := fmt.Sprintf("%s_%s.dat", f.ID, sanitize(s.Label))
		var sb strings.Builder
		fmt.Fprintf(&sb, "# %s — %s\n# %s vs %s\n", f.ID, f.Title, f.YLabel, f.XLabel)
		for i := range s.X {
			fmt.Fprintf(&sb, "%.10g %.10g\n", s.X[i], s.Y[i])
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(sb.String()), 0o644); err != nil {
			return fmt.Errorf("figures: write %s: %w", name, err)
		}
	}
	return nil
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}

func unionX(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sortFloats(xs)
	return xs
}

func lookupY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ArgminY returns the x minimising y within one series.
func (s Series) ArgminY() float64 {
	best, bx := math.Inf(1), math.NaN()
	for i, y := range s.Y {
		if y < best {
			best, bx = y, s.X[i]
		}
	}
	return bx
}

// All runs every experiment (the full §2 + §4 suite) and returns the
// figures in paper order. The experiments are independent, so they run
// concurrently; their analytical sweeps all land on one evaluation engine,
// whose cache deduplicates the configurations that figures share.
func All(opts Options) ([]*Figure, error) {
	type builder struct {
		name string
		fn   func(Options) (*Figure, error)
	}
	builders := []builder{
		{"fig3", Figure3},
		{"fig4", Figure4},
		{"fig5", Figure5},
		{"fig6", Figure6},
		{"fig7", Figure7},
		{"fig8", Figure8},
		{"fig9", Figure9},
		{"figsim", SimAgreement},
	}
	if opts.Engine == nil {
		opts.Engine = opts.engine()
	}
	out := make([]*Figure, len(builders))
	errs := make([]error, len(builders))
	var wg sync.WaitGroup
	for i, b := range builders {
		wg.Add(1)
		go func(i int, b builder) {
			defer wg.Done()
			f, err := b.fn(opts)
			if err != nil {
				errs[i] = fmt.Errorf("figures: %s: %w", b.name, err)
				return
			}
			out[i] = f
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
