package figures

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
)

// Paper parameter set (§4): fitted operative-period distribution, repair
// rate η = 25 except where a figure overrides it, and unit service rate.
var (
	paperOps = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
)

func paperSystem(n int, lambda, eta float64) core.System {
	return core.System{
		Servers:     n,
		ArrivalRate: lambda,
		ServiceRate: 1,
		Operative:   paperOps,
		Repair:      dist.Exp(eta),
	}
}

// Figure5 reproduces "Cost as a function of N": C = 4L + N against
// N = 9..17 for λ = 7, 8 and 8.5, with η = 25. The paper's optima are
// N = 11, 12 and 13 respectively. The three N-sweeps run on the shared
// evaluation engine, so the 27 exact solves proceed concurrently and
// repeat runs hit the solver cache.
func Figure5(opts Options) (*Figure, error) {
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	eng := opts.engine()
	fig := &Figure{
		ID:     "fig5",
		Title:  "Cost as a function of N (c1=4, c2=1, η=25)",
		XLabel: "servers N",
		YLabel: "cost C",
	}
	for _, lambda := range []float64{7.0, 8.0, 8.5} {
		sweep, err := eng.SweepServers(context.Background(), paperSystem(0, lambda, 25), cm, 9, 17, core.Spectral)
		if err != nil {
			return nil, fmt.Errorf("λ=%v: %w", lambda, err)
		}
		s := Series{Label: fmt.Sprintf("lambda=%.1f", lambda)}
		for _, pt := range sweep {
			s.X = append(s.X, float64(pt.Servers))
			s.Y = append(s.Y, pt.Cost)
		}
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes, fmt.Sprintf("λ=%.1f: optimal N = %.0f (paper: %s)",
			lambda, s.ArgminY(), map[float64]string{7: "11", 8: "12", 8.5: "13"}[lambda]))
	}
	return fig, nil
}

// Figure6 reproduces "Average queue size against coefficient of variation":
// N = 10, η = 0.2, operative mean 34.62 fixed while C² varies by growing
// the long phase (ξ₂ pinned); λ = 8.5 and 8.6. The C² = 0 point cannot be
// represented by a hyperexponential and is obtained by simulation, exactly
// as in the paper; the exact C² ≥ 1 points are one engine batch per λ.
func Figure6(opts Options) (*Figure, error) {
	const (
		n         = 10
		eta       = 0.2
		opMean    = 34.62
		shortMean = 1 / 0.1663 // the fitted short phase pins ξ₂
	)
	cv2s := []float64{1, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	// The C²=0 point runs as parallel independent replications; per-rep
	// horizons keep the total simulated time at the old single-run budget.
	reps, horizon := 4, 100000.0
	if opts.Quick {
		cv2s = []float64{1, 4.6, 10, 18}
		// The load is ≈0.97–0.98, so even the quick horizon must stay long
		// enough for the C²=0 simulated point to be meaningful.
		reps, horizon = 2, 75000
	}
	eng := opts.engine()
	fig := &Figure{
		ID:     "fig6",
		Title:  "Average queue size against coefficient of variation (N=10, η=0.2, ξ=0.0289)",
		XLabel: "C² of operative periods",
		YLabel: "mean jobs L",
	}
	for _, lambda := range []float64{8.5, 8.6} {
		s := Series{Label: fmt.Sprintf("lambda=%.1f", lambda)}
		// C² = 0: deterministic operative periods, by replicated simulation
		// with a cross-replication confidence interval.
		sys := paperSystem(n, lambda, eta)
		res, err := sys.Simulate(core.SimOptions{
			Seed:         opts.Seed + 601,
			Warmup:       horizon / 20,
			Horizon:      horizon,
			Operative:    dist.Deterministic{Value: opMean},
			Replications: reps,
		})
		if err != nil {
			return nil, fmt.Errorf("λ=%v C²=0 simulation: %w", lambda, err)
		}
		s.X = append(s.X, 0)
		s.Y = append(s.Y, res.MeanQueue)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"λ=%.1f: simulated C²=0 point L = %.4g ± %.3g (95%% CI, %d replications)",
			lambda, res.MeanQueue, res.MeanQueueHalfWidth, res.Replications))
		// C² ≥ 1: exact solution over the fixed-short-phase family, solved
		// as one concurrent batch.
		systems := make([]core.System, len(cv2s))
		for i, cv2 := range cv2s {
			op, err := dist.HyperExp2FixedShortPhase(opMean, cv2, shortMean)
			if err != nil {
				return nil, fmt.Errorf("C²=%v family: %w", cv2, err)
			}
			systems[i] = paperSystem(n, lambda, eta)
			systems[i].Operative = op
		}
		perfs, err := eng.SweepSystems(context.Background(), systems, core.Spectral)
		if err != nil {
			return nil, fmt.Errorf("λ=%v C² sweep: %w", lambda, err)
		}
		for i, cv2 := range cv2s {
			s.X = append(s.X, cv2)
			s.Y = append(s.Y, perfs[i].MeanJobs)
		}
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"λ=%.1f: L grows from %.4g (C²=0, simulated) to %.4g (C²=%g)",
			lambda, s.Y[0], s.Y[len(s.Y)-1], s.X[len(s.X)-1]))
	}
	fig.Notes = append(fig.Notes,
		"paper shape: queue size grows with C²; effect strengthens with load")
	return fig, nil
}

// Figure7 reproduces "Average queue size against average repair time":
// N = 10, λ = 8, operative mean 34.62; exponential vs fitted
// hyperexponential operative periods while 1/η sweeps 1..5. Both variants'
// repair sweeps are one engine batch.
func Figure7(opts Options) (*Figure, error) {
	repairMeans := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	if opts.Quick {
		repairMeans = []float64{1, 3, 5}
	}
	fig := &Figure{
		ID:     "fig7",
		Title:  "Average queue size against average repair time (N=10, λ=8, ξ=0.0289)",
		XLabel: "mean repair time 1/η",
		YLabel: "mean jobs L",
	}
	variants := []struct {
		label string
		op    *dist.HyperExp
	}{
		{"exponential", dist.Exp(1 / paperOps.Mean())},
		{"hyperexponential", paperOps},
	}
	var systems []core.System
	for _, v := range variants {
		for _, rm := range repairMeans {
			sys := paperSystem(10, 8, 1/rm)
			sys.Operative = v.op
			systems = append(systems, sys)
		}
	}
	perfs, err := opts.engine().SweepSystems(context.Background(), systems, core.Spectral)
	if err != nil {
		return nil, fmt.Errorf("repair sweep: %w", err)
	}
	for vi, v := range variants {
		s := Series{Label: v.label}
		for ri, rm := range repairMeans {
			s.X = append(s.X, rm)
			s.Y = append(s.Y, perfs[vi*len(repairMeans)+ri].MeanJobs)
		}
		fig.Series = append(fig.Series, s)
	}
	gap0 := fig.Series[1].Y[0] - fig.Series[0].Y[0]
	gapEnd := fig.Series[1].Y[len(fig.Series[1].Y)-1] - fig.Series[0].Y[len(fig.Series[0].Y)-1]
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"exponential assumption underestimates L by %.3g at 1/η=1 and %.3g at 1/η=5 (paper: gap widens)",
		gap0, gapEnd))
	return fig, nil
}

// Figure8 reproduces "Exact and approximate solutions: increasing load":
// N = 10, η = 25; L against offered load for the exact spectral solution
// and the geometric approximation, which converge as load → 1. Exact and
// approximate solves go out as a single mixed-method engine batch.
func Figure8(opts Options) (*Figure, error) {
	loads := []float64{0.89, 0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99}
	if opts.Quick {
		loads = []float64{0.90, 0.95, 0.99}
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Exact and approximate solutions: increasing load (N=10, η=25)",
		XLabel: "load",
		YLabel: "mean jobs L",
	}
	capacity := 10.0 * paperSystem(10, 1, 25).Availability()
	jobs := make([]service.Job, 0, 2*len(loads))
	for _, m := range []core.Method{core.Spectral, core.Approximation} {
		for _, load := range loads {
			jobs = append(jobs, service.Job{System: paperSystem(10, load*capacity, 25), Method: m})
		}
	}
	results := opts.engine().EvaluateBatch(context.Background(), jobs)
	if err := service.FirstError(results); err != nil {
		return nil, fmt.Errorf("load sweep: %w", err)
	}
	exact := Series{Label: "exact solution"}
	approx := Series{Label: "approximation"}
	for i, load := range loads {
		exact.X = append(exact.X, load)
		exact.Y = append(exact.Y, results[i].Perf.MeanJobs)
		approx.X = append(approx.X, load)
		approx.Y = append(approx.Y, results[len(loads)+i].Perf.MeanJobs)
	}
	fig.Series = []Series{exact, approx}
	first := relGap(exact.Y[0], approx.Y[0])
	last := relGap(exact.Y[len(exact.Y)-1], approx.Y[len(approx.Y)-1])
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"relative gap %.3g at load %.2f shrinking to %.3g at load %.2f (paper: approximation asymptotically exact)",
		first, loads[0], last, loads[len(loads)-1]))
	return fig, nil
}

// Figure9 reproduces "Average response time as a function of N": λ = 7.5,
// η = 25, N = 8..13, exact and approximate W. The paper reads off that at
// least 9 servers keep W ≤ 1.5. The N-sweep runs both methods as one
// engine batch; the min-N answer reuses the same cached solves.
func Figure9(opts Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig9",
		Title:  "Average response time as a function of N (λ=7.5, η=25)",
		XLabel: "servers N",
		YLabel: "mean response W",
	}
	var stableN []int
	for n := 8; n <= 13; n++ {
		if paperSystem(n, 7.5, 25).Stable() {
			stableN = append(stableN, n)
		}
	}
	jobs := make([]service.Job, 0, 2*len(stableN))
	for _, m := range []core.Method{core.Spectral, core.Approximation} {
		for _, n := range stableN {
			jobs = append(jobs, service.Job{System: paperSystem(n, 7.5, 25), Method: m})
		}
	}
	eng := opts.engine()
	results := eng.EvaluateBatch(context.Background(), jobs)
	if err := service.FirstError(results); err != nil {
		return nil, fmt.Errorf("N sweep: %w", err)
	}
	exact := Series{Label: "exact solution"}
	approx := Series{Label: "approximation"}
	for i, n := range stableN {
		exact.X = append(exact.X, float64(n))
		exact.Y = append(exact.Y, results[i].Perf.MeanResponse)
		approx.X = append(approx.X, float64(n))
		approx.Y = append(approx.Y, results[len(stableN)+i].Perf.MeanResponse)
	}
	fig.Series = []Series{exact, approx}
	minN, err := eng.MinServersForResponseTime(context.Background(), paperSystem(0, 7.5, 25), 1.5, 1, 20, core.Spectral)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"minimum N for W ≤ 1.5: %d (paper: at least 9 servers)", minN.Servers))
	return fig, nil
}

func relGap(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / a
}
