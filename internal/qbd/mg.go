package qbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// MGSolution is the stationary distribution computed by the matrix-geometric
// (R-matrix) method: v_{N+k} = v_N·R^k.
type MGSolution struct {
	boundary [][]float64 // v_0..v_{N−1}
	vN       []float64
	r        *linalg.Matrix
	n        int
	s        int

	iterations int
}

// MGOptions tunes the R-matrix fixed-point iteration. The zero value picks
// sensible defaults.
type MGOptions struct {
	// Tol is the entrywise convergence threshold (default 1e-13).
	Tol float64
	// MaxIter bounds the iteration count (default 200000).
	MaxIter int
}

// SolveMatrixGeometric computes the stationary distribution by the
// matrix-geometric method of Neuts — the comparator of Mitrani & Chakka [6].
// R is the minimal non-negative solution of B + R·Q1 + R²·C = 0, obtained by
// the classical fixed point R ← −(B + R²C)·Q1⁻¹; the boundary reuses the
// same S_j elimination as the spectral solver, entirely in real arithmetic.
func SolveMatrixGeometric(p Params, opts MGOptions) (*MGSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CheckStable(); err != nil {
		return nil, err
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-13
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 200000
	}
	s := p.Size()
	n := p.Threshold()
	da := p.dA()
	c := p.cTop()
	// Q1 = A − Dᴬ − λI − C.
	q1 := p.A.Clone()
	for i := 0; i < s; i++ {
		q1.Add(i, i, -(da[i] + p.Lambda + c[i]))
	}
	negQ1Inv, err := linalg.Inverse(q1.Scaled(-1))
	if err != nil {
		return nil, fmt.Errorf("qbd: Q1 is singular: %w", err)
	}
	cdiag := linalg.Diag(c)
	r := linalg.NewMatrix(s, s)
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// R' = (B + R²C)·(−Q1)⁻¹ with B = λI.
		rr := r.Times(r).Times(cdiag)
		for i := 0; i < s; i++ {
			rr.Add(i, i, p.Lambda)
		}
		next := rr.Times(negQ1Inv)
		if next.Minus(r).MaxAbs() < opts.Tol {
			r = next
			break
		}
		r = next
	}
	if iters == opts.MaxIter {
		return nil, errors.New("qbd: R-matrix iteration did not converge")
	}
	stages, err := boundaryStages(p, n)
	if err != nil {
		return nil, err
	}
	// Level-N balance: v_N(Dᴬ + B + C − A − λS_{N−1} − R·C) = 0.
	w := p.A.Scaled(-1)
	for i := 0; i < s; i++ {
		w.Add(i, i, da[i]+p.Lambda+c[i])
	}
	if n > 0 {
		w = w.Minus(stages[n-1].Scaled(p.Lambda))
	}
	w = w.Minus(r.Times(cdiag))
	vN, err := linalg.ForcedLeftNullVector(w, 0)
	if err != nil {
		return nil, fmt.Errorf("qbd: level-N matching system: %w", err)
	}
	// Fix the overall sign so probabilities are non-negative.
	if vecSum(vN) < 0 {
		for i := range vN {
			vN[i] = -vN[i]
		}
	}
	boundary := foldBoundary(stages, vN)
	// Normalise with Σ_{j≥N} v_j = v_N·(I−R)⁻¹.
	imr, err := linalg.Inverse(linalg.Identity(s).Minus(r))
	if err != nil {
		return nil, fmt.Errorf("qbd: I−R is singular: %w", err)
	}
	total := vecSum(imr.VecTimes(vN))
	for _, lv := range boundary {
		total += vecSum(lv)
	}
	if total <= 0 {
		return nil, errors.New("qbd: non-positive total probability in matrix-geometric assembly")
	}
	for i := range vN {
		vN[i] /= total
	}
	for _, lv := range boundary {
		for i := range lv {
			lv[i] /= total
		}
	}
	return &MGSolution{
		boundary:   boundary,
		vN:         vN,
		r:          r,
		n:          n,
		s:          s,
		iterations: iters + 1,
	}, nil
}

// Iterations reports how many fixed-point steps the R computation took.
func (m *MGSolution) Iterations() int { return m.iterations }

// R returns a copy of the rate matrix R.
func (m *MGSolution) R() *linalg.Matrix { return m.r.Clone() }

// Threshold returns N.
func (m *MGSolution) Threshold() int { return m.n }

// Level returns v_j.
func (m *MGSolution) Level(j int) []float64 {
	if j < 0 {
		return make([]float64, m.s)
	}
	if j < m.n {
		return append([]float64(nil), m.boundary[j]...)
	}
	v := append([]float64(nil), m.vN...)
	for k := m.n; k < j; k++ {
		v = m.r.VecTimes(v)
	}
	return v
}

// LevelProb returns P(j jobs present).
func (m *MGSolution) LevelProb(j int) float64 { return vecSum(m.Level(j)) }

// MeanQueue returns L using Σ_{k≥0}(N+k)R^k = N(I−R)⁻¹ + R(I−R)⁻².
func (m *MGSolution) MeanQueue() float64 {
	var l float64
	for j := 0; j < m.n; j++ {
		l += float64(j) * vecSum(m.boundary[j])
	}
	imr, err := linalg.Inverse(linalg.Identity(m.s).Minus(m.r))
	if err != nil {
		return math.NaN()
	}
	sum := imr.Scaled(float64(m.n)).Plus(m.r.Times(imr).Times(imr))
	l += vecSum(sum.VecTimes(m.vN))
	return l
}

// ModeMarginals returns Σ_j v_j.
func (m *MGSolution) ModeMarginals() []float64 {
	out := make([]float64, m.s)
	for j := 0; j < m.n; j++ {
		for i, v := range m.boundary[j] {
			out[i] += v
		}
	}
	imr, err := linalg.Inverse(linalg.Identity(m.s).Minus(m.r))
	if err != nil {
		return out
	}
	for i, v := range imr.VecTimes(m.vN) {
		out[i] += v
	}
	return out
}

// TotalProbability returns Σ_j v_j·1.
func (m *MGSolution) TotalProbability() float64 { return vecSum(m.ModeMarginals()) }

// TailDecay returns the spectral radius of R (the geometric tail rate),
// estimated by power iteration.
func (m *MGSolution) TailDecay() float64 {
	v := make([]float64, m.s)
	for i := range v {
		v[i] = 1 / float64(m.s)
	}
	var rho float64
	for it := 0; it < 2000; it++ {
		nv := m.r.TimesVec(v)
		var norm float64
		for _, x := range nv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range nv {
			nv[i] /= norm
		}
		if it > 5 && math.Abs(norm-rho) < 1e-14 {
			return norm
		}
		rho = norm
		v = nv
	}
	return rho
}
