package qbd

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
)

var (
	paperOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	paperRepair = dist.Exp(25)
)

// paramsFor builds queue parameters for N unreliable servers.
func paramsFor(t testing.TB, n int, lambda, mu float64, op, rep *dist.HyperExp) Params {
	t.Helper()
	env, err := markov.NewEnv(n, op, rep)
	if err != nil {
		t.Fatal(err)
	}
	return Params{Lambda: lambda, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(mu)}
}

func TestValidate(t *testing.T) {
	p := paramsFor(t, 2, 1, 1, paperOps, paperRepair)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Lambda = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero lambda")
	}
	bad = p
	bad.ServiceDiag = p.ServiceDiag[:1]
	if err := bad.Validate(); err == nil {
		t.Error("expected error for single-level service diag")
	}
	bad = p
	bad.A = p.A.Clone()
	bad.A.Set(0, 0, 1)
	if err := bad.Validate(); err == nil {
		t.Error("expected error for nonzero diagonal")
	}
}

func TestLoadMatchesPaperFormula(t *testing.T) {
	// eq. (11): stability iff λ/µ < N·η/(ξ+η).
	n, mu := 10, 1.0
	p := paramsFor(t, n, 8.0, mu, paperOps, paperRepair)
	load, err := p.Load()
	if err != nil {
		t.Fatal(err)
	}
	xi := paperOps.Rate()
	eta := paperRepair.Rate()
	want := 8.0 / mu / (float64(n) * eta / (xi + eta))
	if math.Abs(load-want) > 1e-9 {
		t.Fatalf("load = %v, eq. 11 gives %v", load, want)
	}
}

func TestUnstableRejected(t *testing.T) {
	// Capacity ≈ N·η/(ξ+η)·µ ≈ 9.93 for N=10, so λ=11 is unstable.
	p := paramsFor(t, 10, 11.0, 1.0, paperOps, paperRepair)
	if _, err := SolveSpectral(p); !errors.Is(err, ErrUnstable) {
		t.Errorf("spectral err = %v, want ErrUnstable", err)
	}
	if _, err := SolveMatrixGeometric(p, MGOptions{}); !errors.Is(err, ErrUnstable) {
		t.Errorf("matrix-geometric err = %v, want ErrUnstable", err)
	}
	if _, err := DominantEigenvalue(p); !errors.Is(err, ErrUnstable) {
		t.Errorf("dominant err = %v, want ErrUnstable", err)
	}
}

func TestSpectralPaperExampleInvariants(t *testing.T) {
	// The worked example: N=2, n=2, m=1, s=6.
	p := paramsFor(t, 2, 1.2, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sol.Eigenvalues()); got != 6 {
		t.Errorf("eigenvalue count = %d, want s = 6", got)
	}
	assertStationaryInvariants(t, p, sol, 1e-9)
}

func TestSpectralBalanceEquationsHold(t *testing.T) {
	p := paramsFor(t, 3, 1.5, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if res := BalanceResidual(p, sol, 40); res > 1e-10 {
		t.Errorf("balance residual %v too large", res)
	}
}

func TestSpectralModeMarginalsMatchEnvironment(t *testing.T) {
	// Breakdowns are independent of the queue, so Σ_j v_j must equal the
	// environment's stationary distribution.
	env, err := markov.NewEnv(3, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Lambda: 1.8, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(1.0)}
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := env.StationaryModeProbs()
	if err != nil {
		t.Fatal(err)
	}
	marg := sol.ModeMarginals()
	for i := range pi {
		if math.Abs(marg[i]-pi[i]) > 1e-9 {
			t.Errorf("mode %d: marginal %v, env stationary %v", i, marg[i], pi[i])
		}
	}
}

func TestSpectralMatchesMatrixGeometric(t *testing.T) {
	// Two completely different exact methods must agree everywhere.
	for _, lambda := range []float64{0.5, 1.5, 2.4} {
		p := paramsFor(t, 3, lambda, 1.0, paperOps, paperRepair)
		sp, err := SolveSpectral(p)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		mg, err := SolveMatrixGeometric(p, MGOptions{})
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if d := math.Abs(sp.MeanQueue() - mg.MeanQueue()); d > 1e-7*(1+mg.MeanQueue()) {
			t.Errorf("λ=%v: L spectral %v vs MG %v", lambda, sp.MeanQueue(), mg.MeanQueue())
		}
		for j := 0; j <= 25; j++ {
			a, b := sp.Level(j), mg.Level(j)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-9 {
					t.Fatalf("λ=%v level %d mode %d: %v vs %v", lambda, j, i, a[i], b[i])
				}
			}
		}
		if d := math.Abs(sp.TailDecay() - mg.TailDecay()); d > 1e-7 {
			t.Errorf("λ=%v: tail decay %v vs %v", lambda, sp.TailDecay(), mg.TailDecay())
		}
	}
}

func TestSpectralMatchesTruncatedOracle(t *testing.T) {
	p := paramsFor(t, 2, 1.0, 1.0, paperOps, paperRepair)
	sp, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate far beyond the working range; tail decay ~0.5 ⇒ 200 levels
	// leave < 1e-50 unaccounted.
	tr, err := SolveTruncated(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sp.MeanQueue() - tr.MeanQueue()); d > 1e-8 {
		t.Errorf("L spectral %v vs truncated %v", sp.MeanQueue(), tr.MeanQueue())
	}
	for j := 0; j <= 30; j++ {
		a, b := sp.Level(j), tr.Level(j)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-10 {
				t.Fatalf("level %d mode %d: %v vs %v", j, i, a[i], b[i])
			}
		}
	}
}

func TestSpectralRecoversMM1(t *testing.T) {
	// With breakdowns vanishing (operative mean ≫ repair mean), the N=1
	// system degenerates to M/M/1: P(j) = (1−ρ)ρʲ, L = ρ/(1−ρ).
	op := dist.Exp(1e-7) // operative for ~1e7 time units
	rep := dist.Exp(1e3) // repaired in ~1e-3
	lambda, mu := 0.6, 1.0
	p := paramsFor(t, 1, lambda, mu, op, rep)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	if l := sol.MeanQueue(); math.Abs(l-rho/(1-rho)) > 1e-3 {
		t.Errorf("L = %v, M/M/1 gives %v", l, rho/(1-rho))
	}
	for j := 0; j <= 10; j++ {
		want := (1 - rho) * math.Pow(rho, float64(j))
		if got := sol.LevelProb(j); math.Abs(got-want) > 1e-4 {
			t.Errorf("P(%d) = %v, M/M/1 gives %v", j, got, want)
		}
	}
	if z := sol.TailDecay(); math.Abs(z-rho) > 1e-4 {
		t.Errorf("tail decay %v, want ρ = %v", z, rho)
	}
}

func TestSpectralRecoversMMc(t *testing.T) {
	// Same trick with N=3 servers: compare to the Erlang-C M/M/c formulas.
	op := dist.Exp(1e-7)
	rep := dist.Exp(1e3)
	lambda, mu, c := 2.2, 1.0, 3
	p := paramsFor(t, c, lambda, mu, op, rep)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if l, want := sol.MeanQueue(), mmcMeanQueue(lambda, mu, c); math.Abs(l-want) > 1e-3 {
		t.Errorf("L = %v, M/M/%d gives %v", l, c, want)
	}
}

func TestSpectralHeavyLoadNearOne(t *testing.T) {
	// Load 0.985 (the Figure 8 regime): solution must stay clean.
	p := paramsFor(t, 10, 9.78, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if tp := sol.TotalProbability(); math.Abs(tp-1) > 1e-7 {
		t.Errorf("total probability %v", tp)
	}
	if res := BalanceResidual(p, sol, 30); res > 1e-8 {
		t.Errorf("balance residual %v", res)
	}
	if z := sol.TailDecay(); z < 0.9 || z >= 1 {
		t.Errorf("tail decay %v out of heavy-traffic range", z)
	}
}

func TestDominantEigenvalueMatchesSpectral(t *testing.T) {
	for _, lambda := range []float64{0.8, 1.9, 2.6} {
		p := paramsFor(t, 3, lambda, 1.0, paperOps, paperRepair)
		sol, err := SolveSpectral(p)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		z, err := DominantEigenvalue(p)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if math.Abs(z-sol.TailDecay()) > 1e-9 {
			t.Errorf("λ=%v: scan %v vs spectral %v", lambda, z, sol.TailDecay())
		}
	}
}

func TestApproxConvergesUnderHeavyLoad(t *testing.T) {
	// Paper Fig 8: the geometric approximation error shrinks as load → 1.
	p1 := paramsFor(t, 10, 8.9, 1.0, paperOps, paperRepair)  // load ≈ 0.896
	p2 := paramsFor(t, 10, 9.8, 1.0, paperOps, paperRepair)  // load ≈ 0.987
	p3 := paramsFor(t, 10, 9.91, 1.0, paperOps, paperRepair) // load ≈ 0.998
	relErr := func(p Params) float64 {
		ex, err := SolveSpectral(p)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := SolveApprox(p)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(ap.MeanQueue()-ex.MeanQueue()) / ex.MeanQueue()
	}
	e1, e2, e3 := relErr(p1), relErr(p2), relErr(p3)
	if !(e3 < e2 && e2 < e1) {
		t.Errorf("approximation error did not shrink with load: %v → %v → %v", e1, e2, e3)
	}
	if e3 > 0.05 {
		t.Errorf("error at load 0.998 is %v, want < 5%%", e3)
	}
}

func TestApproxGeometricForm(t *testing.T) {
	p := paramsFor(t, 4, 2.0, 1.0, paperOps, paperRepair)
	ap, err := SolveApprox(p)
	if err != nil {
		t.Fatal(err)
	}
	z := ap.TailDecay()
	if z <= 0 || z >= 1 {
		t.Fatalf("z_s = %v out of (0,1)", z)
	}
	// P(j+1)/P(j) = z exactly for the geometric form.
	for j := 0; j < 20; j++ {
		r := ap.LevelProb(j+1) / ap.LevelProb(j)
		if math.Abs(r-z) > 1e-12 {
			t.Fatalf("ratio at %d: %v vs z %v", j, r, z)
		}
	}
	if math.Abs(ap.MeanQueue()-z/(1-z)) > 1e-12 {
		t.Errorf("L = %v, want z/(1−z) = %v", ap.MeanQueue(), z/(1-z))
	}
	if tp := ap.TotalProbability(); tp != 1 {
		t.Errorf("total probability %v", tp)
	}
}

func TestSpectralTailIsAsymptoticallyGeometric(t *testing.T) {
	p := paramsFor(t, 3, 2.0, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	z := sol.TailDecay()
	// Subdominant terms decay like (|z₂|/z_s)^j, so compare deep in the tail.
	r := sol.LevelProb(81) / sol.LevelProb(80)
	if math.Abs(r-z) > 1e-5 {
		t.Errorf("tail ratio %v, dominant z %v", r, z)
	}
}

func TestTailProbConsistentWithLevels(t *testing.T) {
	p := paramsFor(t, 2, 1.0, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	// TailProb(j) − TailProb(j+1) = LevelProb(j) and TailProb(0) = 1.
	if tp := sol.TailProb(0); math.Abs(tp-1) > 1e-9 {
		t.Errorf("TailProb(0) = %v", tp)
	}
	for j := 0; j <= 12; j++ {
		diff := sol.TailProb(j) - sol.TailProb(j+1)
		if math.Abs(diff-sol.LevelProb(j)) > 1e-9 {
			t.Errorf("telescoping failed at %d: %v vs %v", j, diff, sol.LevelProb(j))
		}
	}
}

func TestAllLevelProbsNonNegative(t *testing.T) {
	p := paramsFor(t, 4, 2.2, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j <= 60; j++ {
		for i, v := range sol.Level(j) {
			if v < -1e-12 {
				t.Fatalf("negative probability v_%d[%d] = %v", j, i, v)
			}
		}
	}
}

func TestMGIterationsReported(t *testing.T) {
	p := paramsFor(t, 2, 1.0, 1.0, paperOps, paperRepair)
	mg, err := SolveMatrixGeometric(p, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Iterations() < 2 {
		t.Errorf("iterations = %d, expected a real fixed-point run", mg.Iterations())
	}
	if r := mg.R(); r.Rows != p.Size() {
		t.Errorf("R is %d×%d", r.Rows, r.Cols)
	}
}

func TestTruncatedValidation(t *testing.T) {
	p := paramsFor(t, 2, 1.0, 1.0, paperOps, paperRepair)
	if _, err := SolveTruncated(p, 0); err == nil {
		t.Error("expected error for truncation level 0")
	}
}

func TestQueueCCDF(t *testing.T) {
	p := paramsFor(t, 2, 1.0, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	ccdf := QueueCCDF(sol, 10)
	if math.Abs(ccdf[0]-1) > 1e-9 {
		t.Errorf("CCDF(0) = %v", ccdf[0])
	}
	for j := 1; j <= 10; j++ {
		if ccdf[j] > ccdf[j-1]+1e-12 {
			t.Errorf("CCDF increasing at %d", j)
		}
	}
}

// assertStationaryInvariants checks the core invariants every exact solution
// must satisfy.
func assertStationaryInvariants(t *testing.T, p Params, sol Solution, tol float64) {
	t.Helper()
	if tp := sol.TotalProbability(); math.Abs(tp-1) > tol {
		t.Errorf("total probability = %v", tp)
	}
	if res := BalanceResidual(p, sol, 30); res > tol {
		t.Errorf("balance residual = %v", res)
	}
	if l := sol.MeanQueue(); l <= 0 || math.IsNaN(l) {
		t.Errorf("mean queue = %v", l)
	}
	for j := 0; j <= 20; j++ {
		if pr := sol.LevelProb(j); pr < -tol {
			t.Errorf("P(%d) = %v negative", j, pr)
		}
	}
}

// mmcMeanQueue is the Erlang-C closed form for the M/M/c mean queue length.
func mmcMeanQueue(lambda, mu float64, c int) float64 {
	a := lambda / mu
	rho := a / float64(c)
	sum := 0.0
	fact := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	factC := fact * float64(c)
	p0 := 1 / (sum + math.Pow(a, float64(c))/(factC*(1-rho)))
	lq := p0 * math.Pow(a, float64(c)) * rho / (factC * (1 - rho) * (1 - rho))
	return lq + a
}
