package qbd

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
)

// The paper's model allows m-phase hyperexponential repairs (§3) even
// though the numerical section uses m = 1. These tests exercise the full
// n = 2, m = 2 generality, including against the paper's own fitted
// 2-phase outage distribution.

var paperOutageH2 = dist.MustHyperExp([]float64{0.9303, 0.0697}, []float64{25.0043, 1.6346})

func TestTwoPhaseRepairSolves(t *testing.T) {
	p := paramsFor(t, 3, 1.8, 1.0, paperOps, paperOutageH2)
	if got, want := p.Size(), markov.NumModes(3, 2, 2); got != want {
		t.Fatalf("s = %d, want %d", got, want)
	}
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	assertStationaryInvariants(t, p, sol, 1e-9)
}

func TestTwoPhaseRepairCrossMethodAgreement(t *testing.T) {
	p := paramsFor(t, 2, 1.2, 1.0, paperOps, paperOutageH2)
	sp, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := SolveMatrixGeometric(p, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SolveTruncated(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sp.MeanQueue() - mg.MeanQueue()); d > 1e-8 {
		t.Errorf("L spectral %v vs MG %v", sp.MeanQueue(), mg.MeanQueue())
	}
	if d := math.Abs(sp.MeanQueue() - tr.MeanQueue()); d > 1e-8 {
		t.Errorf("L spectral %v vs truncated %v", sp.MeanQueue(), tr.MeanQueue())
	}
}

func TestHyperexponentialRepairsRaiseQueue(t *testing.T) {
	// More variable repairs (same mean) should not shorten the queue —
	// the same §4 message as Figure 6, applied to the repair side.
	repMean := paperOutageH2.Mean()
	pH2 := paramsFor(t, 3, 2.0, 1.0, paperOps, paperOutageH2)
	pExp := paramsFor(t, 3, 2.0, 1.0, paperOps, dist.Exp(1/repMean))
	h2, err := SolveSpectral(pH2)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := SolveSpectral(pExp)
	if err != nil {
		t.Fatal(err)
	}
	if h2.MeanQueue() < ex.MeanQueue()-1e-9 {
		t.Errorf("H2 repairs L = %v below exponential-repair L = %v", h2.MeanQueue(), ex.MeanQueue())
	}
}

func TestThreePhaseOperativeSolves(t *testing.T) {
	// n = 3 operative phases (what the paper's brute-force fit explored).
	op3 := dist.MustHyperExp([]float64{0.5, 0.3, 0.2}, []float64{0.2, 0.02, 0.005})
	p := paramsFor(t, 2, 0.9, 1.0, op3, paperRepair)
	if got, want := p.Size(), markov.NumModes(2, 3, 1); got != want {
		t.Fatalf("s = %d, want %d", got, want)
	}
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	assertStationaryInvariants(t, p, sol, 1e-9)
	mg, err := SolveMatrixGeometric(p, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sol.MeanQueue() - mg.MeanQueue()); d > 1e-8 {
		t.Errorf("L spectral %v vs MG %v", sol.MeanQueue(), mg.MeanQueue())
	}
}
