package qbd

import "math"

// Solution is the common read interface over the stationary distribution
// produced by any of the four solvers.
type Solution interface {
	// Level returns the stationary probability vector v_j over modes.
	Level(j int) []float64
	// LevelProb returns P(j jobs present).
	LevelProb(j int) float64
	// MeanQueue returns the mean number of jobs L.
	MeanQueue() float64
	// ModeMarginals returns Σ_j v_j.
	ModeMarginals() []float64
	// TotalProbability returns Σ_j v_j·1 (≈1 for exact methods).
	TotalProbability() float64
	// TailDecay returns the geometric decay rate of the queue-length tail.
	TailDecay() float64
}

var (
	_ Solution = (*SpectralSolution)(nil)
	_ Solution = (*MGSolution)(nil)
	_ Solution = (*ApproxSolution)(nil)
	_ Solution = (*TruncatedSolution)(nil)
)

// BalanceResidual evaluates the maximum absolute residual of the global
// balance equations (eq. 14) over levels 0..maxLevel:
//
//	v_j(Dᴬ + B + C_j) − v_{j−1}B − v_jA − v_{j+1}C_{j+1}
//
// For an exact stationary solution this is zero to machine precision at
// every level; the test suite uses it as the definitive correctness check.
func BalanceResidual(p Params, sol Solution, maxLevel int) float64 {
	s := p.Size()
	da := p.dA()
	var worst float64
	prev := make([]float64, s) // v_{−1} = 0
	cur := sol.Level(0)
	for j := 0; j <= maxLevel; j++ {
		next := sol.Level(j + 1)
		cj := p.serviceAt(j)
		cnext := p.serviceAt(j + 1)
		through := p.A.VecTimes(cur) // (v_j·A)
		for i := 0; i < s; i++ {
			res := cur[i]*(da[i]+p.Lambda+cj[i]) -
				prev[i]*p.Lambda -
				through[i] -
				next[i]*cnext[i]
			if a := math.Abs(res); a > worst {
				worst = a
			}
		}
		prev, cur = cur, next
	}
	return worst
}

// QueueCCDF returns P(queue ≥ j) for j = 0..maxJ as a slice.
func QueueCCDF(sol Solution, maxJ int) []float64 {
	out := make([]float64, maxJ+1)
	// Build from the PMF for solver-independence.
	total := sol.TotalProbability()
	acc := 0.0
	for j := 0; j <= maxJ; j++ {
		out[j] = total - acc
		acc += sol.LevelProb(j)
	}
	return out
}
