package qbd

import (
	"math"
	"testing"
)

func TestDenseMatchesStagedElimination(t *testing.T) {
	// The naive (N+1)s dense assembly and the O(N·s³) staged elimination are
	// two routes to the same exact solution.
	for _, lambda := range []float64{0.8, 1.9} {
		p := paramsFor(t, 3, lambda, 1.0, paperOps, paperRepair)
		fast, err := SolveSpectral(p)
		if err != nil {
			t.Fatalf("λ=%v staged: %v", lambda, err)
		}
		dense, err := SolveSpectralDense(p)
		if err != nil {
			t.Fatalf("λ=%v dense: %v", lambda, err)
		}
		if d := math.Abs(fast.MeanQueue() - dense.MeanQueue()); d > 1e-8 {
			t.Errorf("λ=%v: L staged %v vs dense %v", lambda, fast.MeanQueue(), dense.MeanQueue())
		}
		for j := 0; j <= 20; j++ {
			a, b := fast.Level(j), dense.Level(j)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-9 {
					t.Fatalf("λ=%v level %d mode %d: staged %v vs dense %v", lambda, j, i, a[i], b[i])
				}
			}
		}
	}
}

func TestDenseSatisfiesBalance(t *testing.T) {
	p := paramsFor(t, 2, 1.1, 1.0, paperOps, paperRepair)
	sol, err := SolveSpectralDense(p)
	if err != nil {
		t.Fatal(err)
	}
	assertStationaryInvariants(t, p, sol, 1e-8)
}

func TestDenseRejectsUnstable(t *testing.T) {
	p := paramsFor(t, 2, 5.0, 1.0, paperOps, paperRepair)
	if _, err := SolveSpectralDense(p); err == nil {
		t.Fatal("expected instability error")
	}
}
