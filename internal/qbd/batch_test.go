package qbd

import (
	"errors"
	"math"
	"math/cmplx"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// The batched sweep path promises bit-identical results to per-point
// SolveSpectral on amd64; on architectures whose compilers contract
// multiply-adds into FMAs the two sides may round differently, so the
// assertions fall back to a 1e-12 relative tolerance there (documented in
// ARCHITECTURE.md).

const exactArch = "amd64"

func sameFloat(a, b float64) bool {
	if runtime.GOARCH == exactArch {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a))
}

func sameComplex(a, b complex128) bool {
	return sameFloat(real(a), real(b)) && sameFloat(imag(a), imag(b))
}

func requireSameFloats(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	for i := range want {
		if !sameFloat(want[i], got[i]) {
			t.Fatalf("%s[%d]: %v (%x) vs %v (%x)", what, i,
				want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// requireSolutionsIdentical compares the full internal state and the
// derived metrics of two spectral solutions.
func requireSolutionsIdentical(t *testing.T, want, got *SpectralSolution) {
	t.Helper()
	if want.n != got.n || want.s != got.s {
		t.Fatalf("shape: N=%d,s=%d vs N=%d,s=%d", want.n, want.s, got.n, got.s)
	}
	for j := range want.boundary {
		requireSameFloats(t, "boundary level", want.boundary[j], got.boundary[j])
	}
	if len(want.terms) != len(got.terms) {
		t.Fatalf("terms: %d vs %d", len(want.terms), len(got.terms))
	}
	for k := range want.terms {
		wt, gt := want.terms[k], got.terms[k]
		if !sameComplex(wt.z, gt.z) {
			t.Fatalf("term %d z: %v vs %v", k, wt.z, gt.z)
		}
		if !sameComplex(wt.gamma, gt.gamma) {
			t.Fatalf("term %d gamma: %v vs %v", k, wt.gamma, gt.gamma)
		}
		for i := range wt.u {
			if !sameComplex(wt.u[i], gt.u[i]) {
				t.Fatalf("term %d u[%d]: %v vs %v", k, i, wt.u[i], gt.u[i])
			}
		}
	}
	if !sameFloat(want.MeanQueue(), got.MeanQueue()) {
		t.Fatalf("MeanQueue: %v vs %v", want.MeanQueue(), got.MeanQueue())
	}
	if !sameFloat(want.TailDecay(), got.TailDecay()) {
		t.Fatalf("TailDecay: %v vs %v", want.TailDecay(), got.TailDecay())
	}
	if !sameFloat(want.TotalProbability(), got.TotalProbability()) {
		t.Fatalf("TotalProbability: %v vs %v", want.TotalProbability(), got.TotalProbability())
	}
	requireSameFloats(t, "ModeMarginals", want.ModeMarginals(), got.ModeMarginals())
	for j := 0; j <= want.n+8; j++ {
		if !sameFloat(want.LevelProb(j), got.LevelProb(j)) {
			t.Fatalf("LevelProb(%d): %v vs %v", j, want.LevelProb(j), got.LevelProb(j))
		}
		if !sameFloat(want.TailProb(j), got.TailProb(j)) {
			t.Fatalf("TailProb(%d): %v vs %v", j, want.TailProb(j), got.TailProb(j))
		}
		requireSameFloats(t, "Level", want.Level(j), got.Level(j))
	}
}

func sweepGrid(low, high float64, g int) []float64 {
	out := make([]float64, g)
	for i := range out {
		out[i] = low + (high-low)*float64(i)/float64(g)
	}
	return out
}

// TestSweepSolverMatchesSolveSpectral drives one worker across a λ-grid
// with a single reused solution value and checks every point against the
// scalar path — the core equivalence property, including workspace reuse.
func TestSweepSolverMatchesSolveSpectral(t *testing.T) {
	p := paramsFor(t, 4, 1, 1, paperOps, paperRepair)
	load1, err := Params{Lambda: 1, A: p.A, ServiceDiag: p.ServiceDiag}.Load()
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSweepSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	w := sv.NewWorker()
	var sol SpectralSolution
	for _, lambda := range sweepGrid(0.1/load1, 0.95/load1, 24) {
		p.Lambda = lambda
		want, wantErr := SolveSpectral(p)
		gotErr := w.SolveInto(lambda, &sol)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("λ=%v: error mismatch: scalar %v, batch %v", lambda, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		requireSolutionsIdentical(t, want, &sol)
	}
}

// TestSweepSolverPooledSolveMatches exercises the pooled Solve entry point
// and checks the returned solutions are caller-owned (still correct after
// later points were solved on the same pool).
func TestSweepSolverPooledSolveMatches(t *testing.T) {
	p := paramsFor(t, 3, 1, 1, paperOps, paperRepair)
	sv, err := NewSweepSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	lambdas := sweepGrid(0.5, 2.2, 8)
	sols := make([]*SpectralSolution, len(lambdas))
	for i, l := range lambdas {
		if sols[i], err = sv.Solve(l); err != nil {
			t.Fatalf("λ=%v: %v", l, err)
		}
	}
	for i, l := range lambdas {
		p.Lambda = l
		want, err := SolveSpectral(p)
		if err != nil {
			t.Fatal(err)
		}
		requireSolutionsIdentical(t, want, sols[i])
	}
}

// TestSweepSolverMidGridErrors is the regression test for mid-sweep
// failures: invalid and unstable rates inside the grid must return the
// scalar path's exact errors without poisoning the shared batch state —
// points solved after the failure stay bit-identical to the scalar path.
func TestSweepSolverMidGridErrors(t *testing.T) {
	p := paramsFor(t, 3, 1, 1, paperOps, paperRepair)
	sv, err := NewSweepSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	w := sv.NewWorker()
	var sol SpectralSolution

	// Warm the workspace with a good point.
	if err := w.SolveInto(1.0, &sol); err != nil {
		t.Fatal(err)
	}

	// Unstable rate mid-grid: same error as the scalar path.
	p.Lambda = 1e6
	_, wantErr := SolveSpectral(p)
	gotErr := w.SolveInto(1e6, &sol)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("expected unstable errors, got scalar %v, batch %v", wantErr, gotErr)
	}
	if !errors.Is(gotErr, ErrUnstable) {
		t.Fatalf("batch error %v is not ErrUnstable", gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error text differs:\n  scalar: %v\n  batch:  %v", wantErr, gotErr)
	}

	// Invalid rate mid-grid: same error text as scalar validation.
	p.Lambda = -2
	wantErr = p.Validate()
	gotErr = w.SolveInto(-2, &sol)
	if gotErr == nil || wantErr == nil || !strings.Contains(gotErr.Error(), wantErr.Error()) {
		t.Fatalf("λ<0 error mismatch: scalar %v, batch %v", wantErr, gotErr)
	}

	// The shared state survives: the next point is still bit-identical.
	p.Lambda = 1.3
	want, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SolveInto(1.3, &sol); err != nil {
		t.Fatal(err)
	}
	requireSolutionsIdentical(t, want, &sol)
}

// TestSweepSolverConcurrent hammers one shared SweepSolver from many
// goroutines and verifies every result against precomputed scalar
// references — pooled workspaces must never alias across concurrent
// points. Run under -race in CI.
func TestSweepSolverConcurrent(t *testing.T) {
	p := paramsFor(t, 3, 1, 1, paperOps, paperRepair)
	sv, err := NewSweepSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	lambdas := sweepGrid(0.4, 2.4, 16)
	want := make([]*SpectralSolution, len(lambdas))
	for i, l := range lambdas {
		p.Lambda = l
		if want[i], err = SolveSpectral(p); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i := range lambdas {
					idx := (i + g) % len(lambdas)
					got, err := sv.Solve(lambdas[idx])
					if err != nil {
						errs <- err
						return
					}
					w := want[idx]
					// Canary: a torn or aliased workspace shows up as a
					// mean-queue mismatch against the scalar reference.
					if !sameFloat(w.MeanQueue(), got.MeanQueue()) ||
						!sameFloat(w.TailDecay(), got.TailDecay()) {
						errs <- errors.New("concurrent result diverged from scalar reference")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSweepWorkerSolveIntoAllocationFree enforces the tentpole invariant:
// once a (worker, solution) pair is warm, a grid point costs zero heap
// allocations, including reading the headline metric.
func TestSweepWorkerSolveIntoAllocationFree(t *testing.T) {
	p := paramsFor(t, 4, 1, 1, paperOps, paperRepair)
	sv, err := NewSweepSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	w := sv.NewWorker()
	var sol SpectralSolution
	lambdas := sweepGrid(0.6, 3.4, 8)
	for _, l := range lambdas { // warm worker arena and solution storage
		if err := w.SolveInto(l, &sol); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	var sink float64
	allocs := testing.AllocsPerRun(40, func() {
		l := lambdas[i%len(lambdas)]
		i++
		if err := w.SolveInto(l, &sol); err != nil {
			t.Fatal(err)
		}
		sink += sol.MeanQueue()
	})
	if allocs != 0 {
		t.Fatalf("SolveInto allocated %v times per point, want 0 (sink %v)", allocs, sink)
	}
}

// TestSweepSolverEigenvaluesMatch spot-checks that the eigenvalue sets
// agree exactly — the piece of the pipeline where a different sort or
// selection rule would silently change everything downstream.
func TestSweepSolverEigenvaluesMatch(t *testing.T) {
	p := paramsFor(t, 5, 3.1, 1, paperOps, paperRepair)
	want, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewSweepSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.Solve(3.1)
	if err != nil {
		t.Fatal(err)
	}
	we, ge := want.Eigenvalues(), got.Eigenvalues()
	for i := range we {
		if runtime.GOARCH == exactArch && we[i] != ge[i] {
			t.Fatalf("eigenvalue %d: %v vs %v", i, we[i], ge[i])
		}
		if cmplx.Abs(we[i]-ge[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d: %v vs %v", i, we[i], ge[i])
		}
	}
}
