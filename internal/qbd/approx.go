package qbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/optimize"
)

// ApproxSolution is the geometric approximation of paper §3.2 (eq. 21):
// the queue length is geometric with parameter z_s and independent of the
// operational mode.
type ApproxSolution struct {
	z float64
	u []float64 // u_s normalised to sum 1
}

// DominantEigenvalue finds z_s, the largest real eigenvalue of Q(z) in
// (0, 1), by scanning the sign of det Q(z) downward from 1 and refining the
// first bracket by bisection. The determinant is evaluated in
// sign/log-magnitude form so large state spaces cannot overflow. A
// candidate root only counts as z_s if its eigenvector is non-negative
// (Perron property); when a coarse scan lands on a subdominant real root —
// possible when two real roots share a scan cell — the scan escalates to a
// finer grid, and ultimately to the full companion eigensolve.
func DominantEigenvalue(p Params) (float64, error) {
	z, _, err := dominantPair(p)
	return z, err
}

// dominantPair returns (z_s, u_s) with u_s normalised to sum 1 and clamped
// non-negative.
func dominantPair(p Params) (float64, []float64, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	if err := p.CheckStable(); err != nil {
		return 0, nil, err
	}
	// Coarse-to-fine scan: the dominant root is usually found by the coarse
	// pass, so the typical cost is ~64 LU factorisations plus the bisection.
	// Each LU is O(s³), which dominates the approximation's cost for large
	// N — the very regime the approximation exists for.
	for _, grid := range []int{64, 512, 4096} {
		z, ok := scanForRoot(p, grid)
		if !ok {
			continue
		}
		u, err := dominantVector(p, z, 1e-8)
		if err != nil {
			continue // mixed signs: subdominant root, refine the scan
		}
		return z, u, nil
	}
	// Fallback: full eigensolve, accepting the best real root.
	zs, err := unitDiskEigenvalues(p)
	if err != nil {
		return 0, nil, fmt.Errorf("qbd: determinant scan found no dominant root and eigensolve failed: %w", err)
	}
	var best float64
	for _, z := range zs {
		if imag(z) == 0 && real(z) > best {
			best = real(z)
		}
	}
	if best == 0 {
		return 0, nil, errors.New("qbd: no real dominant eigenvalue found")
	}
	u, err := dominantVector(p, best, 1e-5)
	if err != nil {
		return 0, nil, err
	}
	return best, u, nil
}

// scanForRoot looks for the highest sign change of det Q(z) on a uniform
// grid below 1 and bisects it to machine precision.
func scanForRoot(p Params, grid int) (float64, bool) {
	sign := func(z float64) int {
		_, s := linalg.FactorLU(p.QofZ(z)).LogDet()
		return s
	}
	hi := 1 - 1e-9
	prevZ, prevSign := hi, sign(hi)
	for i := 1; i <= grid; i++ {
		z := hi * (1 - float64(i)/float64(grid))
		if z <= 0 {
			z = 1e-12
		}
		s := sign(z)
		if s != prevSign && s != 0 && prevSign != 0 {
			// Bisection on the determinant sign: the magnitude is useless for
			// interpolation (it spans hundreds of orders), but the sign is
			// exact, so ~50 halvings pin the root to machine precision.
			root, err := optimize.Bisect(func(x float64) float64 {
				return float64(sign(x))
			}, z, prevZ, 1e-14)
			if err == nil {
				return root, true
			}
		}
		if s == 0 {
			return z, true // landed exactly on the root
		}
		prevZ, prevSign = z, s
	}
	return 0, false
}

// dominantVector extracts the left null vector of Q(z), normalises it to
// sum 1, and rejects it when entries are negative beyond tol — the Perron
// check that distinguishes z_s from subdominant real roots.
func dominantVector(p Params, z, tol float64) ([]float64, error) {
	u, err := linalg.ForcedLeftNullVector(p.QofZ(z), 0)
	if err != nil {
		return nil, fmt.Errorf("qbd: eigenvector at z = %v: %w", z, err)
	}
	total := vecSum(u)
	if total == 0 {
		return nil, errors.New("qbd: dominant eigenvector sums to zero")
	}
	for i := range u {
		u[i] /= total
	}
	for i, v := range u {
		if v < -tol {
			return nil, fmt.Errorf("qbd: eigenvector entry %d is %v at z = %v; subdominant root", i, v, z)
		}
		if v < 0 {
			u[i] = 0
		}
	}
	return u, nil
}

// SolveApprox computes the geometric approximation (paper §3.2): only the
// dominant eigenvalue z_s and its left eigenvector u_s are retained, giving
// v_j = u_s/(u_s·1)·(1−z_s)·z_s^j for every level j ≥ 0. The approximation
// is asymptotically exact in heavy traffic [Mitrani 2005] and needs one
// eigenvalue instead of s, which keeps it numerically robust where the
// exact method meets ill-conditioning (paper §4, N ≳ 24).
func SolveApprox(p Params) (*ApproxSolution, error) {
	z, u, err := dominantPair(p)
	if err != nil {
		return nil, err
	}
	return &ApproxSolution{z: z, u: u}, nil
}

// TailDecay returns z_s.
func (a *ApproxSolution) TailDecay() float64 { return a.z }

// Level returns v_j = u_s·(1−z_s)·z_s^j.
func (a *ApproxSolution) Level(j int) []float64 {
	out := make([]float64, len(a.u))
	if j < 0 {
		return out
	}
	f := (1 - a.z) * math.Pow(a.z, float64(j))
	for i, v := range a.u {
		out[i] = v * f
	}
	return out
}

// LevelProb returns P(j jobs) = (1−z_s)·z_s^j.
func (a *ApproxSolution) LevelProb(j int) float64 {
	if j < 0 {
		return 0
	}
	return (1 - a.z) * math.Pow(a.z, float64(j))
}

// MeanQueue returns L = z_s/(1−z_s), the geometric mean.
func (a *ApproxSolution) MeanQueue() float64 { return a.z / (1 - a.z) }

// ModeMarginals returns u_s/(u_s·1): under the approximation the mode is
// independent of the queue length.
func (a *ApproxSolution) ModeMarginals() []float64 {
	return append([]float64(nil), a.u...)
}

// TotalProbability always returns 1 for the geometric form.
func (a *ApproxSolution) TotalProbability() float64 { return 1 }
