package qbd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// fuzzParams turns the fuzzer's raw inputs into solver parameters. When
// single is set it builds the smallest legal environment — a 1×1 zero
// transition matrix (s = 1, a single always-operative mode) — from raw
// Params rather than a Markov environment, covering the degenerate shape
// the environment builder never produces.
func fuzzParams(seed int64, single bool) (Params, bool) {
	rng := rand.New(rand.NewSource(seed))
	if single {
		mu0 := math.Exp(rng.NormFloat64())
		mu1 := mu0 * (1 + rng.Float64())
		return Params{
			Lambda:      1,
			A:           linalg.NewMatrix(1, 1),
			ServiceDiag: [][]float64{{mu0}, {mu1}},
		}, true
	}
	return randomStableParams(rng)
}

// FuzzSweepSolver fuzzes the batched solver against the scalar one over
// degenerate batches: single-point grids (span = 0), grids whose upper
// points cross the stability threshold mid-sweep, and s = 1 environments.
// Every grid point must agree with per-point SolveSpectral — identical
// error text on failing points, bit-identical metrics (amd64) on the rest.
func FuzzSweepSolver(f *testing.F) {
	f.Add(int64(1), 0.8, 0.0, false)  // single-point batch
	f.Add(int64(2), 0.5, 1.2, false)  // grid crossing into instability
	f.Add(int64(3), 0.9, 0.4, true)   // s = 1 environment
	f.Add(int64(4), -1.0, 0.3, false) // non-positive rates in the grid
	f.Add(int64(5), 1e6, 0.0, true)   // single unstable point
	f.Fuzz(func(t *testing.T, seed int64, lamScale, span float64, single bool) {
		if math.IsNaN(lamScale) || math.IsInf(lamScale, 0) ||
			math.IsNaN(span) || math.IsInf(span, 0) {
			t.Skip("non-finite fuzz input")
		}
		p, ok := fuzzParams(seed, single)
		if !ok {
			t.Skip("degenerate environment draw")
		}
		sv, err := NewSweepSolver(p)
		if err != nil {
			// Construction rejects only what every scalar point rejects too.
			p2 := p
			p2.Lambda = 1
			if _, scalarErr := SolveSpectral(p2); scalarErr == nil {
				t.Fatalf("NewSweepSolver failed (%v) but scalar path solves", err)
			}
			t.Skip("environment rejected by both paths")
		}
		w := sv.NewWorker()
		var sol SpectralSolution
		// Grid of 1–5 points centred on lamScale·λ with half-width span.
		points := 1 + int(math.Abs(span)*4)%5
		span = math.Min(math.Abs(span), 2)
		for g := 0; g < points; g++ {
			frac := 0.0
			if points > 1 {
				frac = 2*float64(g)/float64(points-1) - 1 // -1..1 across the grid
			}
			lambda := p.Lambda * lamScale * (1 + span*frac)
			p2 := p
			p2.Lambda = lambda
			want, wantErr := SolveSpectral(p2)
			gotErr := w.SolveInto(lambda, &sol)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("λ=%v: scalar err %v, batch err %v", lambda, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("λ=%v: error text %q vs %q", lambda, wantErr, gotErr)
				}
				continue
			}
			if !sameFloat(want.MeanQueue(), sol.MeanQueue()) ||
				!sameFloat(want.TailDecay(), sol.TailDecay()) ||
				!sameFloat(want.TotalProbability(), sol.TotalProbability()) {
				t.Fatalf("λ=%v: metrics diverge: L %v vs %v, z %v vs %v", lambda,
					want.MeanQueue(), sol.MeanQueue(), want.TailDecay(), sol.TailDecay())
			}
			for j := 0; j <= 10; j++ {
				if !sameFloat(want.LevelProb(j), sol.LevelProb(j)) {
					t.Fatalf("λ=%v: LevelProb(%d) %v vs %v",
						lambda, j, want.LevelProb(j), sol.LevelProb(j))
				}
			}
		}
	})
}
