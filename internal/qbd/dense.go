package qbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SolveSpectralDense is the textbook assembly of the spectral-expansion
// boundary problem: the balance equations for levels 0..N and the
// normalisation condition are stacked into one dense complex linear system
// of size (N+1)s in the unknowns (v_0, ..., v_{N−1}, γ̃), exactly as
// described under eq. (19)–(20) of the paper ("a set of (N+1)s linear
// equations with Ns unknown probabilities plus the s constants γ_k").
//
// It exists as an ablation baseline for the O(N·s³) staged elimination used
// by SolveSpectral: the two must agree to machine precision, and the
// benchmark suite measures the O((Ns)³) cost this formulation pays.
func SolveSpectralDense(p Params) (*SpectralSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CheckStable(); err != nil {
		return nil, err
	}
	zs, err := unitDiskEigenvalues(p)
	if err != nil {
		return nil, err
	}
	terms, err := eigenvectorTerms(p, zs)
	if err != nil {
		return nil, err
	}
	s := p.Size()
	n := p.Threshold()
	da := p.dA()
	dim := (n + 1) * s
	// Unknown vector x = (v_0, ..., v_{N−1}, γ̃) of length (N+1)s. Row-vector
	// equations x·M = rhs are assembled transposed: M is dim×dim with
	// column blocks = equations.
	m := linalg.NewCMatrix(dim, dim)
	rhs := make([]complex128, dim)

	// vblock(j) returns, for each unknown index u, the coefficient of
	// unknown u in the expression for v_j[i]; for j < N the level vectors
	// are unknowns themselves, for j ≥ N they expand through the terms.
	// We exploit that equations are linear in v_{j−1}, v_j, v_{j+1}.
	// Equation block for level j occupies columns j·s .. j·s+s−1.
	addCoef := func(row, col int, v complex128) { m.Add(row, col, v) }

	// addLevelTimes adds coef·(v_l · Mat) to equation block eq, where Mat is
	// a real s×s matrix expressed elementwise through matFn(i, col).
	// v_l[i] is either unknown (l < n) or Σ_k γ̃_k z_k^{l−n} u_k[i].
	addLevel := func(eq int, l int, matFn func(i, c int) float64) {
		if l < 0 {
			return
		}
		for c := 0; c < s; c++ {
			col := eq*s + c
			if l < n {
				for i := 0; i < s; i++ {
					if v := matFn(i, c); v != 0 {
						addCoef(l*s+i, col, complex(v, 0))
					}
				}
				continue
			}
			for k, t := range terms {
				zp := cpow(t.z, l-n)
				for i := 0; i < s; i++ {
					if v := matFn(i, c); v != 0 {
						addCoef(n*s+k, col, zp*t.u[i]*complex(v, 0))
					}
				}
			}
		}
	}

	cLevel := func(j int) []float64 { return p.serviceAt(j) }
	// Balance at level j (eq. 14), for j = 0..N−1 (we drop one equation of
	// the level-N block for the normalisation, since the system is singular):
	// v_j(Dᴬ + B + C_j − A) − v_{j−1}B − v_{j+1}C_{j+1} = 0.
	for j := 0; j <= n; j++ {
		jj := j
		addLevel(j, j, func(i, c int) float64 {
			v := -p.A.At(i, c)
			if i == c {
				v += da[i] + p.Lambda + cLevel(jj)[i]
			}
			return v
		})
		addLevel(j, j-1, func(i, c int) float64 {
			if i == c {
				return -p.Lambda
			}
			return 0
		})
		addLevel(j, j+1, func(i, c int) float64 {
			if i == c {
				return -cLevel(jj + 1)[i]
			}
			return 0
		})
	}
	// Replace the last column (one redundant level-N equation) with the
	// normalisation condition Σ_{j<N} v_j·1 + Σ_k γ̃_k(u_k·1)/(1−z_k) = 1.
	normCol := dim - 1
	for row := 0; row < dim; row++ {
		m.Set(row, normCol, 0)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < s; i++ {
			m.Set(j*s+i, normCol, 1)
		}
	}
	for k, t := range terms {
		m.Set(n*s+k, normCol, cvecSum(t.u)/(1-t.z))
	}
	rhs[normCol] = 1

	// Solve xᵀ·M = rhsᵀ  ⇔  Mᵀ x = rhs.
	x, err := linalg.FactorCLU(m.T()).Solve(rhs)
	if err != nil {
		return nil, fmt.Errorf("qbd: dense boundary system: %w", err)
	}
	sol := &SpectralSolution{n: n, s: s, terms: terms}
	sol.boundary = make([][]float64, n)
	var maxImag float64
	for j := 0; j < n; j++ {
		row := make([]float64, s)
		for i := 0; i < s; i++ {
			v := x[j*s+i]
			row[i] = real(v)
			if im := math.Abs(imag(v)); im > maxImag {
				maxImag = im
			}
		}
		sol.boundary[j] = row
	}
	for k := range sol.terms {
		sol.terms[k].gamma = x[n*s+k]
	}
	if maxImag > 1e-6 {
		return nil, errors.New("qbd: dense boundary produced complex probabilities")
	}
	return sol, nil
}

// cpow computes z^k for small non-negative integer k.
func cpow(z complex128, k int) complex128 {
	out := complex(1, 0)
	for i := 0; i < k; i++ {
		out *= z
	}
	return out
}
