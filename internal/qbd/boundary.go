package qbd

import (
	"fmt"

	"repro/internal/linalg"
)

// boundaryStages computes the elimination matrices S_0..S_{upTo−1} with
// v_j = v_{j+1}·S_j, obtained by folding the balance equations (eq. 14) for
// levels 0..upTo−1 into the recursion
//
//	K_j = Dᴬ + B + C_j − A − λ·S_{j−1},   S_j = C_{j+1}·K_j⁻¹,
//
// with S_{−1} = 0 and B = λI. This reduces the boundary problem from a
// dense (N+1)s×(N+1)s solve to upTo s×s factorisations — the difference
// between O((Ns)³) and O(N·s³) that makes the larger Figure 5 sweeps
// tractable.
func boundaryStages(p Params, upTo int) ([]*linalg.Matrix, error) {
	s := p.Size()
	da := p.dA()
	stages := make([]*linalg.Matrix, upTo)
	var prev *linalg.Matrix // S_{j−1}
	for j := 0; j < upTo; j++ {
		k := p.A.Scaled(-1)
		cj := p.serviceAt(j)
		for i := 0; i < s; i++ {
			k.Add(i, i, da[i]+p.Lambda+cj[i])
		}
		if prev != nil {
			k = k.Minus(prev.Scaled(p.Lambda))
		}
		kinv, err := linalg.Inverse(k)
		if err != nil {
			return nil, fmt.Errorf("qbd: boundary stage %d is singular: %w", j, err)
		}
		cnext := linalg.Diag(p.serviceAt(j + 1))
		stages[j] = cnext.Times(kinv)
		prev = stages[j]
	}
	return stages, nil
}

// foldBoundary propagates a level vector vTop at level `upTo` down through
// the stages, returning levels[j] = vTop·S_{upTo−1}···S_j for j < upTo.
func foldBoundary(stages []*linalg.Matrix, vTop []float64) [][]float64 {
	n := len(stages)
	levels := make([][]float64, n)
	cur := vTop
	for j := n - 1; j >= 0; j-- {
		cur = stages[j].VecTimes(cur) // row-vector product cur·S_j
		levels[j] = cur
	}
	return levels
}

// foldBoundaryComplex is foldBoundary for a complex top vector (used by the
// spectral solution before normalisation makes everything real).
func foldBoundaryComplex(stages []*linalg.Matrix, vTop []complex128) [][]complex128 {
	n := len(stages)
	levels := make([][]complex128, n)
	cur := vTop
	for j := n - 1; j >= 0; j-- {
		next := make([]complex128, len(cur))
		st := stages[j]
		for r, vr := range cur {
			if vr == 0 {
				continue
			}
			for c := 0; c < st.Cols; c++ {
				next[c] += vr * complex(st.At(r, c), 0)
			}
		}
		cur = next
		levels[j] = cur
	}
	return levels
}

func vecSum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func cvecSum(v []complex128) complex128 {
	var s complex128
	for _, x := range v {
		s += x
	}
	return s
}
