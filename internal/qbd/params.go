// Package qbd solves the Markov-modulated M/M-type queue of Palmer &
// Mitrani §3 — a quasi-birth-death process whose environment modulates the
// service capacity — by four methods:
//
//   - SolveSpectral: the paper's exact spectral-expansion solution (§3.1),
//     with the characteristic matrix polynomial linearised in w = 1/z so
//     that a standard QR eigensolve applies, and the boundary handled by an
//     O(N·s³) block elimination rather than a dense (N+1)s system.
//   - SolveApprox: the geometric approximation (§3.2, eq. 21) that keeps
//     only the dominant eigenvalue; asymptotically exact in heavy traffic.
//   - SolveMatrixGeometric: the classical R-matrix method of Neuts, the
//     comparator of Mitrani & Chakka [6], used as an independent baseline.
//   - SolveTruncated: direct block-tridiagonal solution of the chain
//     truncated at a finite level, used as a validation oracle.
package qbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrUnstable is returned when the offered load reaches the available
// service capacity (paper eq. 11 violated).
var ErrUnstable = errors.New("qbd: queue is not ergodic (offered load ≥ capacity)")

// Params specifies a Markov-modulated queue with Poisson arrivals of rate
// Lambda, an s×s environment transition matrix A (zero diagonal), and
// level-dependent service captured by the diagonals of C_j: ServiceDiag[j]
// for levels j = 0..N, with C_j = C_N for all j ≥ N (the homogeneous
// threshold).
type Params struct {
	Lambda      float64
	A           *linalg.Matrix
	ServiceDiag [][]float64
}

// Size returns the number of environment modes s.
func (p Params) Size() int { return p.A.Rows }

// Threshold returns N, the level beyond which the service diagonal is
// constant.
func (p Params) Threshold() int { return len(p.ServiceDiag) - 1 }

// Validate checks structural consistency.
func (p Params) Validate() error {
	if p.A == nil || p.A.Rows != p.A.Cols {
		return errors.New("qbd: A must be square")
	}
	if p.Lambda <= 0 {
		return fmt.Errorf("qbd: arrival rate %v must be positive", p.Lambda)
	}
	if len(p.ServiceDiag) < 2 {
		return errors.New("qbd: need service diagonals for at least levels 0 and 1")
	}
	s := p.A.Rows
	for j, d := range p.ServiceDiag {
		if len(d) != s {
			return fmt.Errorf("qbd: ServiceDiag[%d] has %d entries, want %d", j, len(d), s)
		}
		for i, v := range d {
			if v < 0 {
				return fmt.Errorf("qbd: negative service rate %v at level %d mode %d", v, j, i)
			}
		}
	}
	for i := 0; i < s; i++ {
		if p.A.At(i, i) != 0 {
			return fmt.Errorf("qbd: A diagonal entry %d is %v, want 0", i, p.A.At(i, i))
		}
		for j := 0; j < s; j++ {
			if p.A.At(i, j) < 0 {
				return fmt.Errorf("qbd: negative rate A[%d][%d] = %v", i, j, p.A.At(i, j))
			}
		}
	}
	return nil
}

// dA returns the row sums of A — the diagonal of the matrix Dᴬ in eq. (14).
func (p Params) dA() []float64 { return p.A.RowSums() }

// cTop returns the level-independent service diagonal C = C_N.
func (p Params) cTop() []float64 { return p.ServiceDiag[len(p.ServiceDiag)-1] }

// QofZ evaluates the characteristic matrix polynomial
// Q(z) = Q0 + Q1·z + Q2·z² (eq. 16) with Q0 = λI, Q1 = A − Dᴬ − λI − C,
// Q2 = C, for real z.
func (p Params) QofZ(z float64) *linalg.Matrix {
	s := p.Size()
	da := p.dA()
	c := p.cTop()
	q := p.A.Scaled(z)
	for i := 0; i < s; i++ {
		q.Add(i, i, p.Lambda-z*(da[i]+p.Lambda+c[i])+z*z*c[i])
	}
	return q
}

// CQofZ evaluates Q(z) for complex z.
func (p Params) CQofZ(z complex128) *linalg.CMatrix {
	s := p.Size()
	da := p.dA()
	c := p.cTop()
	q := linalg.NewCMatrix(s, s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			q.Set(i, j, z*complex(p.A.At(i, j), 0))
		}
		lam := complex(p.Lambda, 0)
		ci := complex(c[i], 0)
		di := complex(da[i], 0)
		q.Add(i, i, lam-z*(di+lam+ci)+z*z*ci)
	}
	return q
}

// EnvStationary returns the stationary distribution π of the environment
// process alone (π(A − Dᴬ) = 0, normalised).
func (p Params) EnvStationary() ([]float64, error) {
	s := p.Size()
	gen := p.A.Clone()
	da := p.dA()
	for i := 0; i < s; i++ {
		gen.Add(i, i, -da[i])
	}
	pi, err := linalg.ForcedLeftNullVector(gen, 0)
	if err != nil {
		return nil, fmt.Errorf("qbd: environment has no stationary vector: %w", err)
	}
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if sum == 0 {
		return nil, errors.New("qbd: degenerate environment stationary vector")
	}
	neg := false
	for i := range pi {
		pi[i] /= sum
		if pi[i] < -1e-9 {
			neg = true
		}
	}
	if neg {
		return nil, errors.New("qbd: environment stationary vector has negative entries (reducible chain?)")
	}
	return pi, nil
}

// Load returns the offered load relative to capacity: λ / Σ_i π_i·C_N[i].
// The queue is ergodic iff Load < 1 (paper eq. 11 in matrix form).
func (p Params) Load() (float64, error) {
	pi, err := p.EnvStationary()
	if err != nil {
		return 0, err
	}
	var capacity float64
	c := p.cTop()
	for i, v := range pi {
		capacity += v * c[i]
	}
	if capacity <= 0 {
		return math.Inf(1), nil
	}
	return p.Lambda / capacity, nil
}

// CheckStable returns ErrUnstable when Load ≥ 1.
func (p Params) CheckStable() error {
	load, err := p.Load()
	if err != nil {
		return err
	}
	if load >= 1 {
		return fmt.Errorf("%w: load = %v", ErrUnstable, load)
	}
	return nil
}

// serviceAt returns the service diagonal for an arbitrary level j ≥ 0.
func (p Params) serviceAt(j int) []float64 {
	if j >= len(p.ServiceDiag) {
		return p.ServiceDiag[len(p.ServiceDiag)-1]
	}
	return p.ServiceDiag[j]
}
