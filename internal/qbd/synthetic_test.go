package qbd

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/linalg"
)

// cyclicParams builds a queue modulated by a non-reversible, cyclic 3-state
// environment. Cyclic generators have complex eigenvalues, which drive the
// characteristic polynomial's roots off the real axis — exercising the
// complex-conjugate branch of the spectral solver that the (reversible-ish)
// breakdown/repair environments never reach.
func cyclicParams(lambda float64) Params {
	a := linalg.FromRows([][]float64{
		{0, 1.3, 0},
		{0, 0, 0.7},
		{2.1, 0, 0},
	})
	return Params{
		Lambda: lambda,
		A:      a,
		ServiceDiag: [][]float64{
			{0, 0, 0},
			{0.5, 1.0, 1.5},
			{1.0, 2.0, 3.0},
		},
	}
}

func TestCyclicEnvironmentHasComplexEigenvalues(t *testing.T) {
	p := cyclicParams(1.0)
	if err := p.CheckStable(); err != nil {
		t.Fatalf("test setup not stable: %v", err)
	}
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	complexFound := false
	for _, z := range sol.Eigenvalues() {
		if imag(z) != 0 {
			complexFound = true
			// Conjugate partner must be present.
			partner := false
			for _, w := range sol.Eigenvalues() {
				if w == cmplx.Conj(z) {
					partner = true
				}
			}
			if !partner {
				t.Errorf("eigenvalue %v lacks its conjugate", z)
			}
		}
	}
	if !complexFound {
		t.Fatal("expected complex eigenvalues from the cyclic environment; the complex solver path is untested")
	}
	assertStationaryInvariants(t, p, sol, 1e-9)
}

func TestCyclicCrossMethodAgreement(t *testing.T) {
	for _, lambda := range []float64{0.4, 1.0, 1.6} {
		p := cyclicParams(lambda)
		sp, err := SolveSpectral(p)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		mg, err := SolveMatrixGeometric(p, MGOptions{})
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		tr, err := SolveTruncated(p, 250)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if d := math.Abs(sp.MeanQueue() - mg.MeanQueue()); d > 1e-7*(1+mg.MeanQueue()) {
			t.Errorf("λ=%v: L spectral %v vs MG %v", lambda, sp.MeanQueue(), mg.MeanQueue())
		}
		if d := math.Abs(sp.MeanQueue() - tr.MeanQueue()); d > 1e-7*(1+tr.MeanQueue()) {
			t.Errorf("λ=%v: L spectral %v vs truncated %v", lambda, sp.MeanQueue(), tr.MeanQueue())
		}
		for j := 0; j <= 20; j++ {
			a, b := sp.Level(j), mg.Level(j)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-9 {
					t.Fatalf("λ=%v level %d mode %d: %v vs %v", lambda, j, i, a[i], b[i])
				}
			}
		}
	}
}

func TestCyclicDenseAgreement(t *testing.T) {
	p := cyclicParams(1.2)
	fast, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SolveSpectralDense(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(fast.MeanQueue() - dense.MeanQueue()); d > 1e-8 {
		t.Errorf("L staged %v vs dense %v", fast.MeanQueue(), dense.MeanQueue())
	}
}

func TestCyclicApproximation(t *testing.T) {
	p := cyclicParams(1.8) // load ≈ 0.95, the geometric regime
	ex, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := SolveApprox(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ap.TailDecay() - ex.TailDecay()); d > 1e-9 {
		t.Errorf("z_s approx %v vs exact %v", ap.TailDecay(), ex.TailDecay())
	}
	// ApproxSolution.Level is the geometric slice of the mode vector.
	lv := ap.Level(3)
	var sum float64
	for _, v := range lv {
		sum += v
	}
	if math.Abs(sum-ap.LevelProb(3)) > 1e-12 {
		t.Errorf("Level(3) sums to %v, LevelProb gives %v", sum, ap.LevelProb(3))
	}
	if ap.LevelProb(-1) != 0 {
		t.Error("negative level must have probability 0")
	}
	for i, v := range ap.Level(-1) {
		if v != 0 {
			t.Errorf("Level(-1)[%d] = %v", i, v)
		}
	}
}

func TestSolutionAccessors(t *testing.T) {
	p := paramsFor(t, 2, 1.0, 1.0, paperOps, paperRepair)
	mg, err := SolveMatrixGeometric(p, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Threshold() != 2 {
		t.Errorf("MG threshold %d", mg.Threshold())
	}
	if tp := mg.TotalProbability(); math.Abs(tp-1) > 1e-9 {
		t.Errorf("MG total probability %v", tp)
	}
	if mm := mg.ModeMarginals(); len(mm) != p.Size() {
		t.Errorf("MG marginals length %d", len(mm))
	}
	sp, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Threshold() != 2 {
		t.Errorf("spectral threshold %d", sp.Threshold())
	}
	tr, err := SolveTruncated(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxLevel() != 50 {
		t.Errorf("truncation level %d", tr.MaxLevel())
	}
	if tp := tr.TotalProbability(); math.Abs(tp-1) > 1e-12 {
		t.Errorf("truncated total probability %v", tp)
	}
	if pr := tr.LevelProb(51); pr != 0 {
		t.Errorf("probability beyond truncation %v", pr)
	}
	if pr := tr.LevelProb(3); pr <= 0 {
		t.Errorf("P(3) = %v", pr)
	}
	if z := tr.TailDecay(); z <= 0 || z >= 1 {
		t.Errorf("truncated tail decay %v", z)
	}
	if mm := tr.ModeMarginals(); len(mm) != p.Size() {
		t.Errorf("truncated marginals length %d", len(mm))
	}
	// Negative-level conventions across solvers.
	if sp.LevelProb(-1) != 0 || mg.LevelProb(-1) != 0 || tr.LevelProb(-1) != 0 {
		t.Error("negative levels must have probability 0")
	}
}
