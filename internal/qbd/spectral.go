package qbd

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"slices"

	"repro/internal/linalg"
)

// ErrEigenCount is returned when the number of eigenvalues found strictly
// inside the unit disk differs from the environment size s; under the
// ergodicity condition spectral-expansion theory guarantees exactly s.
var ErrEigenCount = errors.New("qbd: wrong number of eigenvalues inside the unit disk")

// spectralTerm is one term γ_k·u_k·z_k^j of the expansion (eq. 19), stored
// with the rescaled coefficient γ̃_k = γ_k·z_k^N so that levels are computed
// as v_j = Σ_k γ̃_k·z_k^{j−N}·u_k without underflowing z^N.
type spectralTerm struct {
	z     complex128
	u     []complex128
	gamma complex128 // γ̃_k = γ_k·z_k^N
}

// SpectralSolution is the exact stationary distribution produced by
// SolveSpectral.
type SpectralSolution struct {
	boundary [][]float64 // v_0..v_{N−1}
	terms    []spectralTerm
	n        int // threshold N
	s        int
}

// SolveSpectral computes the exact stationary distribution by the method of
// spectral expansion (paper §3.1):
//
//  1. The eigenvalues z_k of Q(z) = Q0 + Q1·z + Q2·z² inside the unit disk
//     are found by substituting w = 1/z, which linearises the problem into
//     a standard 2s×2s eigenproblem because Q0 = λI is always invertible
//     (Q2 = C is singular whenever a mode has no operative server, so the
//     usual companion form in z would fail).
//  2. Each left eigenvector u_k is recovered as a null vector of Q(z_k) by
//     full-pivot elimination.
//  3. The boundary probabilities are eliminated by the S_j recursion and
//     the level-N balance equation becomes an s×s singular system for γ̃,
//     closed by the normalisation condition (eq. 20).
func SolveSpectral(p Params) (*SpectralSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CheckStable(); err != nil {
		return nil, err
	}
	zs, err := unitDiskEigenvalues(p)
	if err != nil {
		return nil, err
	}
	terms, err := eigenvectorTerms(p, zs)
	if err != nil {
		return nil, err
	}
	return assembleSpectral(p, terms)
}

// unitDiskEigenvalues returns the s eigenvalues of det Q(z) = 0 with
// |z| < 1, sorted by descending modulus (so the dominant z_s comes first).
func unitDiskEigenvalues(p Params) ([]complex128, error) {
	s := p.Size()
	da := p.dA()
	c := p.cTop()
	// Companion matrix of the reversed polynomial in w = 1/z:
	// Q(z)ᵀ x = 0  ⇔  (Q0ᵀw² + Q1ᵀw + Q2ᵀ)x = 0, and with Q0 = λI the
	// block companion form is [[0, I], [−Q2ᵀ/λ, −Q1ᵀ/λ]].
	cm := linalg.NewMatrix(2*s, 2*s)
	for i := 0; i < s; i++ {
		cm.Set(i, s+i, 1)
	}
	for i := 0; i < s; i++ {
		// −Q2ᵀ/λ block: Q2 = diag(c).
		cm.Set(s+i, i, -c[i]/p.Lambda)
		// −Q1ᵀ/λ block: Q1 = A − Dᴬ − λI − C.
		for j := 0; j < s; j++ {
			v := p.A.At(j, i) // transpose
			if i == j {
				v -= da[i] + p.Lambda + c[i]
			}
			cm.Set(s+i, s+j, -v/p.Lambda)
		}
	}
	ws, err := linalg.Eigenvalues(cm)
	if err != nil {
		return nil, fmt.Errorf("qbd: companion eigenvalues: %w", err)
	}
	// The s eigenvalues z inside the unit disk correspond to the s largest
	// |w| (all > 1); the next one down is the unit root w = 1.
	sortModulusDesc(ws)
	if len(ws) < s+1 {
		return nil, fmt.Errorf("%w: companion produced %d eigenvalues", ErrEigenCount, len(ws))
	}
	if in := cmplx.Abs(ws[s-1]); in <= 1 {
		return nil, fmt.Errorf("%w: only %d strictly outside the unit circle (|w_s| = %v)", ErrEigenCount, countAbove(ws, 1), in)
	}
	if out := cmplx.Abs(ws[s]); out > 1+1e-6 {
		return nil, fmt.Errorf("%w: at least %d outside the unit circle (|w_{s+1}| = %v)", ErrEigenCount, countAbove(ws, 1), out)
	}
	zs := make([]complex128, s)
	for k := 0; k < s; k++ {
		zs[k] = 1 / ws[k]
	}
	// Clean tiny imaginary parts so real roots are treated as real, and force
	// exact conjugate pairing for the rest.
	for k := range zs {
		if math.Abs(imag(zs[k])) < 1e-9*(1+math.Abs(real(zs[k]))) {
			zs[k] = complex(real(zs[k]), 0)
		}
	}
	sortModulusDesc(zs)
	return zs, nil
}

// sortModulusDesc orders eigenvalues by descending modulus with the same
// tie-break as linalg.SortEigenvalues (real part, then imaginary part,
// both descending). Because the comparator is a total order on values,
// the sorted sequence is unique — so the scalar and batched sweep paths,
// which must produce bit-identical eigenvalue sets, can sort
// independently and still agree even when moduli tie at the unit-disk
// boundary. slices.SortFunc is also allocation-free, which the batched
// path's zero-allocation invariant relies on.
func sortModulusDesc(ws []complex128) {
	slices.SortFunc(ws, func(a, b complex128) int {
		aa, ab := cmplx.Abs(a), cmplx.Abs(b)
		switch {
		case aa > ab:
			return -1
		case aa < ab:
			return 1
		}
		switch {
		case real(a) > real(b):
			return -1
		case real(a) < real(b):
			return 1
		}
		switch {
		case imag(a) > imag(b):
			return -1
		case imag(a) < imag(b):
			return 1
		}
		return 0
	})
}

func countAbove(ws []complex128, r float64) int {
	n := 0
	for _, w := range ws {
		if cmplx.Abs(w) > r {
			n++
		}
	}
	return n
}

// eigenvectorTerms recovers the left eigenvector for every eigenvalue,
// computing each conjugate pair only once.
func eigenvectorTerms(p Params, zs []complex128) ([]spectralTerm, error) {
	terms := make([]spectralTerm, len(zs))
	for k := 0; k < len(zs); k++ {
		z := zs[k]
		switch {
		case imag(z) == 0:
			u, err := linalg.ForcedLeftNullVector(p.QofZ(real(z)), 0)
			if err != nil {
				return nil, fmt.Errorf("qbd: eigenvector for z = %v: %w", z, err)
			}
			cu := make([]complex128, len(u))
			for i, v := range u {
				cu[i] = complex(v, 0)
			}
			terms[k] = spectralTerm{z: z, u: cu}
		case imag(z) > 0:
			u, err := linalg.CForcedLeftNullVector(p.CQofZ(z), 0)
			if err != nil {
				return nil, fmt.Errorf("qbd: eigenvector for z = %v: %w", z, err)
			}
			terms[k] = spectralTerm{z: z, u: u}
			// The conjugate must sit adjacent after SortEigenvalues.
			if k+1 >= len(zs) || zs[k+1] != cmplx.Conj(z) {
				return nil, fmt.Errorf("qbd: unpaired complex eigenvalue %v", z)
			}
			cu := make([]complex128, len(u))
			for i, v := range u {
				cu[i] = cmplx.Conj(v)
			}
			terms[k+1] = spectralTerm{z: cmplx.Conj(z), u: cu}
			k++
		default:
			return nil, fmt.Errorf("qbd: unpaired complex eigenvalue %v", z)
		}
	}
	return terms, nil
}

// assembleSpectral solves the boundary and normalisation for the γ̃
// coefficients and packages the solution.
func assembleSpectral(p Params, terms []spectralTerm) (*SpectralSolution, error) {
	s := p.Size()
	n := p.Threshold()
	stages, err := boundaryStages(p, n)
	if err != nil {
		return nil, err
	}
	// W = Dᴬ + B + C − A − λS_{N−1} from the level-N balance equation.
	da := p.dA()
	c := p.cTop()
	w := p.A.Scaled(-1)
	for i := 0; i < s; i++ {
		w.Add(i, i, da[i]+p.Lambda+c[i])
	}
	if n > 0 {
		w = w.Minus(stages[n-1].Scaled(p.Lambda))
	}
	// M[k][·] = u_k·(W − z_k·C); solve γ̃·M = 0.
	m := linalg.NewCMatrix(s, s)
	for k, t := range terms {
		for col := 0; col < s; col++ {
			var acc complex128
			for row := 0; row < s; row++ {
				entry := complex(w.At(row, col), 0)
				if row == col {
					entry -= t.z * complex(c[row], 0)
				}
				acc += t.u[row] * entry
			}
			m.Set(k, col, acc)
		}
	}
	gamma, err := linalg.CForcedLeftNullVector(m, 0)
	if err != nil {
		return nil, fmt.Errorf("qbd: level-N matching system: %w", err)
	}
	// Normalise: Σ_{j<N} v_j·1 + Σ_k γ̃_k(u_k·1)/(1−z_k) = 1.
	vN := make([]complex128, s)
	for k, t := range terms {
		g := gamma[k]
		for i := range vN {
			vN[i] += g * t.u[i]
		}
	}
	levelsC := foldBoundaryComplex(stages, vN)
	var total complex128
	for _, lv := range levelsC {
		total += cvecSum(lv)
	}
	for k, t := range terms {
		total += gamma[k] * cvecSum(t.u) / (1 - t.z)
	}
	if total == 0 {
		return nil, errors.New("qbd: zero total probability mass in spectral assembly")
	}
	sol := &SpectralSolution{n: n, s: s, terms: terms}
	for k := range sol.terms {
		sol.terms[k].gamma = gamma[k] / total
	}
	sol.boundary = make([][]float64, n)
	var maxImag float64
	for j, lv := range levelsC {
		row := make([]float64, s)
		for i, v := range lv {
			vv := v / total
			row[i] = real(vv)
			if im := math.Abs(imag(vv)); im > maxImag {
				maxImag = im
			}
		}
		sol.boundary[j] = row
	}
	if maxImag > 1e-6 {
		return nil, fmt.Errorf("qbd: boundary probabilities have imaginary residue %v", maxImag)
	}
	return sol, nil
}

// Threshold returns N, the first level at which the expansion applies.
func (s *SpectralSolution) Threshold() int { return s.n }

// Eigenvalues returns the z_k of the expansion, dominant first.
func (s *SpectralSolution) Eigenvalues() []complex128 {
	zs := make([]complex128, len(s.terms))
	for i, t := range s.terms {
		zs[i] = t.z
	}
	return zs
}

// TailDecay returns the dominant eigenvalue z_s — the asymptotic geometric
// decay rate of the queue-length distribution. It is always real and
// positive (paper §3.2).
func (s *SpectralSolution) TailDecay() float64 {
	var best float64
	for _, t := range s.terms {
		if imag(t.z) == 0 && real(t.z) > best {
			best = real(t.z)
		}
	}
	return best
}

// Level returns the stationary probability vector v_j across modes.
func (s *SpectralSolution) Level(j int) []float64 {
	if j < 0 {
		return make([]float64, s.s)
	}
	if j < s.n {
		return append([]float64(nil), s.boundary[j]...)
	}
	out := make([]float64, s.s)
	for _, t := range s.terms {
		zp := cmplx.Pow(t.z, complex(float64(j-s.n), 0))
		g := t.gamma * zp
		for i := range out {
			out[i] += real(g * t.u[i])
		}
	}
	return out
}

// LevelProb returns P(j jobs present) = v_j·1.
func (s *SpectralSolution) LevelProb(j int) float64 {
	if j < 0 {
		return 0
	}
	if j < s.n {
		return vecSum(s.boundary[j])
	}
	var pr float64
	for _, t := range s.terms {
		zp := cmplx.Pow(t.z, complex(float64(j-s.n), 0))
		pr += real(t.gamma * zp * cvecSum(t.u))
	}
	return pr
}

// TailProb returns P(queue length ≥ j).
func (s *SpectralSolution) TailProb(j int) float64 {
	if j <= 0 {
		return 1
	}
	var head float64
	for l := 0; l < j && l < s.n; l++ {
		head += vecSum(s.boundary[l])
	}
	if j <= s.n {
		// Remaining head levels plus the whole expansion tail.
		var tail float64
		for l := j; l < s.n; l++ {
			tail += vecSum(s.boundary[l])
		}
		for _, t := range s.terms {
			tail += real(t.gamma * cvecSum(t.u) / (1 - t.z))
		}
		return tail
	}
	// j > N: geometric partial sum Σ_{l≥j} z^{l−N} = z^{j−N}/(1−z).
	var tail float64
	for _, t := range s.terms {
		zp := cmplx.Pow(t.z, complex(float64(j-s.n), 0))
		tail += real(t.gamma * cvecSum(t.u) * zp / (1 - t.z))
	}
	return tail
}

// MeanQueue returns L = Σ_j j·P(j) using the closed form
// Σ_{j≥N} j·z^{j−N} = N/(1−z) + z/(1−z)² for the expansion tail.
func (s *SpectralSolution) MeanQueue() float64 {
	var l float64
	for j := 0; j < s.n; j++ {
		l += float64(j) * vecSum(s.boundary[j])
	}
	nn := complex(float64(s.n), 0)
	for _, t := range s.terms {
		om := 1 - t.z
		l += real(t.gamma * cvecSum(t.u) * (nn/om + t.z/(om*om)))
	}
	return l
}

// ModeMarginals returns the marginal distribution over environment modes,
// Σ_j v_j. For a breakdown/repair environment this must equal the
// environment's own stationary distribution.
func (s *SpectralSolution) ModeMarginals() []float64 {
	out := make([]float64, s.s)
	for j := 0; j < s.n; j++ {
		for i, v := range s.boundary[j] {
			out[i] += v
		}
	}
	for _, t := range s.terms {
		g := t.gamma / (1 - t.z)
		for i := range out {
			out[i] += real(g * t.u[i])
		}
	}
	return out
}

// TotalProbability returns Σ_j v_j·1, which must be 1 up to roundoff.
func (s *SpectralSolution) TotalProbability() float64 {
	return vecSum(s.ModeMarginals())
}
