package qbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// TruncatedSolution is the exact stationary distribution of the chain
// truncated at a finite maximum level (arrivals blocked there). With the
// truncation level far above the working range it serves as an independent
// oracle for the spectral and matrix-geometric solutions.
type TruncatedSolution struct {
	levels [][]float64
	s      int
}

// SolveTruncated solves the queue truncated at maxLevel by block-tridiagonal
// elimination: the same S_j recursion as the infinite-queue boundary
// (the balance equations below the truncation level are identical), closed
// by the level-maxLevel equation, which lacks the arrival outflow term.
func SolveTruncated(p Params, maxLevel int) (*TruncatedSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxLevel < 1 {
		return nil, fmt.Errorf("qbd: truncation level %d < 1", maxLevel)
	}
	s := p.Size()
	stages, err := boundaryStages(p, maxLevel)
	if err != nil {
		return nil, err
	}
	// Balance at the truncation level J (no λ outflow):
	// v_J(Dᴬ + C_J − A − λS_{J−1}) = 0.
	da := p.dA()
	cj := p.serviceAt(maxLevel)
	w := p.A.Scaled(-1)
	for i := 0; i < s; i++ {
		w.Add(i, i, da[i]+cj[i])
	}
	w = w.Minus(stages[maxLevel-1].Scaled(p.Lambda))
	vTop, err := linalg.ForcedLeftNullVector(w, 0)
	if err != nil {
		return nil, fmt.Errorf("qbd: truncated top-level system: %w", err)
	}
	// Folding down from a deep truncation amplifies each level by roughly
	// 1/z per step, which overflows float64 long before the truncation is
	// deep enough to matter at light loads. Renormalise per level and track
	// the scale in log space instead.
	levels := make([][]float64, maxLevel+1)
	logScale := make([]float64, maxLevel+1)
	cur := append([]float64(nil), vTop...)
	normalizeL1(cur)
	levels[maxLevel] = cur
	for j := maxLevel - 1; j >= 0; j-- {
		cur = stages[j].VecTimes(cur)
		m := normalizeL1(cur)
		if m == 0 {
			return nil, errors.New("qbd: truncated fold collapsed to zero")
		}
		logScale[j] = logScale[j+1] + math.Log(m)
		levels[j] = cur
	}
	maxLog := logScale[0]
	for _, l := range logScale {
		if l > maxLog {
			maxLog = l
		}
	}
	var total float64
	for j, lv := range levels {
		f := math.Exp(logScale[j] - maxLog)
		for i := range lv {
			lv[i] *= f
		}
		total += vecSum(lv)
	}
	if total == 0 || math.IsNaN(total) {
		return nil, errors.New("qbd: degenerate total probability in truncated assembly")
	}
	// The null vector's overall sign is arbitrary; dividing by the (possibly
	// negative) total fixes it.
	for _, lv := range levels {
		for i := range lv {
			lv[i] /= total
		}
	}
	return &TruncatedSolution{levels: levels, s: s}, nil
}

// normalizeL1 scales v to unit 1-norm of its positive mass and returns the
// scale, preserving signs (a correct stationary fold stays non-negative;
// sign noise remains visible to the total-probability check).
func normalizeL1(v []float64) float64 {
	var m float64
	for _, x := range v {
		m += math.Abs(x)
	}
	if m == 0 {
		return 0
	}
	for i := range v {
		v[i] /= m
	}
	return m
}

// MaxLevel returns the truncation level.
func (t *TruncatedSolution) MaxLevel() int { return len(t.levels) - 1 }

// Level returns v_j (zero beyond the truncation).
func (t *TruncatedSolution) Level(j int) []float64 {
	if j < 0 || j >= len(t.levels) {
		return make([]float64, t.s)
	}
	return append([]float64(nil), t.levels[j]...)
}

// LevelProb returns P(j jobs present).
func (t *TruncatedSolution) LevelProb(j int) float64 {
	if j < 0 || j >= len(t.levels) {
		return 0
	}
	return vecSum(t.levels[j])
}

// MeanQueue returns L over the truncated support.
func (t *TruncatedSolution) MeanQueue() float64 {
	var l float64
	for j, lv := range t.levels {
		l += float64(j) * vecSum(lv)
	}
	return l
}

// ModeMarginals returns Σ_j v_j.
func (t *TruncatedSolution) ModeMarginals() []float64 {
	out := make([]float64, t.s)
	for _, lv := range t.levels {
		for i, v := range lv {
			out[i] += v
		}
	}
	return out
}

// TotalProbability returns Σ_j v_j·1 (1 by construction).
func (t *TruncatedSolution) TotalProbability() float64 {
	return vecSum(t.ModeMarginals())
}

// TailDecay estimates the geometric decay from the top two level masses.
func (t *TruncatedSolution) TailDecay() float64 {
	j := len(t.levels) - 2
	if j < 1 {
		return 0
	}
	a, b := vecSum(t.levels[j-1]), vecSum(t.levels[j])
	if a <= 0 {
		return 0
	}
	return b / a
}
