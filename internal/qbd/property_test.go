package qbd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/markov"
)

// TestCrossMethodAgreementProperty throws random unreliable-server systems
// at both exact solvers and demands agreement — the strongest correctness
// property available, since the two methods share almost no code path
// (complex eigensolve + expansion vs real fixed-point + matrix powers).
func TestCrossMethodAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		// Random 2-phase operative distribution with separated rates.
		w := 0.2 + 0.6*rng.Float64()
		r1 := math.Exp(rng.NormFloat64() - 1)
		r2 := r1 * (3 + 20*rng.Float64())
		op := dist.MustHyperExp([]float64{w, 1 - w}, []float64{r1, r2})
		rep := dist.Exp(math.Exp(rng.NormFloat64() + 1))
		env, err := markov.NewEnv(n, op, rep)
		if err != nil {
			return false
		}
		mu := 0.5 + rng.Float64()
		p := Params{Lambda: 1, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(mu)}
		load, err := p.Load()
		if err != nil {
			return false
		}
		// Scale λ to a random stable load in (0.2, 0.95).
		target := 0.2 + 0.75*rng.Float64()
		p.Lambda = target / load
		sp, err := SolveSpectral(p)
		if err != nil {
			t.Logf("seed %d: spectral failed: %v", seed, err)
			return false
		}
		mg, err := SolveMatrixGeometric(p, MGOptions{})
		if err != nil {
			t.Logf("seed %d: matrix-geometric failed: %v", seed, err)
			return false
		}
		lsp, lmg := sp.MeanQueue(), mg.MeanQueue()
		if math.Abs(lsp-lmg) > 1e-6*(1+lmg) {
			t.Logf("seed %d: L %v vs %v", seed, lsp, lmg)
			return false
		}
		for j := 0; j <= 15; j++ {
			a, b := sp.LevelProb(j), mg.LevelProb(j)
			if math.Abs(a-b) > 1e-8 {
				t.Logf("seed %d: P(%d) %v vs %v", seed, j, a, b)
				return false
			}
			if a < -1e-10 {
				t.Logf("seed %d: negative P(%d) = %v", seed, j, a)
				return false
			}
		}
		if res := BalanceResidual(p, sp, 25); res > 1e-8*(1+p.Lambda) {
			t.Logf("seed %d: balance residual %v", seed, res)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomStableParams draws a random unreliable-server environment (the
// same family TestCrossMethodAgreementProperty uses) and scales λ to a
// stable load in (0.2, 0.95). It reports ok=false when the draw is
// degenerate rather than failing, so property tests can skip it.
func randomStableParams(rng *rand.Rand) (p Params, ok bool) {
	n := 1 + rng.Intn(4)
	w := 0.2 + 0.6*rng.Float64()
	r1 := math.Exp(rng.NormFloat64() - 1)
	r2 := r1 * (3 + 20*rng.Float64())
	op := dist.MustHyperExp([]float64{w, 1 - w}, []float64{r1, r2})
	rep := dist.Exp(math.Exp(rng.NormFloat64() + 1))
	env, err := markov.NewEnv(n, op, rep)
	if err != nil {
		return Params{}, false
	}
	mu := 0.5 + rng.Float64()
	p = Params{Lambda: 1, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(mu)}
	load, err := p.Load()
	if err != nil {
		return Params{}, false
	}
	target := 0.2 + 0.75*rng.Float64()
	p.Lambda = target / load
	return p, true
}

// TestSweepSolverMetamorphicProperty is the batched path's metamorphic
// suite: for fuzzed random stable environments and λ-grids around each
// drawn rate, a SweepSolver evaluating the grid through one reused worker
// must reproduce per-point SolveSpectral exactly — bit-identical on amd64,
// within 1e-12 relative elsewhere — including level probabilities, queue
// tails and mode marginals. Per-point errors (unstable grid points at the
// high end) must appear on exactly the same points as the scalar path.
func TestSweepSolverMetamorphicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, ok := randomStableParams(rng)
		if !ok {
			return true
		}
		sv, err := NewSweepSolver(p)
		if err != nil {
			t.Logf("seed %d: NewSweepSolver: %v", seed, err)
			return false
		}
		w := sv.NewWorker()
		var sol SpectralSolution
		// Grid straddles the drawn rate; the top factor 1.3 can push some
		// points past the stability threshold, exercising per-point errors.
		for g := 0; g < 6; g++ {
			lambda := p.Lambda * (0.4 + 0.9*float64(g)/5)
			p2 := p
			p2.Lambda = lambda
			want, wantErr := SolveSpectral(p2)
			gotErr := w.SolveInto(lambda, &sol)
			if (wantErr == nil) != (gotErr == nil) {
				t.Logf("seed %d λ=%v: scalar err %v, batch err %v", seed, lambda, wantErr, gotErr)
				return false
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Logf("seed %d λ=%v: error text %q vs %q", seed, lambda, wantErr, gotErr)
					return false
				}
				continue
			}
			if !sameFloat(want.MeanQueue(), sol.MeanQueue()) ||
				!sameFloat(want.TailDecay(), sol.TailDecay()) ||
				!sameFloat(want.TotalProbability(), sol.TotalProbability()) {
				t.Logf("seed %d λ=%v: headline metrics diverge", seed, lambda)
				return false
			}
			for j := 0; j <= 12; j++ {
				if !sameFloat(want.LevelProb(j), sol.LevelProb(j)) {
					t.Logf("seed %d λ=%v: LevelProb(%d) %v vs %v",
						seed, lambda, j, want.LevelProb(j), sol.LevelProb(j))
					return false
				}
				if !sameFloat(want.TailProb(j), sol.TailProb(j)) {
					t.Logf("seed %d λ=%v: TailProb(%d) %v vs %v",
						seed, lambda, j, want.TailProb(j), sol.TailProb(j))
					return false
				}
			}
			wm, gm := want.ModeMarginals(), sol.ModeMarginals()
			for i := range wm {
				if !sameFloat(wm[i], gm[i]) {
					t.Logf("seed %d λ=%v: marginal %d %v vs %v", seed, lambda, i, wm[i], gm[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLargeNNearPaperLimit exercises the solver at N = 20 (s = 231), the
// region just below where the paper reports ill-conditioning warnings
// (N ≳ 24), and checks the approximation against the exact answer.
func TestLargeNNearPaperLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space; skipped with -short")
	}
	p := paramsFor(t, 20, 19.5, 1.0, paperOps, paperRepair) // load ≈ 0.976
	sol, err := SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	if tp := sol.TotalProbability(); math.Abs(tp-1) > 1e-6 {
		t.Errorf("total probability %v", tp)
	}
	if res := BalanceResidual(p, sol, 25); res > 1e-6 {
		t.Errorf("balance residual %v", res)
	}
	ap, err := SolveApprox(p)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy traffic (load ≈ 0.976) is the approximation's design regime, but
	// its convergence slows with N (the boundary carries more mass), so the
	// check is a sanity bound rather than a tight one; z_s below is exact.
	if rel := math.Abs(ap.MeanQueue()-sol.MeanQueue()) / sol.MeanQueue(); rel > 0.35 {
		t.Errorf("approx L %v vs exact %v", ap.MeanQueue(), sol.MeanQueue())
	}
	if d := math.Abs(ap.TailDecay() - sol.TailDecay()); d > 1e-8 {
		t.Errorf("z_s approx %v vs exact %v", ap.TailDecay(), sol.TailDecay())
	}
}

// TestApproxRobustBeyondExactComfortZone runs the approximation alone at
// N = 30 (s = 496) — the paper's remedy for the exact method's numerical
// trouble. It must produce a sane geometric solution quickly.
func TestApproxRobustBeyondExactComfortZone(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space; skipped with -short")
	}
	p := paramsFor(t, 30, 27.0, 1.0, paperOps, paperRepair)
	ap, err := SolveApprox(p)
	if err != nil {
		t.Fatal(err)
	}
	z := ap.TailDecay()
	if z <= 0 || z >= 1 {
		t.Fatalf("z_s = %v", z)
	}
	if l := ap.MeanQueue(); l <= 0 || math.IsInf(l, 0) {
		t.Fatalf("L = %v", l)
	}
	for _, v := range ap.ModeMarginals() {
		if v < 0 || v > 1 {
			t.Fatalf("marginal %v out of range", v)
		}
	}
}
