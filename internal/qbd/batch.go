package qbd

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/linalg"
)

// SweepSolver evaluates SolveSpectral across a batch of arrival rates that
// share one breakdown/repair environment — the shape of every λ-sweep in
// the paper's Figures 4–9. Construction hoists all λ-independent work
// (structural validation, the environment's stationary distribution and
// service capacity, Dᴬ row sums, the top service diagonal, and the −A /
// Aᵀ images the per-point matrix builds copy from); each Solve then runs
// the per-point remainder of the spectral expansion inside a reusable
// worker workspace, allocation-free once warm.
//
// Equivalence contract: a SweepSolver point is the *same computation* as
// SolveSpectral(p) with p.Lambda set to that point — the same pivot
// choices, the same operation order — so results are bit-identical on
// amd64 (and within 1e-12 relative error on platforms whose compilers
// contract multiply-adds differently). Per-point failures (λ ≤ 0,
// instability, eigenvalue-count defects) return the same errors as the
// scalar path and never affect the shared hoisted state or later points.
//
// A SweepSolver is safe for concurrent use; workers are pooled.
type SweepSolver struct {
	p        Params // base parameters; p.Lambda is ignored
	s, n     int
	da, c    []float64
	negA     *linalg.Matrix // −A, the seed of every K_j / W build
	aT       *linalg.Matrix // Aᵀ, read row-contiguously by the companion and Q(z)ᵀ builds
	capacity float64        // Σ_i π_i·C_N[i]; ≤ 0 means every λ is unstable

	pool sync.Pool // *SweepWorker
}

// NewSweepSolver validates the λ-independent part of p and hoists the
// shared state. p.Lambda is ignored (each Solve supplies its own rate);
// validation errors are those SolveSpectral would report for any point of
// the batch, so a failed construction means every point would fail.
func NewSweepSolver(p Params) (*SweepSolver, error) {
	probe := p
	if probe.Lambda <= 0 {
		probe.Lambda = 1 // structural validation only; per-point rates replace it
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	pi, err := probe.EnvStationary()
	if err != nil {
		return nil, err
	}
	c := probe.cTop()
	var capacity float64
	for i, v := range pi {
		capacity += v * c[i]
	}
	sv := &SweepSolver{
		p:        probe,
		s:        probe.Size(),
		n:        probe.Threshold(),
		da:       probe.dA(),
		c:        c,
		negA:     probe.A.Scaled(-1),
		aT:       probe.A.T(),
		capacity: capacity,
	}
	sv.pool.New = func() any { return sv.NewWorker() }
	return sv, nil
}

// Size returns the number of environment modes s.
func (sv *SweepSolver) Size() int { return sv.s }

// Threshold returns N, the first level at which the expansion applies.
func (sv *SweepSolver) Threshold() int { return sv.n }

// Solve evaluates one grid point on a pooled worker and returns a freshly
// allocated, caller-owned solution.
func (sv *SweepSolver) Solve(lambda float64) (*SpectralSolution, error) {
	w := sv.pool.Get().(*SweepWorker)
	sol := new(SpectralSolution)
	err := w.SolveInto(lambda, sol)
	sv.pool.Put(w)
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// SweepWorker holds the reusable per-point workspace of one SweepSolver.
// A worker is not safe for concurrent use; use one per goroutine (or let
// SweepSolver.Solve manage a pool). Dedicated workers exist so that a
// caller evaluating a dense grid can guarantee the allocation-free steady
// state that sync.Pool — which may drop pooled workers under GC pressure —
// cannot promise.
type SweepWorker struct {
	sv     *SweepSolver
	ar     linalg.Arena
	stages []*linalg.Matrix // S_j headers, matrices live in the arena
	levels [][]complex128   // boundary fold rows, backed by the arena
}

// NewWorker returns a fresh workspace bound to the solver's hoisted state.
func (sv *SweepSolver) NewWorker() *SweepWorker { return &SweepWorker{sv: sv} }

// SolveInto evaluates one grid point, writing the solution into sol and
// reusing sol's existing backing storage when it is large enough — after a
// warm-up point, a reused (worker, sol) pair completes a solve with zero
// heap allocations. sol must not be read concurrently with the call; on a
// non-nil error sol's contents are unspecified. The solution written is
// self-contained: it shares no memory with the worker, so it remains valid
// across later SolveInto calls on the same worker (only its own backing
// arrays are recycled by the next SolveInto on the same sol).
func (w *SweepWorker) SolveInto(lambda float64, sol *SpectralSolution) error {
	sv := w.sv
	// Per-point validation and stability, with the scalar path's errors.
	if lambda <= 0 {
		return fmt.Errorf("qbd: arrival rate %v must be positive", lambda)
	}
	load := math.Inf(1)
	if sv.capacity > 0 {
		load = lambda / sv.capacity
	}
	if load >= 1 {
		return fmt.Errorf("%w: load = %v", ErrUnstable, load)
	}
	w.ar.Reset()
	sol.reshape(sv.n, sv.s)
	zs, err := w.unitDiskEigenvalues(lambda)
	if err != nil {
		return err
	}
	if err := w.eigenvectorTerms(lambda, zs, sol); err != nil {
		return err
	}
	return w.assemble(lambda, sol)
}

// reshape resizes sol to n boundary levels over s modes, reusing backing
// arrays with sufficient capacity.
func (sol *SpectralSolution) reshape(n, s int) {
	sol.n, sol.s = n, s
	if cap(sol.boundary) < n {
		sol.boundary = make([][]float64, n)
	} else {
		sol.boundary = sol.boundary[:n]
	}
	for j := range sol.boundary {
		if cap(sol.boundary[j]) < s {
			sol.boundary[j] = make([]float64, s)
		} else {
			sol.boundary[j] = sol.boundary[j][:s]
		}
	}
	if cap(sol.terms) < s {
		terms := make([]spectralTerm, s)
		copy(terms, sol.terms)
		sol.terms = terms
	} else {
		sol.terms = sol.terms[:s]
	}
	for k := range sol.terms {
		if cap(sol.terms[k].u) < s {
			sol.terms[k].u = make([]complex128, s)
		} else {
			sol.terms[k].u = sol.terms[k].u[:s]
		}
	}
}

// unitDiskEigenvalues mirrors the package-level unitDiskEigenvalues with
// the companion matrix built in the arena (reading A through the hoisted
// transpose, row-contiguously) and the scratch eigensolver.
func (w *SweepWorker) unitDiskEigenvalues(lambda float64) ([]complex128, error) {
	sv := w.sv
	s := sv.s
	n2 := 2 * s
	cm := w.ar.Mat(n2, n2)
	for i := 0; i < s; i++ {
		cm.Data[i*n2+s+i] = 1
	}
	for i := 0; i < s; i++ {
		// −Q2ᵀ/λ block: Q2 = diag(c).
		cm.Data[(s+i)*n2+i] = -sv.c[i] / lambda
		// −Q1ᵀ/λ block: Q1 = A − Dᴬ − λI − C.
		at := sv.aT.Data[i*s : (i+1)*s] // aT[i][j] = A[j][i]
		row := cm.Data[(s+i)*n2+s : (s+i)*n2+n2]
		for j := 0; j < s; j++ {
			v := at[j]
			if i == j {
				v -= sv.da[i] + lambda + sv.c[i]
			}
			row[j] = -v / lambda
		}
	}
	ws, err := linalg.EigenvaluesScratch(cm, &w.ar)
	if err != nil {
		return nil, fmt.Errorf("qbd: companion eigenvalues: %w", err)
	}
	sortModulusDesc(ws)
	if len(ws) < s+1 {
		return nil, fmt.Errorf("%w: companion produced %d eigenvalues", ErrEigenCount, len(ws))
	}
	if in := cmplx.Abs(ws[s-1]); in <= 1 {
		return nil, fmt.Errorf("%w: only %d strictly outside the unit circle (|w_s| = %v)", ErrEigenCount, countAbove(ws, 1), in)
	}
	if out := cmplx.Abs(ws[s]); out > 1+1e-6 {
		return nil, fmt.Errorf("%w: at least %d outside the unit circle (|w_{s+1}| = %v)", ErrEigenCount, countAbove(ws, 1), out)
	}
	zs := w.ar.C128(s)
	for k := 0; k < s; k++ {
		zs[k] = 1 / ws[k]
	}
	for k := range zs {
		if math.Abs(imag(zs[k])) < 1e-9*(1+math.Abs(real(zs[k]))) {
			zs[k] = complex(real(zs[k]), 0)
		}
	}
	sortModulusDesc(zs)
	return zs, nil
}

// eigenvectorTerms mirrors the package-level eigenvectorTerms, building
// Q(z_k)ᵀ directly in the arena (skipping the reference path's transpose
// copy) and writing each term into sol.terms in place.
func (w *SweepWorker) eigenvectorTerms(lambda float64, zs []complex128, sol *SpectralSolution) error {
	sv := w.sv
	s := sv.s
	for k := 0; k < len(zs); k++ {
		z := zs[k]
		switch {
		case imag(z) == 0:
			zr := real(z)
			qt := w.ar.MatUninit(s, s)
			for i := 0; i < s; i++ {
				at := sv.aT.Data[i*s : (i+1)*s]
				row := qt.Data[i*s : (i+1)*s]
				for j, v := range at {
					row[j] = zr * v
				}
				row[i] += lambda - zr*(sv.da[i]+lambda+sv.c[i]) + zr*zr*sv.c[i]
			}
			u, err := linalg.ForcedNullVectorScratch(qt, 0, &w.ar)
			if err != nil {
				return fmt.Errorf("qbd: eigenvector for z = %v: %w", z, err)
			}
			sol.terms[k].z = z
			cu := sol.terms[k].u
			for i, v := range u {
				cu[i] = complex(v, 0)
			}
		case imag(z) > 0:
			qt := w.ar.CMatUninit(s, s)
			lam := complex(lambda, 0)
			for i := 0; i < s; i++ {
				at := sv.aT.Data[i*s : (i+1)*s]
				row := qt.Data[i*s : (i+1)*s]
				for j, v := range at {
					row[j] = z * complex(v, 0)
				}
				ci := complex(sv.c[i], 0)
				di := complex(sv.da[i], 0)
				row[i] += lam - z*(di+lam+ci) + z*z*ci
			}
			u, err := linalg.CForcedNullVectorScratch(qt, 0, &w.ar)
			if err != nil {
				return fmt.Errorf("qbd: eigenvector for z = %v: %w", z, err)
			}
			sol.terms[k].z = z
			copy(sol.terms[k].u, u)
			// The conjugate must sit adjacent after the modulus sort.
			if k+1 >= len(zs) || zs[k+1] != cmplx.Conj(z) {
				return fmt.Errorf("qbd: unpaired complex eigenvalue %v", z)
			}
			sol.terms[k+1].z = cmplx.Conj(z)
			cu := sol.terms[k+1].u
			for i, v := range u {
				cu[i] = cmplx.Conj(v)
			}
			k++
		default:
			return fmt.Errorf("qbd: unpaired complex eigenvalue %v", z)
		}
	}
	return nil
}

// assemble mirrors boundaryStages + assembleSpectral: the S_j recursion
// with in-place inverses, the level-N matching system built directly in
// transposed form, and the normalisation — all in arena memory, writing
// the result into sol.
func (w *SweepWorker) assemble(lambda float64, sol *SpectralSolution) error {
	sv := w.sv
	s, n := sv.s, sv.n
	// S_j recursion: K_j = Dᴬ + B + C_j − A − λ·S_{j−1}, S_j = C_{j+1}·K_j⁻¹.
	if cap(w.stages) < n {
		w.stages = make([]*linalg.Matrix, n)
	} else {
		w.stages = w.stages[:n]
	}
	var prev *linalg.Matrix
	for j := 0; j < n; j++ {
		k := w.ar.MatUninit(s, s)
		copy(k.Data, sv.negA.Data)
		cj := sv.p.serviceAt(j)
		for i := 0; i < s; i++ {
			k.Data[i*s+i] += sv.da[i] + lambda + cj[i]
		}
		if prev != nil {
			for i, pv := range prev.Data {
				k.Data[i] -= lambda * pv
			}
		}
		kinv, err := linalg.InverseScratch(k, &w.ar)
		if err != nil {
			return fmt.Errorf("qbd: boundary stage %d is singular: %w", j, err)
		}
		cnext := sv.p.serviceAt(j + 1)
		st := w.ar.Mat(s, s)
		for i := 0; i < s; i++ {
			ci := cnext[i]
			if ci == 0 {
				continue // zero diagonal leaves an exactly-zero row, as Times does
			}
			srow := st.Data[i*s : (i+1)*s]
			krow := kinv.Data[i*s : (i+1)*s]
			for j2, kv := range krow {
				srow[j2] += ci * kv
			}
		}
		w.stages[j] = st
		prev = st
	}
	// W = Dᴬ + B + C − A − λS_{N−1} from the level-N balance equation.
	wm := w.ar.MatUninit(s, s)
	copy(wm.Data, sv.negA.Data)
	for i := 0; i < s; i++ {
		wm.Data[i*s+i] += sv.da[i] + lambda + sv.c[i]
	}
	if n > 0 {
		for i, pv := range w.stages[n-1].Data {
			wm.Data[i] -= lambda * pv
		}
	}
	// M[k][·] = u_k·(W − z_k·C); solve γ̃·M = 0. Built directly as Mᵀ so the
	// null-vector kernel needs no transpose pass.
	mt := w.ar.CMatUninit(s, s)
	for k := range sol.terms {
		t := &sol.terms[k]
		for col := 0; col < s; col++ {
			var acc complex128
			for row := 0; row < s; row++ {
				entry := complex(wm.Data[row*s+col], 0)
				if row == col {
					entry -= t.z * complex(sv.c[row], 0)
				}
				acc += t.u[row] * entry
			}
			mt.Data[col*s+k] = acc
		}
	}
	gamma, err := linalg.CForcedNullVectorScratch(mt, 0, &w.ar)
	if err != nil {
		return fmt.Errorf("qbd: level-N matching system: %w", err)
	}
	// Normalise: Σ_{j<N} v_j·1 + Σ_k γ̃_k(u_k·1)/(1−z_k) = 1.
	vn := w.ar.C128(s)
	for k := range sol.terms {
		g := gamma[k]
		for i, uv := range sol.terms[k].u {
			vn[i] += g * uv
		}
	}
	if cap(w.levels) < n {
		w.levels = make([][]complex128, n)
	} else {
		w.levels = w.levels[:n]
	}
	cur := vn
	for j := n - 1; j >= 0; j-- {
		next := w.ar.C128(s)
		st := w.stages[j]
		for r, vr := range cur {
			if vr == 0 {
				continue
			}
			row := st.Data[r*s : (r+1)*s]
			for c2, mv := range row {
				next[c2] += vr * complex(mv, 0)
			}
		}
		cur = next
		w.levels[j] = cur
	}
	var total complex128
	for _, lv := range w.levels {
		total += cvecSum(lv)
	}
	for k := range sol.terms {
		t := &sol.terms[k]
		total += gamma[k] * cvecSum(t.u) / (1 - t.z)
	}
	if total == 0 {
		return errors.New("qbd: zero total probability mass in spectral assembly")
	}
	for k := range sol.terms {
		sol.terms[k].gamma = gamma[k] / total
	}
	var maxImag float64
	for j := 0; j < n; j++ {
		row := sol.boundary[j]
		for i, v := range w.levels[j] {
			vv := v / total
			row[i] = real(vv)
			if im := math.Abs(imag(vv)); im > maxImag {
				maxImag = im
			}
		}
	}
	if maxImag > 1e-6 {
		return fmt.Errorf("qbd: boundary probabilities have imaginary residue %v", maxImag)
	}
	return nil
}
