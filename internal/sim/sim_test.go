package sim

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
	"repro/internal/qbd"
)

var (
	paperOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	paperRepair = dist.Exp(25)
)

func TestRunValidation(t *testing.T) {
	valid := Config{Servers: 1, Lambda: 1, Mu: 2, Operative: dist.Exp(1), Repair: dist.Exp(1), Horizon: 10}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero servers", func(c *Config) { c.Servers = 0 }},
		{"zero lambda", func(c *Config) { c.Lambda = 0 }},
		{"zero mu", func(c *Config) { c.Mu = 0 }},
		{"nil operative", func(c *Config) { c.Operative = nil }},
		{"nil repair", func(c *Config) { c.Repair = nil }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"one batch", func(c *Config) { c.Batches = 1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := valid
			c.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := Run(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMM1NoBreakdowns(t *testing.T) {
	// Practically reliable server: M/M/1 with ρ = 0.7, L = ρ/(1−ρ) = 7/3.
	cfg := Config{
		Servers:   1,
		Lambda:    0.7,
		Mu:        1,
		Operative: dist.Exp(1e-9),
		Repair:    dist.Exp(1e3),
		Warmup:    2000,
		Horizon:   300000,
		Seed:      1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7 / 0.3
	if math.Abs(res.MeanQueue-want) > 0.1 {
		t.Errorf("L = %v ± %v, M/M/1 gives %v", res.MeanQueue, res.MeanQueueHalfWidth, want)
	}
	// Little's law: W = L/λ.
	if math.Abs(res.MeanResponse-res.MeanQueue/cfg.Lambda) > 0.15 {
		t.Errorf("Little violated: W = %v, L/λ = %v", res.MeanResponse, res.MeanQueue/cfg.Lambda)
	}
	if res.Availability < 0.9999 {
		t.Errorf("availability = %v, want ≈1", res.Availability)
	}
}

func TestAvailabilityMatchesTheory(t *testing.T) {
	// Availability = η/(ξ+η) regardless of distribution shapes (paper §3).
	cfg := Config{
		Servers:   5,
		Lambda:    0.5, // light load; availability is load-independent anyway
		Mu:        1,
		Operative: paperOps,
		Repair:    paperRepair,
		Warmup:    5000,
		Horizon:   200000,
		Seed:      2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	xi, eta := paperOps.Rate(), paperRepair.Rate()
	want := eta / (xi + eta)
	if math.Abs(res.Availability-want) > 0.01 {
		t.Errorf("availability = %v, theory %v", res.Availability, want)
	}
}

func TestSimulationMatchesSpectralExponential(t *testing.T) {
	// Exponential operative periods: simulator vs exact solver.
	op := dist.Exp(0.0289)
	rep := dist.Exp(0.2)
	n, lambda, mu := 4, 2.8, 1.0
	env, err := markov.NewEnv(n, op, rep)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := qbd.SolveSpectral(qbd.Params{Lambda: lambda, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(mu)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Servers: n, Lambda: lambda, Mu: mu,
		Operative: op, Repair: rep,
		Warmup: 10000, Horizon: 400000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := sol.MeanQueue()
	if rel := math.Abs(res.MeanQueue-want) / want; rel > 0.08 {
		t.Errorf("sim L = %v ± %v, exact %v (rel %v)", res.MeanQueue, res.MeanQueueHalfWidth, want, rel)
	}
}

func TestSimulationMatchesSpectralHyperexponential(t *testing.T) {
	// The paper's fitted H2 operative periods: the simulator must agree with
	// the spectral expansion, validating both.
	n, lambda, mu := 3, 1.8, 1.0
	env, err := markov.NewEnv(n, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := qbd.SolveSpectral(qbd.Params{Lambda: lambda, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(mu)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Servers: n, Lambda: lambda, Mu: mu,
		Operative: paperOps, Repair: paperRepair,
		Warmup: 10000, Horizon: 400000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := sol.MeanQueue()
	if rel := math.Abs(res.MeanQueue-want) / want; rel > 0.08 {
		t.Errorf("sim L = %v ± %v, exact %v (rel %v)", res.MeanQueue, res.MeanQueueHalfWidth, want, rel)
	}
	// Queue-length distribution head should match too.
	for j := 0; j <= 5; j++ {
		if d := math.Abs(res.QueueDist[j] - sol.LevelProb(j)); d > 0.02 {
			t.Errorf("P(%d): sim %v vs exact %v", j, res.QueueDist[j], sol.LevelProb(j))
		}
	}
}

func TestDeterministicOperativePeriodsRun(t *testing.T) {
	// The Figure 6 C²=0 scenario must run and produce a smaller L than the
	// exponential (C²=1) case with the same mean.
	base := Config{
		Servers: 10, Lambda: 8.5, Mu: 1,
		Repair: dist.Exp(0.2),
		Warmup: 5000, Horizon: 150000, Seed: 5,
	}
	det := base
	det.Operative = dist.Deterministic{Value: 34.62}
	exp := base
	exp.Operative = dist.Exp(1 / 34.62)
	rDet, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	rExp, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if rDet.MeanQueue >= rExp.MeanQueue {
		t.Errorf("L(C²=0) = %v should be below L(C²=1) = %v", rDet.MeanQueue, rExp.MeanQueue)
	}
}

func TestQueueDistSumsToOne(t *testing.T) {
	res, err := Run(Config{
		Servers: 2, Lambda: 1, Mu: 1,
		Operative: paperOps, Repair: paperRepair,
		Warmup: 100, Horizon: 50000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.QueueDist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("queue distribution sums to %v", sum)
	}
}

func TestReproducibleWithSeed(t *testing.T) {
	cfg := Config{
		Servers: 2, Lambda: 1, Mu: 1,
		Operative: paperOps, Repair: paperRepair,
		Warmup: 10, Horizon: 5000, Seed: 7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanQueue != b.MeanQueue || a.Completed != b.Completed {
		t.Error("same seed must reproduce identical results")
	}
}

func TestHeapOrdering(t *testing.T) {
	var h eventHeap
	for _, x := range []float64{5, 1, 4, 2, 3, 0.5, 6} {
		h.push(event{t: x})
	}
	prev := math.Inf(-1)
	for h.len() > 0 {
		e, ok := h.pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if e.t < prev {
			t.Fatalf("heap order violated: %v after %v", e.t, prev)
		}
		prev = e.t
	}
	if _, ok := h.pop(); ok {
		t.Error("pop from empty heap should fail")
	}
}

func TestJobDeque(t *testing.T) {
	var d jobDeque
	if _, ok := d.popFront(); ok {
		t.Fatal("pop from empty deque should fail")
	}
	for i := 0; i < 10; i++ {
		d.pushBack(job{arrival: float64(i)})
	}
	d.pushFront(job{arrival: -1})
	if d.len() != 11 {
		t.Fatalf("len = %d", d.len())
	}
	j, _ := d.popFront()
	if j.arrival != -1 {
		t.Fatalf("front = %v, want -1 (preempted job goes first)", j.arrival)
	}
	for i := 0; i < 10; i++ {
		j, ok := d.popFront()
		if !ok || j.arrival != float64(i) {
			t.Fatalf("FIFO order broken at %d: %v", i, j.arrival)
		}
	}
}
