package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/dist"
)

func repTestConfig() RepConfig {
	return RepConfig{
		Config: Config{
			Servers:   3,
			Lambda:    1.8,
			Mu:        1,
			Operative: dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
			Repair:    dist.Exp(25),
			Seed:      7,
			Warmup:    500,
			Horizon:   20000,
		},
		Replications: 6,
	}
}

func TestRunReplicatedDeterministic(t *testing.T) {
	cfg := repTestConfig()
	a, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSamples(a), stripSamples(b)) {
		t.Errorf("same seed not bit-for-bit reproducible:\n%+v\nvs\n%+v", a.MeanQueue, b.MeanQueue)
	}
	if a.Replications != 6 || !a.Converged {
		t.Errorf("Replications = %d, Converged = %v", a.Replications, a.Converged)
	}
	if a.MeanQueue.N != 6 || a.MeanQueue.Level != 0.95 {
		t.Errorf("CI metadata wrong: %+v", a.MeanQueue)
	}
	if a.MeanQueue.HalfWidth <= 0 || a.MeanResponse.HalfWidth <= 0 {
		t.Error("expected positive half-widths from independent replications")
	}
}

// stripSamples drops the unexported response reservoirs before comparing
// (they are deterministic too, but huge).
func stripSamples(r RepResult) RepResult {
	for i := range r.Reps {
		r.Reps[i].responses = nil
	}
	return r
}

func TestRunReplicatedWorkerCountInvariant(t *testing.T) {
	cfg := repTestConfig()
	cfg.Workers = 1
	serial, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MeanQueue != parallel.MeanQueue || serial.MeanResponse != parallel.MeanResponse {
		t.Errorf("worker count changed the result: %+v vs %+v", serial.MeanQueue, parallel.MeanQueue)
	}
}

func TestRunReplicatedRelPrecisionStopsEarly(t *testing.T) {
	cfg := repTestConfig()
	cfg.Replications = 64
	cfg.MinReplications = 3
	cfg.RelPrecision = 0.5 // loose: met immediately at min reps
	cfg.Workers = 2
	res, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("loose criterion should converge")
	}
	if res.Replications >= 64 {
		t.Errorf("expected early stop, ran all %d replications", res.Replications)
	}
	if got := res.MeanQueue.Relative(); got > 0.5 {
		t.Errorf("stopped with relative precision %v > 0.5", got)
	}
	// The stopping decision must be deterministic in the worker count too.
	cfg.Workers = 7
	res2, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Replications != res.Replications {
		t.Errorf("worker count changed the stopping point: %d vs %d", res2.Replications, res.Replications)
	}
}

// Regression: the stopping rule is prefix-based, so a precision tight
// enough to need several waves still stops at the same replication — with
// the same aggregate result — for every worker count. (An earlier
// implementation ruled only at wave boundaries sized by Workers, so the
// worker count silently changed the answer.)
func TestRunReplicatedStoppingPointWorkerInvariant(t *testing.T) {
	base := RepConfig{
		Config: Config{
			Servers:   3,
			Lambda:    1.5,
			Mu:        1,
			Operative: dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
			Repair:    dist.Exp(25),
			Seed:      3,
			Warmup:    200,
			Horizon:   5000,
		},
		Replications:    64,
		MinReplications: 2,
		RelPrecision:    0.1,
	}
	var first RepResult
	for i, workers := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := RunReplicated(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Replications != first.Replications {
			t.Errorf("workers=%d stopped at %d replications, workers=1 at %d",
				workers, res.Replications, first.Replications)
		}
		if res.MeanQueue != first.MeanQueue || res.MeanResponse != first.MeanResponse {
			t.Errorf("workers=%d result differs: %+v vs %+v", workers, res.MeanQueue, first.MeanQueue)
		}
	}
	if !first.Converged || first.Replications >= 64 {
		t.Fatalf("scenario should converge early, ran %d (converged=%v)", first.Replications, first.Converged)
	}
}

func TestRunReplicatedGateBoundsConcurrency(t *testing.T) {
	cfg := repTestConfig()
	cfg.Workers = 4
	cfg.Gate = make(chan struct{}, 1) // engine-style external bound
	gated, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gate = nil
	free, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gated.MeanQueue != free.MeanQueue || gated.Replications != free.Replications {
		t.Errorf("gate changed the result: %+v vs %+v", gated.MeanQueue, free.MeanQueue)
	}
}

func TestRunReplicatedUnattainablePrecision(t *testing.T) {
	cfg := repTestConfig()
	cfg.Config.Horizon = 2000
	cfg.Replications = 4
	cfg.MinReplications = 2
	cfg.RelPrecision = 1e-9 // unattainable
	res, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("criterion cannot have been met")
	}
	if res.Replications != 4 {
		t.Errorf("expected the R_max cap of 4, ran %d", res.Replications)
	}
}

func TestRunReplicatedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunReplicated(ctx, repTestConfig()); err == nil {
		t.Error("cancelled context must abort")
	}
}

func TestRunReplicatedConfigErrors(t *testing.T) {
	cfg := repTestConfig()
	cfg.Replications = 1
	if _, err := RunReplicated(context.Background(), cfg); err == nil {
		t.Error("1 replication cannot produce a CI")
	}
	cfg = repTestConfig()
	cfg.Servers = 0
	if _, err := RunReplicated(context.Background(), cfg); err == nil {
		t.Error("invalid per-replication config must propagate")
	}
	cfg = repTestConfig()
	cfg.Confidence = 2
	if _, err := RunReplicated(context.Background(), cfg); err == nil {
		t.Error("confidence outside (0,1) must error")
	}
}

func TestRepSeedDistinctStreams(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := RepSeed(20051215, i)
		if s == 0 {
			t.Fatal("RepSeed produced the reserved zero seed")
		}
		if seen[s] {
			t.Fatalf("seed collision at replication %d", i)
		}
		seen[s] = true
	}
	if RepSeed(1, 0) == RepSeed(2, 0) {
		t.Error("different base seeds must give different streams")
	}
}

func TestReplicatedAgreesWithSingleRun(t *testing.T) {
	// The CI midpoint should sit near the long single-run estimate.
	cfg := repTestConfig()
	cfg.Replications = 8
	rep, err := RunReplicated(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	one := cfg.Config
	one.Horizon = 160000
	single, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rep.MeanQueue.Mean-single.MeanQueue) / single.MeanQueue; rel > 0.15 {
		t.Errorf("replicated L %v vs single-run %v (rel %v)", rep.MeanQueue.Mean, single.MeanQueue, rel)
	}
	if rep.Completed <= 0 || len(rep.QueueDist) == 0 {
		t.Error("aggregate counters missing")
	}
	var sum float64
	for _, p := range rep.QueueDist {
		sum += p
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("averaged queue distribution sums to %v", sum)
	}
}
