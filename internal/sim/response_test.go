package sim

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestResponseQuantileMM1(t *testing.T) {
	// In M/M/1 (FCFS) the response time is exponential with rate µ−λ, so
	// the q-quantile is −ln(1−q)/(µ−λ). Use a practically reliable server.
	lambda, mu := 0.5, 1.0
	res, err := Run(Config{
		Servers:   1,
		Lambda:    lambda,
		Mu:        mu,
		Operative: dist.Exp(1e-9),
		Repair:    dist.Exp(1e3),
		Warmup:    2000,
		Horizon:   400000,
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.95} {
		want := -math.Log(1-q) / (mu - lambda)
		got := res.ResponseQuantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q=%v: quantile %v, M/M/1 gives %v (rel %v)", q, got, want, rel)
		}
	}
	// Quantiles are monotone in q.
	if res.ResponseQuantile(0.5) >= res.ResponseQuantile(0.9) {
		t.Error("quantiles not monotone")
	}
}

func TestResponseQuantilePaperOpenProblem(t *testing.T) {
	// §5: "the solutions presented here ... do not provide the distribution
	// (e.g., the 90% percentile) of the response time" — the simulator does.
	res, err := Run(Config{
		Servers:   10,
		Lambda:    7.5,
		Mu:        1,
		Operative: paperOps,
		Repair:    paperRepair,
		Warmup:    2000,
		Horizon:   100000,
		Seed:      22,
	})
	if err != nil {
		t.Fatal(err)
	}
	p90 := res.ResponseQuantile(0.9)
	if math.IsNaN(p90) || p90 <= 0 {
		t.Fatalf("p90 = %v", p90)
	}
	// The 90th percentile exceeds the mean for these right-skewed times.
	if p90 <= res.MeanResponse {
		t.Errorf("p90 %v should exceed mean %v", p90, res.MeanResponse)
	}
}

func TestResponseSampleDisabled(t *testing.T) {
	res, err := Run(Config{
		Servers:        1,
		Lambda:         0.3,
		Mu:             1,
		Operative:      dist.Exp(0.01),
		Repair:         dist.Exp(10),
		Warmup:         10,
		Horizon:        2000,
		Seed:           23,
		ResponseSample: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.ResponseQuantile(0.9)) {
		t.Error("disabled sampling must yield NaN quantiles")
	}
}

func TestResponseReservoirBounded(t *testing.T) {
	res, err := Run(Config{
		Servers:        2,
		Lambda:         1.5,
		Mu:             1,
		Operative:      dist.Exp(0.01),
		Repair:         dist.Exp(10),
		Warmup:         100,
		Horizon:        50000,
		Seed:           24,
		ResponseSample: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.responses) > 500 {
		t.Fatalf("reservoir grew to %d", len(res.responses))
	}
	if res.Completed < 1000 {
		t.Fatalf("expected many completions, got %d", res.Completed)
	}
	if math.IsNaN(res.ResponseQuantile(0.5)) {
		t.Error("median should be available")
	}
}
