package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// RepConfig parameterises a replicated simulation: R independent
// replications of the embedded per-replication Config, each on its own
// deterministic RNG stream, aggregated into Student-t confidence
// intervals across replication means (the classical
// independent-replications method, which the paper's validation runs rely
// on for its "simulated" data points).
type RepConfig struct {
	// Config is the per-replication simulation; its Seed is the base seed
	// from which every replication's stream is derived.
	Config

	// Replications is R_max, the maximum number of replications (default 8).
	Replications int
	// MinReplications is the number of replications always run before the
	// stopping rule is first consulted (default min(4, Replications)).
	MinReplications int
	// RelPrecision is ε of the relative-precision stopping rule: stop as
	// soon as the confidence half-width on the mean queue length is within
	// ε·|mean|. Zero disables early stopping, running exactly Replications.
	RelPrecision float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Workers bounds concurrent replications (default GOMAXPROCS). The
	// worker count never affects the result, only the wall-clock time:
	// replication i is fully determined by (Seed, i), the stopping point is
	// a pure function of the replication sequence, and aggregation is in
	// replication order.
	Workers int
	// Gate, when non-nil, is an external semaphore each replication must
	// hold a slot of while it runs, on top of the run-local Workers bound.
	// internal/service passes its engine-wide worker gate here so that any
	// number of concurrent replicated simulations (plus solver work) never
	// oversubscribe the pool. Like Workers it cannot affect the result.
	Gate chan struct{}
}

// RepResult aggregates R independent replications.
type RepResult struct {
	// MeanQueue is the confidence interval for L across replication means.
	MeanQueue stats.CI
	// MeanResponse is the confidence interval for W.
	MeanResponse stats.CI
	// Availability is the confidence interval for the operative fraction.
	Availability stats.CI
	// Replications is the number of replications actually run.
	Replications int
	// Converged reports whether the relative-precision criterion was met
	// (always true when RelPrecision is 0: the requested R was delivered).
	Converged bool
	// Completed totals the jobs finished across all replications.
	Completed int64
	// QueueDist[k] is the fraction of time with k jobs present, averaged
	// across replications.
	QueueDist []float64
	// Reps holds the per-replication results in replication order.
	Reps []Result
}

// RepSeed derives the RNG seed of replication i from the base seed by a
// SplitMix64 mix, giving every replication a well-separated deterministic
// stream: the same (base, i) always yields the same stream, so replicated
// runs are bit-for-bit reproducible regardless of worker count or
// scheduling. Exported so callers (service cache keys, tests) can name the
// exact stream a replication used.
func RepSeed(base int64, i int) int64 {
	x := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	s := int64(x)
	if s == 0 {
		s = 1 // Seed 0 means "default" to Run; keep streams distinct
	}
	return s
}

// RunReplicated executes independent replications across a bounded worker
// pool until the relative-precision criterion is met or R_max replications
// have run. The stopping point is a pure function of the replication
// sequence: the smallest R ≥ MinReplications whose prefix [0, R) meets
// the criterion (capped at R_max). Workers only batch replications into
// speculative waves — replications computed beyond the stopping point are
// discarded, never aggregated — so the number of replications reported,
// and therefore the result, is bit-for-bit identical for every worker
// count. Cancelling the context stops between replications; a replication
// in flight runs to completion.
func RunReplicated(ctx context.Context, cfg RepConfig) (RepResult, error) {
	if cfg.Replications == 0 {
		cfg.Replications = 8
	}
	if cfg.Replications < 2 {
		return RepResult{}, fmt.Errorf("sim: need ≥ 2 replications for confidence intervals, got %d", cfg.Replications)
	}
	if cfg.MinReplications == 0 {
		cfg.MinReplications = 4
	}
	if cfg.MinReplications < 2 {
		cfg.MinReplications = 2
	}
	if cfg.MinReplications > cfg.Replications {
		cfg.MinReplications = cfg.Replications
	}
	if cfg.RelPrecision < 0 {
		return RepResult{}, fmt.Errorf("sim: relative precision %v must be ≥ 0", cfg.RelPrecision)
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	if !(cfg.Confidence > 0 && cfg.Confidence < 1) {
		return RepResult{}, fmt.Errorf("sim: confidence level %v outside (0, 1)", cfg.Confidence)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	res := RepResult{}
	reps := make([]Result, 0, cfg.Replications)
	checked := cfg.MinReplications - 1 // longest prefix already ruled on
	stopAt := -1                       // deterministic stopping point, once found
	for len(reps) < cfg.Replications && stopAt < 0 {
		if err := ctx.Err(); err != nil {
			return RepResult{}, err
		}
		// Wave size: the first wave runs the minimum the rule needs before
		// it can first apply (everything when there is no rule); later
		// waves speculate one pool width ahead.
		n := cfg.Workers
		if len(reps) == 0 {
			if cfg.RelPrecision == 0 {
				n = cfg.Replications
			} else {
				n = cfg.MinReplications
			}
		}
		if len(reps)+n > cfg.Replications {
			n = cfg.Replications - len(reps)
		}
		wave := make([]Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		for w := range wave {
			i := len(reps) + w
			wg.Add(1)
			sem <- struct{}{}
			go func(w, i int) {
				defer wg.Done()
				defer func() { <-sem }()
				if cfg.Gate != nil {
					select {
					case cfg.Gate <- struct{}{}:
						defer func() { <-cfg.Gate }()
					case <-ctx.Done():
						errs[w] = ctx.Err()
						return
					}
				}
				c := cfg.Config
				c.Seed = RepSeed(cfg.Seed, i)
				wave[w], errs[w] = Run(c)
			}(w, i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return RepResult{}, err
			}
		}
		reps = append(reps, wave...)

		// Rule on every newly completed prefix in replication order. The
		// stopping point is the first prefix that satisfies the criterion,
		// regardless of how replications were batched into waves, so
		// Workers cannot influence it.
		if cfg.RelPrecision > 0 {
			for i := checked + 1; i <= len(reps); i++ {
				ci, err := queueCI(reps[:i], cfg.Confidence)
				if err != nil {
					return RepResult{}, err
				}
				if ci.Relative() <= cfg.RelPrecision {
					stopAt = i
					break
				}
			}
			checked = len(reps)
		}
	}
	if stopAt >= 0 {
		reps = reps[:stopAt] // discard speculative replications past the stop
		res.Converged = true
	} else if cfg.RelPrecision == 0 {
		res.Converged = true
	}
	return aggregate(res, reps, cfg.Confidence)
}

// queueCI builds the stopping-rule interval over the replication means of L.
func queueCI(reps []Result, level float64) (stats.CI, error) {
	means := make([]float64, len(reps))
	for i, r := range reps {
		means[i] = r.MeanQueue
	}
	return stats.MeanCI(means, level)
}

// aggregate folds per-replication results into the cross-replication CIs
// and averaged queue distribution, in replication order.
func aggregate(res RepResult, reps []Result, level float64) (RepResult, error) {
	ls := make([]float64, len(reps))
	ws := make([]float64, len(reps))
	av := make([]float64, len(reps))
	maxDist := 0
	for i, r := range reps {
		ls[i] = r.MeanQueue
		ws[i] = r.MeanResponse
		av[i] = r.Availability
		res.Completed += r.Completed
		if len(r.QueueDist) > maxDist {
			maxDist = len(r.QueueDist)
		}
	}
	var err error
	if res.MeanQueue, err = stats.MeanCI(ls, level); err != nil {
		return RepResult{}, err
	}
	if res.MeanResponse, err = stats.MeanCI(ws, level); err != nil {
		return RepResult{}, err
	}
	if res.Availability, err = stats.MeanCI(av, level); err != nil {
		return RepResult{}, err
	}
	res.QueueDist = make([]float64, maxDist)
	for _, r := range reps {
		for k, p := range r.QueueDist {
			res.QueueDist[k] += p / float64(len(reps))
		}
	}
	res.Replications = len(reps)
	res.Reps = reps
	return res, nil
}
