// Package sim is a discrete-event simulator for the multi-server queue with
// breakdowns and repairs (paper §3 semantics): Poisson arrivals into a
// common unbounded FIFO queue, exponential service, and per-server
// alternating operative/inoperative periods drawn from arbitrary
// distributions. Service interrupted by a breakdown is preemptive-resume:
// the job returns to the front of the queue with its remaining service
// requirement intact and no switching overhead.
//
// The simulator covers what the analytical model cannot: non-phase-type
// period distributions (the deterministic C² = 0 point of Figure 6) — and
// independently validates the spectral-expansion solution.
//
// Run executes one replication and brackets the mean queue length L with a
// batch-means confidence interval. RunReplicated executes R independent
// replications in parallel — one deterministic RNG stream per replication
// (RepSeed), aggregated in replication order so results are bit-for-bit
// reproducible for any worker count — and reports Student-t confidence
// intervals for L, the response time W and the availability, optionally
// stopping early once a relative-precision criterion ε is met.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Config parameterises one simulation run.
type Config struct {
	// Servers is N.
	Servers int
	// Lambda is the Poisson arrival rate.
	Lambda float64
	// Mu is the exponential service rate.
	Mu float64
	// Operative is the operative-period distribution.
	Operative dist.Distribution
	// Repair is the inoperative-period distribution.
	Repair dist.Distribution
	// Seed seeds the random stream (0 picks a fixed default).
	Seed int64
	// Warmup is simulated time discarded before statistics start.
	Warmup float64
	// Horizon is simulated time measured after warmup.
	Horizon float64
	// Batches is the number of batch-means segments for the confidence
	// interval (default 20).
	Batches int
	// MaxTrackedQueue bounds the queue-length histogram (default 1024).
	MaxTrackedQueue int
	// ResponseSample bounds the reservoir of response times kept for
	// quantile estimation (default 100,000; 0 < n keeps n, −1 disables).
	ResponseSample int
}

// Result reports the measured steady-state statistics.
type Result struct {
	// MeanQueue is the time-averaged number of jobs in the system (L).
	MeanQueue float64
	// MeanQueueHalfWidth is the 95% batch-means confidence half-width on L.
	MeanQueueHalfWidth float64
	// MeanResponse is the average job response time (W).
	MeanResponse float64
	// Availability is the time-averaged fraction of operative servers.
	Availability float64
	// Completed counts jobs finished during the measurement window.
	Completed int64
	// QueueDist[k] is the fraction of time with exactly k jobs present
	// (truncated at MaxTrackedQueue).
	QueueDist []float64

	responses []float64 // reservoir sample of response times
}

// ResponseQuantile estimates the q-quantile of the response-time
// distribution from the reservoir sample — the paper's §5 open problem
// ("the 90% percentile of the response time"), which the analytical
// solution does not provide but the simulator can. Returns NaN when
// sampling was disabled or nothing completed.
func (r Result) ResponseQuantile(q float64) float64 {
	if len(r.responses) == 0 {
		return math.NaN()
	}
	return stats.Quantile(r.responses, q)
}

type server struct {
	operative bool
	busy      bool
	seq       uint64  // invalidates stale completion events
	cur       job     // job in service (valid when busy)
	startedAt float64 // service segment start time
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if cfg.Servers < 1 {
		return Result{}, fmt.Errorf("sim: %d servers", cfg.Servers)
	}
	if cfg.Lambda <= 0 || cfg.Mu <= 0 {
		return Result{}, fmt.Errorf("sim: rates λ=%v µ=%v must be positive", cfg.Lambda, cfg.Mu)
	}
	if cfg.Operative == nil || cfg.Repair == nil {
		return Result{}, errors.New("sim: nil period distribution")
	}
	if cfg.Horizon <= 0 {
		return Result{}, fmt.Errorf("sim: horizon %v must be positive", cfg.Horizon)
	}
	if cfg.Batches == 0 {
		cfg.Batches = 20
	}
	if cfg.Batches < 2 {
		return Result{}, fmt.Errorf("sim: need at least 2 batches, got %d", cfg.Batches)
	}
	if cfg.MaxTrackedQueue == 0 {
		cfg.MaxTrackedQueue = 1024
	}
	if cfg.ResponseSample == 0 {
		cfg.ResponseSample = 100000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 20051215 // CS-TR-936 publication date
	}
	rng := rand.New(rand.NewSource(seed))

	st := &state{
		cfg:       cfg,
		rng:       rng,
		servers:   make([]server, cfg.Servers),
		queueDist: make([]float64, cfg.MaxTrackedQueue+1),
	}
	// All servers start operative with a fresh operative period; the warmup
	// washes out the initial transient.
	for i := range st.servers {
		st.servers[i].operative = true
		st.heap.push(event{t: cfg.Operative.Sample(rng), kind: evBreakdown, server: i})
	}
	st.heap.push(event{t: st.expSample(cfg.Lambda), kind: evArrival})

	end := cfg.Warmup + cfg.Horizon
	batchLen := cfg.Horizon / float64(cfg.Batches)
	batchArea := make([]float64, cfg.Batches)
	for {
		ev, ok := st.heap.pop()
		if !ok || ev.t >= end {
			st.advance(end, batchArea, batchLen)
			break
		}
		st.advance(ev.t, batchArea, batchLen)
		switch ev.kind {
		case evArrival:
			st.arrive()
			st.heap.push(event{t: st.now + st.expSample(cfg.Lambda), kind: evArrival})
		case evCompletion:
			st.complete(ev)
		case evBreakdown:
			st.breakdown(ev.server)
		case evRepair:
			st.repair(ev.server)
		}
	}
	return st.result(batchArea)
}

type state struct {
	cfg     Config
	rng     *rand.Rand
	heap    eventHeap
	servers []server
	queue   jobDeque
	now     float64

	inSystem int // jobs present (queue + in service)

	// Accumulators over the measurement window.
	areaQueue   float64 // ∫ Z dt
	areaOper    float64 // ∫ (#operative) dt
	queueDist   []float64
	sumResponse float64
	completed   int64
	responses   []float64 // reservoir sample
}

// recordResponse maintains a uniform reservoir sample of response times.
func (s *state) recordResponse(rt float64) {
	limit := s.cfg.ResponseSample
	if limit < 0 {
		return
	}
	if len(s.responses) < limit {
		s.responses = append(s.responses, rt)
		return
	}
	if k := s.rng.Int63n(s.completed); k < int64(limit) {
		s.responses[k] = rt
	}
}

func (s *state) expSample(rate float64) float64 {
	return s.rng.ExpFloat64() / rate
}

// advance moves the clock to t, integrating the piecewise-constant state
// over the elapsed interval and splitting the area across batches.
func (s *state) advance(t float64, batchArea []float64, batchLen float64) {
	from, to := s.now, t
	s.now = t
	mstart := math.Max(from, s.cfg.Warmup)
	if to <= mstart {
		return
	}
	dt := to - mstart
	z := float64(s.inSystem)
	s.areaQueue += z * dt
	var oper int
	for i := range s.servers {
		if s.servers[i].operative {
			oper++
		}
	}
	s.areaOper += float64(oper) * dt
	k := min(s.inSystem, len(s.queueDist)-1)
	s.queueDist[k] += dt
	// Distribute the queue area over batch windows.
	b0 := int((mstart - s.cfg.Warmup) / batchLen)
	b1 := int((to - s.cfg.Warmup) / batchLen)
	if b0 == b1 {
		if b0 < len(batchArea) {
			batchArea[b0] += z * dt
		}
		return
	}
	cur := mstart
	for b := b0; b <= b1 && b < len(batchArea); b++ {
		edge := s.cfg.Warmup + float64(b+1)*batchLen
		seg := math.Min(to, edge) - cur
		if seg > 0 {
			batchArea[b] += z * seg
		}
		cur = edge
	}
}

func (s *state) arrive() {
	s.inSystem++
	s.queue.pushBack(job{arrival: s.now, remaining: s.expSample(s.cfg.Mu)})
	s.dispatch()
}

// dispatch hands queued jobs to every idle operative server.
func (s *state) dispatch() {
	for i := range s.servers {
		if s.queue.len() == 0 {
			return
		}
		sv := &s.servers[i]
		if !sv.operative || sv.busy {
			continue
		}
		j, _ := s.queue.popFront()
		sv.busy = true
		sv.cur = j
		sv.startedAt = s.now
		sv.seq++
		s.heap.push(event{t: s.now + j.remaining, kind: evCompletion, server: i, seq: sv.seq})
	}
}

func (s *state) complete(ev event) {
	sv := &s.servers[ev.server]
	if !sv.busy || sv.seq != ev.seq {
		return // stale: the job was preempted before this event fired
	}
	sv.busy = false
	sv.seq++
	s.inSystem--
	if s.now >= s.cfg.Warmup {
		s.completed++
		s.sumResponse += s.now - sv.cur.arrival
		s.recordResponse(s.now - sv.cur.arrival)
	}
	s.dispatch()
}

func (s *state) breakdown(i int) {
	sv := &s.servers[i]
	sv.operative = false
	if sv.busy {
		// Preemptive resume: the interrupted job keeps its remaining
		// requirement and rejoins the FRONT of the queue (paper §3).
		elapsed := s.now - sv.startedAt
		j := sv.cur
		j.remaining = math.Max(0, j.remaining-elapsed)
		s.queue.pushFront(j)
		sv.busy = false
		sv.seq++
	}
	s.heap.push(event{t: s.now + s.cfg.Repair.Sample(s.rng), kind: evRepair, server: i})
}

func (s *state) repair(i int) {
	sv := &s.servers[i]
	sv.operative = true
	s.heap.push(event{t: s.now + s.cfg.Operative.Sample(s.rng), kind: evBreakdown, server: i})
	s.dispatch()
}

func (s *state) result(batchArea []float64) (Result, error) {
	t := s.cfg.Horizon
	res := Result{
		MeanQueue:    s.areaQueue / t,
		Availability: s.areaOper / (t * float64(s.cfg.Servers)),
		Completed:    s.completed,
		responses:    s.responses,
	}
	if s.completed > 0 {
		res.MeanResponse = s.sumResponse / float64(s.completed)
	}
	res.QueueDist = make([]float64, len(s.queueDist))
	for k, a := range s.queueDist {
		res.QueueDist[k] = a / t
	}
	// Batch-means 95% confidence half-width.
	b := float64(len(batchArea))
	batchLen := t / b
	var mean float64
	for _, a := range batchArea {
		mean += a / batchLen
	}
	mean /= b
	var ss float64
	for _, a := range batchArea {
		d := a/batchLen - mean
		ss += d * d
	}
	if b > 1 {
		res.MeanQueueHalfWidth = 1.96 * math.Sqrt(ss/(b-1)) / math.Sqrt(b)
	}
	return res, nil
}
