package sim

// eventKind discriminates scheduler events.
type eventKind uint8

const (
	evArrival eventKind = iota
	evCompletion
	evBreakdown
	evRepair
)

// event is a scheduled occurrence. seq guards against stale completion
// events: a completion is only honoured if the owning server's sequence
// number still matches (lazy cancellation on preemption).
type event struct {
	t      float64
	kind   eventKind
	server int
	seq    uint64
}

// eventHeap is a binary min-heap on event time.
type eventHeap struct {
	items []event
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].t <= h.items[i].t {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *eventHeap) pop() (event, bool) {
	if len(h.items) == 0 {
		return event{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].t < h.items[smallest].t {
			smallest = l
		}
		if r < last && h.items[r].t < h.items[smallest].t {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top, true
}

func (h *eventHeap) len() int { return len(h.items) }

// jobDeque is a ring-buffer double-ended queue of jobs. Preempted jobs
// return to the front (paper §3: "returned to the front of the queue"),
// so a plain FIFO slice would cost O(n) per preemption.
type jobDeque struct {
	buf  []job
	head int
	n    int
}

type job struct {
	arrival   float64
	remaining float64
}

func (d *jobDeque) grow() {
	nb := make([]job, max(8, 2*len(d.buf)))
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

func (d *jobDeque) pushBack(j job) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = j
	d.n++
}

func (d *jobDeque) pushFront(j job) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = j
	d.n++
}

func (d *jobDeque) popFront() (job, bool) {
	if d.n == 0 {
		return job{}, false
	}
	j := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return j, true
}

func (d *jobDeque) len() int { return d.n }
