// Package cluster federates N mus-serve nodes into one logical
// evaluation service — the serving tier's own instance of the paper's
// model: a farm of parallel servers that individually fail and recover
// while the work keeps flowing.
//
// Three mechanisms, layered:
//
//   - Membership and health. Every node runs with the same -peers list; a
//     Router probes each peer's /v1/healthz on a fixed interval and keeps
//     an up/down verdict per peer (forwarding failures count against a
//     peer too, so a crash is noticed at the first lost request, not the
//     next probe).
//
//   - Ownership. A rendezvous hash ring (internal/cluster/ring) over
//     core.System.Fingerprint assigns every configuration exactly one
//     owner node, identically computed by every member and by sharding
//     clients. Same fingerprint → same node → that node's solver cache
//     fills with its shard of the keyspace instead of every node
//     duplicating every key. Failover is deterministic: a down owner's
//     keys go to the next-highest-scoring live node and nowhere else.
//
//   - Routing. Single-point requests (solve, simulate) are forwarded to
//     their owner over the client SDK and answered from its cache; sweep
//     grids are scattered point-wise across the live membership, solved
//     concurrently, and gathered back in submission order — including the
//     NDJSON streaming path, where each point is emitted as soon as it
//     and every earlier point are done. Any node can take any request;
//     ownership decides who computes it. The local engine is always the
//     fallback of last resort, so a request never fails because routing
//     is sick — the cluster degrades to single-node service.
//
// Forwarded requests carry api.HeaderForwarded and are always served
// locally by the receiving node, bounding every request to at most one
// hop even when ring views disagree mid-deploy.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/cluster/ring"
)

// Defaults for Config's zero values.
const (
	// DefaultProbeInterval is how often each peer's /v1/healthz is probed.
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultFailThreshold is how many consecutive probe failures mark a
	// peer down. Two, not one: when every node of a cluster boots at
	// once, each node's first probe round races its siblings' listeners,
	// and a single refused connection must not cost the first requests
	// their cache affinity. A forwarding failure — evidence from real
	// traffic — still marks the peer down immediately.
	DefaultFailThreshold = 2
	// DefaultForwardTimeout bounds one forwarded unary call (solve,
	// simulate) end to end. A peer whose request path is wedged can
	// still answer health probes, so without this bound a forward to it
	// would hang until the caller's own deadline with no failover; on
	// expiry the request fails over down the rank like any other node
	// failure. Five minutes — the same tolerance mus-serve itself grants
	// one buffered request (its WriteTimeout) — so a request a lone node
	// would have served never marks its healthy owner down. (Sweep
	// sub-streams are bounded separately, by StreamIdleTimeout between
	// points.)
	DefaultForwardTimeout = 5 * time.Minute
	// DefaultHeaderTimeout bounds how long a sweep sub-stream may wait
	// for its response headers. The NDJSON 200 is sent before solving
	// starts, so a peer that accepts connections but never answers trips
	// this quickly instead of stalling a scatter. It applies only to the
	// streaming client — unary forwards buffer their whole response
	// behind the headers and are bounded by ForwardTimeout instead.
	DefaultHeaderTimeout = 15 * time.Second
	// DefaultStreamIdleTimeout is the longest silence tolerated between
	// two points of a sweep sub-stream before the watchdog cancels it and
	// re-scatters the unanswered points. It matches the single-node
	// per-point streaming allowance (streamPointTimeout in mus-serve), so
	// a peer merely saturated — slow, but no slower than a lone node
	// would be — is never punished as dead.
	DefaultStreamIdleTimeout = 5 * time.Minute
)

// NodeConfig names one cluster member: its ring identity and base URL.
type NodeConfig struct {
	// ID is the node's ring identity. Every member and every sharding
	// client must use the same ID for the same node, or affinity degrades
	// to an extra forwarding hop.
	ID string
	// URL is the node's base URL (e.g. "http://host:8350").
	URL string
}

// ParsePeers parses a -peers flag value: comma-separated entries of the
// form "id=url" or bare "url" (in which case the normalized URL is the
// ID). Whitespace around entries is tolerated.
func ParsePeers(spec string) ([]NodeConfig, error) {
	var out []NodeConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		nc := NodeConfig{}
		if id, rawURL, ok := strings.Cut(entry, "="); ok {
			nc.ID, nc.URL = strings.TrimSpace(id), strings.TrimSpace(rawURL)
		} else {
			nc.URL = entry
		}
		nc.URL = strings.TrimRight(nc.URL, "/")
		u, err := url.Parse(nc.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: want http(s)://host[:port]", entry)
		}
		if nc.ID == "" {
			nc.ID = nc.URL
		}
		out = append(out, nc)
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: -peers named no nodes")
	}
	return out, nil
}

// Config assembles a Router.
type Config struct {
	// SelfID is this node's ring identity; it must appear in Nodes.
	SelfID string
	// Nodes is the full membership, including self. All members must run
	// with the same list for routing to agree.
	Nodes []NodeConfig
	// ProbeInterval is the background health-probe period (default
	// DefaultProbeInterval); negative disables the background loop so
	// tests can drive ProbeOnce deterministically.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures mark a peer down
	// (default DefaultFailThreshold).
	FailThreshold int
	// ForwardTimeout bounds one forwarded unary call (default
	// DefaultForwardTimeout); expiry fails the request over to the next
	// ranked node.
	ForwardTimeout time.Duration
	// HeaderTimeout bounds the wait for a sweep sub-stream's response
	// headers (default DefaultHeaderTimeout); it is what detects a peer
	// that accepts connections but never answers. Unary forwards are
	// bounded by ForwardTimeout instead — their headers legitimately
	// arrive only when the evaluation is done.
	HeaderTimeout time.Duration
	// StreamIdleTimeout bounds the silence between two points of a sweep
	// sub-stream (default DefaultStreamIdleTimeout); expiry re-scatters
	// the sub-stream's unanswered points.
	StreamIdleTimeout time.Duration
	// ClientOptions is appended to every peer client's construction —
	// tests inject fake transports and short backoffs here.
	ClientOptions []client.Option
}

// node is one member's registry entry: its SDK clients (nil for self)
// and the reporting node's health verdict and routing counters for it.
// c carries unary forwards and probes; sc carries sweep sub-streams on a
// transport with a response-header timeout (an NDJSON 200 arrives before
// any solving, so waiting longer than seconds for it means the peer is
// wedged — a bound that would wrongly kill long buffered unary calls).
type node struct {
	id, url string
	c       *client.Client // nil for the self entry
	sc      *client.Client // streaming twin of c; nil for the self entry

	mu        sync.Mutex
	fails     int
	lastErr   string
	lastProbe time.Time

	owned     atomic.Uint64 // requests/points whose ring owner is this node
	forwarded atomic.Uint64 // requests/points actually sent to this node
}

// Router is one node's view of the cluster: membership, per-peer health,
// the ownership ring, and the forwarding/scatter machinery the server
// handlers call into. It is safe for concurrent use.
type Router struct {
	self      string
	ring      *ring.Ring
	nodes     map[string]*node
	order     []string // member IDs, ring (lexicographic) order
	threshold int

	probeInterval  time.Duration
	probeTimeout   time.Duration
	forwardTimeout time.Duration
	streamIdle     time.Duration

	localServed    atomic.Uint64
	forwardedTotal atomic.Uint64
	failovers      atomic.Uint64
	// rescatters counts sweep sub-streams that died (or skipped points)
	// mid-flight and had their unanswered points re-dispatched — the
	// scatter/gather tier's recovery signal, distinct from failovers
	// (which also count pre-dispatch routing around a known-down node).
	rescatters atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New validates cfg and builds a Router. Call Start to launch background
// health probing and Close to stop it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.HeaderTimeout <= 0 {
		cfg.HeaderTimeout = DefaultHeaderTimeout
	}
	if cfg.StreamIdleTimeout <= 0 {
		cfg.StreamIdleTimeout = DefaultStreamIdleTimeout
	}
	r := &Router{
		self:           cfg.SelfID,
		threshold:      cfg.FailThreshold,
		probeInterval:  cfg.ProbeInterval,
		probeTimeout:   cfg.ProbeTimeout,
		forwardTimeout: cfg.ForwardTimeout,
		streamIdle:     cfg.StreamIdleTimeout,
		nodes:          make(map[string]*node, len(cfg.Nodes)),
		stop:           make(chan struct{}),
	}
	// Sweep sub-streams ride a transport that gives up on a peer that
	// accepts connections but never sends its (pre-solve) NDJSON headers;
	// unary forwards keep the default transport, bounded end-to-end by
	// ForwardTimeout instead.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.ResponseHeaderTimeout = cfg.HeaderTimeout
	streamc := &http.Client{Transport: tr}
	ids := make([]string, 0, len(cfg.Nodes))
	urls := make(map[string]string, len(cfg.Nodes))
	for _, nc := range cfg.Nodes {
		if nc.ID == "" || nc.URL == "" {
			return nil, fmt.Errorf("cluster: node %+v needs both an ID and a URL", nc)
		}
		if _, dup := r.nodes[nc.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", nc.ID)
		}
		u := strings.TrimRight(nc.URL, "/")
		if prev, dup := urls[u]; dup {
			// Two ring identities on one URL would silently self-forward
			// half the keyspace over HTTP forever; fail the copy-paste at
			// startup instead.
			return nil, fmt.Errorf("cluster: nodes %q and %q share the URL %s", prev, nc.ID, u)
		}
		urls[u] = nc.ID
		n := &node{id: nc.ID, url: u}
		if nc.ID != cfg.SelfID {
			// Peer clients do not retry: the Router is the retry layer, and
			// a dead peer should fail over immediately, not after backoff.
			opts := []client.Option{
				client.WithRetries(0),
				client.WithHeader(api.HeaderForwarded, "1"),
			}
			n.c = client.New(n.url, append(opts, cfg.ClientOptions...)...)
			n.sc = client.New(n.url, append(append(opts, client.WithHTTPClient(streamc)), cfg.ClientOptions...)...)
		}
		r.nodes[nc.ID] = n
		ids = append(ids, nc.ID)
	}
	if _, ok := r.nodes[cfg.SelfID]; !ok {
		return nil, fmt.Errorf("cluster: -node-id %q is not in the peer list", cfg.SelfID)
	}
	r.ring = ring.New(ids)
	r.order = r.ring.IDs() // already lexicographic — ring.New sorts
	return r, nil
}

// Self returns this node's ring ID.
func (r *Router) Self() string { return r.self }

// Members returns the member IDs in ring order.
func (r *Router) Members() []string { return append([]string(nil), r.order...) }

// Owner returns the ring owner of one fingerprint, alive or not.
func (r *Router) Owner(fp string) string { return r.ring.Owner(fp) }

// Start launches the background health-probe loop (unless the configured
// interval is negative). An immediate first round runs before the ticker
// so the router never begins with stale optimism about a dead peer.
func (r *Router) Start() {
	if r.probeInterval < 0 {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.ProbeOnce(context.Background())
		t := time.NewTicker(r.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.ProbeOnce(context.Background())
			case <-r.stop:
				return
			}
		}
	}()
}

// Close stops background probing. It does not touch in-flight forwards.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// ProbeOnce probes every peer's /v1/healthz concurrently and records the
// verdicts. Exported so tests (and Start's first round) converge health
// state synchronously instead of waiting out a ticker.
func (r *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		if n.c == nil {
			continue // self: trivially up
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, r.probeTimeout)
			defer cancel()
			_, err := n.c.Health(pctx)
			if err != nil {
				r.noteFailure(n, err)
				return
			}
			r.noteSuccess(n)
		}(n)
	}
	wg.Wait()
}

// noteFailure records one failed probe against a peer; the peer is down
// once FailThreshold consecutive probes have failed.
func (r *Router) noteFailure(n *node, err error) {
	n.mu.Lock()
	n.fails++
	n.lastErr = err.Error()
	n.lastProbe = time.Now()
	n.mu.Unlock()
}

// noteForwardFailure records a failed forwarded call. Unlike a probe
// miss, a lost request is decisive: the peer is marked down on the spot
// (probes bring it back), so the crash is routed around from the first
// lost request instead of the next probe round.
func (r *Router) noteForwardFailure(n *node, err error) {
	n.mu.Lock()
	if n.fails < r.threshold {
		n.fails = r.threshold
	}
	n.lastErr = err.Error()
	n.lastProbe = time.Now()
	n.mu.Unlock()
}

// noteSuccess records one successful probe (or forwarded call) — the
// peer is back, whatever the history said.
func (r *Router) noteSuccess(n *node) {
	n.mu.Lock()
	n.fails = 0
	n.lastErr = ""
	n.lastProbe = time.Now()
	n.mu.Unlock()
}

// alive reports the router's current verdict on one member. Self is
// always alive: the local engine cannot be unreachable from here.
func (r *Router) alive(n *node) bool {
	if n.c == nil {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fails < r.threshold
}

// route picks the serving node for one fingerprint: the highest-ranked
// member that is alive and not excluded. failover reports whether a
// preferred node was skipped. A nil node means "serve locally" — every
// remote choice was excluded or down.
func (r *Router) route(fp string, excluded map[string]bool) (n *node, failover bool) {
	for _, id := range r.ring.Rank(fp) {
		if excluded[id] {
			failover = true
			continue
		}
		cand := r.nodes[id]
		if !r.alive(cand) {
			failover = true
			continue
		}
		return cand, failover
	}
	return nil, true // nothing alive but self-as-fallback; serve locally
}

// countOwned attributes one request or grid point to its ring owner —
// the "ownership counts" of /v1/cluster. Called once per point, at first
// dispatch, so failover re-dispatches never double-count.
func (r *Router) countOwned(fp string) {
	if n, ok := r.nodes[r.ring.Owner(fp)]; ok {
		n.owned.Add(1)
	}
}

// GatherObs fetches each live peer's /v1/cluster snapshot concurrently
// and returns the metric maps keyed by node ID — the measurement-plane
// gather behind /v1/plan's cluster-wide measured mode, where each node's
// fitted mus_admission_* rates are summed or averaged into one
// cluster-level model. Best-effort by design: the self entry is omitted
// (the caller reads its own registry directly), down peers are skipped,
// and a peer that fails mid-gather is dropped from the result exactly as
// if it had been down — capacity planning over the reachable majority
// beats no plan at all.
func (r *Router) GatherObs(ctx context.Context) map[string]map[string]float64 {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out = make(map[string]map[string]float64, len(r.nodes))
	)
	for _, n := range r.nodes {
		if n.c == nil || !r.alive(n) {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			gctx, cancel := context.WithTimeout(ctx, r.probeTimeout)
			defer cancel()
			resp, err := n.c.Cluster(gctx)
			if err != nil || resp.Obs == nil {
				return
			}
			mu.Lock()
			out[n.id] = resp.Obs
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	return out
}

// GatherTraces fetches every live peer's buffered spans for one trace ID
// concurrently and returns them flattened — the cross-node assembly
// behind GET /v1/traces/{id}. Peer clients send api.HeaderForwarded, so
// each peer answers from its local ring only and the gather stays one
// hop deep. Best-effort like GatherObs: the self entry is omitted (the
// caller reads its own tracer directly), and a down or failing peer —
// including one that retained nothing for the trace and answers 404 —
// contributes no spans rather than failing the assembly.
func (r *Router) GatherTraces(ctx context.Context, id string) []api.TraceSpan {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out []api.TraceSpan
	)
	for _, n := range r.nodes {
		if n.c == nil || !r.alive(n) {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			gctx, cancel := context.WithTimeout(ctx, r.probeTimeout)
			defer cancel()
			resp, err := n.c.Trace(gctx, id)
			if err != nil {
				return
			}
			mu.Lock()
			out = append(out, resp.Spans...)
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	return out
}

// GatherTraceList fetches every live peer's retained trace roots
// concurrently — the cluster-wide view behind GET /v1/traces. Same
// best-effort contract as GatherTraces; the caller merges in its own
// roots and sorts.
func (r *Router) GatherTraceList(ctx context.Context) []api.TraceSummary {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out []api.TraceSummary
	)
	for _, n := range r.nodes {
		if n.c == nil || !r.alive(n) {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			gctx, cancel := context.WithTimeout(ctx, r.probeTimeout)
			defer cancel()
			resp, err := n.c.Traces(gctx)
			if err != nil {
				return
			}
			mu.Lock()
			out = append(out, resp.Traces...)
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	return out
}

// Stats snapshots the router's routing state: per-node health and
// counters in ring order. The caller (the /v1/cluster handler) fills in
// the local engine's cache-affinity fields.
func (r *Router) Stats() api.ClusterResponse {
	resp := api.ClusterResponse{
		Enabled:        true,
		Self:           r.self,
		LocalServed:    r.localServed.Load(),
		ForwardedTotal: r.forwardedTotal.Load(),
		Failovers:      r.failovers.Load(),
		Rescatters:     r.rescatters.Load(),
	}
	for _, id := range r.order {
		n := r.nodes[id]
		st := api.ClusterNodeStatus{
			ID:        n.id,
			URL:       n.url,
			Self:      n.c == nil,
			Healthy:   r.alive(n),
			Owned:     n.owned.Load(),
			Forwarded: n.forwarded.Load(),
		}
		n.mu.Lock()
		st.ConsecutiveFailures = n.fails
		st.LastError = n.lastErr
		n.mu.Unlock()
		resp.Nodes = append(resp.Nodes, st)
	}
	return resp
}
