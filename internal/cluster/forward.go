package cluster

import (
	"context"

	"repro/api"
	"repro/internal/obs/trace"
)

// ForwardSolve routes one solve request by its fingerprint: served is
// false when this node should evaluate locally (it owns the key, or every
// remote choice is down — the local engine is always the last resort).
// When served is true, exactly one of resp and err is set: the owner's
// answer, or its authoritative structured error.
func (r *Router) ForwardSolve(ctx context.Context, fp string, req api.SolveRequest) (resp *api.SolveResponse, served bool, err error) {
	return forwardUnary(r, ctx, fp, func(ctx context.Context, n *node) (*api.SolveResponse, error) {
		return n.c.Solve(ctx, req)
	})
}

// ForwardSimulate routes one simulate request by its fingerprint, with
// the same contract as ForwardSolve.
func (r *Router) ForwardSimulate(ctx context.Context, fp string, req api.SimulateRequest) (resp *api.SimulateResponse, served bool, err error) {
	return forwardUnary(r, ctx, fp, func(ctx context.Context, n *node) (*api.SimulateResponse, error) {
		return n.c.Simulate(ctx, req)
	})
}

// forwardUnary walks the fingerprint's failover rank: forward to the
// first live remote choice, mark unreachable nodes down and move on, and
// fall back to local service when self is reached (or nothing is left).
// Structured errors from a reachable owner are final — re-asking another
// node would just recompute the same rejection.
//
// Each remote attempt gets its own mus.cluster.forward span — the span
// whose context the SDK serializes into the outgoing Traceparent header,
// so the remote node's spans parent under the attempt that carried them.
// A failover thus reads as a failed forward span followed by a sibling
// retry, never as a silent gap in the trace.
func forwardUnary[R any](r *Router, ctx context.Context, fp string, call func(context.Context, *node) (*R, error)) (*R, bool, error) {
	r.countOwned(fp)
	excluded := make(map[string]bool)
	sawFailover := false
	for {
		n, failover := r.route(fp, excluded)
		sawFailover = sawFailover || failover
		if n == nil || n.c == nil {
			// Local serve: the handler runs its own engine path.
			r.localServed.Add(1)
			if sawFailover {
				r.failovers.Add(1)
			}
			return nil, false, nil
		}
		// A wedged peer can pass health probes forever; the per-forward
		// deadline is what converts "hangs" into "fails over".
		sp, sctx := trace.StartSpan(ctx, "mus.cluster.forward")
		sp.Set(trace.Str("node", n.id))
		fctx, cancel := context.WithTimeout(sctx, r.forwardTimeout)
		resp, err := call(fctx, n)
		cancel()
		if err == nil {
			sp.End()
			n.forwarded.Add(1)
			r.forwardedTotal.Add(1)
			r.noteSuccess(n)
			if sawFailover {
				r.failovers.Add(1)
			}
			return resp, true, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; report that, not a fake node failure.
			sp.Fail(ctx.Err())
			sp.End()
			return nil, true, ctx.Err()
		}
		if !api.NodeFailure(err) {
			// The owner answered with a structured rejection (400, 422, …):
			// an authoritative evaluation outcome, not a routing failure —
			// and proof the node is reachable, clearing any stale probe miss.
			sp.End()
			r.noteSuccess(n)
			n.forwarded.Add(1)
			r.forwardedTotal.Add(1)
			return nil, true, err
		}
		sp.Fail(err)
		sp.End()
		r.noteForwardFailure(n, err)
		excluded[n.id] = true
		sawFailover = true
	}
}
