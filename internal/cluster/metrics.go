package cluster

import "repro/internal/obs"

// RegisterMetrics exposes the router's routing counters and per-peer
// health verdicts on a metrics registry. Totals read the same atomics
// /v1/cluster reports; per-peer up/failure gauges take the node's small
// health mutex at scrape time only — the forward and scatter hot paths
// gain no new writes. Call once per router per registry.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("mus_cluster_local_served_total",
		"Requests and sweep points evaluated on the local engine (owned or failover of last resort).",
		r.localServed.Load)
	reg.CounterFunc("mus_cluster_forwards_total",
		"Requests and sweep points sent to peers, summed over all peers.",
		r.forwardedTotal.Load)
	reg.CounterFunc("mus_cluster_failovers_total",
		"Routing decisions that skipped at least one down or excluded node.",
		r.failovers.Load)
	reg.CounterFunc("mus_cluster_rescatters_total",
		"Sweep sub-streams whose unanswered points were re-dispatched after a mid-flight death.",
		r.rescatters.Load)
	reg.GaugeFunc("mus_cluster_members",
		"Configured ring membership size, self included.",
		func() float64 { return float64(len(r.order)) })
	for _, id := range r.order {
		n := r.nodes[id]
		lbl := obs.L("peer", id)
		reg.GaugeFunc("mus_cluster_peer_up",
			"This node's current health verdict per peer: 1 up, 0 down (self is always 1).",
			func() float64 {
				if r.alive(n) {
					return 1
				}
				return 0
			}, lbl)
		reg.GaugeFunc("mus_cluster_peer_consecutive_failures",
			"Probe/forward failures since the peer last answered; resets on success.",
			func() float64 {
				n.mu.Lock()
				defer n.mu.Unlock()
				return float64(n.fails)
			}, lbl)
		reg.CounterFunc("mus_cluster_peer_owned_total",
			"Requests and sweep points whose ring owner is this peer, as scored locally.",
			n.owned.Load, lbl)
		reg.CounterFunc("mus_cluster_peer_forwarded_total",
			"Requests and sweep points actually sent to this peer (zero for self).",
			n.forwarded.Load, lbl)
	}
}
