package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
)

// fakePeer is a minimal mus-serve stand-in: a healthz that can be forced
// to fail, a solve that records hits and returns a canned (or structured
// error) response, and an NDJSON sweep that echoes per-value points.
type fakePeer struct {
	ts        *httptest.Server
	unhealthy atomic.Bool
	solveHits atomic.Int64
	sweepHits atomic.Int64
	// rejectSweeps makes the sweep handler answer a structured 422 — an
	// authoritative rejection from a reachable node.
	rejectSweeps atomic.Bool
	// duplicateIndices makes the sweep handler emit the right number of
	// lines but all carrying index 0 — a cleanly-terminated stream that
	// nonetheless answers only one point.
	duplicateIndices atomic.Bool
	// solveStatus, when not 200, is returned with solveBody as the raw
	// response (tests set structured envelopes or garbage).
	solveStatus atomic.Int64
	solveBody   atomic.Value // string
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		if p.unhealthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok", Workers: 1}) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathSolve, func(w http.ResponseWriter, r *http.Request) {
		p.solveHits.Add(1)
		if st := p.solveStatus.Load(); st != 0 {
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			w.WriteHeader(int(st))
			fmt.Fprint(w, p.solveBody.Load()) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(api.SolveResponse{Fingerprint: "fp", Method: "spectral", Stable: true}) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathSweep, func(w http.ResponseWriter, r *http.Request) {
		p.sweepHits.Add(1)
		if p.rejectSweeps.Load() {
			w.Header().Set("Content-Type", api.ContentTypeJSON)
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: &api.Error{Code: api.CodeUnstableSystem, Message: "skewed"}}) //nolint:errcheck
			return
		}
		var req api.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		enc := json.NewEncoder(w)
		for i, v := range req.Values {
			if p.duplicateIndices.Load() {
				i, v = 0, req.Values[0]
			}
			perf := api.Performance{MeanJobs: v * 10}                   // value-derived marker
			enc.Encode(api.SweepPoint{Index: i, Value: v, Perf: &perf}) //nolint:errcheck
		}
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

// testRouter builds a Router over self (a URL that serves nothing — the
// local path is exercised through the LocalEval callback, not HTTP) and
// the given peers, with background probing off and a threshold of one so
// a single failed probe is decisive in tests.
func testRouter(t *testing.T, peers ...*fakePeer) (*Router, []NodeConfig) {
	t.Helper()
	nodes := []NodeConfig{{ID: "self", URL: "http://self.invalid"}}
	for i, p := range peers {
		nodes = append(nodes, NodeConfig{ID: fmt.Sprintf("peer%d", i), URL: p.ts.URL})
	}
	r, err := New(Config{SelfID: "self", Nodes: nodes, ProbeInterval: -1, FailThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, nodes
}

// TestColdStartProbeRaceKeepsAffinity pins the default threshold's
// purpose: one refused startup probe (every node boots at once and races
// its siblings' listeners) must NOT mark a peer down — but a lost
// forwarded request must, immediately.
func TestColdStartProbeRaceKeepsAffinity(t *testing.T) {
	peer := newFakePeer(t)
	nodes := []NodeConfig{
		{ID: "self", URL: "http://self.invalid"},
		{ID: "peer0", URL: peer.ts.URL},
	}
	r, err := New(Config{SelfID: "self", Nodes: nodes, ProbeInterval: -1}) // default threshold
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	peer.unhealthy.Store(true) // the boot race: first probe fails
	r.ProbeOnce(context.Background())
	if n := nodeStatus(t, r.Stats(), "peer0"); !n.Healthy {
		t.Fatalf("one failed startup probe marked the peer down: %+v", n)
	}
	peer.unhealthy.Store(false)
	// Traffic still forwards to it (affinity survived the race).
	if _, served, err := r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "peer0"), api.SolveRequest{}); !served || err != nil {
		t.Fatalf("forward after probe race: served=%v err=%v", served, err)
	}
	// A second consecutive probe failure is decisive.
	peer.unhealthy.Store(true)
	r.ProbeOnce(context.Background())
	r.ProbeOnce(context.Background())
	if n := nodeStatus(t, r.Stats(), "peer0"); n.Healthy {
		t.Fatalf("two failed probes left the peer up: %+v", n)
	}
	// And so is a single lost forwarded request on a fresh router.
	r2, err := New(Config{SelfID: "self", Nodes: []NodeConfig{
		{ID: "self", URL: "http://self.invalid"},
		{ID: "gone", URL: "http://127.0.0.1:1"}, // nothing listens here
	}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, served, err := r2.ForwardSolve(context.Background(), fpOwnedBy(t, r2, "gone"), api.SolveRequest{}); served || err != nil {
		t.Fatalf("dead peer should fall back locally: served=%v err=%v", served, err)
	}
	if n := nodeStatus(t, r2.Stats(), "gone"); n.Healthy {
		t.Fatalf("one lost request left the dead peer up: %+v", n)
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" a=http://h1:1 , http://h2:2/ ,b=https://h3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeConfig{
		{ID: "a", URL: "http://h1:1"},
		{ID: "http://h2:2", URL: "http://h2:2"}, // bare URL: ID defaults, slash trimmed
		{ID: "b", URL: "https://h3"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "   ", "ftp://x", "h1:8350", "a=b=c://"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{SelfID: "x", Nodes: []NodeConfig{{ID: "a", URL: "http://h"}}}); err == nil {
		t.Error("self missing from membership accepted")
	}
	if _, err := New(Config{SelfID: "a", Nodes: []NodeConfig{{ID: "a", URL: "http://h"}, {ID: "a", URL: "http://h2"}}}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := New(Config{SelfID: "a", Nodes: []NodeConfig{{ID: "a", URL: "http://h"}, {ID: "b", URL: "http://h/"}}}); err == nil {
		t.Error("two IDs sharing one URL accepted — permanent self-forwarding")
	}
	if _, err := New(Config{SelfID: "a"}); err == nil {
		t.Error("empty membership accepted")
	}
}

// TestForwardTimeoutFailsOverWedgedPeer: a peer whose request path hangs
// — while its healthz stays perfectly responsive — must not hang the
// forward; the per-forward deadline converts the hang into failover.
func TestForwardTimeoutFailsOverWedgedPeer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathHealthz, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"}) //nolint:errcheck
	})
	mux.HandleFunc("POST "+api.PathSolve, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		<-r.Context().Done()        // wedged: accepts, never answers
	})
	wedged := httptest.NewServer(mux)
	t.Cleanup(wedged.Close)
	r, err := New(Config{
		SelfID: "self",
		Nodes: []NodeConfig{
			{ID: "self", URL: "http://self.invalid"},
			{ID: "wedged", URL: wedged.URL},
		},
		ProbeInterval:  -1,
		ForwardTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.ProbeOnce(context.Background())
	if n := nodeStatus(t, r.Stats(), "wedged"); !n.Healthy {
		t.Fatalf("wedged peer should pass health probes: %+v", n)
	}
	start := time.Now()
	_, served, err := r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "wedged"), api.SolveRequest{})
	if served || err != nil {
		t.Fatalf("wedged peer should fall back locally: served=%v err=%v", served, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v; the forward deadline did not fire", elapsed)
	}
	if n := nodeStatus(t, r.Stats(), "wedged"); n.Healthy {
		t.Fatalf("timed-out forward left the wedged peer up: %+v", n)
	}
}

// nodeStatus plucks one member's entry out of a snapshot by ID.
func nodeStatus(t *testing.T, st api.ClusterResponse, id string) api.ClusterNodeStatus {
	t.Helper()
	for _, n := range st.Nodes {
		if n.ID == id {
			return n
		}
	}
	t.Fatalf("no node %q in %+v", id, st.Nodes)
	return api.ClusterNodeStatus{}
}

func TestProbeMarksDownAndRecovers(t *testing.T) {
	peer := newFakePeer(t)
	r, _ := testRouter(t, peer)
	ctx := context.Background()
	r.ProbeOnce(ctx)
	if n := nodeStatus(t, r.Stats(), "peer0"); !n.Healthy {
		t.Fatalf("healthy peer probed down: %+v", n)
	}
	peer.unhealthy.Store(true)
	r.ProbeOnce(ctx)
	if n := nodeStatus(t, r.Stats(), "peer0"); n.Healthy || n.ConsecutiveFailures == 0 || n.LastError == "" {
		t.Fatalf("sick peer still healthy: %+v", n)
	}
	peer.unhealthy.Store(false)
	r.ProbeOnce(ctx)
	if n := nodeStatus(t, r.Stats(), "peer0"); !n.Healthy || n.LastError != "" {
		t.Fatalf("recovered peer still down: %+v", n)
	}
	// The self entry never flips.
	if n := nodeStatus(t, r.Stats(), "self"); !n.Healthy || !n.Self {
		t.Fatalf("self entry: %+v", n)
	}
}

// fpOwnedBy finds a fingerprint whose ring owner is the wanted node —
// rendezvous hashing guarantees one exists within a few tries.
func fpOwnedBy(t *testing.T, r *Router, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		fp := fmt.Sprintf("fp-%d", i)
		if r.Owner(fp) == want {
			return fp
		}
	}
	t.Fatalf("no key owned by %q in 10000 tries", want)
	return ""
}

func TestForwardSolveToOwner(t *testing.T) {
	peer := newFakePeer(t)
	r, _ := testRouter(t, peer)
	resp, served, err := r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "peer0"), api.SolveRequest{})
	if err != nil || !served {
		t.Fatalf("served=%v err=%v", served, err)
	}
	if resp.Fingerprint != "fp" {
		t.Fatalf("response %+v", resp)
	}
	if peer.solveHits.Load() != 1 {
		t.Fatalf("peer saw %d solves", peer.solveHits.Load())
	}
	st := r.Stats()
	if st.ForwardedTotal != 1 || st.Failovers != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForwardSolveLocalWhenSelfOwns(t *testing.T) {
	peer := newFakePeer(t)
	r, _ := testRouter(t, peer)
	_, served, err := r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "self"), api.SolveRequest{})
	if served || err != nil {
		t.Fatalf("self-owned key was not served locally: served=%v err=%v", served, err)
	}
	if peer.solveHits.Load() != 0 {
		t.Fatalf("peer was contacted for a self-owned key")
	}
	if st := r.Stats(); st.LocalServed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForwardSolveFailsOverToNextRankAndFinallyLocal(t *testing.T) {
	dead := newFakePeer(t)
	dead.ts.Close() // unreachable from the start
	live := newFakePeer(t)
	nodes := []NodeConfig{
		{ID: "self", URL: "http://self.invalid"},
		{ID: "peer-dead", URL: dead.ts.URL},
		{ID: "peer-live", URL: live.ts.URL},
	}
	r, err := New(Config{SelfID: "self", Nodes: nodes, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// A key owned by the dead peer must land on its next-ranked node.
	fp := fpOwnedBy(t, r, "peer-dead")
	_, served, err := r.ForwardSolve(context.Background(), fp, api.SolveRequest{})
	if err != nil {
		t.Fatal(err)
	}
	switch r.ring.Rank(fp)[1] {
	case "peer-live":
		if !served || live.solveHits.Load() != 1 {
			t.Fatalf("expected failover to peer-live (served=%v hits=%d)", served, live.solveHits.Load())
		}
	case "self":
		if served {
			t.Fatalf("expected local fallback, got served=%v", served)
		}
	}
	st := r.Stats()
	if st.Failovers == 0 {
		t.Fatalf("failover not counted: %+v", st)
	}
	// The dead peer's verdict flipped without waiting for a probe.
	for _, n := range st.Nodes {
		if n.ID == "peer-dead" && n.Healthy {
			t.Fatalf("dead peer still marked healthy after forward failure")
		}
	}
	// All remotes dead → local no matter whose key it is.
	live.ts.Close()
	_, served, err = r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "peer-live"), api.SolveRequest{})
	if served || err != nil {
		t.Fatalf("want local last resort, got served=%v err=%v", served, err)
	}
}

func TestForwardSolveStructuredErrorIsAuthoritative(t *testing.T) {
	peer := newFakePeer(t)
	env, _ := json.Marshal(api.ErrorEnvelope{Error: &api.Error{Code: api.CodeUnstableSystem, Message: "no steady state"}})
	peer.solveStatus.Store(int64(http.StatusUnprocessableEntity))
	peer.solveBody.Store(string(env))
	r, _ := testRouter(t, peer)
	_, served, err := r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "peer0"), api.SolveRequest{})
	if !served {
		t.Fatal("a structured rejection is an answer, not a routing failure")
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnstableSystem {
		t.Fatalf("err = %v, want the owner's unstable_system", err)
	}
	if peer.solveHits.Load() != 1 {
		t.Fatalf("peer saw %d solves, want exactly 1 (no retry of a 422)", peer.solveHits.Load())
	}
	// The peer stays healthy: it answered.
	if n := nodeStatus(t, r.Stats(), "peer0"); !n.Healthy {
		t.Fatalf("peer marked down by an authoritative answer: %+v", n)
	}
}

// TestForwardDrainingPeerFailsOver: a node_unavailable rejection (the
// draining signal) is routable — the request moves on instead of failing.
func TestForwardDrainingPeerFailsOver(t *testing.T) {
	draining := newFakePeer(t)
	env, _ := json.Marshal(api.ErrorEnvelope{Error: api.NodeUnavailable("draining")})
	draining.solveStatus.Store(int64(http.StatusServiceUnavailable))
	draining.solveBody.Store(string(env))
	r, _ := testRouter(t, draining)
	_, served, err := r.ForwardSolve(context.Background(), fpOwnedBy(t, r, "peer0"), api.SolveRequest{})
	if served || err != nil {
		t.Fatalf("draining owner should fall back locally: served=%v err=%v", served, err)
	}
}

// TestSweepScatterGatherOrder: points spread across two peers and self
// come back in exact grid order with the Value/Index mapping intact.
func TestSweepScatterGatherOrder(t *testing.T) {
	p0, p1 := newFakePeer(t), newFakePeer(t)
	r, _ := testRouter(t, p0, p1)
	const n = 60
	req := api.SweepRequest{Param: api.ParamLambda, Values: make([]float64, n)}
	fps := make([]string, n)
	for i := range req.Values {
		req.Values[i] = float64(i + 1)
		fps[i] = fmt.Sprintf("point-%d", i)
	}
	var mu sync.Mutex
	var got []api.SweepPoint
	localCalls := 0
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		mu.Lock()
		localCalls += len(indices)
		mu.Unlock()
		for _, i := range indices {
			perf := api.Performance{MeanJobs: req.Values[i] * 10}
			out(api.SweepPoint{Index: i, Value: req.Values[i], Perf: &perf})
		}
		return nil
	}
	err := r.Sweep(context.Background(), req, fps, func(pt api.SweepPoint) error {
		got = append(got, pt)
		return nil
	}, local)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("gathered %d points, want %d", len(got), n)
	}
	for i, pt := range got {
		if pt.Index != i || pt.Value != float64(i+1) {
			t.Fatalf("point %d came back as index=%d value=%v", i, pt.Index, pt.Value)
		}
		if pt.Perf == nil || pt.Perf.MeanJobs != pt.Value*10 {
			t.Fatalf("point %d payload wrong: %+v", i, pt)
		}
	}
	// Work actually scattered: both peers and self saw a share.
	if p0.sweepHits.Load() == 0 || p1.sweepHits.Load() == 0 || localCalls == 0 {
		t.Fatalf("scatter skipped someone: p0=%d p1=%d local=%d",
			p0.sweepHits.Load(), p1.sweepHits.Load(), localCalls)
	}
	st := r.Stats()
	if st.LocalServed+st.ForwardedTotal != n {
		t.Fatalf("counters: local=%d forwarded=%d, want sum %d", st.LocalServed, st.ForwardedTotal, n)
	}
}

// TestSweepFailoverReassignsDeadNodesPoints: a peer that dies mid-sweep
// loses none of its points — they fail over to other members (ultimately
// the local engine) and still come back in order.
func TestSweepFailoverReassignsDeadNodesPoints(t *testing.T) {
	dead, live := newFakePeer(t), newFakePeer(t)
	dead.ts.Close()
	r := func() *Router {
		nodes := []NodeConfig{
			{ID: "self", URL: "http://self.invalid"},
			{ID: "peer-dead", URL: dead.ts.URL},
			{ID: "peer-live", URL: live.ts.URL},
		}
		rt, err := New(Config{SelfID: "self", Nodes: nodes, ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}()
	defer r.Close()
	const n = 40
	req := api.SweepRequest{Param: api.ParamLambda, Values: make([]float64, n)}
	fps := make([]string, n)
	for i := range req.Values {
		req.Values[i] = float64(i + 1)
		fps[i] = fmt.Sprintf("point-%d", i)
	}
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		for _, i := range indices {
			perf := api.Performance{MeanJobs: req.Values[i] * 10}
			out(api.SweepPoint{Index: i, Value: req.Values[i], Perf: &perf})
		}
		return nil
	}
	var got []api.SweepPoint
	err := r.Sweep(context.Background(), req, fps, func(pt api.SweepPoint) error {
		got = append(got, pt)
		return nil
	}, local)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("gathered %d points, want %d (zero lost)", len(got), n)
	}
	for i, pt := range got {
		if pt.Index != i || pt.Error != "" || pt.Perf == nil || pt.Perf.MeanJobs != pt.Value*10 {
			t.Fatalf("point %d corrupted by failover: %+v", i, pt)
		}
	}
	if st := r.Stats(); st.Failovers == 0 {
		t.Fatalf("failover not recorded: %+v", st)
	}
}

// TestSweepMisbehavingPeerCannotHangGather: a peer that ends its stream
// cleanly but answers the wrong points (every line index 0) must not
// hang the gather — its unanswered points fail over and every grid
// point still comes back, in order.
func TestSweepMisbehavingPeerCannotHangGather(t *testing.T) {
	bad, good := newFakePeer(t), newFakePeer(t)
	bad.duplicateIndices.Store(true)
	nodes := []NodeConfig{
		{ID: "self", URL: "http://self.invalid"},
		{ID: "peer-bad", URL: bad.ts.URL},
		{ID: "peer-good", URL: good.ts.URL},
	}
	r, err := New(Config{SelfID: "self", Nodes: nodes, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const n = 30
	req := api.SweepRequest{Param: api.ParamLambda, Values: make([]float64, n)}
	fps := make([]string, n)
	for i := range req.Values {
		req.Values[i] = float64(i + 1)
		fps[i] = fmt.Sprintf("point-%d", i)
	}
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		for _, i := range indices {
			perf := api.Performance{MeanJobs: req.Values[i] * 10}
			out(api.SweepPoint{Index: i, Value: req.Values[i], Perf: &perf})
		}
		return nil
	}
	done := make(chan error, 1)
	var got []api.SweepPoint
	go func() {
		done <- r.Sweep(context.Background(), req, fps, func(pt api.SweepPoint) error {
			got = append(got, pt)
			return nil
		}, local)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gather hung on the misbehaving peer's skipped points")
	}
	if len(got) != n {
		t.Fatalf("gathered %d points, want %d", len(got), n)
	}
	for i, pt := range got {
		if pt.Index != i || pt.Perf == nil || pt.Perf.MeanJobs != pt.Value*10 {
			t.Fatalf("point %d wrong after failover: %+v", i, pt)
		}
	}
}

// TestSweepStructuredRejectionKeepsNodeHealthy: a peer that answers a
// scattered sub-sweep with a structured 422 (version skew) has its
// points failed over — but stays healthy: an authoritative rejection is
// an answer, not a node failure.
func TestSweepStructuredRejectionKeepsNodeHealthy(t *testing.T) {
	peer := newFakePeer(t)
	peer.rejectSweeps.Store(true)
	r, _ := testRouter(t, peer)
	const n = 20
	req := api.SweepRequest{Param: api.ParamLambda, Values: make([]float64, n)}
	fps := make([]string, n)
	for i := range req.Values {
		req.Values[i] = float64(i + 1)
		fps[i] = fmt.Sprintf("point-%d", i)
	}
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		for _, i := range indices {
			perf := api.Performance{MeanJobs: req.Values[i] * 10}
			out(api.SweepPoint{Index: i, Value: req.Values[i], Perf: &perf})
		}
		return nil
	}
	var got []api.SweepPoint
	if err := r.Sweep(context.Background(), req, fps, func(pt api.SweepPoint) error {
		got = append(got, pt)
		return nil
	}, local); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("gathered %d points, want %d", len(got), n)
	}
	if nd := nodeStatus(t, r.Stats(), "peer0"); !nd.Healthy {
		t.Fatalf("authoritative 422 marked the peer down: %+v", nd)
	}
}

// TestSweepEmitErrorAbandonsWork: an emit failure (client disconnect)
// stops the sweep with that error.
func TestSweepEmitErrorAbandonsWork(t *testing.T) {
	p := newFakePeer(t)
	r, _ := testRouter(t, p)
	req := api.SweepRequest{Param: api.ParamLambda, Values: []float64{1, 2, 3, 4}}
	fps := []string{"a", "b", "c", "d"}
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		for _, i := range indices {
			out(api.SweepPoint{Index: i, Value: req.Values[i]})
		}
		return nil
	}
	wantErr := fmt.Errorf("client gone")
	err := r.Sweep(context.Background(), req, fps, func(pt api.SweepPoint) error { return wantErr }, local)
	if err != wantErr {
		t.Fatalf("err = %v, want the emit error verbatim", err)
	}
}

// TestMembersAndOwnerAccessors pins the introspection surface.
func TestMembersAndOwnerAccessors(t *testing.T) {
	p := newFakePeer(t)
	r, _ := testRouter(t, p)
	if r.Self() != "self" {
		t.Fatalf("Self() = %q", r.Self())
	}
	m := r.Members()
	if len(m) != 2 || !strings.Contains(strings.Join(m, ","), "peer0") {
		t.Fatalf("Members() = %v", m)
	}
	if o := r.Owner("some-key"); o != "self" && o != "peer0" {
		t.Fatalf("Owner() = %q", o)
	}
}
