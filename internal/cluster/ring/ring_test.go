package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fingerprint-%04d", i)
	}
	return out
}

// TestOwnerDeterministicAcrossInstances is the clustering contract: two
// parties that hold the same member set — in any order, with duplicates —
// must compute the same owner for every key without coordinating.
func TestOwnerDeterministicAcrossInstances(t *testing.T) {
	a := New([]string{"node-a", "node-b", "node-c"})
	b := New([]string{"node-c", "node-a", "node-b", "node-a"}) // shuffled + dup
	for _, k := range keys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%q): instance a says %q, instance b says %q", k, ao, bo)
		}
	}
}

// TestRankIsPermutationAndStartsAtOwner checks Rank's shape: a
// permutation of the member set whose head is the owner.
func TestRankIsPermutationAndStartsAtOwner(t *testing.T) {
	r := New([]string{"n1", "n2", "n3", "n4", "n5"})
	for _, k := range keys(200) {
		rank := r.Rank(k)
		if len(rank) != r.Len() {
			t.Fatalf("rank(%q) has %d entries, want %d", k, len(rank), r.Len())
		}
		if rank[0] != r.Owner(k) {
			t.Fatalf("rank(%q)[0] = %q, owner = %q", k, rank[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, id := range rank {
			if seen[id] {
				t.Fatalf("rank(%q) repeats %q", k, id)
			}
			seen[id] = true
		}
	}
}

// TestMinimalDisruption is rendezvous hashing's defining property: when
// one node leaves, only the keys that node owned change hands — every
// other key keeps its owner (so the surviving nodes' caches stay warm).
func TestMinimalDisruption(t *testing.T) {
	members := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}
	full := New(members)
	ks := keys(2000)
	for _, removed := range members {
		var rest []string
		for _, m := range members {
			if m != removed {
				rest = append(rest, m)
			}
		}
		shrunk := New(rest)
		moved := 0
		for _, k := range ks {
			before, after := full.Owner(k), shrunk.Owner(k)
			if before != removed {
				if after != before {
					t.Fatalf("removing %q moved key %q from %q to %q", removed, k, before, after)
				}
				continue
			}
			moved++
			// A displaced key must land on its next-ranked survivor.
			if want := full.Rank(k)[1]; after != want {
				t.Fatalf("key %q owned by removed %q: reassigned to %q, want next-ranked %q", k, removed, after, want)
			}
		}
		if moved == 0 {
			t.Fatalf("node %q owned no keys out of %d — implausible balance", removed, len(ks))
		}
	}
}

// TestBalance sanity-checks the load spread: with many random keys every
// node should own a non-trivial share (no hot or starved member).
func TestBalance(t *testing.T) {
	r := New([]string{"a", "b", "c", "d"})
	rng := rand.New(rand.NewSource(1))
	counts := make(map[string]int)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d-%d", i, rng.Int63()))]++
	}
	for id, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.35 {
			t.Fatalf("node %q owns %.1f%% of keys; want a roughly even 25%%", id, 100*share)
		}
	}
}

// TestEmptyAndSingle covers the degenerate rings.
func TestEmptyAndSingle(t *testing.T) {
	if got := New(nil).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	solo := New([]string{"only"})
	if got := solo.Owner("k"); got != "only" {
		t.Fatalf("single ring owner = %q, want %q", got, "only")
	}
	if rank := solo.Rank("k"); len(rank) != 1 || rank[0] != "only" {
		t.Fatalf("single ring rank = %v", rank)
	}
}
