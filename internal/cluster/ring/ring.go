// Package ring implements rendezvous (highest-random-weight) hashing:
// the routing algebra of the mus-serve cluster tier. Every node scores
// every key independently — score(node, key) = h(node ‖ key) — and the
// key's owner is the highest-scoring node. The properties the cluster
// layer builds on:
//
//   - determinism: any two parties holding the same member set compute
//     the same owner for every key, with no coordination and no shared
//     state (the server's forwarding proxy and the client SDK's
//     client-side sharding agree by construction);
//   - minimal disruption: removing a node reassigns only the keys that
//     node owned — every other key keeps its owner, so one crash never
//     reshuffles the whole cache population;
//   - deterministic failover: Rank orders all members by descending
//     score, so "the next-highest live node" is a pure function of the
//     key and the member set.
//
// Both package client (client-side sharding) and internal/cluster (the
// server-side forwarding proxy) import this package; it must therefore
// stay dependency-free.
package ring

import (
	"hash/fnv"
	"sort"
)

// Ring is an immutable rendezvous-hash member set. The zero value is an
// empty ring; construct with New. A Ring is safe for concurrent use.
type Ring struct {
	ids []string
}

// New builds a ring over the given member IDs. Duplicates are dropped,
// the input slice is not retained, and order does not matter — two rings
// over the same set behave identically regardless of construction order.
func New(ids []string) *Ring {
	seen := make(map[string]struct{}, len(ids))
	uniq := make([]string, 0, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup || id == "" {
			continue
		}
		seen[id] = struct{}{}
		uniq = append(uniq, id)
	}
	sort.Strings(uniq)
	return &Ring{ids: uniq}
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.ids) }

// IDs returns the member IDs in lexicographic order. The slice is a copy.
func (r *Ring) IDs() []string { return append([]string(nil), r.ids...) }

// score is the rendezvous weight of one (member, key) pair: a 64-bit
// FNV-1a hash of the member ID and the key — separated by a byte that can
// appear in neither so distinct pairs never collide structurally — pushed
// through a SplitMix64 finalizer. Raw FNV output is too regular for
// short, structured keys (low bits barely avalanche), which skews the
// argmax; the finalizer restores a uniform spread.
func score(id, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))  //nolint:errcheck // hash.Hash never errors
	h.Write([]byte{0})   //nolint:errcheck
	h.Write([]byte(key)) //nolint:errcheck
	return mix(h.Sum64())
}

// mix is the SplitMix64 finalizer: a bijective avalanche over uint64.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Owner returns the member with the highest score for key, or "" when the
// ring is empty. Ties (astronomically unlikely) break toward the
// lexicographically smaller ID so every party resolves them identically.
func (r *Ring) Owner(key string) string {
	var best string
	var bestScore uint64
	for _, id := range r.ids {
		s := score(id, key)
		if best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Rank returns all members ordered by descending score for key — the
// key's deterministic failover sequence: Rank(key)[0] is the owner,
// Rank(key)[1] takes over if the owner is down, and so on. The slice is
// freshly allocated.
func (r *Ring) Rank(key string) []string {
	type scored struct {
		id string
		s  uint64
	}
	all := make([]scored, len(r.ids))
	for i, id := range r.ids {
		all[i] = scored{id: id, s: score(id, key)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].id < all[j].id
	})
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.id
	}
	return out
}
