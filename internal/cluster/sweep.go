package cluster

import (
	"context"
	"sync"

	"repro/api"
	"repro/internal/obs/trace"
	"repro/internal/watchdog"
)

// LocalEval evaluates a subset of a sweep's grid points on the local
// engine: indices names the points (positions in the original request's
// values grid), and out must be called once per index — concurrently
// safe, any order — with the point's Index and Value already set to the
// original grid position. A non-context error is a whole-subset failure;
// the router then records it on every still-missing point rather than
// losing them.
type LocalEval func(ctx context.Context, indices []int, out func(api.SweepPoint)) error

// Sweep scatters one sweep grid across the live membership by per-point
// fingerprint and gathers the results back in submission order: emit is
// called exactly once per grid point, in grid order, as soon as that
// point and every earlier one are solved — the cluster-wide counterpart
// of service.Engine.EvaluateStream, and the engine behind both the
// buffered and the NDJSON /v1/sweep paths on a clustered node.
//
// fps[i] must be the fingerprint of grid point i; local evaluates the
// subset this node owns. A sub-request that dies mid-flight (node crash,
// drain, truncated stream) has its unanswered points re-scattered to
// each point's next-ranked live node — ultimately the local engine — so
// a mid-sweep node kill delays points but never loses them. Points
// already received from the dead node are kept; per-point evaluation
// failures travel inside api.SweepPoint.Error and are not routing
// failures.
//
// The returned error is non-nil only when ctx is cancelled or emit
// itself fails; in both cases all remaining work is abandoned.
func (r *Router) Sweep(ctx context.Context, req api.SweepRequest, fps []string, emit func(api.SweepPoint) error, local LocalEval) error {
	n := len(req.Values)
	if n == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	// One scatter span covers the whole gather; each remote sub-stream
	// (including failover re-dispatches) hangs a substream child off it.
	// Registered before the cancel/wg.Wait defer below, so it ends last —
	// after every sub-stream goroutine has drained.
	scatter, ctx := trace.StartSpan(ctx, "mus.cluster.scatter")
	scatter.Set(trace.Int("points", int64(n)))
	defer scatter.End()
	for i := 0; i < n; i++ {
		r.countOwned(fps[i])
	}

	var mu sync.Mutex
	results := make([]*api.SweepPoint, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// fill records point i exactly once; late duplicates (a re-dispatched
	// point whose first answer limped in after all) are dropped.
	fill := func(i int, pt api.SweepPoint) {
		pt.Index = i
		pt.Value = req.Values[i]
		mu.Lock()
		defer mu.Unlock()
		if results[i] == nil {
			results[i] = &pt
			close(done[i])
		}
	}
	missingOf := func(indices []int) []int {
		mu.Lock()
		defer mu.Unlock()
		var out []int
		for _, i := range indices {
			if results[i] == nil {
				out = append(out, i)
			}
		}
		return out
	}

	var wg sync.WaitGroup
	// dispatch assigns each index to its highest-ranked live node outside
	// the excluded set and launches one fetch per remote group plus one
	// local evaluation. Failed remote groups re-enter dispatch with the
	// dead node excluded; recursion depth is bounded by the member count.
	var dispatch func(indices []int, excluded map[string]bool)
	dispatch = func(indices []int, excluded map[string]bool) {
		groups := make(map[string][]int)
		sawFailover := false
		for _, i := range indices {
			nd, failover := r.route(fps[i], excluded)
			sawFailover = sawFailover || failover
			id := r.self
			if nd != nil {
				id = nd.id
			}
			groups[id] = append(groups[id], i)
		}
		if sawFailover {
			r.failovers.Add(1)
		}
		for id, idxs := range groups {
			if id == r.self {
				r.localServed.Add(uint64(len(idxs)))
				wg.Add(1)
				go func(idxs []int) {
					defer wg.Done()
					err := local(ctx, idxs, func(pt api.SweepPoint) { fill(pt.Index, pt) })
					if err != nil && ctx.Err() == nil {
						// A whole-subset local failure still yields one point
						// per index: the terminal guarantee of zero lost points.
						for _, i := range missingOf(idxs) {
							fill(i, api.SweepPoint{Error: err.Error()})
						}
					}
				}(idxs)
				continue
			}
			nd := r.nodes[id]
			nd.forwarded.Add(uint64(len(idxs)))
			r.forwardedTotal.Add(uint64(len(idxs)))
			wg.Add(1)
			go func(nd *node, idxs []int, excluded map[string]bool) {
				defer wg.Done()
				sub := api.SweepRequest{System: req.System, Method: req.Method, Param: req.Param, Values: make([]float64, len(idxs))}
				for k, i := range idxs {
					sub.Values[k] = req.Values[i]
				}
				// A partitioned peer can stall without closing the
				// connection — no RST, no read error, nothing for the
				// transport to time out on once the 200 arrived. The
				// watchdog cancels the sub-stream when no point lands for a
				// whole streamIdle (aligned with the single-node per-point
				// allowance, so a merely saturated peer is never punished
				// as dead), turning the stall into an ordinary failover
				// instead of hanging the gather.
				sp, spctx := trace.StartSpan(ctx, "mus.cluster.substream")
				sp.Set(trace.Str("node", nd.id))
				sp.Set(trace.Int("points", int64(len(idxs))))
				subCtx, tick, stopWatchdog := watchdog.New(spctx, r.streamIdle)
				err := nd.sc.SweepStream(subCtx, sub, func(pt api.SweepPoint) error {
					tick()
					if pt.Index < 0 || pt.Index >= len(idxs) {
						return nil // malformed line from the peer; ignore
					}
					fill(idxs[pt.Index], pt)
					return nil
				})
				stopWatchdog()
				if ctx.Err() != nil {
					sp.End()
					return // sweep abandoned; the sequencer reports it
				}
				switch {
				case err == nil:
					r.noteSuccess(nd)
				case api.NodeFailure(err):
					// The node died or drained mid-stream: everything it
					// already answered stays, the rest fails over. The
					// failed substream span is what makes the kill visible
					// in the trace — its sibling re-dispatch spans below
					// are the failover.
					sp.Fail(err)
					r.noteForwardFailure(nd, err)
				default:
					// A structured rejection (version skew, 400/422): the
					// node is reachable and healthy — its points still fail
					// over below (it declined them), but its health verdict
					// must not change.
					sp.Fail(err)
					r.noteSuccess(nd)
				}
				// Fail over whatever is still unanswered — after an error,
				// but also after a "clean" stream that skipped points
				// (duplicate or out-of-range indices from a misbehaving
				// peer): an unfilled point must never hang the gather.
				missing := missingOf(idxs)
				if len(missing) == 0 {
					sp.End()
					return
				}
				sp.Set(trace.Int("missing", int64(len(missing))))
				sp.End()
				r.rescatters.Add(1)
				next := make(map[string]bool, len(excluded)+1)
				for k := range excluded {
					next[k] = true
				}
				next[nd.id] = true
				dispatch(missing, next)
			}(nd, idxs, excluded)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	dispatch(all, nil)

	defer func() {
		cancel()
		wg.Wait()
	}()
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return ctx.Err()
		}
		if err := emit(*results[i]); err != nil {
			return err
		}
	}
	return nil
}
