package obs

import (
	"runtime"
	"sync"
)

// GCPauseBuckets is the bucket layout for the stop-the-world GC pause
// histogram (seconds): pauses live in the tens-of-microseconds to
// low-milliseconds range on a healthy process.
var GCPauseBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.05, 0.25, 1,
}

// RegisterRuntime registers Go runtime telemetry: goroutine count, heap
// bytes, a GC pause histogram, and a build-info gauge. Everything is
// refreshed at scrape time only (one ReadMemStats per scrape via the
// registry's OnScrape hook); nothing ticks in the background and no hot
// path is touched. version labels mus_build_info; pass the binary's own
// version string ("dev" when unversioned).
func RegisterRuntime(r *Registry, version string) {
	if version == "" {
		version = "dev"
	}
	var (
		mu     sync.Mutex
		ms     runtime.MemStats
		lastGC uint32
		primed bool
	)
	pause := r.Histogram("mus_runtime_gc_pause_seconds",
		"Stop-the-world garbage collection pause durations, observed at scrape time from the runtime's pause ring.",
		GCPauseBuckets)
	r.OnScrape(func() {
		mu.Lock()
		defer mu.Unlock()
		runtime.ReadMemStats(&ms)
		if !primed {
			// First scrape: baseline only, so pauses from before
			// registration are not attributed to this scrape interval.
			lastGC, primed = ms.NumGC, true
			return
		}
		// The runtime keeps the last 256 pauses; observe only the cycles
		// since the previous scrape, clamped to that window.
		from := lastGC
		if ms.NumGC > from+256 {
			from = ms.NumGC - 256
		}
		for i := from + 1; i <= ms.NumGC; i++ {
			pause.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
		}
		lastGC = ms.NumGC
	})
	r.GaugeFunc("mus_runtime_goroutines",
		"Live goroutines at scrape time.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("mus_runtime_heap_bytes",
		"Heap bytes in use (MemStats.HeapAlloc) as of the last scrape.",
		func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return float64(ms.HeapAlloc)
		})
	r.Gauge("mus_build_info",
		"Always 1; the labels carry the build's version and Go toolchain.",
		L("version", version), L("go_version", runtime.Version())).Set(1)
}
