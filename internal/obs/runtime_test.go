package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeExposesScrapeTimeTelemetry(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "v1.2.3")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE mus_runtime_goroutines gauge",
		"# TYPE mus_runtime_heap_bytes gauge",
		"# TYPE mus_runtime_gc_pause_seconds histogram",
		"mus_runtime_gc_pause_seconds_count",
		"# TYPE mus_build_info gauge",
		`mus_build_info{go_version="` + runtime.Version() + `",version="v1.2.3"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	snap := r.Snapshot()
	if snap["mus_runtime_goroutines"] < 1 {
		t.Errorf("mus_runtime_goroutines = %v, want >= 1", snap["mus_runtime_goroutines"])
	}
	if snap["mus_runtime_heap_bytes"] <= 0 {
		t.Errorf("mus_runtime_heap_bytes = %v, want > 0", snap["mus_runtime_heap_bytes"])
	}
}

func TestOnScrapeRunsBeforeEveryRender(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnScrape(func() { calls++ })
	_ = r.Snapshot()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("hook ran %d times, want 3", calls)
	}
}

func TestExemplarsRenderOnlyInOpenMetrics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mus_test_latency_seconds", "test", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveWithExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveWithExemplar(0.01, "") // empty trace ID: plain observe

	var plain strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "#  {") || strings.Contains(plain.String(), "trace_id") {
		t.Fatalf("0.0.4 exposition leaked exemplar syntax:\n%s", plain.String())
	}

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	body := om.String()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing # EOF")
	}
	wantLine := ""
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `mus_test_latency_seconds_bucket{le="1"}`) {
			wantLine = line
		}
	}
	if !strings.Contains(wantLine, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5`) {
		t.Fatalf("le=1 bucket carries no exemplar: %q", wantLine)
	}
	// The 0.1 bucket saw only exemplar-less observations.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `mus_test_latency_seconds_bucket{le="0.1"}`) && strings.Contains(line, "trace_id") {
			t.Fatalf("le=0.1 bucket has an exemplar it never received: %q", line)
		}
	}
}

func TestHandlerNegotiatesOpenMetrics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mus_test_latency_seconds", "test", []float64{1})
	h.ObserveWithExemplar(0.5, "abc123")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}
	ct, body := get("")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") || strings.Contains(body, "# EOF") {
		t.Fatalf("default scrape: ct=%q, EOF present=%v", ct, strings.Contains(body, "# EOF"))
	}
	ct, body = get("application/openmetrics-text; version=1.0.0")
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics scrape: ct=%q", ct)
	}
	if !strings.Contains(body, `trace_id="abc123"`) || !strings.Contains(body, "# EOF") {
		t.Fatalf("openmetrics scrape missing exemplar or EOF:\n%s", body)
	}
}
