package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the Prometheus text exposition
// format served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, one # HELP and # TYPE line each, series
// sorted by label signature, histograms as cumulative _bucket lines plus
// _sum and _count. Values are read live; a scrape concurrent with
// recording sees each atomic's current value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.kind)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", name, s.key, s.counter.Value())
			case s.cfn != nil:
				fmt.Fprintf(bw, "%s%s %d\n", name, s.key, s.cfn())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", name, s.key, s.gauge.Value())
			case s.gfn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", name, s.key, formatFloat(s.gfn()))
			case s.hist != nil:
				writeHistogram(bw, name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// le labels (the +Inf bucket equals _count), then _sum and _count.
func writeHistogram(w io.Writer, name string, s *series) {
	cum, total := s.hist.cumulative()
	for i, bound := range s.hist.bounds {
		// Clamp: concurrent Observes may have bumped a bucket between the
		// cumulative read and the total read; exposition buckets must stay
		// monotone and ≤ count.
		c := cum[i]
		if c > total {
			c = total
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.key, formatFloat(bound)), c)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.key, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.key, formatFloat(s.hist.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, total)
}

// withLE splices the le label into an existing label signature.
func withLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(key, "}") + `,le="` + le + `"}`
}

// formatFloat renders a sample value the exposition parsers accept.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler serves the registry as a Prometheus scrape target — mount it
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w) // response writer errors have no recovery path
	})
}
