package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the Prometheus text exposition
// format served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ContentTypeOpenMetrics is the Content-Type Handler serves when the
// scrape negotiates OpenMetrics — the exposition variant that carries
// histogram exemplars.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, one # HELP and # TYPE line each, series
// sorted by label signature, histograms as cumulative _bucket lines plus
// _sum and _count. Values are read live; a scrape concurrent with
// recording sees each atomic's current value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the OpenMetrics flavor of the exposition:
// the same families and samples, plus trace-ID exemplars on histogram
// bucket lines and the terminating # EOF marker. Parsers of the 0.0.4
// text format keep getting that format from WritePrometheus — exemplar
// syntax never leaks into it.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, openmetrics bool) error {
	r.runHooks()
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, f.kind)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", name, s.key, s.counter.Value())
			case s.cfn != nil:
				fmt.Fprintf(bw, "%s%s %d\n", name, s.key, s.cfn())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", name, s.key, s.gauge.Value())
			case s.gfn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", name, s.key, formatFloat(s.gfn()))
			case s.hist != nil:
				writeHistogram(bw, name, s, openmetrics)
			}
		}
	}
	if openmetrics {
		fmt.Fprintf(bw, "# EOF\n")
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with
// le labels (the +Inf bucket equals _count), then _sum and _count. In
// OpenMetrics mode each bucket holding an exemplar gains the
// " # {trace_id=...} value timestamp" suffix linking it to a concrete
// trace.
func writeHistogram(w io.Writer, name string, s *series, openmetrics bool) {
	cum, total := s.hist.cumulative()
	for i, bound := range s.hist.bounds {
		// Clamp: concurrent Observes may have bumped a bucket between the
		// cumulative read and the total read; exposition buckets must stay
		// monotone and ≤ count.
		c := cum[i]
		if c > total {
			c = total
		}
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, withLE(s.key, formatFloat(bound)), c, exemplarSuffix(s, i, openmetrics))
	}
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, withLE(s.key, "+Inf"), total, exemplarSuffix(s, len(s.hist.bounds), openmetrics))
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.key, formatFloat(s.hist.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.key, total)
}

// exemplarSuffix renders bucket i's exemplar in the OpenMetrics syntax,
// or "" outside OpenMetrics mode / when the bucket has none.
func exemplarSuffix(s *series, i int, openmetrics bool) string {
	if !openmetrics {
		return ""
	}
	ex, ok := s.hist.exemplarAt(i)
	if !ok {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %d.%03d",
		ex.traceID, formatFloat(ex.value), ex.when.Unix(), ex.when.Nanosecond()/1e6)
}

// withLE splices the le label into an existing label signature.
func withLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(key, "}") + `,le="` + le + `"}`
}

// formatFloat renders a sample value the exposition parsers accept.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the text exposition format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler serves the registry as a Prometheus scrape target — mount it
// at GET /metrics. A scrape whose Accept header names
// application/openmetrics-text gets the OpenMetrics exposition with
// histogram exemplars; everything else (including Accept: */*) gets the
// 0.0.4 text format, byte-compatible with what Handler always served.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Response writer errors below have no recovery path.
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
