// Package obs is the serving tier's observability substrate: a
// dependency-free metrics registry — counters, gauges and fixed-bucket
// histograms with atomic, lock-free, allocation-free record paths —
// rendered in the Prometheus text exposition format by WritePrometheus
// and served by Handler as GET /metrics.
//
// Design constraints, in order:
//
//   - The record path is the sweep hot loop. Counter.Add, Gauge.Set and
//     Histogram.Observe touch only atomics: no locks, no maps, no
//     allocations. Registration (which does lock) happens once at wiring
//     time; handlers resolve their instruments up front and keep the
//     pointers.
//   - Existing subsystems already count. The engine, the job scheduler
//     and the cluster router all keep their own atomic counters for
//     /v1/stats; CounterFunc and GaugeFunc expose those exact values at
//     scrape time instead of double-counting on the hot path.
//   - Names are contracts. Every metric must match the Prometheus
//     convention mus_<subsystem>_<name>[_unit] (counters ending _total);
//     Register panics on malformed or duplicate series at startup, and
//     tools/metriclint enforces the same rule statically in CI.
//
// One Registry serves one process; mus-serve builds it in main and hands
// it to every layer's RegisterMetrics.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// nameRE is the accepted metric shape: mus_<subsystem>_<name>[_unit],
// lowercase, at least three underscore-separated words.
var nameRE = regexp.MustCompile(`^mus_[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// labelRE is the accepted label-name shape.
var labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Label is one name="value" pair attached to a series. Series of one
// family must all carry the same label names.
type Label struct {
	// Name is the label key (lowercase snake case).
	Name string
	// Value is the label value; it is escaped on export.
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, in-flight
// requests). The zero value is unusable; obtain gauges from
// Registry.Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: one atomic add on the matching bucket and a CAS loop
// folding the value into the running sum. Bucket bounds are set at
// registration and never change. ObserveWithExemplar additionally files
// a per-bucket exemplar under a mutex — the exemplar path may lock and
// allocate, the plain Observe path never does.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending, +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum

	exMu sync.Mutex
	ex   []exemplar // lazily sized to len(bounds)+1; nil until first use
}

// exemplar is one retained sample reference: the trace that produced an
// observation in a bucket, rendered only in the OpenMetrics exposition.
type exemplar struct {
	traceID string
	value   float64
	when    time.Time
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the slice is in
	// cache; a binary search would cost more in branch misses than it
	// saves in comparisons.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records one value and files traceID as the
// exemplar of the bucket the value lands in, replacing that bucket's
// previous exemplar. An empty traceID degrades to a plain Observe. Use
// on request-shaped paths only (it locks); keep sweep hot loops on
// Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]exemplar, len(h.bounds)+1)
	}
	h.ex[i] = exemplar{traceID: traceID, value: v, when: time.Now()}
	h.exMu.Unlock()
}

// exemplarAt returns the exemplar of bucket i (the +Inf bucket is
// i == len(bounds)); ok is false when none was filed.
func (h *Histogram) exemplarAt(i int) (exemplar, bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil || i >= len(h.ex) || h.ex[i].traceID == "" {
		return exemplar{}, false
	}
	return h.ex[i], true
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// cumulative returns the per-bound cumulative counts and the total, read
// once. Reads race benignly with concurrent Observes (counts may lag the
// total by in-flight observations); export clamps so buckets stay
// monotone.
func (h *Histogram) cumulative() ([]uint64, uint64) {
	out := make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	total := h.count.Load()
	if total < acc {
		total = acc
	}
	return out, total
}

// DefLatencyBuckets is the default request-latency bucket layout
// (seconds): half-millisecond floor, one-minute ceiling, roughly
// logarithmic — wide enough for both a cache hit and a cold 24-server
// spectral solve.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// series is one labelled instance of a family.
type series struct {
	labels []Label
	key    string // canonical label signature for dedup and sort

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64  // CounterFunc collector
	gfn     func() float64 // GaugeFunc collector
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	funcy  bool // collector family (CounterFunc/GaugeFunc)
	series []*series
}

// Registry holds metric families and renders them. Registration methods
// lock; record paths on the returned instruments never do. The zero value
// is unusable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	hooks    []func() // OnScrape callbacks, run before every render
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and files one series, panicking on a malformed
// name, a kind conflict, or a duplicate label signature — all wiring
// bugs that must fail at startup, not at scrape time.
func (r *Registry) register(name, help string, kind metricKind, funcy bool, labels []Label) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match mus_<subsystem>_<name>[_unit]", name))
	}
	if kind == kindCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	if kind != kindCounter && strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: %s %q must not end in _total", kind, name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: metric %q label %q is not lowercase snake case", name, l.Name))
		}
	}
	s := &series{labels: append([]Label(nil), labels...), key: labelKey(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, funcy: funcy}
		r.families[name] = f
		r.order = append(r.order, name)
		sort.Strings(r.order)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	for _, prev := range f.series {
		if prev.key == s.key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, s.key))
		}
		if len(prev.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q series disagree on label names", name))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	return s
}

// Counter registers (and returns) a counter series. Counter names must
// end in _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, false, labels)
	s.counter = &Counter{}
	return s.counter
}

// CounterFunc registers a counter collected by calling fn at scrape time
// — how subsystems that already keep atomic counters (engine, scheduler,
// router) are exposed without double-counting on their hot paths. fn must
// be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.register(name, help, kindCounter, true, labels)
	s.cfn = fn
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, false, labels)
	s.gauge = &Gauge{}
	return s.gauge
}

// GaugeFunc registers a gauge collected by calling fn at scrape time. fn
// must be safe for concurrent use; it may lock (scrapes are rare), the
// subsystem's record path stays untouched.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGauge, true, labels)
	s.gfn = fn
}

// Histogram registers (and returns) a fixed-bucket histogram series.
// buckets are ascending upper bounds (the +Inf bucket is implicit); nil
// selects DefLatencyBuckets. Histogram names must end in a unit
// (_seconds, _points, ...), which metriclint enforces.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %v", name, buckets[i]))
		}
	}
	s := r.register(name, help, kindHistogram, false, labels)
	s.hist = &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)),
	}
	return s.hist
}

// labelKey renders a canonical {a="b",c="d"} signature (sorted by name;
// empty for no labels).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// OnScrape registers fn to run at the start of every exposition render
// and Snapshot — the hook for telemetry that is refreshed at scrape time
// only (runtime memory stats, GC pause deltas) instead of on a
// background timer. fn must be safe for concurrent use.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// runHooks invokes every OnScrape callback outside the registry lock
// (hooks typically update instruments, which never need it).
func (r *Registry) runHooks() {
	r.mu.Lock()
	hooks := r.hooks
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Snapshot flattens every series to name{labels} → value: counters and
// gauges directly, histograms as their _count and _sum (buckets omitted)
// — the compact form surfaced in /v1/stats' obs block and gathered
// per-node by the cluster SDK.
func (r *Registry) Snapshot() map[string]float64 {
	r.runHooks()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range r.order {
		f := r.families[name]
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				out[name+s.key] = float64(s.counter.Value())
			case s.cfn != nil:
				out[name+s.key] = float64(s.cfn())
			case s.gauge != nil:
				out[name+s.key] = float64(s.gauge.Value())
			case s.gfn != nil:
				out[name+s.key] = s.gfn()
			case s.hist != nil:
				out[name+"_count"+s.key] = float64(s.hist.Count())
				out[name+"_sum"+s.key] = s.hist.Sum()
			}
		}
	}
	return out
}
