// Package olog is the serving tier's structured logger: one JSON object
// per line, leveled, with ordered key/value fields — small enough to
// audit, rich enough to join request traces across cluster nodes by
// X-Request-ID. mus-serve emits one line per HTTP request (id, route,
// node, owner, forwarded, status, duration) and one per async-job state
// transition; everything below the configured level is dropped before
// encoding, so disabled levels cost one atomic load.
package olog

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// The log levels, least to most severe. Off disables the logger.
const (
	// Debug is developer detail (per-point progress, probe verdicts).
	Debug Level = iota
	// Info is the operational record — one line per request and per job
	// transition.
	Info
	// Warn is something degraded but handled (failover, re-scatter).
	Warn
	// Error is a failed operation.
	Error
	// Off disables all output.
	Off
)

// String renders the level as it appears on the wire.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel resolves a -log-level flag value; unknown strings fail.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	case "off", "none":
		return Off, nil
	default:
		return 0, fmt.Errorf("olog: unknown level %q (want debug, info, warn, error or off)", s)
	}
}

// F is one ordered log field. Field order in the output line follows the
// call-site order, so related lines diff cleanly.
type F struct {
	// K is the field key.
	K string
	// V is the field value; it must be JSON-encodable.
	V any
}

// Logger writes leveled JSON lines to one writer. It is safe for
// concurrent use; the zero value is unusable — use New or Nop.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	base  []F // fields stamped on every line (e.g. node identity)
	// now substitutes the clock in tests.
	now func() time.Time
}

// New builds a logger writing lines at or above level to w. Base fields
// (typically the node identity) are prepended to every line.
func New(w io.Writer, level Level, base ...F) *Logger {
	l := &Logger{w: w, base: append([]F(nil), base...), now: time.Now}
	l.level.Store(int32(level))
	return l
}

// Nop returns a logger that discards everything — the default for
// library construction paths and tests.
func Nop() *Logger {
	l := &Logger{w: io.Discard, now: time.Now}
	l.level.Store(int32(Off))
	return l
}

// SetLevel changes the threshold at runtime.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether lines at level currently pass the threshold.
func (l *Logger) Enabled(level Level) bool { return level >= Level(l.level.Load()) }

// Log writes one line at the given level: {"ts":…,"level":…,"msg":…}
// followed by the base and call fields in order. Below-threshold calls
// return before any allocation.
func (l *Logger) Log(level Level, msg string, fields ...F) {
	if !l.Enabled(level) || level >= Off {
		return
	}
	var b []byte
	b = append(b, `{"ts":"`...)
	b = l.now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","level":"`...)
	b = append(b, level.String()...)
	b = append(b, `","msg":`...)
	b = appendJSON(b, msg)
	for _, f := range l.base {
		b = appendField(b, f)
	}
	for _, f := range fields {
		b = appendField(b, f)
	}
	b = append(b, '}', '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b) // log-sink errors have no recovery path
	l.mu.Unlock()
}

// Debug logs at Debug level.
func (l *Logger) Debug(msg string, fields ...F) { l.Log(Debug, msg, fields...) }

// Info logs at Info level.
func (l *Logger) Info(msg string, fields ...F) { l.Log(Info, msg, fields...) }

// Warn logs at Warn level.
func (l *Logger) Warn(msg string, fields ...F) { l.Log(Warn, msg, fields...) }

// Error logs at Error level.
func (l *Logger) Error(msg string, fields ...F) { l.Log(Error, msg, fields...) }

// appendField encodes one ,"key":value pair.
func appendField(b []byte, f F) []byte {
	b = append(b, ',')
	b = appendJSON(b, f.K)
	b = append(b, ':')
	return appendJSON(b, f.V)
}

// appendJSON appends the JSON encoding of v, degrading to a quoted
// error string for unencodable values rather than dropping the line.
func appendJSON(b []byte, v any) []byte {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprintf("!encode: %v", err))
	}
	return append(b, enc...)
}
