package olog

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixed pins the clock so golden lines are stable.
func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLineShape(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, Info, F{"node", "n1"}))
	l.Info("request", F{"id", "abc"}, F{"status", 200}, F{"forwarded", true}, F{"duration_ms", 1.5})
	got := b.String()
	want := `{"ts":"2026-08-07T12:00:00Z","level":"info","msg":"request","node":"n1","id":"abc","status":200,"forwarded":true,"duration_ms":1.5}` + "\n"
	if got != want {
		t.Errorf("line mismatch:\ngot  %q\nwant %q", got, want)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := New(&b, Warn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if got := strings.Count(b.String(), "\n"); got != 2 {
		t.Fatalf("wrote %d lines, want 2 (warn+error): %q", got, b.String())
	}
	l.SetLevel(Debug)
	l.Debug("d")
	if got := strings.Count(b.String(), "\n"); got != 3 {
		t.Fatalf("after SetLevel(Debug): %d lines, want 3", got)
	}
}

func TestNopAndOff(t *testing.T) {
	Nop().Error("never") // must not panic, writes nowhere
	var b strings.Builder
	New(&b, Off).Error("never")
	if b.Len() != 0 {
		t.Fatalf("Off logger wrote %q", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "info": Info, "": Info, "warn": Warn,
		"warning": Warn, "error": Error, "off": Off, " INFO ": Info,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose) should fail")
	}
}

func TestUnencodableValue(t *testing.T) {
	var b strings.Builder
	fixed(New(&b, Info)).Info("x", F{"bad", func() {}})
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("degraded line is not valid JSON: %v (%q)", err, b.String())
	}
	if !strings.Contains(b.String(), "!encode") {
		t.Errorf("expected !encode marker in %q", b.String())
	}
}

// TestConcurrentWrites checks lines never interleave under -race.
func TestConcurrentWrites(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		lines = append(lines, string(p))
		mu.Unlock()
		return len(p), nil
	})
	l := New(w, Info)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Info("m", F{"worker", i}, F{"seq", j})
			}
		}(i)
	}
	wg.Wait()
	if len(lines) != 1600 {
		t.Fatalf("got %d writes, want 1600", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("interleaved or corrupt line %q: %v", ln, err)
		}
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
