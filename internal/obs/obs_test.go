package obs

import (
	"bufio"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mus_test_things_total", "things counted")
	g := r.Gauge("mus_test_depth", "current depth")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mus_test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", got)
	}
	cum, total := h.cumulative()
	want := []uint64{1, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad name", func(r *Registry) { r.Counter("http_requests_total", "x") }},
		{"one word", func(r *Registry) { r.Counter("mus_total", "x") }},
		{"counter without _total", func(r *Registry) { r.Counter("mus_http_requests", "x") }},
		{"gauge with _total", func(r *Registry) { r.Gauge("mus_http_depth_total", "x") }},
		{"uppercase", func(r *Registry) { r.Gauge("mus_Http_depth", "x") }},
		{"bad label", func(r *Registry) { r.Gauge("mus_http_depth", "x", L("Route", "a")) }},
		{"dup series", func(r *Registry) {
			r.Counter("mus_a_b_total", "x", L("l", "v"))
			r.Counter("mus_a_b_total", "x", L("l", "v"))
		}},
		{"kind conflict", func(r *Registry) {
			r.Counter("mus_a_b_total", "x")
			r.CounterFunc("mus_a_b_total", "x", func() uint64 { return 0 }, L("l", "v"))
			r.Gauge("mus_a_b_total", "x")
		}},
		{"descending buckets", func(r *Registry) {
			r.Histogram("mus_a_b_seconds", "x", []float64{1, 0.5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestWritePrometheusGolden locks the exposition format byte for byte on
// a small registry covering every metric kind.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mus_test_requests_total", "requests served", L("route", "/v1/solve"), L("code", "200"))
	c.Add(3)
	r.CounterFunc("mus_test_evals_total", "engine evaluations", func() uint64 { return 42 })
	g := r.Gauge("mus_test_in_flight_requests", "in-flight requests")
	g.Set(2)
	r.GaugeFunc("mus_test_hit_ratio", "cache hit ratio", func() float64 { return 0.5 })
	h := r.Histogram("mus_test_duration_seconds", "request duration", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mus_test_duration_seconds request duration
# TYPE mus_test_duration_seconds histogram
mus_test_duration_seconds_bucket{le="0.1"} 1
mus_test_duration_seconds_bucket{le="1"} 2
mus_test_duration_seconds_bucket{le="+Inf"} 3
mus_test_duration_seconds_sum 5.55
mus_test_duration_seconds_count 3
# HELP mus_test_evals_total engine evaluations
# TYPE mus_test_evals_total counter
mus_test_evals_total 42
# HELP mus_test_hit_ratio cache hit ratio
# TYPE mus_test_hit_ratio gauge
mus_test_hit_ratio 0.5
# HELP mus_test_in_flight_requests in-flight requests
# TYPE mus_test_in_flight_requests gauge
mus_test_in_flight_requests 2
# HELP mus_test_requests_total requests served
# TYPE mus_test_requests_total counter
mus_test_requests_total{code="200",route="/v1/solve"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// ParsePromText parses text exposition output into samples — the
// reusable consistency oracle for this package's tests and the
// /metrics endpoint test in cmd/mus-serve.
func ParsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var out []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	types := map[string]string{}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s := parsePromLine(t, line)
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Every sample must belong to a declared family.
	for _, s := range out {
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suf); fam != base && types[fam] == "histogram" {
				base = fam
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("sample %s has no TYPE declaration", s.name)
		}
	}
	return out
}

// parsePromLine parses `name{l="v",...} value`.
func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("malformed line %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("unterminated labels in %q", line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) {
				t.Fatalf("malformed label %q in %q", pair, line)
			}
			s.labels[k] = strings.Trim(v, `"`)
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		// +Inf bucket values are plain numbers; le label may be +Inf but
		// the sample value never is in this registry.
		t.Fatalf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s
}

// CheckHistogramConsistency asserts, for every histogram family in the
// samples, that bucket counts are cumulative (monotone in le), that the
// +Inf bucket equals _count, and that _sum is present.
func CheckHistogramConsistency(t *testing.T, samples []promSample) {
	t.Helper()
	type key struct{ fam, sig string }
	buckets := map[key][]promSample{}
	counts := map[key]float64{}
	sums := map[key]bool{}
	sigOf := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			k := key{strings.TrimSuffix(s.name, "_bucket"), sigOf(s.labels)}
			buckets[k] = append(buckets[k], s)
		case strings.HasSuffix(s.name, "_count"):
			counts[key{strings.TrimSuffix(s.name, "_count"), sigOf(s.labels)}] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			sums[key{strings.TrimSuffix(s.name, "_sum"), sigOf(s.labels)}] = true
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets found")
	}
	for k, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return leOf(t, bs[i]) < leOf(t, bs[j]) })
		last := -1.0
		for _, b := range bs {
			if b.value < last {
				t.Errorf("%s%v: bucket counts not cumulative: %v after %v", k.fam, k.sig, b.value, last)
			}
			last = b.value
		}
		inf := bs[len(bs)-1]
		if !math.IsInf(leOf(t, inf), 1) {
			t.Errorf("%s%v: missing +Inf bucket", k.fam, k.sig)
		}
		cnt, ok := counts[k]
		if !ok {
			t.Errorf("%s%v: missing _count", k.fam, k.sig)
		} else if inf.value != cnt {
			t.Errorf("%s%v: +Inf bucket %v != _count %v", k.fam, k.sig, inf.value, cnt)
		}
		if !sums[k] {
			t.Errorf("%s%v: missing _sum", k.fam, k.sig)
		}
	}
}

// leOf parses a bucket sample's le label.
func leOf(t *testing.T, s promSample) float64 {
	t.Helper()
	le := s.labels["le"]
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le %q", le)
	}
	return v
}

// TestExpositionParsesAndHistogramsConsistent round-trips a populated
// registry through the test parser.
func TestExpositionParsesAndHistogramsConsistent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mus_test_duration_seconds", "d", nil, L("route", "/v1/sweep"))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 100)
	}
	r.Counter("mus_test_requests_total", "r").Add(12)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := ParsePromText(t, b.String())
	CheckHistogramConsistency(t, samples)
}

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while scraping — the -race gate for the atomic record
// paths.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mus_test_ops_total", "ops")
	g := r.Gauge("mus_test_in_flight_requests", "in flight")
	h := r.Histogram("mus_test_latency_seconds", "latency", nil)
	r.CounterFunc("mus_test_fn_total", "fn", func() uint64 { return c.Value() })

	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Dec()
			}
		}(w)
	}
	// Concurrent scrapes must parse while recording is in flight.
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		CheckHistogramConsistency(t, ParsePromText(t, b.String()))
	}
	wg.Wait()
	if got := c.Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
	if got := h.Count(); got != workers*perW {
		t.Fatalf("histogram count = %d, want %d", got, workers*perW)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	wantSum := float64(workers) * func() float64 {
		var s float64
		for i := 0; i < perW; i++ {
			s += float64(i%100) / 1000
		}
		return s
	}()
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("histogram sum = %g, want %g", got, wantSum)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("mus_test_ops_total", "ops", L("kind", "a")).Add(3)
	r.GaugeFunc("mus_test_depth", "depth", func() float64 { return 4 })
	h := r.Histogram("mus_test_latency_seconds", "latency", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := r.Snapshot()
	want := map[string]float64{
		`mus_test_ops_total{kind="a"}`:   3,
		"mus_test_depth":                 4,
		"mus_test_latency_seconds_count": 2,
		"mus_test_latency_seconds_sum":   2.5,
	}
	for k, v := range want {
		if got, ok := snap[k]; !ok || got != v {
			t.Errorf("snapshot[%q] = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
}

// BenchmarkRecordPath proves the record path allocates nothing — the
// acceptance bar for instrumenting the sweep hot loop.
func BenchmarkRecordPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("mus_bench_ops_total", "ops")
	g := r.Gauge("mus_bench_in_flight_requests", "in flight")
	h := r.Histogram("mus_bench_latency_seconds", "latency", nil)
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Add(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) / 1000)
		}
	})
	b.Run("histogram-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				h.Observe(float64(i%1000) / 1000)
				i++
			}
		})
	})
}
