// Package trace is the serving tier's distributed tracing substrate: a
// dependency-free span model (trace ID + span ID + parent), typed
// attributes, monotonic start/end timing, and an allocation-conscious
// record path in the spirit of internal/obs's lock-free counters.
//
// Design constraints, in order:
//
//   - The record path rides the sweep hot loop. StartLeaf + Set + End
//     touch a pooled span and one ring-buffer slot: no maps, no growing
//     slices, no allocations once the pool is warm. CI gates this with
//     BenchmarkSpanRecord under tools/benchjson -zeroalloc.
//   - Propagation is by context, not plumbing. A span carries its Tracer;
//     StartSpan/StartLeaf derive everything from the parent span found in
//     ctx, so deep seams (WAL appends, solver calls) need no tracer
//     handle and degrade to no-ops when tracing is off.
//   - Retention is tail-based. Every completed span lands in a fixed ring
//     buffer; when a local root ends, the whole trace is indexed for
//     GET /v1/traces if it errored, ran slower than the configured
//     threshold, or falls in the deterministic trace-ID sample — a hash
//     of the trace ID, so every node keeps the same traces without
//     coordination.
//
// Span names are contracts: mus.<subsystem>.<op>, lowercase — the same
// convention as metric names with dots for underscores; tools/metriclint
// enforces it at call sites.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
)

// TraceID identifies one end-to-end request tree across every node it
// touches. The zero value is invalid.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses 32 hex digits; ok is false on malformed or
// all-zero input.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// SpanID identifies one span within a trace. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseSpanID parses 16 hex digits; ok is false on malformed or all-zero
// input.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// FlagSampled is the traceparent flag bit marking a trace as selected by
// the probabilistic sampler (errors and slow traces are retained
// regardless, decided at root end).
const FlagSampled byte = 0x01

// SpanContext is the propagated identity of a span: what crosses process
// boundaries in a traceparent header and what a job record persists
// across a restart. The zero value is invalid.
type SpanContext struct {
	// TraceID is the trace the span belongs to.
	TraceID TraceID
	// SpanID is the span itself — the parent of whatever the receiving
	// side starts.
	SpanID SpanID
	// Flags carries the W3C trace flags (FlagSampled).
	Flags byte
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context in the W3C traceparent format:
// 00-<trace id>-<span id>-<flags>.
func (sc SpanContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.SpanID[:])
	b[52] = '-'
	hex.Encode(b[53:55], []byte{sc.Flags})
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header (any version except
// ff); ok is false on malformed input or zero IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	s = strings.TrimSpace(s)
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil || ver[0] == 0xff {
		return SpanContext{}, false
	}
	var ok bool
	if sc.TraceID, ok = ParseTraceID(s[3:35]); !ok {
		return SpanContext{}, false
	}
	if sc.SpanID, ok = ParseSpanID(s[36:52]); !ok {
		return SpanContext{}, false
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	sc.Flags = fl[0]
	return sc, true
}

// ctxKey keys the active span in a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// SpanContextFrom returns the active span's propagation context, or the
// zero SpanContext when ctx carries no live span — the value a caller
// captures when the span itself will not outlive the request (the job
// scheduler stores this across the Submit→worker boundary).
func SpanContextFrom(ctx context.Context) SpanContext {
	if s := FromContext(ctx); s != nil {
		return s.Context()
	}
	return SpanContext{}
}

// StartSpan starts a child of the span in ctx and returns it along with
// a derived context carrying it — the form for spans that will have
// children of their own. When ctx carries no span the returned span is
// nil (every method on a nil span is a no-op) and ctx is returned
// unchanged.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil || parent.t == nil {
		return nil, ctx
	}
	s := parent.t.newSpan(name, parent.sc, false)
	return s, ContextWithSpan(ctx, s)
}

// StartLeaf starts a child of the span in ctx without deriving a new
// context — the allocation-free form for leaf spans (a WAL append, one
// admission decision) that never have children. Returns nil when ctx
// carries no span.
func StartLeaf(ctx context.Context, name string) *Span {
	parent := FromContext(ctx)
	if parent == nil || parent.t == nil {
		return nil
	}
	return parent.t.newSpan(name, parent.sc, false)
}

// newIDs seeds a splitmix64 stream from the OS entropy pool; ID
// generation after that is one atomic increment plus arithmetic.
func newSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not a tracing-fatal condition; fall back
		// to a fixed seed (IDs stay unique via the counter).
		return 0x9e3779b97f4a7c15
	}
	return binary.BigEndian.Uint64(b[:])
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche
// over the counter, so sequential tickets become well-spread IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
