package trace

import (
	"context"
	"hash/maphash"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultBuffer is the default ring-buffer capacity in spans.
	DefaultBuffer = 4096
	// DefaultSlow is the default slow-trace retention threshold.
	DefaultSlow = 250 * time.Millisecond
	// DefaultSample is the default probabilistic retention rate for
	// traces that neither errored nor ran slow.
	DefaultSample = 0.10
)

// maxAttrs is the fixed per-span attribute capacity; Set drops attributes
// beyond it rather than allocate.
const maxAttrs = 8

// rootCap is the capacity of the retained-roots index.
const rootCap = 256

// Config parameterizes a Tracer.
type Config struct {
	// Buffer is the completed-span ring capacity; 0 selects
	// DefaultBuffer, negative disables recording entirely.
	Buffer int
	// Slow is the duration at or above which a finished trace is always
	// retained; 0 selects DefaultSlow.
	Slow time.Duration
	// Sample is the fraction of remaining traces retained by the
	// deterministic trace-ID hash (every node agrees); 0 selects
	// DefaultSample, negative disables probabilistic retention.
	Sample float64
	// Node names this tracer's node on every span it records.
	Node string
}

// attrKind discriminates the typed payload of an Attr.
type attrKind uint8

const (
	attrNone attrKind = iota
	attrStr
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed key/value attribute on a span. Build attrs with Str,
// Int, Float or Bool; the typed payload avoids fmt on the record path.
type Attr struct {
	// Key is the attribute name.
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, kind: attrStr, s: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, kind: attrInt, i: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, kind: attrFloat, f: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if value {
		a.i = 1
	}
	return a
}

// Value renders the attribute value as a string — the export path, not
// the record path (it may allocate).
func (a Attr) Value() string {
	switch a.kind {
	case attrStr:
		return a.s
	case attrInt:
		return strconv.FormatInt(a.i, 10)
	case attrFloat:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	case attrBool:
		if a.i != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// SpanRecord is one completed span as it lands in the ring buffer: plain
// values only, so recording is a struct copy.
type SpanRecord struct {
	// TraceID is the trace the span belongs to.
	TraceID TraceID
	// SpanID identifies the span.
	SpanID SpanID
	// Parent is the parent span, zero for a trace root.
	Parent SpanID
	// Name is the span's operation name (mus.<subsystem>.<op>).
	Name string
	// Node is the recording node.
	Node string
	// Start is when the span started.
	Start time.Time
	// Duration is the monotonic start→end elapsed time.
	Duration time.Duration
	// Err is the failure message of a failed span, empty on success.
	Err string
	// Attrs holds the typed attributes; entries past NAttrs are unset.
	Attrs [maxAttrs]Attr
	// NAttrs is the number of set attributes.
	NAttrs uint8
	// Root marks a local root: the entry span this node started for a
	// request (its Parent, if any, lives on another node or in an
	// earlier incarnation of this one).
	Root bool
}

// RootInfo is one retained trace in the tail-based index.
type RootInfo struct {
	// TraceID identifies the retained trace.
	TraceID TraceID
	// Name is the root span's operation name.
	Name string
	// Node is the node that completed the root.
	Node string
	// Start is the root span's start time.
	Start time.Time
	// Duration is the root span's elapsed time.
	Duration time.Duration
	// Err is the root's failure message, empty on success.
	Err string
}

// slot is one ring-buffer cell. The per-slot mutex keeps the write a
// plain struct copy while staying race-detector clean against readers; a
// slot is uncontended except when a reader overlaps the writer on the
// same cell.
type slot struct {
	mu  sync.Mutex
	ok  bool
	rec SpanRecord
}

// Tracer records completed spans into a fixed ring buffer and keeps the
// tail-based retention index. One Tracer serves one node; the zero value
// is unusable, use New.
type Tracer struct {
	node   string
	slow   time.Duration
	thresh uint64 // sampled when maphash(traceID) <= thresh

	seed uint64
	ids  atomic.Uint64
	hash maphash.Seed

	slots []slot
	pos   atomic.Uint64

	rootMu  sync.Mutex
	roots   [rootCap]RootInfo
	rootPos uint64

	recorded atomic.Uint64
	retained atomic.Uint64

	pool sync.Pool
}

// New builds a Tracer; see Config for defaults.
func New(cfg Config) *Tracer {
	buf := cfg.Buffer
	if buf == 0 {
		buf = DefaultBuffer
	}
	if buf < 0 {
		buf = 0
	}
	slow := cfg.Slow
	if slow == 0 {
		slow = DefaultSlow
	}
	sample := cfg.Sample
	if sample == 0 {
		sample = DefaultSample
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	// Sample 1 must mean "every trace": float64 rounds MaxUint64 up to
	// 2^64, and converting that back to uint64 is out of range (2^63 on
	// amd64) — which would silently halve the rate.
	thresh := uint64(math.MaxUint64)
	if sample < 1 {
		thresh = uint64(sample * math.MaxUint64)
	}
	t := &Tracer{
		node:   cfg.Node,
		slow:   slow,
		thresh: thresh,
		seed:   newSeed(),
		hash:   maphash.MakeSeed(),
		slots:  make([]slot, buf),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Node returns the node name stamped on this tracer's spans.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// SlowThreshold returns the always-retain duration threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Recorded returns how many spans have been recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Recorded() uint64 { return t.recorded.Load() }

// Retained returns how many roots the tail-based index has kept.
func (t *Tracer) Retained() uint64 { return t.retained.Load() }

// newTraceID mints a fresh trace ID from the splitmix64 stream.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		n := t.ids.Add(2)
		putbe(id[0:8], splitmix64(t.seed+n))
		putbe(id[8:16], splitmix64(t.seed+n+1))
	}
	return id
}

// newSpanID mints a fresh span ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putbe(id[:], splitmix64(t.seed^t.ids.Add(1)))
	}
	return id
}

// putbe writes x big-endian into b (len 8) without pulling
// encoding/binary onto the hot path's inliner budget.
func putbe(b []byte, x uint64) {
	_ = b[7]
	b[0] = byte(x >> 56)
	b[1] = byte(x >> 48)
	b[2] = byte(x >> 40)
	b[3] = byte(x >> 32)
	b[4] = byte(x >> 24)
	b[5] = byte(x >> 16)
	b[6] = byte(x >> 8)
	b[7] = byte(x)
}

// Sampled reports this node's probabilistic retention decision for a
// trace ID: a keyed hash compared against the configured rate, so the
// decision is deterministic for the process lifetime (a trace does not
// flap in and out of the sample between scrapes). Cross-node agreement
// does not rely on it: the node that mints a trace propagates its
// decision in the traceparent sampled flag, and downstream nodes honor
// the flag.
func (t *Tracer) Sampled(id TraceID) bool {
	if t == nil || t.thresh == 0 {
		return false
	}
	return maphash.Bytes(t.hash, id[:]) <= t.thresh
}

// Span is one in-flight operation. Spans are pooled: after End the
// object is recycled, so callers must not retain a *Span past End, and
// children must start before their parent ends. All methods are nil-safe
// no-ops so call sites need no tracing-enabled checks.
type Span struct {
	t      *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	err    string
	attrs  [maxAttrs]Attr
	nattrs uint8
	root   bool
}

// newSpan starts a span under parent (same trace, parent's span as
// parent). root marks a local root span.
func (t *Tracer) newSpan(name string, parent SpanContext, root bool) *Span {
	s := t.pool.Get().(*Span)
	s.t = t
	s.sc = SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID(), Flags: parent.Flags}
	s.parent = parent.SpanID
	s.name = name
	s.start = time.Now()
	s.err = ""
	s.nattrs = 0
	s.root = root
	return s
}

// StartRoot starts a local root span: the entry span for a request on
// this node. parent is the propagated remote context (zero to mint a new
// trace). The returned context carries the span for StartSpan/StartLeaf
// children. Safe on a nil Tracer (returns a nil span and ctx unchanged).
func (t *Tracer) StartRoot(ctx context.Context, name string, parent SpanContext) (*Span, context.Context) {
	if t == nil {
		return nil, ctx
	}
	if parent.TraceID.IsZero() {
		parent.TraceID = t.newTraceID()
		parent.SpanID = SpanID{}
		if t.Sampled(parent.TraceID) {
			parent.Flags = FlagSampled
		}
	}
	s := t.newSpan(name, parent, true)
	return s, ContextWithSpan(ctx, s)
}

// Context returns the span's propagation context (what goes on the wire
// as traceparent). Zero on a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Set attaches one attribute, dropping it silently once the fixed
// capacity is full.
func (s *Span) Set(a Attr) {
	if s == nil || int(s.nattrs) >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = a
	s.nattrs++
}

// Fail marks the span failed with err's message. A nil err is ignored.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// FailMsg marks the span failed with a literal message.
func (s *Span) FailMsg(msg string) {
	if s == nil {
		return
	}
	s.err = msg
}

// End completes the span: its record is copied into the ring buffer and,
// for local roots, the tail-based retention decision is made. The span
// object is recycled — do not use it after End.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	rec := SpanRecord{
		TraceID:  s.sc.TraceID,
		SpanID:   s.sc.SpanID,
		Parent:   s.parent,
		Name:     s.name,
		Node:     t.node,
		Start:    s.start,
		Duration: time.Since(s.start),
		Err:      s.err,
		Attrs:    s.attrs,
		NAttrs:   s.nattrs,
		Root:     s.root,
	}
	sampled := s.sc.Flags&FlagSampled != 0
	*s = Span{}
	t.pool.Put(s)
	t.record(&rec, sampled)
}

// record copies one completed span into the ring and, for local roots,
// applies retention.
func (t *Tracer) record(rec *SpanRecord, sampled bool) {
	if len(t.slots) > 0 {
		ticket := t.pos.Add(1) - 1
		sl := &t.slots[ticket%uint64(len(t.slots))]
		sl.mu.Lock()
		sl.rec = *rec
		sl.ok = true
		sl.mu.Unlock()
	}
	t.recorded.Add(1)
	if !rec.Root {
		return
	}
	// Tail-based retention: keep every errored trace, every trace at or
	// over the slow threshold, and the deterministic sample of the rest.
	if rec.Err == "" && rec.Duration < t.slow && !sampled && !t.Sampled(rec.TraceID) {
		return
	}
	t.retain(rec)
}

// retain indexes one kept root, overwriting the oldest entry once the
// fixed index is full.
func (t *Tracer) retain(rec *SpanRecord) {
	t.rootMu.Lock()
	t.roots[t.rootPos%rootCap] = RootInfo{
		TraceID:  rec.TraceID,
		Name:     rec.Name,
		Node:     rec.Node,
		Start:    rec.Start,
		Duration: rec.Duration,
		Err:      rec.Err,
	}
	t.rootPos++
	t.rootMu.Unlock()
	t.retained.Add(1)
}

// Roots returns up to limit retained roots, newest first (limit <= 0
// selects the whole index).
func (t *Tracer) Roots(limit int) []RootInfo {
	if t == nil {
		return nil
	}
	t.rootMu.Lock()
	defer t.rootMu.Unlock()
	n := int(t.rootPos)
	if n > rootCap {
		n = rootCap
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]RootInfo, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, t.roots[(t.rootPos-1-uint64(i))%rootCap])
	}
	return out
}

// Collect returns every span of one trace still present in the ring
// buffer, in ring order (callers sort by Start for display). Best
// effort: spans evicted by ring wrap-around are gone.
func (t *Tracer) Collect(id TraceID) []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for i := range t.slots {
		sl := &t.slots[i]
		sl.mu.Lock()
		if sl.ok && sl.rec.TraceID == id {
			out = append(out, sl.rec)
		}
		sl.mu.Unlock()
	}
	return out
}
