package trace

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Node: "n1"})
	root, _ := tr.StartRoot(context.Background(), "mus.test.root", SpanContext{})
	sc := root.Context()
	if !sc.Valid() {
		t.Fatal("root span context invalid")
	}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q malformed", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	root.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-0000000000000000-01", // zero ids
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	} {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	sc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok || sc.Flags != FlagSampled {
		t.Fatalf("valid traceparent rejected: %+v ok=%v", sc, ok)
	}
}

func TestSpanTreeAndCollect(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: -1, Slow: time.Hour})
	root, ctx := tr.StartRoot(context.Background(), "mus.test.root", SpanContext{})
	child, cctx := StartSpan(ctx, "mus.test.child")
	leaf := StartLeaf(cctx, "mus.test.leaf")
	leaf.Set(Str("k", "v"))
	leaf.Set(Int("n", 42))
	leaf.End()
	child.End()
	root.Fail(errors.New("boom"))
	root.End()

	// root.Context() after End reads recycled memory — find the trace ID
	// by scanning the ring for the root name instead.
	var tid TraceID
	found := 0
	for i := range tr.slots {
		sl := &tr.slots[i]
		sl.mu.Lock()
		if sl.ok && sl.rec.Name == "mus.test.root" {
			tid = sl.rec.TraceID
		}
		sl.mu.Unlock()
	}
	if tid.IsZero() {
		t.Fatal("root span not recorded")
	}
	recs := tr.Collect(tid)
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
		found++
	}
	if found != 3 {
		t.Fatalf("collected %d spans, want 3: %+v", found, recs)
	}
	rootRec, childRec, leafRec := byName["mus.test.root"], byName["mus.test.child"], byName["mus.test.leaf"]
	if !rootRec.Root || !rootRec.Parent.IsZero() {
		t.Errorf("root record: Root=%v Parent=%v", rootRec.Root, rootRec.Parent)
	}
	if rootRec.Err != "boom" {
		t.Errorf("root Err = %q, want boom", rootRec.Err)
	}
	if childRec.Parent != rootRec.SpanID {
		t.Error("child not parented to root")
	}
	if leafRec.Parent != childRec.SpanID {
		t.Error("leaf not parented to child")
	}
	if leafRec.NAttrs != 2 || leafRec.Attrs[0].Value() != "v" || leafRec.Attrs[1].Value() != "42" {
		t.Errorf("leaf attrs wrong: n=%d %+v", leafRec.NAttrs, leafRec.Attrs[:leafRec.NAttrs])
	}
	// The errored root must be retained despite sampling being off.
	roots := tr.Roots(0)
	if len(roots) != 1 || roots[0].TraceID != tid || roots[0].Err != "boom" {
		t.Fatalf("retained roots = %+v, want the errored root", roots)
	}
}

func TestRetentionKeepsErrorAndSlowOnly(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: -1, Slow: time.Nanosecond})
	// Slow threshold of 1ns: every root is "slow", all retained.
	for i := 0; i < 3; i++ {
		root, _ := tr.StartRoot(context.Background(), "mus.test.slow", SpanContext{})
		time.Sleep(time.Microsecond)
		root.End()
	}
	if got := len(tr.Roots(0)); got != 3 {
		t.Fatalf("retained %d slow roots, want 3", got)
	}

	tr2 := New(Config{Node: "n1", Sample: -1, Slow: time.Hour})
	root, _ := tr2.StartRoot(context.Background(), "mus.test.fast", SpanContext{})
	root.End()
	if got := len(tr2.Roots(0)); got != 0 {
		t.Fatalf("retained %d fast roots, want 0 with sampling off", got)
	}
	// Sampled flag from upstream forces retention regardless.
	parent := SpanContext{Flags: FlagSampled}
	parent.TraceID[0], parent.SpanID[0] = 1, 1
	remote, _ := tr2.StartRoot(context.Background(), "mus.test.flagged", parent)
	remote.End()
	if got := len(tr2.Roots(0)); got != 1 {
		t.Fatalf("retained %d flagged roots, want 1", got)
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	up := New(Config{Node: "edge", Sample: 1})
	root, _ := up.StartRoot(context.Background(), "mus.test.edge", SpanContext{})
	sc := root.Context()

	down := New(Config{Node: "owner", Sample: -1, Slow: time.Hour})
	sub, _ := down.StartRoot(context.Background(), "mus.test.owner", sc)
	subRec := sub.Context()
	if subRec.TraceID != sc.TraceID {
		t.Fatal("remote root did not continue the trace")
	}
	sub.End()
	root.End()
	recs := down.Collect(sc.TraceID)
	if len(recs) != 1 || recs[0].Parent != sc.SpanID || !recs[0].Root {
		t.Fatalf("owner record %+v, want local root parented to edge span", recs)
	}
	// Sample: 1 upstream → flag set → downstream retains despite Sample: -1.
	if got := len(down.Roots(0)); got != 1 {
		t.Fatalf("downstream retained %d, want 1 (flag propagated)", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s, ctx := tr.StartRoot(context.Background(), "mus.test.nil", SpanContext{})
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Set(Str("k", "v"))
	s.Fail(errors.New("x"))
	s.FailMsg("y")
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span has valid context")
	}
	c, _ := StartSpan(ctx, "mus.test.child")
	c.End()
	StartLeaf(ctx, "mus.test.leaf").End()
	if tr.Roots(0) != nil || tr.Collect(TraceID{}) != nil {
		t.Fatal("nil tracer returned data")
	}
	if SpanContextFrom(context.Background()).Valid() {
		t.Fatal("empty ctx has span context")
	}
}

func TestRingWrapEvictsOldest(t *testing.T) {
	tr := New(Config{Node: "n1", Buffer: 4, Sample: -1, Slow: time.Hour})
	root, ctx := tr.StartRoot(context.Background(), "mus.test.root", SpanContext{})
	tid := root.Context().TraceID
	for i := 0; i < 10; i++ {
		StartLeaf(ctx, "mus.test.leaf").End()
	}
	root.End()
	if got := len(tr.Collect(tid)); got > 4 {
		t.Fatalf("ring of 4 holds %d spans", got)
	}
}

// TestSpanRecordPathDoesNotAllocate is the in-repo half of the zeroalloc
// gate: a warm leaf start/attr/end cycle must not allocate (CI's
// benchjson -zeroalloc BenchmarkSpanRecord is the other half).
func TestSpanRecordPathDoesNotAllocate(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: -1, Slow: time.Hour})
	root, ctx := tr.StartRoot(context.Background(), "mus.test.root", SpanContext{})
	defer root.End()
	// Warm the pool.
	for i := 0; i < 100; i++ {
		StartLeaf(ctx, "mus.test.leaf").End()
	}
	avg := testing.AllocsPerRun(1000, func() {
		sp := StartLeaf(ctx, "mus.test.leaf")
		sp.Set(Int("i", 7))
		sp.Set(Str("node", "n1"))
		sp.End()
	})
	if avg != 0 {
		t.Fatalf("span record path allocates %.2f allocs/op, want 0", avg)
	}
}

func TestRootsNewestFirstAndLimit(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: -1, Slow: time.Nanosecond})
	names := []string{"mus.test.a", "mus.test.b", "mus.test.c"}
	for _, n := range names {
		root, _ := tr.StartRoot(context.Background(), n, SpanContext{})
		time.Sleep(time.Microsecond)
		root.End()
	}
	roots := tr.Roots(2)
	if len(roots) != 2 || roots[0].Name != "mus.test.c" || roots[1].Name != "mus.test.b" {
		t.Fatalf("Roots(2) = %+v, want c then b", roots)
	}
}

// TestSampleOneRetainsEveryTrace pins the Sample: 1 contract: the rate
// threshold must be the full uint64 range, not the overflowing
// uint64(1.0 * MaxUint64) conversion that silently halved it.
func TestSampleOneRetainsEveryTrace(t *testing.T) {
	tr := New(Config{Node: "n1", Sample: 1})
	const n = 64
	for i := 0; i < n; i++ {
		root, _ := tr.StartRoot(context.Background(), "mus.test.root", SpanContext{})
		root.End()
	}
	if got := tr.Retained(); got != n {
		t.Fatalf("Sample 1 retained %d of %d roots, want all", got, n)
	}
}
