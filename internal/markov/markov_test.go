package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/linalg"
)

var (
	paperOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	paperRepair = dist.Exp(25)
)

func TestNumModesFormula(t *testing.T) {
	cases := []struct {
		n, op, rep int
		want       int
	}{
		{2, 2, 1, 6},    // the paper's worked example
		{10, 2, 1, 66},  // (N+2)(N+1)/2 for n=2, m=1 (paper §4)
		{1, 1, 1, 2},    // single unreliable exponential server
		{3, 1, 1, 4},    // N+1 modes for fully exponential case
		{2, 2, 2, 10},   // C(5,3)
		{24, 2, 1, 325}, // the paper's reported numerical limit region
	}
	for _, c := range cases {
		if got := NumModes(c.n, c.op, c.rep); got != c.want {
			t.Errorf("NumModes(%d,%d,%d) = %d, want %d", c.n, c.op, c.rep, got, c.want)
		}
	}
}

func TestEnvEnumerationMatchesPaperExample(t *testing.T) {
	// Paper §3.1: N=2, n=2, m=1 gives 6 modes in this exact order.
	env, err := NewEnv(2, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	if env.NumModes() != 6 {
		t.Fatalf("s = %d, want 6", env.NumModes())
	}
	wantOrder := []struct {
		x []int
		y []int
	}{
		{[]int{0, 0}, []int{2}}, // i=0: 2 inoperative
		{[]int{1, 0}, []int{1}}, // i=1: 1 op phase 1, 1 inoperative
		{[]int{0, 1}, []int{1}}, // i=2: 1 op phase 2, 1 inoperative
		{[]int{2, 0}, []int{0}}, // i=3: 2 op phase 1
		{[]int{1, 1}, []int{0}}, // i=4: 1 op phase 1, 1 op phase 2
		{[]int{0, 2}, []int{0}}, // i=5: 2 op phase 2
	}
	for i, w := range wantOrder {
		m := env.Mode(i)
		for j := range w.x {
			if m.X[j] != w.x[j] {
				t.Errorf("mode %d: X = %v, want %v", i, m.X, w.x)
			}
		}
		for k := range w.y {
			if m.Y[k] != w.y[k] {
				t.Errorf("mode %d: Y = %v, want %v", i, m.Y, w.y)
			}
		}
	}
}

func TestAMatrixMatchesPaperExample(t *testing.T) {
	// The displayed A matrix for N=2, n=2, m=1 (paper §3.1), with
	// ξ1, ξ2 the operative rates, η the repair rate, α1, α2 the weights.
	a1, a2 := 0.7246, 0.2754
	x1, x2 := 0.1663, 0.0091
	eta := 25.0
	env, err := NewEnv(2, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	got := env.AMatrix()
	want := linalg.FromRows([][]float64{
		{0, 2 * eta * a1, 2 * eta * a2, 0, 0, 0},
		{x1, 0, 0, eta * a1, eta * a2, 0},
		{x2, 0, 0, 0, eta * a1, eta * a2},
		{0, 2 * x1, 0, 0, 0, 0},
		{0, x2, x1, 0, 0, 0},
		{0, 0, 2 * x2, 0, 0, 0},
	})
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("A mismatch:\ngot\n%v\nwant\n%v", got, want)
	}
}

func TestServiceDiagMatchesPaperExample(t *testing.T) {
	// The displayed C_j for the example: diag(µ_{0,j}, µ_{1,j}, µ_{1,j},
	// µ_{2,j}, µ_{2,j}, µ_{2,j}) with µ_{i,j} = min(i,j)µ.
	env, err := NewEnv(2, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	mu := 1.5
	sd := env.ServiceDiag(mu)
	if len(sd) != 3 {
		t.Fatalf("levels = %d, want 3", len(sd))
	}
	wantX := []int{0, 1, 1, 2, 2, 2}
	for j := 0; j <= 2; j++ {
		for i, x := range wantX {
			want := float64(min(j, x)) * mu
			if sd[j][i] != want {
				t.Errorf("C_%d[%d] = %v, want %v", j, i, sd[j][i], want)
			}
		}
	}
	// C_0 must be identically zero.
	for i, v := range sd[0] {
		if v != 0 {
			t.Errorf("C_0[%d] = %v, want 0", i, v)
		}
	}
}

func TestAMatrixRowSumsAreExitRates(t *testing.T) {
	// Every mode's total outgoing rate is Σ x_j·ξ_j + Σ y_k·η_k.
	env, err := NewEnv(4, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	rows := env.AMatrix().RowSums()
	for i, m := range env.Modes() {
		var want float64
		for j, xj := range m.X {
			want += float64(xj) * paperOps.Rates[j]
		}
		for k, yk := range m.Y {
			want += float64(yk) * paperRepair.Rates[k]
		}
		if math.Abs(rows[i]-want) > 1e-10 {
			t.Errorf("mode %d (%v): row sum %v, want %v", i, m, rows[i], want)
		}
	}
}

func TestAMatrixDiagonalZero(t *testing.T) {
	env, err := NewEnv(5, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	a := env.AMatrix()
	for i := 0; i < a.Rows; i++ {
		if a.At(i, i) != 0 {
			t.Errorf("A[%d][%d] = %v, want 0", i, i, a.At(i, i))
		}
	}
}

func TestStationaryModeProbsBinomial(t *testing.T) {
	// With exponential operative and repair periods, servers are independent
	// two-state chains: the number of operative servers is Binomial(N, p)
	// with p = η/(ξ+η).
	xi, eta := 0.5, 2.0
	env, err := NewEnv(3, dist.Exp(xi), dist.Exp(eta))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := env.StationaryModeProbs()
	if err != nil {
		t.Fatal(err)
	}
	p := eta / (xi + eta)
	for i, m := range env.Modes() {
		x := m.Operative()
		want := float64(binomial(3, x)) * math.Pow(p, float64(x)) * math.Pow(1-p, float64(3-x))
		if math.Abs(pi[i]-want) > 1e-10 {
			t.Errorf("mode %d (x=%d): π = %v, want %v", i, x, pi[i], want)
		}
	}
}

func TestStationaryModeProbsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		w := 0.3 + 0.4*rng.Float64()
		op := dist.MustHyperExp(
			[]float64{w, 1 - w},
			[]float64{math.Exp(rng.NormFloat64()), math.Exp(rng.NormFloat64())},
		)
		env, err := NewEnv(n, op, dist.Exp(1+rng.Float64()*10))
		if err != nil {
			return false
		}
		pi, err := env.StationaryModeProbs()
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExpectedOperativeMatchesStationary(t *testing.T) {
	// E[operative] from the closed form must match Σ_i x_i·π_i even for
	// hyperexponential periods (it depends only on the means — paper §3).
	env, err := NewEnv(6, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := env.StationaryModeProbs()
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for i, m := range env.Modes() {
		mean += float64(m.Operative()) * pi[i]
	}
	if want := env.ExpectedOperative(); math.Abs(mean-want) > 1e-8 {
		t.Errorf("Σxπ = %v, closed form %v", mean, want)
	}
}

func TestIndexOfRoundtrip(t *testing.T) {
	env, err := NewEnv(4, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < env.NumModes(); i++ {
		if got := env.IndexOf(env.Mode(i)); got != i {
			t.Errorf("IndexOf(Mode(%d)) = %d", i, got)
		}
	}
	if env.IndexOf(Mode{X: []int{9, 0}, Y: []int{0}}) != -1 {
		t.Error("invalid mode should map to -1")
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(0, paperOps, paperRepair); err == nil {
		t.Error("expected error for N = 0")
	}
	if _, err := NewEnv(2, nil, paperRepair); err == nil {
		t.Error("expected error for nil distribution")
	}
}
