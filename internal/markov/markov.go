// Package markov builds the Markovian environment of Palmer & Mitrani §3:
// N servers, each alternating between hyperexponential operative periods
// (n phases, weights α, rates ξ) and hyperexponential inoperative periods
// (m phases, weights β, rates η). The environment state — the "operational
// mode" — records how many servers sit in each phase; this package
// enumerates the modes and assembles the transition-rate matrix A and the
// per-level service-rate diagonals C_j of eq. (9).
package markov

import (
	"fmt"
	"strings"

	"repro/internal/dist"
	"repro/internal/linalg"
)

// Mode is one operational mode: X[j] servers in operative phase j and Y[k]
// servers in inoperative phase k, with ΣX + ΣY = N.
type Mode struct {
	X []int
	Y []int
}

// Operative returns the number of operative servers x = Σ X[j].
func (m Mode) Operative() int {
	var x int
	for _, v := range m.X {
		x += v
	}
	return x
}

// Inoperative returns the number of inoperative servers y = Σ Y[k].
func (m Mode) Inoperative() int {
	var y int
	for _, v := range m.Y {
		y += v
	}
	return y
}

// String renders the mode like "op[2 0] rep[1]".
func (m Mode) String() string {
	var sb strings.Builder
	sb.WriteString("op[")
	for i, v := range m.X {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("] rep[")
	for i, v := range m.Y {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("]")
	return sb.String()
}

// Env is the enumerated environment for N unreliable servers.
type Env struct {
	N   int
	Op  *dist.HyperExp // operative-period distribution (α, ξ)
	Rep *dist.HyperExp // inoperative-period distribution (β, η)

	modes []Mode
	index map[string]int
}

// NewEnv enumerates the operational modes for N servers with the given
// operative and repair distributions. Modes are ordered exactly as in the
// paper's worked example: by ascending number of operative servers, and
// within a group lexicographically by descending operative phase counts
// (so for N=2, n=2, m=1: "2 inoperative" is mode 0 and "2 operative in
// phase 2" is mode 5).
func NewEnv(n int, op, rep *dist.HyperExp) (*Env, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: N = %d servers, need at least 1", n)
	}
	if op == nil || rep == nil {
		return nil, fmt.Errorf("markov: nil distribution")
	}
	e := &Env{N: n, Op: op, Rep: rep, index: make(map[string]int)}
	nOp, nRep := op.Phases(), rep.Phases()
	for x := 0; x <= n; x++ {
		xParts := compositionsDesc(x, nOp)
		yParts := compositionsDesc(n-x, nRep)
		for _, xs := range xParts {
			for _, ys := range yParts {
				m := Mode{X: xs, Y: ys}
				e.index[m.String()] = len(e.modes)
				e.modes = append(e.modes, m)
			}
		}
	}
	if got, want := len(e.modes), NumModes(n, nOp, nRep); got != want {
		return nil, fmt.Errorf("markov: enumerated %d modes, formula says %d", got, want)
	}
	return e, nil
}

// NumModes returns s = C(N+n+m−1, n+m−1), the number of operational modes
// (paper eq. 12).
func NumModes(n, opPhases, repPhases int) int {
	return binomial(n+opPhases+repPhases-1, opPhases+repPhases-1)
}

// NumModes returns the enumerated state-space size s.
func (e *Env) NumModes() int { return len(e.modes) }

// Mode returns the i-th operational mode.
func (e *Env) Mode(i int) Mode { return e.modes[i] }

// Modes returns the full mode list (shared slice; do not mutate).
func (e *Env) Modes() []Mode { return e.modes }

// IndexOf returns the index of a mode, or −1 if it is not a valid mode.
func (e *Env) IndexOf(m Mode) int {
	if i, ok := e.index[m.String()]; ok {
		return i
	}
	return -1
}

// OperativeCounts returns x_i, the number of operative servers in each mode.
func (e *Env) OperativeCounts() []int {
	xs := make([]int, len(e.modes))
	for i, m := range e.modes {
		xs[i] = m.Operative()
	}
	return xs
}

// AMatrix assembles the s×s environment transition matrix A of eq. (9):
// a breakdown moves a server from operative phase j to inoperative phase k
// at rate x_j·ξ_j·β_k, and a repair moves one from inoperative phase k to
// operative phase j at rate y_k·η_k·α_j. The main diagonal is zero.
func (e *Env) AMatrix() *linalg.Matrix {
	s := len(e.modes)
	a := linalg.NewMatrix(s, s)
	for i, m := range e.modes {
		// Breakdowns: operative phase j → inoperative phase k.
		for j, xj := range m.X {
			if xj == 0 {
				continue
			}
			for k := range m.Y {
				to := e.neighbour(m, j, k, -1)
				rate := float64(xj) * e.Op.Rates[j] * e.Rep.Weights[k]
				a.Add(i, to, rate)
			}
		}
		// Repairs: inoperative phase k → operative phase j.
		for k, yk := range m.Y {
			if yk == 0 {
				continue
			}
			for j := range m.X {
				to := e.neighbour(m, j, k, +1)
				rate := float64(yk) * e.Rep.Rates[k] * e.Op.Weights[j]
				a.Add(i, to, rate)
			}
		}
	}
	return a
}

// neighbour returns the index of the mode reached from m by moving one
// server between operative phase j and inoperative phase k; dir = −1 for a
// breakdown (j → k), +1 for a repair (k → j).
func (e *Env) neighbour(m Mode, j, k, dir int) int {
	x := append([]int(nil), m.X...)
	y := append([]int(nil), m.Y...)
	x[j] += dir
	y[k] -= dir
	idx := e.IndexOf(Mode{X: x, Y: y})
	if idx < 0 {
		panic(fmt.Sprintf("markov: neighbour of %v (j=%d k=%d dir=%d) not found", m, j, k, dir))
	}
	return idx
}

// ServiceDiag returns the diagonal of C_j for levels j = 0..N as a slice of
// s-vectors: ServiceDiag()[j][i] = min(j, x_i)·µ (eq. 9, second line). For
// j ≥ N the level-N diagonal applies.
func (e *Env) ServiceDiag(mu float64) [][]float64 {
	xs := e.OperativeCounts()
	out := make([][]float64, e.N+1)
	for j := 0; j <= e.N; j++ {
		row := make([]float64, len(xs))
		for i, x := range xs {
			row[i] = float64(min(j, x)) * mu
		}
		out[j] = row
	}
	return out
}

// StationaryModeProbs returns the stationary distribution π of the
// environment alone (π·(A − Dᴬ) = 0, π·1 = 1). Because servers break and
// recover independently of the queue, π also equals the marginal mode
// distribution of the full system — an invariant the solver tests exploit.
func (e *Env) StationaryModeProbs() ([]float64, error) {
	a := e.AMatrix()
	s := a.Rows
	gen := a.Clone()
	rows := a.RowSums()
	for i := 0; i < s; i++ {
		gen.Add(i, i, -rows[i])
	}
	pi, err := linalg.ForcedLeftNullVector(gen, 0)
	if err != nil {
		return nil, fmt.Errorf("markov: environment generator has no stationary vector: %w", err)
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if sum == 0 {
		return nil, fmt.Errorf("markov: degenerate stationary vector")
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// ExpectedOperative returns the steady-state mean number of operative
// servers, N·η/(ξ+η) (paper §3): the fraction of time a server is operative
// depends only on the mean period lengths.
func (e *Env) ExpectedOperative() float64 {
	xi := e.Op.Rate()
	eta := e.Rep.Rate()
	return float64(e.N) * eta / (xi + eta)
}

// compositionsDesc lists all ways to write total as an ordered sum of
// `parts` non-negative integers, in lexicographically descending order of
// the first components (matching the paper's mode numbering).
func compositionsDesc(total, parts int) [][]int {
	if parts == 0 {
		if total == 0 {
			return [][]int{{}}
		}
		return nil
	}
	var out [][]int
	var rec func(rem, idx int, cur []int)
	rec = func(rem, idx int, cur []int) {
		if idx == parts-1 {
			comp := append(append([]int(nil), cur...), rem)
			out = append(out, comp)
			return
		}
		for v := rem; v >= 0; v-- {
			rec(rem-v, idx+1, append(cur, v))
		}
	}
	rec(total, 0, make([]int, 0, parts))
	return out
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}
