// Package dataset generates, parses and cleans server-breakdown event logs
// in the schema of the Sun Microsystems data set analysed in Palmer &
// Mitrani §2. The proprietary data itself is not available, so Generate
// produces a synthetic log whose operative periods and outage durations are
// drawn from the paper's fitted distributions, with a configurable fraction
// of anomalous rows (Time Between Events < Outage Duration) injected to
// exercise the cleaning path the paper describes ("A small proportion of
// the data set (less than 4%) contained anomalous entries ... This data
// was ignored").
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/dist"
)

// Event is one breakdown record. Per Figure 2 of the paper,
// TimeBetweenEvents spans from this breakdown to the next breakdown of the
// same server, so the operative period it implies is
// TimeBetweenEvents − OutageDuration.
type Event struct {
	EventID           int
	ServerID          int
	Start             float64 // timestamp of the breakdown
	OutageDuration    float64
	TimeBetweenEvents float64
}

// OperativePeriod returns the implied operative period (may be negative for
// anomalous rows).
func (e Event) OperativePeriod() float64 { return e.TimeBetweenEvents - e.OutageDuration }

// Anomalous reports the paper's exclusion criterion.
func (e Event) Anomalous() bool {
	return e.TimeBetweenEvents < e.OutageDuration ||
		e.OutageDuration <= 0 || e.TimeBetweenEvents <= 0
}

// PaperOperative returns the paper's fitted operative-period distribution
// (72% exponential mean ≈6, 28% exponential mean ≈110).
func PaperOperative() *dist.HyperExp {
	return dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
}

// PaperOutage returns the paper's fitted outage-duration distribution
// (93% exponential mean 0.04, 7% exponential mean 0.61).
func PaperOutage() *dist.HyperExp {
	return dist.MustHyperExp([]float64{0.9303, 0.0697}, []float64{25.0043, 1.6346})
}

// GenConfig parameterises Generate. Zero fields take the paper-matched
// defaults: 140,000 events across 200 servers with ~4% anomalies.
type GenConfig struct {
	Events          int
	Servers         int
	Operative       dist.Distribution
	Outage          dist.Distribution
	AnomalyFraction float64
	Seed            int64
}

func (c *GenConfig) fill() {
	if c.Events == 0 {
		c.Events = 140000
	}
	if c.Servers == 0 {
		c.Servers = 200
	}
	if c.Operative == nil {
		c.Operative = PaperOperative()
	}
	if c.Outage == nil {
		c.Outage = PaperOutage()
	}
	if c.AnomalyFraction == 0 {
		c.AnomalyFraction = 0.04
	}
	if c.Seed == 0 {
		c.Seed = 936 // the technical-report number
	}
}

// Generate produces a synthetic breakdown log: each server alternates
// outage and operative periods drawn from the configured distributions;
// a fraction of rows is corrupted so that TimeBetweenEvents underruns the
// outage (measurement error, as in the real data set). Events are sorted
// by timestamp and numbered.
func Generate(cfg GenConfig) ([]Event, error) {
	cfg.fill()
	if cfg.Events < 1 || cfg.Servers < 1 {
		return nil, fmt.Errorf("dataset: events=%d servers=%d must be positive", cfg.Events, cfg.Servers)
	}
	if cfg.AnomalyFraction < 0 || cfg.AnomalyFraction >= 1 {
		return nil, fmt.Errorf("dataset: anomaly fraction %v outside [0,1)", cfg.AnomalyFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perServer := cfg.Events / cfg.Servers
	extra := cfg.Events % cfg.Servers
	events := make([]Event, 0, cfg.Events)
	for srv := 0; srv < cfg.Servers; srv++ {
		count := perServer
		if srv < extra {
			count++
		}
		// Stagger server start times so the merged log looks organic.
		t := rng.Float64() * 100
		for k := 0; k < count; k++ {
			outage := cfg.Outage.Sample(rng)
			operative := cfg.Operative.Sample(rng)
			tbe := outage + operative
			ev := Event{
				ServerID:          srv,
				Start:             t,
				OutageDuration:    outage,
				TimeBetweenEvents: tbe,
			}
			if rng.Float64() < cfg.AnomalyFraction {
				// Corrupt the recorded TBE downward (logging error); the
				// underlying timeline keeps the true value.
				ev.TimeBetweenEvents = outage * rng.Float64()
			}
			events = append(events, ev)
			t += tbe
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	for i := range events {
		events[i].EventID = i + 1
	}
	return events, nil
}

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"event_id", "server_id", "start", "outage_duration", "time_between_events"}

// WriteCSV writes the log with a header row.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for _, e := range events {
		rec := []string{
			strconv.Itoa(e.EventID),
			strconv.Itoa(e.ServerID),
			strconv.FormatFloat(e.Start, 'g', 17, 64),
			strconv.FormatFloat(e.OutageDuration, 'g', 17, 64),
			strconv.FormatFloat(e.TimeBetweenEvents, 'g', 17, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write event %d: %w", e.EventID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a log written by WriteCSV (or any file with the same
// columns).
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("dataset: column %d is %q, want %q", i, header[i], h)
		}
	}
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		var e Event
		if e.EventID, err = strconv.Atoi(rec[0]); err != nil {
			return nil, fmt.Errorf("dataset: line %d event_id: %w", line, err)
		}
		if e.ServerID, err = strconv.Atoi(rec[1]); err != nil {
			return nil, fmt.Errorf("dataset: line %d server_id: %w", line, err)
		}
		if e.Start, err = strconv.ParseFloat(rec[2], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d start: %w", line, err)
		}
		if e.OutageDuration, err = strconv.ParseFloat(rec[3], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d outage_duration: %w", line, err)
		}
		if e.TimeBetweenEvents, err = strconv.ParseFloat(rec[4], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d time_between_events: %w", line, err)
		}
		events = append(events, e)
	}
}

// Cleaned is the output of Clean: the usable period samples plus an audit
// of what was dropped.
type Cleaned struct {
	Operative   []float64
	Inoperative []float64
	Dropped     int
	Total       int
}

// DroppedFraction returns the share of anomalous rows.
func (c Cleaned) DroppedFraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Dropped) / float64(c.Total)
}

// Clean applies the paper's §2 procedure: anomalous rows (TBE < outage, or
// non-positive durations) are ignored; each remaining row contributes one
// inoperative period (the outage duration) and one operative period
// (TBE − outage, per Figure 2).
func Clean(events []Event) Cleaned {
	c := Cleaned{Total: len(events)}
	for _, e := range events {
		if e.Anomalous() {
			c.Dropped++
			continue
		}
		c.Inoperative = append(c.Inoperative, e.OutageDuration)
		c.Operative = append(c.Operative, e.OperativePeriod())
	}
	return c
}
