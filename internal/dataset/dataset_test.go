package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestGenerateDefaults(t *testing.T) {
	events, err := Generate(GenConfig{Events: 5000, Servers: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5000 {
		t.Fatalf("got %d events, want 5000", len(events))
	}
	// Sorted by start time, IDs sequential.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("events not sorted by start time")
		}
		if events[i].EventID != events[i-1].EventID+1 {
			t.Fatal("event IDs not sequential")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Events: -1}); err == nil {
		t.Error("negative events should fail")
	}
	if _, err := Generate(GenConfig{AnomalyFraction: 1.5}); err == nil {
		t.Error("anomaly fraction ≥ 1 should fail")
	}
}

func TestGenerateAnomalyFraction(t *testing.T) {
	events, err := Generate(GenConfig{Events: 50000, Servers: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := Clean(events)
	// Default 4% target; sampling noise stays well within ±1%.
	if f := c.DroppedFraction(); math.Abs(f-0.04) > 0.01 {
		t.Errorf("dropped fraction %v, want ≈0.04", f)
	}
	if c.Total != 50000 || len(c.Operative) != c.Total-c.Dropped {
		t.Errorf("bookkeeping wrong: %+v", c)
	}
}

func TestCleanedMomentsMatchPaperDistributions(t *testing.T) {
	// The headline §2 numbers must be recoverable from the synthetic data:
	// operative mean ≈ 34.62, C² ≈ 4.6; outage mean ≈ 0.08.
	events, err := Generate(GenConfig{Seed: 3}) // full 140k
	if err != nil {
		t.Fatal(err)
	}
	c := Clean(events)
	op := PaperOperative()
	if m := stats.Mean(c.Operative); math.Abs(m-op.Mean())/op.Mean() > 0.02 {
		t.Errorf("operative mean %v, distribution says %v", m, op.Mean())
	}
	if cv2 := stats.CV2(c.Operative); math.Abs(cv2-op.CV2()) > 0.25 {
		t.Errorf("operative C² %v, distribution says %v", cv2, op.CV2())
	}
	out := PaperOutage()
	if m := stats.Mean(c.Inoperative); math.Abs(m-out.Mean())/out.Mean() > 0.05 {
		t.Errorf("outage mean %v, distribution says %v", m, out.Mean())
	}
}

func TestCSVRoundtrip(t *testing.T) {
	events, err := Generate(GenConfig{Events: 300, Servers: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("roundtrip length %d, want %d", len(back), len(events))
	}
	for i := range events {
		if events[i] != back[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, events[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e\n"},
		{"bad int", "event_id,server_id,start,outage_duration,time_between_events\nx,1,0,1,2\n"},
		{"bad float", "event_id,server_id,start,outage_duration,time_between_events\n1,1,zero,1,2\n"},
		{"short row", "event_id,server_id,start,outage_duration,time_between_events\n1,1,0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.body)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCleanDropsExactlyAnomalies(t *testing.T) {
	events := []Event{
		{OutageDuration: 1, TimeBetweenEvents: 3},    // fine: operative 2
		{OutageDuration: 2, TimeBetweenEvents: 1},    // anomalous
		{OutageDuration: 0, TimeBetweenEvents: 1},    // zero outage: anomalous
		{OutageDuration: 0.5, TimeBetweenEvents: -1}, // negative: anomalous
	}
	c := Clean(events)
	if c.Dropped != 3 || len(c.Operative) != 1 {
		t.Fatalf("clean result %+v", c)
	}
	if c.Operative[0] != 2 || c.Inoperative[0] != 1 {
		t.Fatalf("periods wrong: %+v", c)
	}
}

func TestOperativePeriodAndAnomalous(t *testing.T) {
	e := Event{OutageDuration: 0.5, TimeBetweenEvents: 10.5}
	if p := e.OperativePeriod(); p != 10 {
		t.Errorf("operative period = %v, want 10", p)
	}
	if e.Anomalous() {
		t.Error("valid event flagged anomalous")
	}
}

func TestGenerateZeroAnomalies(t *testing.T) {
	events, err := Generate(GenConfig{Events: 2000, Servers: 4, AnomalyFraction: -1, Seed: 5})
	if err == nil {
		// -1 invalid
		t.Fatal("negative anomaly fraction should fail")
	}
	events, err = Generate(GenConfig{Events: 2000, Servers: 4, AnomalyFraction: 1e-12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := Clean(events)
	if c.Dropped != 0 {
		t.Errorf("dropped %d, want 0", c.Dropped)
	}
}
