package core

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/qbd"
)

// sameF64 matches the equivalence contract of the batched solver:
// bit-identical on amd64, 1e-12 relative elsewhere (where compiler FMA
// contraction may round the two paths differently).
func sameF64(a, b float64) bool {
	if runtime.GOARCH == "amd64" {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a))
}

// TestBatchSolverMatchesSystemSolve checks BatchSolver.Solve against
// System.Solve across a λ-grid: every Performance field, queue
// probabilities and tails, mode marginals and the operative breakdown
// must match bit for bit, and error cases (invalid and unstable rates)
// must produce the scalar path's exact errors.
func TestBatchSolverMatchesSystemSolve(t *testing.T) {
	base := fig5System(5, 1)
	bs, err := NewBatchSolver(base)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Modes() != 21 { // (N+1)(N+2)/2 with N=5
		t.Fatalf("Modes() = %d, want 21", bs.Modes())
	}
	for g := 0; g < 16; g++ {
		lambda := 0.3 + 4.4*float64(g)/15
		sys := base
		sys.ArrivalRate = lambda
		want, wantErr := sys.Solve()
		got, gotErr := bs.Solve(lambda)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("λ=%v: scalar err %v, batch err %v", lambda, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("λ=%v: error text %q vs %q", lambda, wantErr, gotErr)
			}
			continue
		}
		checks := []struct {
			name      string
			want, got float64
		}{
			{"MeanJobs", want.MeanJobs, got.MeanJobs},
			{"MeanResponse", want.MeanResponse, got.MeanResponse},
			{"TailDecay", want.TailDecay, got.TailDecay},
			{"Load", want.Load, got.Load},
		}
		for _, c := range checks {
			if !sameF64(c.want, c.got) {
				t.Fatalf("λ=%v: %s %v vs %v", lambda, c.name, c.want, c.got)
			}
		}
		for j := 0; j <= 12; j++ {
			if !sameF64(want.QueueProb(j), got.QueueProb(j)) {
				t.Fatalf("λ=%v: QueueProb(%d) %v vs %v", lambda, j, want.QueueProb(j), got.QueueProb(j))
			}
			if !sameF64(want.QueueTail(j), got.QueueTail(j)) {
				t.Fatalf("λ=%v: QueueTail(%d) %v vs %v", lambda, j, want.QueueTail(j), got.QueueTail(j))
			}
		}
		wm, gm := want.ModeMarginals(), got.ModeMarginals()
		for i := range wm {
			if !sameF64(wm[i], gm[i]) {
				t.Fatalf("λ=%v: marginal %d %v vs %v", lambda, i, wm[i], gm[i])
			}
		}
		wo, po := want.OperativeBreakdown(), got.OperativeBreakdown()
		for i := range wo {
			if wo[i].Operative != po[i].Operative || !sameF64(wo[i].Prob, po[i].Prob) {
				t.Fatalf("λ=%v: breakdown %d %+v vs %+v", lambda, i, wo[i], po[i])
			}
		}
	}
}

// TestBatchSolverErrorParity checks that per-point errors carry the
// scalar path's exact text and types — invalid rate, then unstable rate.
func TestBatchSolverErrorParity(t *testing.T) {
	base := fig5System(3, 1)
	bs, err := NewBatchSolver(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0, -1.5, 50, math.Inf(1)} {
		sys := base
		sys.ArrivalRate = lambda
		_, wantErr := sys.Solve()
		_, gotErr := bs.Solve(lambda)
		if wantErr == nil || gotErr == nil {
			t.Fatalf("λ=%v: expected errors, got scalar %v, batch %v", lambda, wantErr, gotErr)
		}
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("λ=%v: error text %q vs %q", lambda, wantErr, gotErr)
		}
		if errors.Is(wantErr, qbd.ErrUnstable) != errors.Is(gotErr, qbd.ErrUnstable) {
			t.Fatalf("λ=%v: ErrUnstable identity differs", lambda)
		}
	}
}

// TestNewBatchSolverRejectsBadSystem checks that structural problems are
// reported at construction, not deferred to every point.
func TestNewBatchSolverRejectsBadSystem(t *testing.T) {
	bad := System{Servers: 0, ArrivalRate: 1, ServiceRate: 1, Operative: paperOps, Repair: paperRepair}
	if _, err := NewBatchSolver(bad); err == nil {
		t.Fatal("expected construction error for zero servers")
	}
	// ArrivalRate is allowed to be unset at construction; rates come per point.
	ok := fig5System(2, 0)
	if _, err := NewBatchSolver(ok); err != nil {
		t.Fatalf("zero arrival rate at construction should be accepted: %v", err)
	}
}

// TestEnvFingerprintGroupsSweeps pins the grouping property the service
// layer batches on: λ changes leave EnvFingerprint fixed, while any
// environment change moves it, and the two key families never collide.
func TestEnvFingerprintGroupsSweeps(t *testing.T) {
	a := fig5System(5, 1)
	b := fig5System(5, 4.2)
	if a.EnvFingerprint() != b.EnvFingerprint() {
		t.Fatal("EnvFingerprint must ignore the arrival rate")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("Fingerprint must include the arrival rate")
	}
	if a.Fingerprint() == a.EnvFingerprint() {
		t.Fatal("fingerprint families must not collide")
	}
	c := fig5System(6, 1)
	if a.EnvFingerprint() == c.EnvFingerprint() {
		t.Fatal("EnvFingerprint must include the server count")
	}
	d := a
	d.ServiceRate = 2
	if a.EnvFingerprint() == d.EnvFingerprint() {
		t.Fatal("EnvFingerprint must include the service rate")
	}
}
