package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

// TestMinServersForStabilityDegenerate pins the validation contract: every
// input whose eq.-11 quotient would be Inf or NaN must fail loudly instead
// of returning ⌈NaN⌉ garbage.
func TestMinServersForStabilityDegenerate(t *testing.T) {
	op := dist.MustHyperExp([]float64{1}, []float64{0.02})
	rep := dist.Exp(25)
	cases := []struct {
		name string
		sys  System
	}{
		{"zero arrival rate", System{ArrivalRate: 0, ServiceRate: 1, Operative: op, Repair: rep}},
		{"negative arrival rate", System{ArrivalRate: -3, ServiceRate: 1, Operative: op, Repair: rep}},
		{"NaN arrival rate", System{ArrivalRate: math.NaN(), ServiceRate: 1, Operative: op, Repair: rep}},
		{"infinite arrival rate", System{ArrivalRate: math.Inf(1), ServiceRate: 1, Operative: op, Repair: rep}},
		{"zero service rate", System{ArrivalRate: 5, ServiceRate: 0, Operative: op, Repair: rep}},
		{"negative service rate", System{ArrivalRate: 5, ServiceRate: -1, Operative: op, Repair: rep}},
		{"NaN service rate", System{ArrivalRate: 5, ServiceRate: math.NaN(), Operative: op, Repair: rep}},
		{"nil distributions", System{ArrivalRate: 5, ServiceRate: 1}},
		{"zero repair rate", System{ArrivalRate: 5, ServiceRate: 1, Operative: op,
			Repair: &dist.HyperExp{Weights: []float64{1}, Rates: []float64{0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := MinServersForStability(tc.sys)
			if err == nil {
				t.Fatalf("MinServersForStability = %d, want error", n)
			}
		})
	}
}

// TestMinServersForStabilityValid exercises a healthy configuration end to
// end through the new error-returning signature.
func TestMinServersForStabilityValid(t *testing.T) {
	sys := System{
		ArrivalRate: 7.5,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
	n, err := MinServersForStability(sys)
	if err != nil {
		t.Fatal(err)
	}
	sys.Servers = n
	if !sys.Stable() {
		t.Errorf("N = %d not stable", n)
	}
	sys.Servers = n - 1
	if sys.Stable() {
		t.Errorf("N = %d already stable; result not minimal", n-1)
	}
}

// plateauBase is a nearly perfectly available system that is stable for
// every N ≥ 1, so a synthetic cost curve is scanned without stability skips.
func plateauBase() System {
	return System{
		ArrivalRate: 0.5,
		ServiceRate: 1,
		Operative:   dist.Exp(1e-6),
		Repair:      dist.Exp(1),
	}
}

// TestOptimizeServersPlateauEarlyStop feeds the search a cost curve whose
// tail is perfectly flat: descending to the minimum at N = 3, then a long
// equal-cost plateau. The three-rise cutoff must treat non-decreasing
// steps as rises and stop after three plateau points instead of solving
// every N to maxN.
func TestOptimizeServersPlateauEarlyStop(t *testing.T) {
	costs := make([]float64, 30)
	costs[0], costs[1], costs[2] = 9, 6, 4
	for i := 3; i < len(costs); i++ {
		costs[i] = 4 // flat tail: never strictly above its predecessor
	}
	solves := 0
	solve := func(sys System) (*Performance, error) {
		solves++
		return &Performance{MeanJobs: costs[sys.Servers-1]}, nil
	}
	best, err := optimizeServers(plateauBase(), CostModel{HoldingCost: 1}, 1, len(costs), solve)
	if err != nil {
		t.Fatal(err)
	}
	if best.Servers != 3 || best.Cost != 4 {
		t.Errorf("best = N %d cost %v, want N 3 cost 4", best.Servers, best.Cost)
	}
	// N = 1..3 descend, N = 4, 5, 6 are the three plateau rises.
	if solves != 6 {
		t.Errorf("plateau tail did not trip the early stop: %d solves, want 6", solves)
	}
}

// TestOptimizeServersDescendingScansAll guards the other side of the rule:
// a strictly descending curve has no rises, so the search must scan the
// whole range and return its end point.
func TestOptimizeServersDescendingScansAll(t *testing.T) {
	const maxN = 12
	solves := 0
	solve := func(sys System) (*Performance, error) {
		solves++
		return &Performance{MeanJobs: float64(maxN - sys.Servers)}, nil
	}
	best, err := optimizeServers(plateauBase(), CostModel{HoldingCost: 1}, 1, maxN, solve)
	if err != nil {
		t.Fatal(err)
	}
	if best.Servers != maxN {
		t.Errorf("best = N %d, want N %d", best.Servers, maxN)
	}
	if solves != maxN {
		t.Errorf("descending curve stopped early: %d solves, want %d", solves, maxN)
	}
}
