package core

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// Fingerprint returns a canonical key identifying the system's complete
// parameterisation: server count, arrival and service rates and every phase
// weight and rate of both period distributions. Two systems share a
// fingerprint exactly when every solver input is bit-identical, so the key
// is safe to memoise solutions under (internal/service keys its cache on
// it). Floats are encoded in hexadecimal ('x') form — exact, locale-free
// and with no rounding collisions — and the whole description is hashed so
// keys stay fixed-width regardless of phase counts.
func (s System) Fingerprint() string {
	return s.hashedPayload("v1|N=", true)
}

// EnvFingerprint is Fingerprint with the arrival rate excluded: two
// systems share an environment fingerprint exactly when they differ in at
// most λ — the grouping under which a whole sweep can share one hoisted
// BatchSolver. The version tag differs from Fingerprint's, so the two key
// families can never collide.
func (s System) EnvFingerprint() string {
	return s.hashedPayload("env1|N=", false)
}

func (s System) hashedPayload(tag string, withLambda bool) string {
	var sb strings.Builder
	sb.WriteString(tag)
	sb.WriteString(strconv.Itoa(s.Servers))
	if withLambda {
		sb.WriteString("|l=")
		sb.WriteString(strconv.FormatFloat(s.ArrivalRate, 'x', -1, 64))
	}
	sb.WriteString("|m=")
	sb.WriteString(strconv.FormatFloat(s.ServiceRate, 'x', -1, 64))
	writeDist := func(tag string, weights, rates []float64) {
		sb.WriteString("|")
		sb.WriteString(tag)
		for i := range weights {
			sb.WriteString("|")
			sb.WriteString(strconv.FormatFloat(weights[i], 'x', -1, 64))
			sb.WriteString(":")
			sb.WriteString(strconv.FormatFloat(rates[i], 'x', -1, 64))
		}
	}
	if s.Operative != nil {
		writeDist("op", s.Operative.Weights, s.Operative.Rates)
	}
	if s.Repair != nil {
		writeDist("rep", s.Repair.Weights, s.Repair.Rates)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}
