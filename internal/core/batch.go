package core

import (
	"repro/internal/markov"
	"repro/internal/qbd"
)

// BatchSolver evaluates one System's spectral solution across a batch of
// arrival rates — the shape of every λ-sweep behind Figures 4–9. It is the
// core-level face of qbd.SweepSolver: construction enumerates the Markov
// environment, assembles the solver parameters and hoists every
// λ-independent piece once; each Solve then reuses pooled workspaces, so a
// G-point sweep costs one environment build plus G allocation-light point
// evaluations instead of G full rebuilds.
//
// Solve(λ) returns a Performance bit-identical (on amd64) to what
// sys.Solve() returns for the same system with ArrivalRate = λ, including
// per-point errors for invalid or unstable rates; see qbd.SweepSolver for
// the equivalence contract. A BatchSolver is safe for concurrent use.
type BatchSolver struct {
	base     System
	env      *markov.Env
	opCounts []int
	sv       *qbd.SweepSolver
}

// NewBatchSolver validates the λ-independent part of base and hoists the
// environment and solver state. base.ArrivalRate is ignored — each Solve
// supplies its own rate — and a construction error is one that every
// point of the batch would report.
func NewBatchSolver(base System) (*BatchSolver, error) {
	probe := base
	if probe.ArrivalRate <= 0 {
		probe.ArrivalRate = 1 // structural validation only; Solve rates replace it
	}
	env, p, err := probe.envParams()
	if err != nil {
		return nil, err
	}
	sv, err := qbd.NewSweepSolver(p)
	if err != nil {
		return nil, err
	}
	return &BatchSolver{
		base:     base,
		env:      env,
		opCounts: env.OperativeCounts(),
		sv:       sv,
	}, nil
}

// Modes returns s, the number of environment modes.
func (b *BatchSolver) Modes() int { return b.env.NumModes() }

// Solve evaluates one arrival rate, mirroring System.Solve exactly: the
// same validation precedence, the same solver errors, and on success a
// Performance whose every field matches the scalar path bit for bit. The
// returned Performance is caller-owned and independent of the solver's
// internal workspaces.
func (b *BatchSolver) Solve(lambda float64) (*Performance, error) {
	sys := b.base
	sys.ArrivalRate = lambda
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	sol, err := b.sv.Solve(lambda)
	if err != nil {
		return nil, err
	}
	l := sol.MeanQueue()
	return &Performance{
		MeanJobs:     l,
		MeanResponse: l / lambda,
		TailDecay:    sol.TailDecay(),
		Load:         sys.Load(),
		sol:          sol,
		opCounts:     b.opCounts,
	}, nil
}
