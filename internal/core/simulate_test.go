package core

import (
	"context"
	"math"
	"reflect"
	"testing"
)

func TestSimulateReplicatedCIsCoverSolve(t *testing.T) {
	s := fig5System(3, 1.8)
	perf, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate(SimOptions{
		Seed:         11,
		Warmup:       2000,
		Horizon:      60000,
		Replications: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications != 6 || !res.Converged {
		t.Errorf("Replications = %d, Converged = %v", res.Replications, res.Converged)
	}
	if res.MeanQueueHalfWidth <= 0 || res.MeanResponseHalfWidth <= 0 || res.AvailabilityHalfWidth <= 0 {
		t.Errorf("expected positive half-widths, got %+v", res)
	}
	if res.Confidence != 0.95 {
		t.Errorf("Confidence = %v", res.Confidence)
	}
	// The exact L should land inside (or very near) the 95% interval; allow
	// 2× the half-width so an unlucky seed doesn't flake the suite.
	if diff := math.Abs(res.MeanQueue - perf.MeanJobs); diff > 2*res.MeanQueueHalfWidth {
		t.Errorf("exact L = %v vs simulated %v ± %v", perf.MeanJobs, res.MeanQueue, res.MeanQueueHalfWidth)
	}
	if diff := math.Abs(res.MeanResponse - perf.MeanResponse); diff > 2*res.MeanResponseHalfWidth {
		t.Errorf("exact W = %v vs simulated %v ± %v", perf.MeanResponse, res.MeanResponse, res.MeanResponseHalfWidth)
	}
	av := s.Availability()
	if diff := math.Abs(res.Availability - av); diff > 2*res.AvailabilityHalfWidth {
		t.Errorf("analytic availability %v vs simulated %v ± %v", av, res.Availability, res.AvailabilityHalfWidth)
	}
}

func TestSimulateReplicatedReproducible(t *testing.T) {
	s := fig5System(3, 1.8)
	opts := SimOptions{Seed: 5, Warmup: 500, Horizon: 10000, Replications: 4}
	a, err := s.Simulate(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	b, err := s.Simulate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different workers: %+v vs %+v", a, b)
	}
}

func TestSimulateRelPrecisionStops(t *testing.T) {
	s := fig5System(3, 1.5)
	res, err := s.Simulate(SimOptions{
		Seed:            3,
		Warmup:          500,
		Horizon:         20000,
		Replications:    32,
		MinReplications: 3,
		RelPrecision:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Replications >= 32 {
		t.Errorf("loose criterion should stop early: ran %d, converged %v", res.Replications, res.Converged)
	}
	if rel := res.MeanQueueHalfWidth / res.MeanQueue; rel > 0.5 {
		t.Errorf("claimed convergence at relative precision %v", rel)
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := fig5System(3, 1.5)
	if _, err := s.SimulateContext(ctx, SimOptions{Replications: 4}); err == nil {
		t.Error("cancelled context must abort a replicated run")
	}
}

func TestSimOptionsNormalized(t *testing.T) {
	n := SimOptions{}.Normalized()
	if n.Warmup != 5000 || n.Horizon != 300000 || n.Confidence != 0.95 || n.Replications != 1 {
		t.Errorf("zero-value normalization wrong: %+v", n)
	}
	r := SimOptions{Replications: 6, Workers: 9}.Normalized()
	// RelPrecision 0 runs all replications, so the min is pinned to R_max.
	if r.MinReplications != 6 || r.Workers != 0 {
		t.Errorf("replicated normalization wrong: %+v", r)
	}
	p := SimOptions{Replications: 6, RelPrecision: 0.05}.Normalized()
	if p.MinReplications != 4 {
		t.Errorf("precision normalization wrong: %+v", p)
	}
	// Normalization is idempotent — the fixed point property cache keys rely
	// on.
	if p.Normalized() != p {
		t.Error("Normalized not idempotent")
	}
}
