// Package core is the public face of the reproduction: the multi-server
// system with unreliable servers of Palmer & Mitrani (DSN 2006). A System
// describes N parallel servers fed from one unbounded FIFO queue by a
// Poisson stream, each server alternating between hyperexponential
// operative periods and hyperexponential repair periods; jobs interrupted
// by a breakdown resume later without loss of work.
//
// The package answers the three questions posed in the paper's
// introduction:
//
//  1. How does the system perform? — Solve / SolveApprox /
//     SolveMatrixGeometric / Simulate return the mean queue length, mean
//     response time and full queue-length distribution.
//  2. What is the minimum number of servers ensuring a target level of
//     performance? — MinServersForResponseTime.
//  3. What number of servers minimises the holding-plus-provisioning cost
//     C = c₁L + c₂N? — OptimizeServers.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/markov"
	"repro/internal/qbd"
	"repro/internal/sim"
)

// System describes a service-provisioning cluster (paper §3).
type System struct {
	// Servers is N, the number of parallel servers.
	Servers int
	// ArrivalRate is λ, the Poisson arrival rate.
	ArrivalRate float64
	// ServiceRate is µ, the exponential service rate of one operative server.
	ServiceRate float64
	// Operative is the distribution of operative periods (n-phase
	// hyperexponential; use dist.Exp for the classical exponential model).
	Operative *dist.HyperExp
	// Repair is the distribution of inoperative periods.
	Repair *dist.HyperExp
}

// Validate checks the system description.
func (s System) Validate() error {
	if s.Servers < 1 {
		return fmt.Errorf("core: %d servers, need at least 1", s.Servers)
	}
	if s.ArrivalRate <= 0 {
		return fmt.Errorf("core: arrival rate %v must be positive", s.ArrivalRate)
	}
	if s.ServiceRate <= 0 {
		return fmt.Errorf("core: service rate %v must be positive", s.ServiceRate)
	}
	if s.Operative == nil || s.Repair == nil {
		return errors.New("core: operative and repair distributions are required")
	}
	return nil
}

// Env enumerates the Markovian environment for this system.
func (s System) Env() (*markov.Env, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return markov.NewEnv(s.Servers, s.Operative, s.Repair)
}

// Params assembles the queueing parameters for the qbd solvers.
func (s System) Params() (qbd.Params, error) {
	_, p, err := s.envParams()
	return p, err
}

func (s System) envParams() (*markov.Env, qbd.Params, error) {
	env, err := s.Env()
	if err != nil {
		return nil, qbd.Params{}, err
	}
	return env, qbd.Params{
		Lambda:      s.ArrivalRate,
		A:           env.AMatrix(),
		ServiceDiag: env.ServiceDiag(s.ServiceRate),
	}, nil
}

// Modes returns s, the number of operational modes (paper eq. 12).
func (s System) Modes() int {
	return markov.NumModes(s.Servers, s.Operative.Phases(), s.Repair.Phases())
}

// Availability returns η/(ξ+η), the long-run fraction of time one server is
// operative; it depends only on the mean period lengths (paper §3).
func (s System) Availability() float64 {
	xi := s.Operative.Rate()
	eta := s.Repair.Rate()
	return eta / (xi + eta)
}

// Load returns the offered load relative to capacity,
// (λ/µ) / (N·η/(ξ+η)); the system is stable iff Load < 1 (paper eq. 11).
func (s System) Load() float64 {
	return s.ArrivalRate / s.ServiceRate / (float64(s.Servers) * s.Availability())
}

// Stable reports whether the ergodicity condition (eq. 11) holds.
func (s System) Stable() bool { return s.Load() < 1 }

// Performance packages the steady-state metrics from a solution.
type Performance struct {
	// MeanJobs is L, the mean number of jobs present.
	MeanJobs float64
	// MeanResponse is W = L/λ (Little's law).
	MeanResponse float64
	// TailDecay is the geometric decay rate z_s of the queue-length tail.
	TailDecay float64
	// Load echoes the offered load.
	Load float64

	sol      qbd.Solution
	opCounts []int // operative servers per mode
}

// OperativeStat describes the system conditioned on the number of operative
// servers.
type OperativeStat struct {
	// Operative is x, the number of working servers.
	Operative int
	// Prob is P(x servers operative).
	Prob float64
	// MeanQueue is E[jobs present | x servers operative]; NaN when Prob is
	// numerically zero.
	MeanQueue float64
}

// OperativeBreakdown decomposes the steady state by the number of operative
// servers — the mode structure of the solution makes "how much queue builds
// while k servers are down" directly available, which no scalar-load model
// can provide. Entries are indexed by x = 0..N.
func (p *Performance) OperativeBreakdown() []OperativeStat {
	n := 0
	for _, x := range p.opCounts {
		if x > n {
			n = x
		}
	}
	prob := make([]float64, n+1)
	mass := make([]float64, n+1) // Σ_j j·P(j jobs, x operative)
	// Sum levels until the geometric tail is exhausted.
	z := p.TailDecay
	maxJ := 200
	if z > 0 && z < 1 {
		maxJ = int(math.Log(1e-13)/math.Log(z)) + 4*n + 16
	}
	for j := 0; j <= maxJ; j++ {
		lv := p.sol.Level(j)
		for i, x := range p.opCounts {
			prob[x] += lv[i]
			mass[x] += float64(j) * lv[i]
		}
	}
	out := make([]OperativeStat, n+1)
	for x := 0; x <= n; x++ {
		st := OperativeStat{Operative: x, Prob: prob[x], MeanQueue: math.NaN()}
		if prob[x] > 1e-300 {
			st.MeanQueue = mass[x] / prob[x]
		}
		out[x] = st
	}
	return out
}

// QueueProb returns P(exactly j jobs present).
func (p *Performance) QueueProb(j int) float64 { return p.sol.LevelProb(j) }

// QueueTail returns P(at least j jobs present).
func (p *Performance) QueueTail(j int) float64 {
	if j <= 0 {
		return 1
	}
	t := p.sol.TotalProbability()
	for k := 0; k < j; k++ {
		t -= p.sol.LevelProb(k)
	}
	return t
}

// ModeMarginals exposes the marginal mode distribution Σ_j v_j.
func (p *Performance) ModeMarginals() []float64 { return p.sol.ModeMarginals() }

// Solution exposes the underlying solver output for advanced callers.
func (p *Performance) Solution() qbd.Solution { return p.sol }

func (s System) wrap(env *markov.Env, sol qbd.Solution) *Performance {
	l := sol.MeanQueue()
	return &Performance{
		MeanJobs:     l,
		MeanResponse: l / s.ArrivalRate,
		TailDecay:    sol.TailDecay(),
		Load:         s.Load(),
		sol:          sol,
		opCounts:     env.OperativeCounts(),
	}
}

// Solve computes the exact steady state by spectral expansion (paper §3.1).
func (s System) Solve() (*Performance, error) {
	env, p, err := s.envParams()
	if err != nil {
		return nil, err
	}
	sol, err := qbd.SolveSpectral(p)
	if err != nil {
		return nil, err
	}
	return s.wrap(env, sol), nil
}

// SolveApprox computes the geometric approximation (paper §3.2), which is
// cheap, numerically robust for large N, and asymptotically exact under
// heavy load.
func (s System) SolveApprox() (*Performance, error) {
	env, p, err := s.envParams()
	if err != nil {
		return nil, err
	}
	sol, err := qbd.SolveApprox(p)
	if err != nil {
		return nil, err
	}
	return s.wrap(env, sol), nil
}

// SolveMatrixGeometric computes the exact steady state by the R-matrix
// method — the classical alternative the spectral expansion is usually
// compared against.
func (s System) SolveMatrixGeometric() (*Performance, error) {
	env, p, err := s.envParams()
	if err != nil {
		return nil, err
	}
	sol, err := qbd.SolveMatrixGeometric(p, qbd.MGOptions{})
	if err != nil {
		return nil, err
	}
	return s.wrap(env, sol), nil
}

// SimOptions tunes Simulate. The zero value picks defaults suited to the
// paper's parameter ranges.
type SimOptions struct {
	// Seed fixes the random stream (0 = default).
	Seed int64
	// Warmup is the discarded initial period (default 5,000 time units).
	Warmup float64
	// Horizon is the measured period (default 300,000 time units).
	Horizon float64
	// Operative / Repair override the system's distributions — this is how
	// non-hyperexponential shapes (Erlang, deterministic) enter, since the
	// analytical model cannot represent them.
	Operative dist.Distribution
	Repair    dist.Distribution
}

// Simulate estimates the steady state by discrete-event simulation; it
// accepts arbitrary period distributions via SimOptions (e.g. the
// deterministic operative periods of Figure 6's C² = 0 point).
func (s System) Simulate(opts SimOptions) (sim.Result, error) {
	if err := s.Validate(); err != nil {
		return sim.Result{}, err
	}
	if opts.Warmup == 0 {
		opts.Warmup = 5000
	}
	if opts.Horizon == 0 {
		opts.Horizon = 300000
	}
	op := opts.Operative
	if op == nil {
		op = s.Operative
	}
	rep := opts.Repair
	if rep == nil {
		rep = s.Repair
	}
	return sim.Run(sim.Config{
		Servers:   s.Servers,
		Lambda:    s.ArrivalRate,
		Mu:        s.ServiceRate,
		Operative: op,
		Repair:    rep,
		Seed:      opts.Seed,
		Warmup:    opts.Warmup,
		Horizon:   opts.Horizon,
	})
}
