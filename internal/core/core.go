// Package core is the public face of the reproduction: the multi-server
// system with unreliable servers of Palmer & Mitrani (DSN 2006). A System
// describes N parallel servers fed from one unbounded FIFO queue by a
// Poisson stream, each server alternating between hyperexponential
// operative periods and hyperexponential repair periods; jobs interrupted
// by a breakdown resume later without loss of work.
//
// The package answers the three questions posed in the paper's
// introduction:
//
//  1. How does the system perform? — Solve / SolveApprox /
//     SolveMatrixGeometric / Simulate return the mean queue length, mean
//     response time and full queue-length distribution.
//  2. What is the minimum number of servers ensuring a target level of
//     performance? — MinServersForResponseTime.
//  3. What number of servers minimises the holding-plus-provisioning cost
//     C = c₁L + c₂N? — OptimizeServers.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/markov"
	"repro/internal/qbd"
	"repro/internal/sim"
)

// System describes a service-provisioning cluster (paper §3).
type System struct {
	// Servers is N, the number of parallel servers.
	Servers int
	// ArrivalRate is λ, the Poisson arrival rate.
	ArrivalRate float64
	// ServiceRate is µ, the exponential service rate of one operative server.
	ServiceRate float64
	// Operative is the distribution of operative periods (n-phase
	// hyperexponential; use dist.Exp for the classical exponential model).
	Operative *dist.HyperExp
	// Repair is the distribution of inoperative periods.
	Repair *dist.HyperExp
}

// Validate checks the system description.
func (s System) Validate() error {
	if s.Servers < 1 {
		return fmt.Errorf("core: %d servers, need at least 1", s.Servers)
	}
	if s.ArrivalRate <= 0 {
		return fmt.Errorf("core: arrival rate %v must be positive", s.ArrivalRate)
	}
	if s.ServiceRate <= 0 {
		return fmt.Errorf("core: service rate %v must be positive", s.ServiceRate)
	}
	if s.Operative == nil || s.Repair == nil {
		return errors.New("core: operative and repair distributions are required")
	}
	return nil
}

// Env enumerates the Markovian environment for this system.
func (s System) Env() (*markov.Env, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return markov.NewEnv(s.Servers, s.Operative, s.Repair)
}

// Params assembles the queueing parameters for the qbd solvers.
func (s System) Params() (qbd.Params, error) {
	_, p, err := s.envParams()
	return p, err
}

func (s System) envParams() (*markov.Env, qbd.Params, error) {
	env, err := s.Env()
	if err != nil {
		return nil, qbd.Params{}, err
	}
	return env, qbd.Params{
		Lambda:      s.ArrivalRate,
		A:           env.AMatrix(),
		ServiceDiag: env.ServiceDiag(s.ServiceRate),
	}, nil
}

// Modes returns s, the number of operational modes (paper eq. 12).
func (s System) Modes() int {
	return markov.NumModes(s.Servers, s.Operative.Phases(), s.Repair.Phases())
}

// Availability returns η/(ξ+η), the long-run fraction of time one server is
// operative; it depends only on the mean period lengths (paper §3).
func (s System) Availability() float64 {
	xi := s.Operative.Rate()
	eta := s.Repair.Rate()
	return eta / (xi + eta)
}

// Load returns the offered load relative to capacity,
// (λ/µ) / (N·η/(ξ+η)); the system is stable iff Load < 1 (paper eq. 11).
func (s System) Load() float64 {
	return s.ArrivalRate / s.ServiceRate / (float64(s.Servers) * s.Availability())
}

// Stable reports whether the ergodicity condition (eq. 11) holds.
func (s System) Stable() bool { return s.Load() < 1 }

// Performance packages the steady-state metrics from a solution.
type Performance struct {
	// MeanJobs is L, the mean number of jobs present.
	MeanJobs float64
	// MeanResponse is W = L/λ (Little's law).
	MeanResponse float64
	// TailDecay is the geometric decay rate z_s of the queue-length tail.
	TailDecay float64
	// Load echoes the offered load.
	Load float64

	sol      qbd.Solution
	opCounts []int // operative servers per mode
}

// OperativeStat describes the system conditioned on the number of operative
// servers.
type OperativeStat struct {
	// Operative is x, the number of working servers.
	Operative int
	// Prob is P(x servers operative).
	Prob float64
	// MeanQueue is E[jobs present | x servers operative]; NaN when Prob is
	// numerically zero.
	MeanQueue float64
}

// OperativeBreakdown decomposes the steady state by the number of operative
// servers — the mode structure of the solution makes "how much queue builds
// while k servers are down" directly available, which no scalar-load model
// can provide. Entries are indexed by x = 0..N.
func (p *Performance) OperativeBreakdown() []OperativeStat {
	n := 0
	for _, x := range p.opCounts {
		if x > n {
			n = x
		}
	}
	prob := make([]float64, n+1)
	mass := make([]float64, n+1) // Σ_j j·P(j jobs, x operative)
	// Sum levels until the geometric tail is exhausted.
	z := p.TailDecay
	maxJ := 200
	if z > 0 && z < 1 {
		maxJ = int(math.Log(1e-13)/math.Log(z)) + 4*n + 16
	}
	for j := 0; j <= maxJ; j++ {
		lv := p.sol.Level(j)
		for i, x := range p.opCounts {
			prob[x] += lv[i]
			mass[x] += float64(j) * lv[i]
		}
	}
	out := make([]OperativeStat, n+1)
	for x := 0; x <= n; x++ {
		st := OperativeStat{Operative: x, Prob: prob[x], MeanQueue: math.NaN()}
		if prob[x] > 1e-300 {
			st.MeanQueue = mass[x] / prob[x]
		}
		out[x] = st
	}
	return out
}

// QueueProb returns P(exactly j jobs present).
func (p *Performance) QueueProb(j int) float64 { return p.sol.LevelProb(j) }

// QueueTail returns P(at least j jobs present).
func (p *Performance) QueueTail(j int) float64 {
	if j <= 0 {
		return 1
	}
	t := p.sol.TotalProbability()
	for k := 0; k < j; k++ {
		t -= p.sol.LevelProb(k)
	}
	return t
}

// ModeMarginals exposes the marginal mode distribution Σ_j v_j.
func (p *Performance) ModeMarginals() []float64 { return p.sol.ModeMarginals() }

// Solution exposes the underlying solver output for advanced callers.
func (p *Performance) Solution() qbd.Solution { return p.sol }

func (s System) wrap(env *markov.Env, sol qbd.Solution) *Performance {
	l := sol.MeanQueue()
	return &Performance{
		MeanJobs:     l,
		MeanResponse: l / s.ArrivalRate,
		TailDecay:    sol.TailDecay(),
		Load:         s.Load(),
		sol:          sol,
		opCounts:     env.OperativeCounts(),
	}
}

// Solve computes the exact steady state by spectral expansion (paper §3.1).
func (s System) Solve() (*Performance, error) {
	env, p, err := s.envParams()
	if err != nil {
		return nil, err
	}
	sol, err := qbd.SolveSpectral(p)
	if err != nil {
		return nil, err
	}
	return s.wrap(env, sol), nil
}

// SolveApprox computes the geometric approximation (paper §3.2), which is
// cheap, numerically robust for large N, and asymptotically exact under
// heavy load.
func (s System) SolveApprox() (*Performance, error) {
	env, p, err := s.envParams()
	if err != nil {
		return nil, err
	}
	sol, err := qbd.SolveApprox(p)
	if err != nil {
		return nil, err
	}
	return s.wrap(env, sol), nil
}

// SolveMatrixGeometric computes the exact steady state by the R-matrix
// method — the classical alternative the spectral expansion is usually
// compared against.
func (s System) SolveMatrixGeometric() (*Performance, error) {
	env, p, err := s.envParams()
	if err != nil {
		return nil, err
	}
	sol, err := qbd.SolveMatrixGeometric(p, qbd.MGOptions{})
	if err != nil {
		return nil, err
	}
	return s.wrap(env, sol), nil
}

// SimOptions tunes Simulate. The zero value picks defaults suited to the
// paper's parameter ranges and runs a single replication; set Replications
// (and optionally RelPrecision) for Student-t confidence intervals from
// independent replications.
type SimOptions struct {
	// Seed fixes the random stream (0 = default). With replications it is
	// the base seed from which each replication's stream derives via
	// sim.RepSeed.
	Seed int64
	// Warmup is the discarded initial period (default 5,000 time units).
	Warmup float64
	// Horizon is the measured period per replication (default 300,000 time
	// units).
	Horizon float64
	// Operative / Repair override the system's distributions — this is how
	// non-hyperexponential shapes (Erlang, deterministic) enter, since the
	// analytical model cannot represent them.
	Operative dist.Distribution
	Repair    dist.Distribution

	// Replications is R_max, the maximum number of independent
	// replications. 0 or 1 runs a single replication whose half-widths come
	// from batch means within the run; ≥ 2 runs the independent-replications
	// engine with cross-replication Student-t intervals.
	Replications int
	// MinReplications is the number of replications run before the
	// relative-precision rule is first consulted (default min(4, R_max)).
	MinReplications int
	// RelPrecision is ε of the stopping rule: replications stop once the
	// CI half-width on L is within ε·|L̂| (0 = run exactly Replications).
	RelPrecision float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Workers bounds concurrent replications (default GOMAXPROCS); it never
	// affects the estimates, only the wall-clock time.
	Workers int
	// Gate is an optional external semaphore bounding replication
	// concurrency across runs (see sim.RepConfig.Gate); internal/service
	// sets it to the engine's worker gate. Never affects the estimates.
	Gate chan struct{}
}

// SimResult reports simulated steady-state estimates with confidence
// intervals. With a single replication the half-widths on W and the
// availability are zero (the batch-means method only brackets L); with
// independent replications every half-width is a cross-replication
// Student-t interval at the configured confidence level.
type SimResult struct {
	// MeanQueue is the point estimate of L.
	MeanQueue float64
	// MeanQueueHalfWidth brackets MeanQueue at the Confidence level.
	MeanQueueHalfWidth float64
	// MeanResponse is the point estimate of W.
	MeanResponse float64
	// MeanResponseHalfWidth brackets MeanResponse (replicated runs only).
	MeanResponseHalfWidth float64
	// Availability is the time-averaged fraction of operative servers.
	Availability float64
	// AvailabilityHalfWidth brackets Availability (replicated runs only).
	AvailabilityHalfWidth float64
	// Confidence is the level of every interval above (e.g. 0.95).
	Confidence float64
	// Replications is the number of independent replications run (1 for a
	// single batch-means run).
	Replications int
	// Converged reports whether the relative-precision criterion was met
	// (true when no criterion was requested).
	Converged bool
	// Completed counts jobs finished across all replications.
	Completed int64
	// QueueDist[k] is the fraction of time with exactly k jobs present,
	// averaged across replications.
	QueueDist []float64
}

// Normalized returns the options with every result-affecting default made
// explicit — the canonical form under which simulation output may be
// memoised: two option values with equal Normalized() forms (and equal
// override distributions) produce bit-identical SimResults. Workers and
// Gate are zeroed because they never affect the estimates.
func (o SimOptions) Normalized() SimOptions {
	if o.Warmup == 0 {
		o.Warmup = 5000
	}
	if o.Horizon == 0 {
		o.Horizon = 300000
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Replications <= 1 {
		// Single batch-means run: the replication knobs are inert.
		o.Replications = 1
		o.MinReplications = 0
		o.RelPrecision = 0
	} else {
		// Mirror sim.RunReplicated's defaulting so equal effective
		// configurations share one canonical form.
		if o.MinReplications == 0 {
			o.MinReplications = 4
		}
		if o.MinReplications < 2 {
			o.MinReplications = 2
		}
		if o.MinReplications > o.Replications {
			o.MinReplications = o.Replications
		}
		if o.RelPrecision == 0 {
			o.MinReplications = o.Replications
		}
	}
	o.Workers = 0
	o.Gate = nil
	return o
}

// simConfig assembles the per-replication simulator configuration.
func (s System) simConfig(opts SimOptions) sim.Config {
	op := opts.Operative
	if op == nil {
		op = s.Operative
	}
	rep := opts.Repair
	if rep == nil {
		rep = s.Repair
	}
	return sim.Config{
		Servers:   s.Servers,
		Lambda:    s.ArrivalRate,
		Mu:        s.ServiceRate,
		Operative: op,
		Repair:    rep,
		Seed:      opts.Seed,
		Warmup:    opts.Warmup,
		Horizon:   opts.Horizon,
	}
}

// Simulate estimates the steady state by discrete-event simulation; it
// accepts arbitrary period distributions via SimOptions (e.g. the
// deterministic operative periods of Figure 6's C² = 0 point). With
// Replications ≥ 2 it delegates to SimulateContext and reports
// cross-replication confidence intervals.
func (s System) Simulate(opts SimOptions) (SimResult, error) {
	return s.SimulateContext(context.Background(), opts)
}

// SimulateContext is Simulate with cancellation: replicated runs stop
// between replications when ctx is cancelled. The result is bit-for-bit
// reproducible for a fixed (System, SimOptions) regardless of Workers.
func (s System) SimulateContext(ctx context.Context, opts SimOptions) (SimResult, error) {
	if err := s.Validate(); err != nil {
		return SimResult{}, err
	}
	workers, gate := opts.Workers, opts.Gate
	opts = opts.Normalized()
	opts.Workers, opts.Gate = workers, gate
	if opts.Replications <= 1 {
		res, err := sim.Run(s.simConfig(opts))
		if err != nil {
			return SimResult{}, err
		}
		return SimResult{
			MeanQueue:          res.MeanQueue,
			MeanQueueHalfWidth: res.MeanQueueHalfWidth,
			MeanResponse:       res.MeanResponse,
			Availability:       res.Availability,
			Confidence:         0.95, // sim.Run's batch-means interval level
			Replications:       1,
			Converged:          true,
			Completed:          res.Completed,
			QueueDist:          res.QueueDist,
		}, nil
	}
	rep, err := sim.RunReplicated(ctx, sim.RepConfig{
		Config:          s.simConfig(opts),
		Replications:    opts.Replications,
		MinReplications: opts.MinReplications,
		RelPrecision:    opts.RelPrecision,
		Confidence:      opts.Confidence,
		Workers:         opts.Workers,
		Gate:            opts.Gate,
	})
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		MeanQueue:             rep.MeanQueue.Mean,
		MeanQueueHalfWidth:    rep.MeanQueue.HalfWidth,
		MeanResponse:          rep.MeanResponse.Mean,
		MeanResponseHalfWidth: rep.MeanResponse.HalfWidth,
		Availability:          rep.Availability.Mean,
		AvailabilityHalfWidth: rep.Availability.HalfWidth,
		Confidence:            opts.Confidence,
		Replications:          rep.Replications,
		Converged:             rep.Converged,
		Completed:             rep.Completed,
		QueueDist:             rep.QueueDist,
	}, nil
}
