package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
)

// paperSystem is the Figure 5 configuration: fitted H2 operative periods
// (C² ≈ 4.6), exponential repairs with rate η = 25, unit service rate.
func paperSystem(n int, lambda float64) core.System {
	return core.System{
		Servers:     n,
		ArrivalRate: lambda,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
}

// ExampleSystem_Solve computes the exact steady state of the paper's
// Figure 5 point (N = 12, λ = 8) by spectral expansion.
func ExampleSystem_Solve() {
	sys := paperSystem(12, 8)
	perf, err := sys.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("load  = %.4f\n", perf.Load)
	fmt.Printf("L     = %.4f jobs\n", perf.MeanJobs)
	fmt.Printf("W     = %.4f (Little's law)\n", perf.MeanResponse)
	// Output:
	// load  = 0.6674
	// L     = 8.2835 jobs
	// W     = 1.0354 (Little's law)
}

// ExampleSystem_Simulate estimates the same steady state by four parallel
// independent replications; every estimate carries a 95% Student-t
// confidence half-width, and the result is bit-for-bit reproducible for a
// fixed seed regardless of the worker count.
func ExampleSystem_Simulate() {
	sys := paperSystem(3, 1.8)
	res, err := sys.Simulate(core.SimOptions{
		Seed:         11,
		Warmup:       2000,
		Horizon:      60000,
		Replications: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("replications = %d\n", res.Replications)
	fmt.Printf("L = %.2f ± %.2f (95%% CI)\n", res.MeanQueue, res.MeanQueueHalfWidth)
	// Output:
	// replications = 4
	// L = 2.35 ± 0.01 (95% CI)
}

// ExampleOptimizeServers answers the paper's third question (Figure 5):
// which N minimises the cost C = c₁L + c₂N? At λ = 8 with c₁ = 4, c₂ = 1
// the optimum is 12 servers.
func ExampleOptimizeServers() {
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	best, err := core.OptimizeServers(paperSystem(0, 8), cm, 9, 17, core.Spectral)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal N = %d\n", best.Servers)
	fmt.Printf("cost C    = %.2f\n", best.Cost)
	// Output:
	// optimal N = 12
	// cost C    = 45.13
}
