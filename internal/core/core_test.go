package core

import (
	"math"
	"testing"

	"repro/internal/dist"
)

var (
	paperOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	paperRepair = dist.Exp(25)
)

// fig5System is the paper's Figure 5/8/9 configuration.
func fig5System(n int, lambda float64) System {
	return System{
		Servers:     n,
		ArrivalRate: lambda,
		ServiceRate: 1,
		Operative:   paperOps,
		Repair:      paperRepair,
	}
}

func TestValidate(t *testing.T) {
	if err := fig5System(10, 8).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sys  System
	}{
		{"zero servers", System{Servers: 0, ArrivalRate: 1, ServiceRate: 1, Operative: paperOps, Repair: paperRepair}},
		{"zero lambda", System{Servers: 1, ArrivalRate: 0, ServiceRate: 1, Operative: paperOps, Repair: paperRepair}},
		{"zero mu", System{Servers: 1, ArrivalRate: 1, ServiceRate: 0, Operative: paperOps, Repair: paperRepair}},
		{"nil dists", System{Servers: 1, ArrivalRate: 1, ServiceRate: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.sys.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestStabilityFormula(t *testing.T) {
	// eq. (11): λ/µ < N·η/(ξ+η). With the fitted parameters the availability
	// is ≈ 0.99303 wait — η=25, ξ=0.0289: η/(ξ+η) ≈ 0.99885. N=10 ⇒ capacity
	// ≈ 9.9885, so λ = 9.9 is stable and λ = 10 is not.
	if s := fig5System(10, 9.9); !s.Stable() {
		t.Errorf("λ=9.9 load %v, should be stable", s.Load())
	}
	if s := fig5System(10, 10); s.Stable() {
		t.Errorf("λ=10 load %v, should be unstable", s.Load())
	}
}

func TestAvailabilityValue(t *testing.T) {
	s := fig5System(10, 8)
	xi := paperOps.Rate()
	want := 25.0 / (xi + 25.0)
	if got := s.Availability(); math.Abs(got-want) > 1e-12 {
		t.Errorf("availability %v, want %v", got, want)
	}
}

func TestModesFormula(t *testing.T) {
	// s = (N+2)(N+1)/2 for n=2, m=1 (paper §4).
	for _, n := range []int{2, 5, 10} {
		want := (n + 2) * (n + 1) / 2
		if got := fig5System(n, 1).Modes(); got != want {
			t.Errorf("N=%d: modes %d, want %d", n, got, want)
		}
	}
}

func TestSolveConsistencyAcrossMethods(t *testing.T) {
	s := fig5System(5, 3.5)
	exact, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	mg, err := s.SolveMatrixGeometric()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(exact.MeanJobs - mg.MeanJobs); d > 1e-7 {
		t.Errorf("L spectral %v vs MG %v", exact.MeanJobs, mg.MeanJobs)
	}
	// W = L/λ by construction.
	if d := math.Abs(exact.MeanResponse - exact.MeanJobs/3.5); d > 1e-12 {
		t.Errorf("Little's law broken: %v", d)
	}
}

func TestPerformanceAccessors(t *testing.T) {
	s := fig5System(3, 2)
	perf, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for j := 0; j < 400; j++ {
		sum += perf.QueueProb(j)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("queue distribution sums to %v", sum)
	}
	if tp := perf.QueueTail(0); math.Abs(tp-1) > 1e-9 {
		t.Errorf("QueueTail(0) = %v", tp)
	}
	if perf.QueueTail(5) > perf.QueueTail(4) {
		t.Error("QueueTail must be non-increasing")
	}
	if mm := perf.ModeMarginals(); len(mm) != s.Modes() {
		t.Errorf("mode marginals length %d, want %d", len(mm), s.Modes())
	}
	if perf.Solution() == nil {
		t.Error("Solution() must expose the solver output")
	}
	if perf.TailDecay <= 0 || perf.TailDecay >= 1 {
		t.Errorf("tail decay %v", perf.TailDecay)
	}
	if math.Abs(perf.Load-s.Load()) > 1e-12 {
		t.Errorf("Load field %v vs %v", perf.Load, s.Load())
	}
}

func TestOperativeBreakdown(t *testing.T) {
	// Slow repairs so "servers down" states carry real probability.
	s := System{
		Servers:     3,
		ArrivalRate: 1.8,
		ServiceRate: 1,
		Operative:   paperOps,
		Repair:      dist.Exp(0.2),
	}
	perf, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	bd := perf.OperativeBreakdown()
	if len(bd) != 4 {
		t.Fatalf("breakdown has %d entries, want N+1 = 4", len(bd))
	}
	var totalProb, meanOperative float64
	for x, st := range bd {
		if st.Operative != x {
			t.Errorf("entry %d labelled %d", x, st.Operative)
		}
		if st.Prob < -1e-12 || st.Prob > 1 {
			t.Errorf("P(%d operative) = %v", x, st.Prob)
		}
		totalProb += st.Prob
		meanOperative += float64(x) * st.Prob
	}
	if math.Abs(totalProb-1) > 1e-9 {
		t.Errorf("operative probabilities sum to %v", totalProb)
	}
	// Σ x·P(x) = N·availability.
	if want := 3 * s.Availability(); math.Abs(meanOperative-want) > 1e-9 {
		t.Errorf("mean operative %v, want %v", meanOperative, want)
	}
	// Conditional queue grows as servers fail (fewer operative ⇒ more queue).
	for x := 1; x < len(bd); x++ {
		if math.IsNaN(bd[x-1].MeanQueue) || math.IsNaN(bd[x].MeanQueue) {
			continue
		}
		if bd[x-1].MeanQueue < bd[x].MeanQueue {
			t.Errorf("E[Z | %d operative] = %v below E[Z | %d operative] = %v",
				x-1, bd[x-1].MeanQueue, x, bd[x].MeanQueue)
		}
	}
	// Law of total expectation: Σ P(x)·E[Z|x] = L.
	var l float64
	for _, st := range bd {
		if !math.IsNaN(st.MeanQueue) {
			l += st.Prob * st.MeanQueue
		}
	}
	if rel := math.Abs(l-perf.MeanJobs) / perf.MeanJobs; rel > 1e-6 {
		t.Errorf("Σ P(x)E[Z|x] = %v, L = %v", l, perf.MeanJobs)
	}
}

func TestSolveWithDispatch(t *testing.T) {
	s := fig5System(3, 2)
	for _, m := range []Method{Spectral, Approximation, MatrixGeometric} {
		perf, err := s.SolveWith(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if perf.MeanJobs <= 0 {
			t.Errorf("%v: L = %v", m, perf.MeanJobs)
		}
	}
	if _, err := s.SolveWith(Method(99)); err == nil {
		t.Error("unknown method should fail")
	}
	if Method(99).String() == "" || Spectral.String() != "spectral" {
		t.Error("method names wrong")
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{HoldingCost: 4, ServerCost: 1}
	if c := cm.Cost(10, 12); c != 52 {
		t.Errorf("cost = %v, want 52", c)
	}
}

func TestOptimizeServersMatchesPaperFigure5(t *testing.T) {
	// Paper Figure 5 (c₁=4, c₂=1): the optimal N is 11 for λ=7, 12 for λ=8
	// and 13 for λ=8.5.
	cm := CostModel{HoldingCost: 4, ServerCost: 1}
	cases := []struct {
		lambda float64
		wantN  int
	}{
		{7.0, 11},
		{8.0, 12},
		{8.5, 13},
	}
	for _, c := range cases {
		best, err := OptimizeServers(fig5System(0, c.lambda), cm, 9, 17, Spectral)
		if err != nil {
			t.Fatalf("λ=%v: %v", c.lambda, err)
		}
		if best.Servers != c.wantN {
			t.Errorf("λ=%v: optimal N = %d (cost %v), paper says %d",
				c.lambda, best.Servers, best.Cost, c.wantN)
		}
	}
}

func TestMinServersForResponseTimeMatchesPaperFigure9(t *testing.T) {
	// Paper Figure 9 discussion: for λ = 7.5 and W ≤ 1.5, at least 9 servers.
	pt, err := MinServersForResponseTime(fig5System(0, 7.5), 1.5, 20, Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Servers != 9 {
		t.Errorf("min N = %d (W = %v), paper says 9", pt.Servers, pt.Perf.MeanResponse)
	}
}

func TestMinServersForResponseTimeErrors(t *testing.T) {
	if _, err := MinServersForResponseTime(fig5System(0, 7.5), -1, 20, Spectral); err == nil {
		t.Error("negative target should fail")
	}
	// Impossible target: W can never beat 1/µ = 1.
	if _, err := MinServersForResponseTime(fig5System(0, 7.5), 0.5, 12, Spectral); err == nil {
		t.Error("unreachable target should fail")
	}
}

func TestSweepServersSkipsUnstable(t *testing.T) {
	cm := CostModel{HoldingCost: 4, ServerCost: 1}
	// λ = 8 needs at least N = 9 for stability (capacity 0.99885·N).
	sweep, err := SweepServers(fig5System(0, 8), cm, 5, 12, Spectral)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range sweep {
		if pt.Servers < 9 {
			t.Errorf("unstable N = %d included", pt.Servers)
		}
	}
	if _, err := SweepServers(fig5System(0, 8), cm, 0, 3, Spectral); err == nil {
		t.Error("invalid/unstable range should fail")
	}
}

func TestMinServersForStability(t *testing.T) {
	s := fig5System(0, 8)
	n, err := MinServersForStability(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Servers = n
	if !s.Stable() {
		t.Errorf("N = %d not stable", n)
	}
	s.Servers = n - 1
	if s.Stable() {
		t.Errorf("N = %d already stable; MinServersForStability not minimal", n-1)
	}
}

func TestSimulateAgreesWithSolve(t *testing.T) {
	s := fig5System(3, 1.8)
	perf, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate(SimOptions{Seed: 11, Warmup: 5000, Horizon: 250000})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.MeanQueue-perf.MeanJobs) / perf.MeanJobs; rel > 0.1 {
		t.Errorf("sim L %v vs exact %v (rel %v)", res.MeanQueue, perf.MeanJobs, rel)
	}
}

func TestSimulateOverrideDistributions(t *testing.T) {
	// Override with deterministic operative periods (C²=0): must run fine.
	s := fig5System(3, 1.5)
	res, err := s.Simulate(SimOptions{
		Seed:      12,
		Warmup:    500,
		Horizon:   20000,
		Operative: dist.Deterministic{Value: paperOps.Mean()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanQueue <= 0 {
		t.Errorf("L = %v", res.MeanQueue)
	}
}
