package core

import (
	"testing"

	"repro/internal/dist"
)

func fpSystem() System {
	return System{
		Servers:     10,
		ArrivalRate: 8,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := fpSystem(), fpSystem()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical systems produced different fingerprints")
	}
	if got := a.Fingerprint(); got != a.Fingerprint() {
		t.Errorf("fingerprint not deterministic: %s vs %s", got, a.Fingerprint())
	}
	if len(a.Fingerprint()) != 64 {
		t.Errorf("fingerprint length %d, want 64 hex chars", len(a.Fingerprint()))
	}
}

func TestFingerprintSeparatesParameters(t *testing.T) {
	base := fpSystem()
	seen := map[string]string{base.Fingerprint(): "base"}
	record := func(name string, s System) {
		fp := s.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}

	s := fpSystem()
	s.Servers = 11
	record("servers", s)

	s = fpSystem()
	s.ArrivalRate = 8.0000000001
	record("lambda-epsilon", s)

	s = fpSystem()
	s.ServiceRate = 2
	record("mu", s)

	s = fpSystem()
	s.Operative = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0092})
	record("op-rate", s)

	s = fpSystem()
	s.Repair = dist.Exp(26)
	record("rep-rate", s)

	// Swapping operative and repair must not alias (tagged sections).
	s = fpSystem()
	s.Operative, s.Repair = s.Repair, s.Operative
	record("swapped", s)
}

func TestFingerprintNilDistributions(t *testing.T) {
	// Invalid systems still fingerprint (callers validate separately).
	var s System
	if s.Fingerprint() == fpSystem().Fingerprint() {
		t.Error("zero system collides with populated system")
	}
}
