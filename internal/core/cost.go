package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// CostModel is the paper's linear trade-off (eq. 22): holding a job costs
// c₁ per unit time, providing a server costs c₂ per unit time, so the
// steady-state total cost of an N-server cluster is C = c₁L + c₂N.
type CostModel struct {
	// HoldingCost is c₁.
	HoldingCost float64
	// ServerCost is c₂.
	ServerCost float64
}

// Cost evaluates C = c₁L + c₂N.
func (c CostModel) Cost(meanJobs float64, servers int) float64 {
	return c.HoldingCost*meanJobs + c.ServerCost*float64(servers)
}

// Method selects the solver used by the optimisation helpers.
type Method int

const (
	// Spectral is the exact spectral-expansion solution.
	Spectral Method = iota
	// Approximation is the one-eigenvalue geometric approximation.
	Approximation
	// MatrixGeometric is the exact R-matrix solution.
	MatrixGeometric
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Spectral:
		return "spectral"
	case Approximation:
		return "approximation"
	case MatrixGeometric:
		return "matrix-geometric"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SolveWith dispatches to the chosen solver.
func (s System) SolveWith(m Method) (*Performance, error) {
	switch m {
	case Spectral:
		return s.Solve()
	case Approximation:
		return s.SolveApprox()
	case MatrixGeometric:
		return s.SolveMatrixGeometric()
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
}

// ServerSweepPoint is one entry of a sweep over the number of servers.
type ServerSweepPoint struct {
	Servers int
	Perf    *Performance
	Cost    float64
}

// SweepServers solves the system for every N in [minN, maxN] (skipping
// unstable configurations) and returns the per-N performance and cost in
// ascending N order. The solves are independent, so they run on a bounded
// worker pool; results stay deterministic because each worker writes only
// its own slot.
func SweepServers(base System, cm CostModel, minN, maxN int, m Method) ([]ServerSweepPoint, error) {
	if minN < 1 || maxN < minN {
		return nil, fmt.Errorf("core: invalid server range [%d, %d]", minN, maxN)
	}
	type slot struct {
		pt  ServerSweepPoint
		err error
		ok  bool
	}
	slots := make([]slot, maxN-minN+1)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for n := minN; n <= maxN; n++ {
		sys := base
		sys.Servers = n
		if !sys.Stable() {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i, n int, sys System) {
			defer wg.Done()
			defer func() { <-sem }()
			perf, err := sys.SolveWith(m)
			if err != nil {
				slots[i] = slot{err: fmt.Errorf("core: N = %d: %w", n, err)}
				return
			}
			slots[i] = slot{
				pt: ServerSweepPoint{Servers: n, Perf: perf, Cost: cm.Cost(perf.MeanJobs, n)},
				ok: true,
			}
		}(n-minN, n, sys)
	}
	wg.Wait()
	var out []ServerSweepPoint
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		if s.ok {
			out = append(out, s.pt)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("core: no stable configuration in the requested range")
	}
	return out, nil
}

// OptimizeServers returns the N in [minN, maxN] minimising C = c₁L + c₂N —
// the paper's third introduction question, answered in Figure 5. Because L
// decreases in N while c₂N grows linearly, the cost is unimodal in N; the
// search therefore stops early once the cost has not decreased for three
// consecutive stable configurations, which keeps the expensive large-N
// solves out of the loop.
func OptimizeServers(base System, cm CostModel, minN, maxN int, m Method) (ServerSweepPoint, error) {
	return optimizeServers(base, cm, minN, maxN, func(sys System) (*Performance, error) {
		return sys.SolveWith(m)
	})
}

// costTol is the relative tolerance under which two consecutive costs count
// as equal for the early-stop rule of optimizeServers.
const costTol = 1e-9

// optimizeServers is OptimizeServers with the solver injected, so the
// early-stop behaviour is testable against synthetic cost curves.
func optimizeServers(base System, cm CostModel, minN, maxN int, solve func(System) (*Performance, error)) (ServerSweepPoint, error) {
	if minN < 1 || maxN < minN {
		return ServerSweepPoint{}, fmt.Errorf("core: invalid server range [%d, %d]", minN, maxN)
	}
	var best ServerSweepPoint
	found := false
	rises := 0
	prev := math.Inf(1)
	for n := minN; n <= maxN; n++ {
		sys := base
		sys.Servers = n
		if !sys.Stable() {
			continue
		}
		perf, err := solve(sys)
		if err != nil {
			return ServerSweepPoint{}, fmt.Errorf("core: N = %d: %w", n, err)
		}
		pt := ServerSweepPoint{Servers: n, Perf: perf, Cost: cm.Cost(perf.MeanJobs, n)}
		if !found || pt.Cost < best.Cost {
			best = pt
			found = true
		}
		// A non-decreasing step counts as a rise: past the minimum of a
		// unimodal curve the cost can only stay flat or grow, so an
		// equal-cost plateau (within costTol of float noise) must trip the
		// cutoff too — a strict comparison would reset the counter on every
		// flat point and solve all the way to maxN.
		if pt.Cost >= prev-costTol*math.Max(1, math.Abs(prev)) {
			rises++
			if rises >= 3 {
				break
			}
		} else {
			rises = 0
		}
		prev = pt.Cost
	}
	if !found {
		return ServerSweepPoint{}, errors.New("core: no stable configuration in the requested range")
	}
	return best, nil
}

// MinServersForResponseTime returns the smallest N ≤ maxN whose mean
// response time does not exceed target — the paper's second introduction
// question, answered in Figure 9 ("at least 9 servers should be deployed"
// for W ≤ 1.5 at λ = 7.5).
func MinServersForResponseTime(base System, target float64, maxN int, m Method) (ServerSweepPoint, error) {
	if target <= 0 {
		return ServerSweepPoint{}, fmt.Errorf("core: target response time %v must be positive", target)
	}
	for n := 1; n <= maxN; n++ {
		sys := base
		sys.Servers = n
		if !sys.Stable() {
			continue
		}
		perf, err := sys.SolveWith(m)
		if err != nil {
			return ServerSweepPoint{}, fmt.Errorf("core: N = %d: %w", n, err)
		}
		if perf.MeanResponse <= target {
			return ServerSweepPoint{Servers: n, Perf: perf}, nil
		}
	}
	return ServerSweepPoint{}, fmt.Errorf("core: no N ≤ %d achieves W ≤ %v", maxN, target)
}

// MinServersForStability returns the smallest N satisfying eq. (11),
// ⌈(λ/µ)·(ξ+η)/η⌉ (+1 when the load is exactly 1). The rates must be
// usable: a non-positive arrival or service rate, a missing distribution,
// or zero availability (repairs that never complete) admits no stabilising
// N at all and returns an error instead of ⌈NaN⌉ garbage.
func MinServersForStability(base System) (int, error) {
	if !(base.ArrivalRate > 0) || math.IsInf(base.ArrivalRate, 0) {
		return 0, fmt.Errorf("core: arrival rate %v must be positive and finite", base.ArrivalRate)
	}
	if !(base.ServiceRate > 0) || math.IsInf(base.ServiceRate, 0) {
		return 0, fmt.Errorf("core: service rate %v must be positive and finite", base.ServiceRate)
	}
	if base.Operative == nil || base.Repair == nil {
		return 0, errors.New("core: operative and repair distributions are required")
	}
	avail := base.Availability()
	if !(avail > 0) {
		return 0, fmt.Errorf("core: availability %v must be positive (zero repair rate?)", avail)
	}
	needed := base.ArrivalRate / base.ServiceRate / avail
	n := int(math.Ceil(needed))
	if float64(n) <= needed {
		n++
	}
	return n, nil
}
