package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenvaluesDiagonal(t *testing.T) {
	ev, err := Eigenvalues(Diag([]float64{3, -1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	assertEigenvalueSet(t, ev, []complex128{3, -1, 2}, 1e-10)
}

func TestEigenvaluesTriangular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 5, 9},
		{0, 2, 7},
		{0, 0, 3},
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	assertEigenvalueSet(t, ev, []complex128{1, 2, 3}, 1e-10)
}

func TestEigenvaluesRotation(t *testing.T) {
	// A rotation by θ has eigenvalues e^{±iθ}.
	theta := 0.7
	a := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{
		complex(math.Cos(theta), math.Sin(theta)),
		complex(math.Cos(theta), -math.Sin(theta)),
	}
	assertEigenvalueSet(t, ev, want, 1e-12)
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of p(x) = (x−1)(x−2)(x−3)(x+4)
	//                         = x⁴ − 2x³ − 13x² + 38x − 24.
	coef := []float64{-24, 38, -13, -2} // constant..cubic of monic quartic
	n := len(coef)
	a := NewMatrix(n, n)
	for i := 1; i < n; i++ {
		a.Set(i, i-1, 1)
	}
	for i := 0; i < n; i++ {
		a.Set(i, n-1, -coef[i])
	}
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	assertEigenvalueSet(t, ev, []complex128{1, 2, 3, -4}, 1e-8)
}

func TestEigenvaluesComplexQuadruple(t *testing.T) {
	// Block diagonal with two rotation-scaled blocks: eigenvalues
	// 2e^{±i·0.3}, 0.5e^{±i·1.1}.
	mk := func(r, th float64) [][]float64 {
		return [][]float64{
			{r * math.Cos(th), -r * math.Sin(th)},
			{r * math.Sin(th), r * math.Cos(th)},
		}
	}
	b1 := mk(2, 0.3)
	b2 := mk(0.5, 1.1)
	a := FromRows([][]float64{
		{b1[0][0], b1[0][1], 0, 0},
		{b1[1][0], b1[1][1], 0, 0},
		{0, 0, b2[0][0], b2[0][1]},
		{0, 0, b2[1][0], b2[1][1]},
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{
		complex(2*math.Cos(0.3), 2*math.Sin(0.3)),
		complex(2*math.Cos(0.3), -2*math.Sin(0.3)),
		complex(0.5*math.Cos(1.1), 0.5*math.Sin(1.1)),
		complex(0.5*math.Cos(1.1), -0.5*math.Sin(1.1)),
	}
	assertEigenvalueSet(t, ev, want, 1e-10)
}

func TestEigenvaluesTraceDetProperty(t *testing.T) {
	// Σλ = trace(A) and Πλ = det(A) for random matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		ev, err := Eigenvalues(a)
		if err != nil || len(ev) != n {
			return false
		}
		var sum complex128 = 0
		var prod complex128 = 1
		for _, l := range ev {
			sum += l
			prod *= l
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		det := FactorLU(a).Det()
		scale := 1 + math.Abs(tr)
		if math.Abs(real(sum)-tr) > 1e-8*scale || math.Abs(imag(sum)) > 1e-8*scale {
			return false
		}
		dscale := 1 + math.Abs(det)
		return math.Abs(real(prod)-det) <= 1e-6*dscale && math.Abs(imag(prod)) <= 1e-6*dscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEigenvaluesSimilarityInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	a := randomMatrix(rng, n, n)
	p := randomMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		p.Add(i, i, float64(n))
	}
	pinv, err := Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Times(a).Times(pinv)
	evA, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := Eigenvalues(b)
	if err != nil {
		t.Fatal(err)
	}
	assertEigenvalueSet(t, evB, evA, 1e-6)
}

func TestEigenvaluesEmptyAndTiny(t *testing.T) {
	ev, err := Eigenvalues(NewMatrix(0, 0))
	if err != nil || len(ev) != 0 {
		t.Fatalf("empty: ev=%v err=%v", ev, err)
	}
	ev, err = Eigenvalues(FromRows([][]float64{{42}}))
	if err != nil || len(ev) != 1 || ev[0] != 42 {
		t.Fatalf("1×1: ev=%v err=%v", ev, err)
	}
	ev, err = Eigenvalues(FromRows([][]float64{{0, 1}, {-1, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	assertEigenvalueSet(t, ev, []complex128{complex(0, 1), complex(0, -1)}, 1e-12)
}

func TestEigenvaluesZeroMatrix(t *testing.T) {
	ev, err := Eigenvalues(NewMatrix(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ev {
		if l != 0 {
			t.Fatalf("zero matrix eigenvalue %v != 0", l)
		}
	}
}

func TestEigenvaluesDefective(t *testing.T) {
	// Jordan block: defective eigenvalue 5 with multiplicity 3.
	a := FromRows([][]float64{
		{5, 1, 0},
		{0, 5, 1},
		{0, 0, 5},
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ev {
		if absC(l-5) > 1e-4 { // defective: accuracy degrades to ε^(1/3)
			t.Fatalf("Jordan block eigenvalue %v too far from 5", l)
		}
	}
}

func TestSortEigenvalues(t *testing.T) {
	ev := []complex128{complex(1, -2), 3, complex(1, 2), -3}
	SortEigenvalues(ev)
	if ev[0] != 3 || ev[1] != -3 {
		t.Fatalf("modulus-descending order wrong: %v", ev)
	}
	if ev[2] != complex(1, 2) || ev[3] != complex(1, -2) {
		t.Fatalf("conjugate pair order wrong: %v", ev)
	}
}

// assertEigenvalueSet checks the two multisets match via greedy matching.
func assertEigenvalueSet(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d eigenvalues, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	g := append([]complex128(nil), got...)
	sort.Slice(g, func(i, j int) bool { return cmpC(g[i], g[j]) })
	w := append([]complex128(nil), want...)
	sort.Slice(w, func(i, j int) bool { return cmpC(w[i], w[j]) })
	for i := range g {
		if absC(g[i]-w[i]) > tol {
			t.Fatalf("eigenvalue %d: got %v, want %v (full: %v vs %v)", i, g[i], w[i], g, w)
		}
	}
}

func cmpC(a, b complex128) bool {
	if real(a) != real(b) {
		return real(a) < real(b)
	}
	return imag(a) < imag(b)
}
