// Package linalg provides the dense real and complex linear-algebra kernels
// required by the spectral-expansion solver: LU factorisation, linear solves,
// determinants in log form, matrix inversion, a Francis double-shift QR
// eigenvalue solver, and rank-deficient null-space extraction.
//
// Conventions: matrices are dense, row-major. Dimension mismatches are
// programmer errors and panic (as in gonum); numerical failures such as
// singularity or non-convergence are reported as errors.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries; element (i,j) is Data[i*Cols+j].
	Data []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the main diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := NewMatrix(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row)))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Plus returns m + b.
func (m *Matrix) Plus(b *Matrix) *Matrix {
	m.sameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Minus returns m − b.
func (m *Matrix) Minus(b *Matrix) *Matrix {
	m.sameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Scaled returns m scaled by s.
func (m *Matrix) Scaled(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Times returns the matrix product m·b.
func (m *Matrix) Times(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: product shape mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mrow {
			if mik == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range brow {
				orow[j] += mik * bkj
			}
		}
	}
	return out
}

// VecTimes returns the row-vector product v·m.
func (m *Matrix) VecTimes(v []float64) []float64 {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("linalg: vec·mat shape mismatch len %d vs %d rows", len(v), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, mij := range row {
			out[j] += vi * mij
		}
	}
	return out
}

// TimesVec returns the column-vector product m·v.
func (m *Matrix) TimesVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: mat·vec shape mismatch %d cols vs len %d", m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, mij := range row {
			s += mij * v[j]
		}
		out[i] = s
	}
	return out
}

// RowSums returns the vector of row sums.
func (m *Matrix) RowSums() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for _, v := range row {
			s += v
		}
		out[i] = s
	}
	return out
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equalish reports whether m and b agree entrywise within tol.
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%10.5g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func (m *Matrix) sameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

func (m *Matrix) square() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: matrix must be square, got %d×%d", m.Rows, m.Cols))
	}
}
