package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorisation or solve meets an exactly
// singular (or numerically rank-deficient) matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorisation with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int // determinant sign of the permutation: +1 or −1
}

// FactorLU computes the LU factorisation of a square matrix a with partial
// (row) pivoting. The factorisation succeeds even when a is singular; Solve
// and Det report singularity at use time, so callers that only need the
// determinant sign of a near-singular matrix still get an answer.
func FactorLU(a *Matrix) *LU {
	a.square()
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		if pivot == 0 {
			continue // singular; leave zero column, detected on use
		}
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Data[i*n+j] -= m * lu.Data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}
}

// IsSingular reports whether the factored matrix has a zero pivot.
func (f *LU) IsSingular() bool {
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		if f.lu.At(i, i) == 0 {
			return true
		}
	}
	return false
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// LogDet returns the determinant in sign/log-magnitude form:
// det = sign · exp(logAbs). A zero determinant yields sign 0 and logAbs −Inf.
// This form never overflows, which matters when scanning det Q(z) for the
// dominant eigenvalue of large characteristic polynomials.
func (f *LU) LogDet() (logAbs float64, sign int) {
	sign = f.sign
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d := f.lu.At(i, i)
		if d == 0 {
			return math.Inf(-1), 0
		}
		if d < 0 {
			sign = -sign
			d = -d
		}
		logAbs += math.Log(d)
	}
	return logAbs, sign
}

// Solve solves A·x = b for x.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, errors.New("linalg: rhs length mismatch")
	}
	if f.IsSingular() {
		return nil, ErrSingular
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu.Data[i*n : i*n+i]
		for j, l := range row {
			s += l * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x, nil
}

// SolveMatrix solves A·X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	n := f.lu.Rows
	if b.Rows != n {
		return nil, errors.New("linalg: rhs row count mismatch")
	}
	out := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Inverse returns A⁻¹ for a square matrix a.
func Inverse(a *Matrix) (*Matrix, error) {
	return FactorLU(a).SolveMatrix(Identity(a.Rows))
}

// Solve solves A·x = b with a fresh factorisation.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	return FactorLU(a).Solve(b)
}

// SolveTranspose solves xᵀ·A = bᵀ (a row-vector system) by factoring Aᵀ.
func SolveTranspose(a *Matrix, b []float64) ([]float64, error) {
	return FactorLU(a.T()).Solve(b)
}
