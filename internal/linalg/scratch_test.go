package linalg

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"
)

// The scratch kernels promise bit-identical results to their reference
// counterparts (on amd64, where the compiler does not contract
// multiply-adds into FMAs; elsewhere both sides carry the same expression
// shapes, so agreement is still expected but asserted with a tolerance).

const exactArch = "amd64"

func requireSameF64(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	for i := range want {
		if runtime.GOARCH == exactArch {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("%s[%d]: %v (%x) != %v (%x)", what, i,
					want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
			}
			continue
		}
		if diff := math.Abs(want[i] - got[i]); diff > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d]: %v != %v", what, i, want[i], got[i])
		}
	}
}

func requireSameC128(t *testing.T, what string, want, got []complex128) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	for i := range want {
		if runtime.GOARCH == exactArch {
			if math.Float64bits(real(want[i])) != math.Float64bits(real(got[i])) ||
				math.Float64bits(imag(want[i])) != math.Float64bits(imag(got[i])) {
				t.Fatalf("%s[%d]: %v != %v", what, i, want[i], got[i])
			}
			continue
		}
		if diff := cmplx.Abs(want[i] - got[i]); diff > 1e-12*(1+cmplx.Abs(want[i])) {
			t.Fatalf("%s[%d]: %v != %v", what, i, want[i], got[i])
		}
	}
}

// randomTestMatrix mixes smooth random matrices with tie-heavy small-integer
// matrices; the latter hit the degenerate pivot paths (equal maxima, zero
// multipliers, repeated entries) where a cheaper pivot search could
// plausibly diverge from the reference scan order.
func randomTestMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	if rng.Intn(2) == 0 {
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
	} else {
		for i := range m.Data {
			m.Data[i] = float64(rng.Intn(5) - 2)
		}
	}
	return m
}

func TestEigenvaluesScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ar Arena
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		m := randomTestMatrix(rng, n)
		want, wantErr := Eigenvalues(m)
		ar.Reset()
		got, gotErr := EigenvaluesScratch(m.Clone(), &ar)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		requireSameC128(t, "eigenvalues", want, got)
	}
}

func TestForcedNullVectorScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ar Arena
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(10)
		m := randomTestMatrix(rng, n)
		if rng.Intn(2) == 0 && n > 1 {
			// Force genuine rank deficiency: overwrite a row with a copy.
			src, dst := rng.Intn(n), rng.Intn(n)
			copy(m.Data[dst*n:(dst+1)*n], m.Data[src*n:(src+1)*n])
		}
		want, wantErr := ForcedNullVector(m, 0)
		ar.Reset()
		got, gotErr := ForcedNullVectorScratch(m.Clone(), 0, &ar)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		requireSameF64(t, "null vector", want, got)
	}
}

func TestCForcedNullVectorScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var ar Arena
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(8)
		m := NewCMatrix(n, n)
		if rng.Intn(2) == 0 {
			for i := range m.Data {
				m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		} else {
			for i := range m.Data {
				m.Data[i] = complex(float64(rng.Intn(3)-1), float64(rng.Intn(3)-1))
			}
		}
		if rng.Intn(2) == 0 && n > 1 {
			src, dst := rng.Intn(n), rng.Intn(n)
			copy(m.Data[dst*n:(dst+1)*n], m.Data[src*n:(src+1)*n])
		}
		want, wantErr := CForcedNullVector(m, 0)
		ar.Reset()
		got, gotErr := CForcedNullVectorScratch(m.Clone(), 0, &ar)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		requireSameC128(t, "null vector", want, got)
	}
}

func TestInverseScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ar Arena
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		m := randomTestMatrix(rng, n)
		want, wantErr := Inverse(m)
		ar.Reset()
		got, gotErr := InverseScratch(m.Clone(), &ar)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, wantErr, gotErr)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, ErrSingular) {
				t.Fatalf("trial %d: want ErrSingular, got %v", trial, gotErr)
			}
			continue
		}
		requireSameF64(t, "inverse", want.Data, got.Data)
	}
}

func TestInverseScratchSingular(t *testing.T) {
	var ar Arena
	m := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := InverseScratch(m, &ar); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// TestScratchKernelsAllocationFree pins the arena contract: once the arena
// has grown to its high-water mark, repeated solves allocate nothing.
func TestScratchKernelsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 12
	src := randomTestMatrix(rng, n)
	for i := 0; i < n; i++ {
		src.Data[i*n+i] += float64(n) // diagonally dominant: invertible
	}
	var ar Arena
	work := NewMatrix(n, n)
	run := func() {
		ar.Reset()
		copy(work.Data, src.Data)
		if _, err := EigenvaluesScratch(work, &ar); err != nil {
			t.Fatal(err)
		}
		copy(work.Data, src.Data)
		if _, err := ForcedNullVectorScratch(work, 0, &ar); err != nil {
			t.Fatal(err)
		}
		copy(work.Data, src.Data)
		if _, err := InverseScratch(work, &ar); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena to its high-water mark
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("scratch kernels allocated %v times per run, want 0", allocs)
	}
}
