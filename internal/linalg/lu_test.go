package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		// Diagonal boost keeps the random matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := randomVec(rng, n)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := a.TimesVec(x)
		for i := range b {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetKnown(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want float64
	}{
		{Identity(4), 1},
		{FromRows([][]float64{{2, 0}, {0, 3}}), 6},
		{FromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{FromRows([][]float64{{0, 1}, {1, 0}}), -1},
		{FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}), 0},
	}
	for i, c := range cases {
		if got := FactorLU(c.m).Det(); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("case %d: det = %v, want %v", i, got, c.want)
		}
	}
}

func TestLogDetMatchesDet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		f := FactorLU(a)
		det := f.Det()
		logAbs, sign := f.LogDet()
		if det == 0 {
			return sign == 0
		}
		rec := float64(sign) * math.Exp(logAbs)
		return math.Abs(rec-det) <= 1e-9*math.Abs(det)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogDetSingular(t *testing.T) {
	logAbs, sign := FactorLU(NewMatrix(3, 3)).LogDet()
	if sign != 0 || !math.IsInf(logAbs, -1) {
		t.Fatalf("singular LogDet = (%v, %d), want (-Inf, 0)", logAbs, sign)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRHSLengthMismatch(t *testing.T) {
	if _, err := Solve(Identity(3), []float64{1}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Times(inv).Equalish(Identity(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveMatrix(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := FromRows([][]float64{{1, 0}, {0, 1}})
	x, err := FactorLU(a).SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Times(x).Equalish(Identity(2), 1e-12) {
		t.Fatalf("A·X != I: %v", a.Times(x))
	}
}

func TestSolveTranspose(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {0, 3}})
	b := []float64{4, 7}
	x, err := SolveTranspose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify xᵀ·A = bᵀ.
	got := a.VecTimes(x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-12 {
			t.Fatalf("xᵀA = %v, want %v", got, b)
		}
	}
}

func TestPermutationSign(t *testing.T) {
	// A pure permutation matrix: det = sign of the permutation.
	p := FromRows([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	}) // cyclic 3-permutation, even, det = +1
	if got := FactorLU(p).Det(); math.Abs(got-1) > 1e-14 {
		t.Fatalf("det(perm) = %v, want 1", got)
	}
}
