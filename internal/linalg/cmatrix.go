package linalg

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense, row-major complex matrix.
type CMatrix struct {
	Rows, Cols int
	// Data holds the entries; element (i,j) is Data[i*Cols+j].
	Data []complex128
}

// NewCMatrix returns a zero r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %d×%d", r, c))
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// Complexify converts a real matrix to a complex one.
func Complexify(m *Matrix) *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		c.Data[i] = complex(v, 0)
	}
	return c
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the (non-conjugating) transpose of m.
func (m *CMatrix) T() *CMatrix {
	t := NewCMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// VecTimes returns the row-vector product v·m.
func (m *CMatrix) VecTimes(v []complex128) []complex128 {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("linalg: vec·mat shape mismatch len %d vs %d rows", len(v), m.Rows))
	}
	out := make([]complex128, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, mij := range row {
			out[j] += vi * mij
		}
	}
	return out
}

// MaxAbs returns the largest entry modulus.
func (m *CMatrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

func (m *CMatrix) square() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: matrix must be square, got %d×%d", m.Rows, m.Cols))
	}
}

// CLU holds a complex LU factorisation with partial pivoting.
type CLU struct {
	lu   *CMatrix
	piv  []int
	sign int
}

// FactorCLU computes the LU factorisation of a square complex matrix with
// partial pivoting (pivot by modulus).
func FactorCLU(a *CMatrix) *CLU {
	a.square()
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		p := k
		mx := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		if pivot == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Data[i*n+j] -= m * lu.Data[k*n+j]
			}
		}
	}
	return &CLU{lu: lu, piv: piv, sign: sign}
}

// IsSingular reports whether the factored matrix has a zero pivot.
func (f *CLU) IsSingular() bool {
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		if f.lu.At(i, i) == 0 {
			return true
		}
	}
	return false
}

// Det returns the determinant of the factored matrix.
func (f *CLU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b for complex x.
func (f *CLU) Solve(b []complex128) ([]complex128, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	if f.IsSingular() {
		return nil, ErrSingular
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		var s complex128
		row := f.lu.Data[i*n : i*n+i]
		for j, l := range row {
			s += l * x[j]
		}
		x[i] -= s
	}
	for i := n - 1; i >= 0; i-- {
		var s complex128
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x, nil
}
