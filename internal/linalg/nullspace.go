package linalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrFullRank is returned by null-space extraction when the matrix has no
// (numerical) null vector at the requested tolerance.
var ErrFullRank = errors.New("linalg: matrix is numerically full rank, no null vector")

// NullVector returns a right null vector x (‖x‖∞ = 1) of a square matrix a
// that is expected to have rank n−1, using Gaussian elimination with full
// pivoting. rtol is the relative rank tolerance (entries below rtol·maxpivot
// are treated as zero); pass 0 for a default of 1e-10.
//
// The spectral-expansion solver calls this to recover the eigenvector for
// each root of det Q(z): Q(z_k) is singular by construction, so elimination
// leaves exactly one free column.
func NullVector(a *Matrix, rtol float64) ([]float64, error) {
	return nullVector(a, rtol, false)
}

// ForcedNullVector is NullVector for matrices known to be singular by
// construction (e.g. Q(z_k) at a computed eigenvalue, or a censored-chain
// generator): when elimination finds full numerical rank, the smallest —
// final — pivot is treated as zero instead of returning ErrFullRank. Full
// pivoting guarantees that pivot is the least significant one.
func ForcedNullVector(a *Matrix, rtol float64) ([]float64, error) {
	return nullVector(a, rtol, true)
}

func nullVector(a *Matrix, rtol float64, force bool) ([]float64, error) {
	if rtol <= 0 {
		rtol = 1e-10
	}
	a.square()
	n := a.Rows
	w := a.Clone()
	colPerm := make([]int, n)
	for i := range colPerm {
		colPerm[i] = i
	}
	var maxPivot float64
	rank := 0
	for k := 0; k < n; k++ {
		// Full pivot over the trailing submatrix.
		pi, pj, mx := k, k, 0.0
		for i := k; i < n; i++ {
			for j := k; j < n; j++ {
				if v := math.Abs(w.At(i, j)); v > mx {
					mx, pi, pj = v, i, j
				}
			}
		}
		if k == 0 {
			maxPivot = mx
			if maxPivot == 0 {
				// Zero matrix: any unit vector is a null vector.
				x := make([]float64, n)
				x[0] = 1
				return x, nil
			}
		}
		if mx <= rtol*maxPivot {
			break // numerical rank reached
		}
		rank++
		swapRows(w, k, pi)
		swapCols(w, k, pj)
		colPerm[k], colPerm[pj] = colPerm[pj], colPerm[k]
		pivot := w.At(k, k)
		for i := k + 1; i < n; i++ {
			m := w.At(i, k) / pivot
			if m == 0 {
				continue
			}
			w.Set(i, k, 0)
			for j := k + 1; j < n; j++ {
				w.Data[i*n+j] -= m * w.Data[k*n+j]
			}
		}
	}
	if rank == n {
		if !force {
			return nil, ErrFullRank
		}
		rank = n - 1 // treat the smallest pivot as zero
	}
	// Back-substitute with the first free variable set to 1, the rest to 0.
	y := make([]float64, n)
	y[rank] = 1
	for i := rank - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j <= rank; j++ {
			s += w.At(i, j) * y[j]
		}
		y[i] = -s / w.At(i, i)
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[colPerm[k]] = y[k]
	}
	normalizeInf(x)
	return x, nil
}

// LeftNullVector returns a row vector u (‖u‖∞ = 1) with u·a ≈ 0.
func LeftNullVector(a *Matrix, rtol float64) ([]float64, error) {
	return NullVector(a.T(), rtol)
}

// ForcedLeftNullVector is LeftNullVector with the ForcedNullVector rank
// policy.
func ForcedLeftNullVector(a *Matrix, rtol float64) ([]float64, error) {
	return ForcedNullVector(a.T(), rtol)
}

// CNullVector is the complex analogue of NullVector.
func CNullVector(a *CMatrix, rtol float64) ([]complex128, error) {
	return cNullVector(a, rtol, false)
}

// CForcedNullVector is the complex analogue of ForcedNullVector.
func CForcedNullVector(a *CMatrix, rtol float64) ([]complex128, error) {
	return cNullVector(a, rtol, true)
}

func cNullVector(a *CMatrix, rtol float64, force bool) ([]complex128, error) {
	if rtol <= 0 {
		rtol = 1e-10
	}
	a.square()
	n := a.Rows
	w := a.Clone()
	colPerm := make([]int, n)
	for i := range colPerm {
		colPerm[i] = i
	}
	var maxPivot float64
	rank := 0
	for k := 0; k < n; k++ {
		pi, pj, mx := k, k, 0.0
		for i := k; i < n; i++ {
			for j := k; j < n; j++ {
				if v := cmplx.Abs(w.At(i, j)); v > mx {
					mx, pi, pj = v, i, j
				}
			}
		}
		if k == 0 {
			maxPivot = mx
			if maxPivot == 0 {
				x := make([]complex128, n)
				x[0] = 1
				return x, nil
			}
		}
		if mx <= rtol*maxPivot {
			break
		}
		rank++
		cswapRows(w, k, pi)
		cswapCols(w, k, pj)
		colPerm[k], colPerm[pj] = colPerm[pj], colPerm[k]
		pivot := w.At(k, k)
		for i := k + 1; i < n; i++ {
			m := w.At(i, k) / pivot
			if m == 0 {
				continue
			}
			w.Set(i, k, 0)
			for j := k + 1; j < n; j++ {
				w.Data[i*n+j] -= m * w.Data[k*n+j]
			}
		}
	}
	if rank == n {
		if !force {
			return nil, ErrFullRank
		}
		rank = n - 1
	}
	y := make([]complex128, n)
	y[rank] = 1
	for i := rank - 1; i >= 0; i-- {
		var s complex128
		for j := i + 1; j <= rank; j++ {
			s += w.At(i, j) * y[j]
		}
		y[i] = -s / w.At(i, i)
	}
	x := make([]complex128, n)
	for k := 0; k < n; k++ {
		x[colPerm[k]] = y[k]
	}
	cnormalizeInf(x)
	return x, nil
}

// CLeftNullVector returns a complex row vector u (‖u‖∞ = 1) with u·a ≈ 0.
func CLeftNullVector(a *CMatrix, rtol float64) ([]complex128, error) {
	return CNullVector(a.T(), rtol)
}

// CForcedLeftNullVector is CLeftNullVector with the forced rank policy.
func CForcedLeftNullVector(a *CMatrix, rtol float64) ([]complex128, error) {
	return CForcedNullVector(a.T(), rtol)
}

func swapRows(m *Matrix, a, b int) {
	if a == b {
		return
	}
	n := m.Cols
	for j := 0; j < n; j++ {
		m.Data[a*n+j], m.Data[b*n+j] = m.Data[b*n+j], m.Data[a*n+j]
	}
}

func swapCols(m *Matrix, a, b int) {
	if a == b {
		return
	}
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		m.Data[i*n+a], m.Data[i*n+b] = m.Data[i*n+b], m.Data[i*n+a]
	}
}

func cswapRows(m *CMatrix, a, b int) {
	if a == b {
		return
	}
	n := m.Cols
	for j := 0; j < n; j++ {
		m.Data[a*n+j], m.Data[b*n+j] = m.Data[b*n+j], m.Data[a*n+j]
	}
}

func cswapCols(m *CMatrix, a, b int) {
	if a == b {
		return
	}
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		m.Data[i*n+a], m.Data[i*n+b] = m.Data[i*n+b], m.Data[i*n+a]
	}
}

func normalizeInf(x []float64) {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return
	}
	for i := range x {
		x[i] /= mx
	}
}

func cnormalizeInf(x []complex128) {
	var mx float64
	idx := 0
	for i, v := range x {
		if a := cmplx.Abs(v); a > mx {
			mx, idx = a, i
		}
	}
	if mx == 0 {
		return
	}
	// Divide by the largest element itself so the result has a real, positive
	// pivot entry — keeps conjugate eigenvector pairs exactly conjugate.
	p := x[idx]
	for i := range x {
		x[i] /= p
	}
}
