package linalg

import (
	"math"
	"math/cmplx"
)

// This file is the allocation-free mirror of the package's solver kernels,
// built for the batched sweep path (qbd.SweepSolver): every routine here
// takes an Arena for its working memory and is written to perform the
// *identical* floating-point operation sequence as its reference
// counterpart in eigen.go / nullspace.go / lu.go — same pivot choices, same
// association order, same special-case branches — so results are
// bit-identical on platforms without automatic FMA contraction (amd64).
// The speed comes from memory reuse, direct Data indexing instead of
// At/Set, skipping defensive clones/transposes the caller does not need,
// and cheaper pivot searches that are proven to select the same pivots.
// scratch_test.go enforces both properties: exact agreement with the
// reference kernels and zero allocations after warmup.

// Arena is a grow-only typed scratch allocator. Handouts are slices of a
// few large backing arrays; Reset recycles everything at once, so a solver
// that allocates all working state from one Arena reaches a steady state
// with zero allocations per solve. Slices handed out before an internal
// regrowth remain valid (they keep the old backing array); only slices
// obtained after the last Reset may be used. An Arena must not be shared
// between goroutines.
type Arena struct {
	f64   []float64
	f64n  int
	c128  []complex128
	c128n int
	ints  []int
	intn  int
	mats  []*Matrix
	matn  int
	cmats []*CMatrix
	cmatn int
}

// Reset recycles every outstanding handout. Slices and matrices obtained
// before the call must no longer be used.
func (a *Arena) Reset() {
	a.f64n, a.c128n, a.intn, a.matn, a.cmatn = 0, 0, 0, 0, 0
}

func (a *Arena) f64Raw(n int) []float64 {
	if a.f64n+n > len(a.f64) {
		size := 2 * len(a.f64)
		if size < a.f64n+n {
			size = a.f64n + n
		}
		if size < 256 {
			size = 256
		}
		a.f64 = make([]float64, size)
		a.f64n = 0
	}
	s := a.f64[a.f64n : a.f64n+n : a.f64n+n]
	a.f64n += n
	return s
}

func (a *Arena) c128Raw(n int) []complex128 {
	if a.c128n+n > len(a.c128) {
		size := 2 * len(a.c128)
		if size < a.c128n+n {
			size = a.c128n + n
		}
		if size < 128 {
			size = 128
		}
		a.c128 = make([]complex128, size)
		a.c128n = 0
	}
	s := a.c128[a.c128n : a.c128n+n : a.c128n+n]
	a.c128n += n
	return s
}

// F64 returns a zeroed scratch slice of n float64s.
func (a *Arena) F64(n int) []float64 {
	s := a.f64Raw(n)
	clear(s)
	return s
}

// C128 returns a zeroed scratch slice of n complex128s.
func (a *Arena) C128(n int) []complex128 {
	s := a.c128Raw(n)
	clear(s)
	return s
}

// Ints returns a zeroed scratch slice of n ints.
func (a *Arena) Ints(n int) []int {
	if a.intn+n > len(a.ints) {
		size := 2 * len(a.ints)
		if size < a.intn+n {
			size = a.intn + n
		}
		if size < 64 {
			size = 64
		}
		a.ints = make([]int, size)
		a.intn = 0
	}
	s := a.ints[a.intn : a.intn+n : a.intn+n]
	a.intn += n
	clear(s)
	return s
}

// Mat returns a zeroed r×c scratch matrix.
func (a *Arena) Mat(r, c int) *Matrix {
	m := a.MatUninit(r, c)
	clear(m.Data)
	return m
}

// MatUninit returns an r×c scratch matrix with unspecified contents; the
// caller must write every entry before reading any. It exists so that
// copy/overwrite targets skip the memclr pass of Mat.
func (a *Arena) MatUninit(r, c int) *Matrix {
	var m *Matrix
	if a.matn < len(a.mats) {
		m = a.mats[a.matn]
	} else {
		m = new(Matrix)
		a.mats = append(a.mats, m)
	}
	a.matn++
	m.Rows, m.Cols = r, c
	m.Data = a.f64Raw(r * c)
	return m
}

// CMat returns a zeroed r×c complex scratch matrix.
func (a *Arena) CMat(r, c int) *CMatrix {
	m := a.CMatUninit(r, c)
	clear(m.Data)
	return m
}

// CMatUninit is MatUninit for complex matrices.
func (a *Arena) CMatUninit(r, c int) *CMatrix {
	var m *CMatrix
	if a.cmatn < len(a.cmats) {
		m = a.cmats[a.cmatn]
	} else {
		m = new(CMatrix)
		a.cmats = append(a.cmats, m)
	}
	a.cmatn++
	m.Rows, m.Cols = r, c
	m.Data = a.c128Raw(r * c)
	return m
}

// EigenvaluesScratch is Eigenvalues with caller-owned memory: a is reduced
// in place (its contents are destroyed) and the result slice comes from the
// arena. The balance / Hessenberg / QR passes perform the same operation
// sequence as the reference implementation, so the eigenvalues are
// bit-identical to Eigenvalues(a).
func EigenvaluesScratch(a *Matrix, ar *Arena) ([]complex128, error) {
	a.square()
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	balance(a)
	hessenbergScratch(a, ar.f64Raw(n))
	return hqrScratch(a, ar)
}

// hessenbergScratch is hessenberg with the ort buffer supplied by the
// caller and direct Data indexing; the loop structure and therefore the
// float operation order is identical.
func hessenbergScratch(a *Matrix, ort []float64) {
	n := a.Rows
	if n < 3 {
		return
	}
	d := a.Data
	for m := 1; m < n-1; m++ {
		var scale float64
		for i := m; i < n; i++ {
			scale += math.Abs(d[i*n+m-1])
		}
		if scale == 0 {
			continue
		}
		var h float64
		for i := n - 1; i >= m; i-- {
			ort[i] = d[i*n+m-1] / scale
			h += ort[i] * ort[i]
		}
		g := math.Sqrt(h)
		if ort[m] > 0 {
			g = -g
		}
		h -= ort[m] * g
		ort[m] -= g
		for j := m; j < n; j++ {
			var f float64
			for i := n - 1; i >= m; i-- {
				f += ort[i] * d[i*n+j]
			}
			f /= h
			for i := m; i < n; i++ {
				d[i*n+j] -= f * ort[i]
			}
		}
		for i := 0; i < n; i++ {
			var f float64
			for j := n - 1; j >= m; j-- {
				f += ort[j] * d[i*n+j]
			}
			f /= h
			for j := m; j < n; j++ {
				d[i*n+j] -= f * ort[j]
			}
		}
		d[m*n+m-1] = scale * g
		for i := m + 1; i < n; i++ {
			d[i*n+m-1] = 0
		}
	}
}

// hqrScratch is hqr with the eigenvalue slice drawn from the arena and the
// h/hset closures replaced by direct Data indexing; every arithmetic step
// matches the reference routine.
func hqrScratch(hm *Matrix, ar *Arena) ([]complex128, error) {
	nn := hm.Rows
	d := hm.Data

	eps := math.Nextafter(1, 2) - 1
	low, high := 0, nn-1
	var exshift, p, q, r, s, z, w, x, y float64

	var norm float64
	for i := 0; i < nn; i++ {
		for j := max(i-1, 0); j < nn; j++ {
			norm += math.Abs(d[i*nn+j])
		}
	}
	if norm == 0 {
		return ar.C128(nn), nil
	}

	eig := ar.c128Raw(nn)[:0]
	n := high
	iter := 0
	totalIter := 0
	maxTotal := 60 * nn
	for n >= low {
		if totalIter++; totalIter > maxTotal {
			return nil, ErrNoConvergence
		}
		// Look for a single small subdiagonal element.
		l := n
		for l > low {
			s = math.Abs(d[(l-1)*nn+l-1]) + math.Abs(d[l*nn+l])
			if s == 0 {
				s = norm
			}
			if math.Abs(d[l*nn+l-1]) < eps*s {
				break
			}
			l--
		}
		switch {
		case l == n:
			// One root found.
			eig = append(eig, complex(d[n*nn+n]+exshift, 0))
			n--
			iter = 0
		case l == n-1:
			// Two roots found.
			w = d[n*nn+n-1] * d[(n-1)*nn+n]
			p = (d[(n-1)*nn+n-1] - d[n*nn+n]) / 2
			q = p*p + w
			z = math.Sqrt(math.Abs(q))
			x = d[n*nn+n] + exshift
			if q >= 0 {
				// Real pair.
				if p >= 0 {
					z = p + z
				} else {
					z = p - z
				}
				e1 := x + z
				e2 := e1
				if z != 0 {
					e2 = x - w/z
				}
				eig = append(eig, complex(e1, 0), complex(e2, 0))
			} else {
				// Complex conjugate pair.
				eig = append(eig, complex(x+p, z), complex(x+p, -z))
			}
			n -= 2
			iter = 0
		default:
			// No convergence yet: form a shift.
			x = d[n*nn+n]
			y = d[(n-1)*nn+n-1]
			w = d[n*nn+n-1] * d[(n-1)*nn+n]
			if iter == 10 || iter == 20 {
				// Exceptional shift.
				exshift += x
				for i := low; i <= n; i++ {
					d[i*nn+i] -= x
				}
				s = math.Abs(d[n*nn+n-1]) + math.Abs(d[(n-1)*nn+n-2])
				x = 0.75 * s
				y = x
				w = -0.4375 * s * s
			}
			iter++

			// Look for two consecutive small subdiagonal elements.
			m := n - 2
			for m >= l {
				z = d[m*nn+m]
				r = x - z
				s = y - z
				p = (r*s-w)/d[(m+1)*nn+m] + d[m*nn+m+1]
				q = d[(m+1)*nn+m+1] - z - r - s
				r = d[(m+2)*nn+m+1]
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				if math.Abs(d[m*nn+m-1])*(math.Abs(q)+math.Abs(r)) <
					eps*(math.Abs(p)*(math.Abs(d[(m-1)*nn+m-1])+math.Abs(z)+math.Abs(d[(m+1)*nn+m+1]))) {
					break
				}
				m--
			}
			for i := m + 2; i <= n; i++ {
				d[i*nn+i-2] = 0
				if i > m+2 {
					d[i*nn+i-3] = 0
				}
			}

			// Double QR step on rows l..n and columns m..n.
			for k := m; k <= n-1; k++ {
				notlast := k != n-1
				if k != m {
					p = d[k*nn+k-1]
					q = d[(k+1)*nn+k-1]
					r = 0
					if notlast {
						r = d[(k+2)*nn+k-1]
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x == 0 {
						continue
					}
					p /= x
					q /= x
					r /= x
				}
				s = math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s == 0 {
					continue
				}
				if k != m {
					d[k*nn+k-1] = -s * x
				} else if l != m {
					d[k*nn+k-1] = -d[k*nn+k-1]
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p

				// Row modification.
				for j := k; j < nn; j++ {
					p = d[k*nn+j] + q*d[(k+1)*nn+j]
					if notlast {
						p += r * d[(k+2)*nn+j]
						d[(k+2)*nn+j] -= p * z
					}
					d[(k+1)*nn+j] -= p * y
					d[k*nn+j] -= p * x
				}
				// Column modification.
				iMax := min(n, k+3)
				for i := 0; i <= iMax; i++ {
					p = x*d[i*nn+k] + y*d[i*nn+k+1]
					if notlast {
						p += z * d[i*nn+k+2]
						d[i*nn+k+2] -= p * r
					}
					d[i*nn+k+1] -= p * q
					d[i*nn+k] -= p
				}
			}
		}
	}
	return eig, nil
}

// ForcedNullVectorScratch is ForcedNullVector with caller-owned memory:
// the matrix is eliminated in place (destroyed) and the returned vector
// lives in the arena. The elimination is the reference algorithm with one
// structural change — the full-pivot search reuses per-row maxima tracked
// during the previous step's row updates instead of rescanning the
// trailing submatrix — which provably selects the same pivot sequence (see
// the argument at nullVectorScratch), so results are bit-identical.
func ForcedNullVectorScratch(a *Matrix, rtol float64, ar *Arena) ([]float64, error) {
	return nullVectorScratch(a, rtol, ar)
}

// nullVectorScratch mirrors nullVector(a, rtol, force=true) without
// cloning a.
//
// Pivot-equivalence argument: the reference search scans the trailing
// submatrix in row-major order keeping the first strictly-larger entry, so
// it selects the lexicographically-first position attaining the global
// maximum modulus. Here rmax[i]/rarg[i] cache each row's maximum and its
// first attaining column over the active columns; the pivot scan takes the
// first row attaining the global maximum and that row's first attaining
// column — the same position. The caches are maintained exactly: rows
// rewritten by the elimination step recompute their maximum in the same
// left-to-right order during the update pass; untouched rows (zero
// multiplier) keep a valid cache because the departing pivot column holds
// a zero for them, except when the cached argmax sat on a column moved by
// the pivot column swap, in which case the row is rescanned.
func nullVectorScratch(a *Matrix, rtol float64, ar *Arena) ([]float64, error) {
	if rtol <= 0 {
		rtol = 1e-10
	}
	a.square()
	n := a.Rows
	w := a
	d := w.Data
	colPerm := ar.Ints(n)
	for i := range colPerm {
		colPerm[i] = i
	}
	rmax := ar.f64Raw(n)
	rarg := ar.Ints(n)
	// Seed the row maxima over all columns (the k = 0 search state).
	for i := 0; i < n; i++ {
		row := d[i*n : i*n+n]
		nm, narg := 0.0, 0
		for j, v := range row {
			if av := math.Abs(v); av > nm {
				nm, narg = av, j
			}
		}
		rmax[i], rarg[i] = nm, narg
	}
	var maxPivot float64
	rank := 0
	for k := 0; k < n; k++ {
		// Full pivot over the trailing submatrix, from the cached row maxima.
		pi, pj, mx := k, k, 0.0
		for i := k; i < n; i++ {
			if rmax[i] > mx {
				mx, pi, pj = rmax[i], i, rarg[i]
			}
		}
		if k == 0 {
			maxPivot = mx
			if maxPivot == 0 {
				// Zero matrix: any unit vector is a null vector.
				x := ar.F64(n)
				x[0] = 1
				return x, nil
			}
		}
		if mx <= rtol*maxPivot {
			break // numerical rank reached
		}
		rank++
		swapRows(w, k, pi)
		rmax[k], rmax[pi] = rmax[pi], rmax[k]
		rarg[k], rarg[pi] = rarg[pi], rarg[k]
		swapCols(w, k, pj)
		colPerm[k], colPerm[pj] = colPerm[pj], colPerm[k]
		pivot := d[k*n+k]
		prow := d[k*n : k*n+n]
		for i := k + 1; i < n; i++ {
			irow := d[i*n : i*n+n]
			m := irow[k] / pivot
			if m == 0 {
				// Row untouched; its cache stays valid unless the argmax sat
				// on one of the two swapped columns.
				if g := rarg[i]; g == k || g == pj {
					nm, narg := 0.0, 0
					for j := k + 1; j < n; j++ {
						if av := math.Abs(irow[j]); av > nm {
							nm, narg = av, j
						}
					}
					rmax[i], rarg[i] = nm, narg
				}
				continue
			}
			irow[k] = 0
			nm, narg := 0.0, 0
			for j := k + 1; j < n; j++ {
				irow[j] -= m * prow[j]
				if av := math.Abs(irow[j]); av > nm {
					nm, narg = av, j
				}
			}
			rmax[i], rarg[i] = nm, narg
		}
	}
	if rank == n {
		rank = n - 1 // forced: treat the smallest pivot as zero
	}
	// Back-substitute with the first free variable set to 1, the rest to 0.
	y := ar.F64(n)
	y[rank] = 1
	for i := rank - 1; i >= 0; i-- {
		var s float64
		row := d[i*n : i*n+n]
		for j := i + 1; j <= rank; j++ {
			s += row[j] * y[j]
		}
		y[i] = -s / row[i]
	}
	x := ar.f64Raw(n)
	for k := 0; k < n; k++ {
		x[colPerm[k]] = y[k]
	}
	normalizeInf(x)
	return x, nil
}

// CForcedNullVectorScratch is the complex analogue of
// ForcedNullVectorScratch: CForcedNullVector semantics, matrix destroyed
// in place, result in the arena, bit-identical output.
func CForcedNullVectorScratch(a *CMatrix, rtol float64, ar *Arena) ([]complex128, error) {
	if rtol <= 0 {
		rtol = 1e-10
	}
	a.square()
	n := a.Rows
	w := a
	d := w.Data
	colPerm := ar.Ints(n)
	for i := range colPerm {
		colPerm[i] = i
	}
	rmax := ar.f64Raw(n)
	rarg := ar.Ints(n)
	for i := 0; i < n; i++ {
		row := d[i*n : i*n+n]
		nm, narg := 0.0, 0
		for j, v := range row {
			if av := cAbsIfAbove(v, nm); av > nm {
				nm, narg = av, j
			}
		}
		rmax[i], rarg[i] = nm, narg
	}
	var maxPivot float64
	rank := 0
	for k := 0; k < n; k++ {
		pi, pj, mx := k, k, 0.0
		for i := k; i < n; i++ {
			if rmax[i] > mx {
				mx, pi, pj = rmax[i], i, rarg[i]
			}
		}
		if k == 0 {
			maxPivot = mx
			if maxPivot == 0 {
				x := ar.C128(n)
				x[0] = 1
				return x, nil
			}
		}
		if mx <= rtol*maxPivot {
			break
		}
		rank++
		cswapRows(w, k, pi)
		rmax[k], rmax[pi] = rmax[pi], rmax[k]
		rarg[k], rarg[pi] = rarg[pi], rarg[k]
		cswapCols(w, k, pj)
		colPerm[k], colPerm[pj] = colPerm[pj], colPerm[k]
		pivot := d[k*n+k]
		prow := d[k*n : k*n+n]
		for i := k + 1; i < n; i++ {
			irow := d[i*n : i*n+n]
			m := irow[k] / pivot
			if m == 0 {
				if g := rarg[i]; g == k || g == pj {
					nm, narg := 0.0, 0
					for j := k + 1; j < n; j++ {
						if av := cAbsIfAbove(irow[j], nm); av > nm {
							nm, narg = av, j
						}
					}
					rmax[i], rarg[i] = nm, narg
				}
				continue
			}
			irow[k] = 0
			nm, narg := 0.0, 0
			for j := k + 1; j < n; j++ {
				irow[j] -= m * prow[j]
				if av := cAbsIfAbove(irow[j], nm); av > nm {
					nm, narg = av, j
				}
			}
			rmax[i], rarg[i] = nm, narg
		}
	}
	if rank == n {
		rank = n - 1
	}
	y := ar.C128(n)
	y[rank] = 1
	for i := rank - 1; i >= 0; i-- {
		var s complex128
		row := d[i*n : i*n+n]
		for j := i + 1; j <= rank; j++ {
			s += row[j] * y[j]
		}
		y[i] = -s / row[i]
	}
	x := ar.c128Raw(n)
	for k := 0; k < n; k++ {
		x[colPerm[k]] = y[k]
	}
	cnormalizeInf(x)
	return x, nil
}

// cAbsIfAbove returns cmplx.Abs(v), skipping the Hypot when v provably
// cannot exceed the threshold t: |re|+|im| overestimates the true modulus
// and the rounded sum underestimates it by at most a few ulps, so when the
// sum is below t·(1−1e−15) the rounded Hypot is strictly below t and the
// strict > comparison against t cannot select v. Returning 0 in that case
// leaves the caller's running maximum unchanged — exactly as the reference
// search, which would have computed the modulus and rejected it.
func cAbsIfAbove(v complex128, t float64) float64 {
	if math.Abs(real(v))+math.Abs(imag(v)) <= t*(1-1e-15) {
		return 0
	}
	return cmplx.Abs(v)
}

// InverseScratch is Inverse with caller-owned memory: a is factored in
// place (destroyed) and the result lives in the arena. Factorisation,
// permuted identity columns and the two substitution sweeps replay
// FactorLU + SolveMatrix(Identity) operation-for-operation, so the inverse
// is bit-identical and the same ErrSingular is reported.
func InverseScratch(a *Matrix, ar *Arena) (*Matrix, error) {
	a.square()
	n := a.Rows
	lu := a.Data
	piv := ar.Ints(n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		mx := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
		}
		pivot := lu[k*n+k]
		if pivot == 0 {
			continue // singular; detected below
		}
		prow := lu[k*n : k*n+n]
		for i := k + 1; i < n; i++ {
			irow := lu[i*n : i*n+n]
			m := irow[k] / pivot
			irow[k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				irow[j] -= m * prow[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		if lu[i*n+i] == 0 {
			return nil, ErrSingular
		}
	}
	out := ar.MatUninit(n, n)
	x := ar.f64Raw(n)
	for col := 0; col < n; col++ {
		// x = P·e_col, then L·U·x = e_col by the two substitutions.
		for i := 0; i < n; i++ {
			if piv[i] == col {
				x[i] = 1
			} else {
				x[i] = 0
			}
		}
		for i := 1; i < n; i++ {
			var s float64
			row := lu[i*n : i*n+i]
			for j, l := range row {
				s += l * x[j]
			}
			x[i] -= s
		}
		for i := n - 1; i >= 0; i-- {
			var s float64
			row := lu[i*n : i*n+n]
			for j := i + 1; j < n; j++ {
				s += row[j] * x[j]
			}
			x[i] = (x[i] - s) / row[i]
		}
		for i := 0; i < n; i++ {
			out.Data[i*n+col] = x[i]
		}
	}
	return out, nil
}
