package linalg

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNullVectorKnown(t *testing.T) {
	// Rank-2 matrix with null vector along (1, 1, 1).
	a := FromRows([][]float64{
		{1, -1, 0},
		{0, 1, -1},
		{1, 0, -1},
	})
	x, err := NullVector(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertNull(t, a, x, 1e-10)
}

func TestNullVectorFullRank(t *testing.T) {
	if _, err := NullVector(Identity(4), 0); !errors.Is(err, ErrFullRank) {
		t.Fatalf("err = %v, want ErrFullRank", err)
	}
}

func TestNullVectorZeroMatrix(t *testing.T) {
	x, err := NullVector(NewMatrix(3, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("null vector of zero matrix must be nonzero")
	}
}

func TestNullVectorRandomRankDeficientProperty(t *testing.T) {
	// Build A = B·C with B n×(n−1), C (n−1)×n: rank n−1 generically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		b := randomMatrix(rng, n, n-1)
		c := randomMatrix(rng, n-1, n)
		a := b.Times(c)
		x, err := NullVector(a, 0)
		if err != nil {
			return false
		}
		r := a.TimesVec(x)
		for _, v := range r {
			if math.Abs(v) > 1e-7*(1+a.MaxAbs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLeftNullVectorGenerator(t *testing.T) {
	// A CTMC generator has left null vector = stationary distribution.
	// Two-state chain: rates 2 (0→1) and 3 (1→0); stationary ∝ (3, 2).
	g := FromRows([][]float64{
		{-2, 2},
		{3, -3},
	})
	u, err := LeftNullVector(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// u proportional to (3, 2)?
	if math.Abs(u[0]*2-u[1]*3) > 1e-12 {
		t.Fatalf("left null vector %v not proportional to (3,2)", u)
	}
}

func TestCNullVectorKnown(t *testing.T) {
	// Complex rank-1 perturbation: A = I − v·vᴴ/(vᴴv) has null vector v... use
	// a simpler known case: [[i, -1], [1, i]] is singular with null (1, i).
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(0, 1))
	a.Set(0, 1, -1)
	a.Set(1, 0, 1)
	a.Set(1, 1, complex(0, 1))
	x, err := CNullVector(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := cMatVec(a, x)
	for _, v := range r {
		if cmplx.Abs(v) > 1e-12 {
			t.Fatalf("residual %v too large (x=%v)", r, x)
		}
	}
}

func TestCNullVectorFullRank(t *testing.T) {
	a := Complexify(Identity(3))
	if _, err := CNullVector(a, 0); !errors.Is(err, ErrFullRank) {
		t.Fatalf("err = %v, want ErrFullRank", err)
	}
}

func TestCLeftNullVectorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		// Rank-deficient complex matrix A = B·C as in the real case.
		b := randomCMatrix(rng, n, n-1)
		c := randomCMatrix(rng, n-1, n)
		a := cTimes(b, c)
		u, err := CLeftNullVector(a, 0)
		if err != nil {
			return false
		}
		r := a.VecTimes(u)
		for _, v := range r {
			if cmplx.Abs(v) > 1e-7*(1+a.MaxAbs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randomCMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, complex(float64(n), 0))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := FactorCLU(a).Solve(b)
		if err != nil {
			return false
		}
		r := cMatVec(a, x)
		for i := range b {
			if cmplx.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCLUDetKnown(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(0, 1)) // det = i·i − 0 = −1
	a.Set(1, 1, complex(0, 1))
	if d := FactorCLU(a).Det(); cmplx.Abs(d-(-1)) > 1e-14 {
		t.Fatalf("det = %v, want -1", d)
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := FactorCLU(a).Solve([]complex128{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func assertNull(t *testing.T, a *Matrix, x []float64, tol float64) {
	t.Helper()
	r := a.TimesVec(x)
	for i, v := range r {
		if math.Abs(v) > tol {
			t.Fatalf("(A·x)[%d] = %v, want ~0 (x=%v)", i, v, x)
		}
	}
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if math.Abs(mx-1) > 1e-12 {
		t.Fatalf("null vector not ∞-normalised: %v", x)
	}
}

func randomCMatrix(rng *rand.Rand, r, c int) *CMatrix {
	m := NewCMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func cTimes(a, b *CMatrix) *CMatrix {
	out := NewCMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, aik*b.At(k, j))
			}
		}
	}
	return out
}

func cMatVec(a *CMatrix, x []complex128) []complex128 {
	out := make([]complex128, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var s complex128
		for j := 0; j < a.Cols; j++ {
			s += a.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}
