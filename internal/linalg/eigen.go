package linalg

import (
	"errors"
	"math"
	"sort"
)

// ErrNoConvergence is returned when the QR iteration fails to converge.
var ErrNoConvergence = errors.New("linalg: QR eigenvalue iteration did not converge")

// Eigenvalues returns all eigenvalues of a square real matrix, in no
// particular order, computed by balancing, Householder reduction to upper
// Hessenberg form and the Francis implicit double-shift QR algorithm.
// Only eigenvalues are computed (eigenvectors for the spectral-expansion
// method are recovered separately as null vectors of Q(z_k), which is better
// conditioned than accumulating QR transforms).
func Eigenvalues(a *Matrix) ([]complex128, error) {
	a.square()
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	h := a.Clone()
	balance(h)
	hessenberg(h)
	return hqr(h)
}

// balance applies the Parlett–Reinsch diagonal similarity scaling in place,
// reducing the norm of the matrix and improving eigenvalue accuracy.
func balance(a *Matrix) {
	const radix = 2.0
	n := a.Rows
	sqrdx := radix * radix
	for done := false; !done; {
		done = true
		for i := 0; i < n; i++ {
			var r, c float64
			for j := 0; j < n; j++ {
				if j != i {
					c += math.Abs(a.At(j, i))
					r += math.Abs(a.At(i, j))
				}
			}
			if c == 0 || r == 0 {
				continue
			}
			g := r / radix
			f := 1.0
			s := c + r
			for c < g {
				f *= radix
				c *= sqrdx
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= sqrdx
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				for j := 0; j < n; j++ {
					a.Set(i, j, a.At(i, j)*g)
				}
				for j := 0; j < n; j++ {
					a.Set(j, i, a.At(j, i)*f)
				}
			}
		}
	}
}

// hessenberg reduces a to upper Hessenberg form in place using Householder
// reflections (similarity transforms, so eigenvalues are preserved).
func hessenberg(a *Matrix) {
	n := a.Rows
	if n < 3 {
		return
	}
	ort := make([]float64, n)
	for m := 1; m < n-1; m++ {
		var scale float64
		for i := m; i < n; i++ {
			scale += math.Abs(a.At(i, m-1))
		}
		if scale == 0 {
			continue
		}
		var h float64
		for i := n - 1; i >= m; i-- {
			ort[i] = a.At(i, m-1) / scale
			h += ort[i] * ort[i]
		}
		g := math.Sqrt(h)
		if ort[m] > 0 {
			g = -g
		}
		h -= ort[m] * g
		ort[m] -= g
		// Apply the Householder similarity transform H = I − u·uᵀ/h.
		for j := m; j < n; j++ {
			var f float64
			for i := n - 1; i >= m; i-- {
				f += ort[i] * a.At(i, j)
			}
			f /= h
			for i := m; i < n; i++ {
				a.Set(i, j, a.At(i, j)-f*ort[i])
			}
		}
		for i := 0; i < n; i++ {
			var f float64
			for j := n - 1; j >= m; j-- {
				f += ort[j] * a.At(i, j)
			}
			f /= h
			for j := m; j < n; j++ {
				a.Set(i, j, a.At(i, j)-f*ort[j])
			}
		}
		a.Set(m, m-1, scale*g)
		for i := m + 1; i < n; i++ {
			a.Set(i, m-1, 0)
		}
	}
}

// hqr computes all eigenvalues of an upper Hessenberg matrix using the
// Francis implicit double-shift QR iteration (eigenvalue-only variant of the
// classic EISPACK/JAMA hqr2 routine).
func hqr(hm *Matrix) ([]complex128, error) {
	nn := hm.Rows
	h := func(i, j int) float64 { return hm.At(i, j) }
	hset := func(i, j int, v float64) { hm.Set(i, j, v) }

	eps := math.Nextafter(1, 2) - 1
	low, high := 0, nn-1
	var exshift, p, q, r, s, z, w, x, y float64

	var norm float64
	for i := 0; i < nn; i++ {
		for j := max(i-1, 0); j < nn; j++ {
			norm += math.Abs(h(i, j))
		}
	}
	if norm == 0 {
		return make([]complex128, nn), nil
	}

	eig := make([]complex128, 0, nn)
	n := high
	iter := 0
	totalIter := 0
	maxTotal := 60 * nn
	for n >= low {
		if totalIter++; totalIter > maxTotal {
			return nil, ErrNoConvergence
		}
		// Look for a single small subdiagonal element.
		l := n
		for l > low {
			s = math.Abs(h(l-1, l-1)) + math.Abs(h(l, l))
			if s == 0 {
				s = norm
			}
			if math.Abs(h(l, l-1)) < eps*s {
				break
			}
			l--
		}
		switch {
		case l == n:
			// One root found.
			eig = append(eig, complex(h(n, n)+exshift, 0))
			n--
			iter = 0
		case l == n-1:
			// Two roots found.
			w = h(n, n-1) * h(n-1, n)
			p = (h(n-1, n-1) - h(n, n)) / 2
			q = p*p + w
			z = math.Sqrt(math.Abs(q))
			x = h(n, n) + exshift
			if q >= 0 {
				// Real pair.
				if p >= 0 {
					z = p + z
				} else {
					z = p - z
				}
				e1 := x + z
				e2 := e1
				if z != 0 {
					e2 = x - w/z
				}
				eig = append(eig, complex(e1, 0), complex(e2, 0))
			} else {
				// Complex conjugate pair.
				eig = append(eig, complex(x+p, z), complex(x+p, -z))
			}
			n -= 2
			iter = 0
		default:
			// No convergence yet: form a shift.
			x = h(n, n)
			y = h(n-1, n-1)
			w = h(n, n-1) * h(n-1, n)
			if iter == 10 || iter == 20 {
				// Exceptional shift.
				exshift += x
				for i := low; i <= n; i++ {
					hset(i, i, h(i, i)-x)
				}
				s = math.Abs(h(n, n-1)) + math.Abs(h(n-1, n-2))
				x = 0.75 * s
				y = x
				w = -0.4375 * s * s
			}
			iter++

			// Look for two consecutive small subdiagonal elements.
			m := n - 2
			for m >= l {
				z = h(m, m)
				r = x - z
				s = y - z
				p = (r*s-w)/h(m+1, m) + h(m, m+1)
				q = h(m+1, m+1) - z - r - s
				r = h(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				if math.Abs(h(m, m-1))*(math.Abs(q)+math.Abs(r)) <
					eps*(math.Abs(p)*(math.Abs(h(m-1, m-1))+math.Abs(z)+math.Abs(h(m+1, m+1)))) {
					break
				}
				m--
			}
			for i := m + 2; i <= n; i++ {
				hset(i, i-2, 0)
				if i > m+2 {
					hset(i, i-3, 0)
				}
			}

			// Double QR step on rows l..n and columns m..n.
			for k := m; k <= n-1; k++ {
				notlast := k != n-1
				if k != m {
					p = h(k, k-1)
					q = h(k+1, k-1)
					r = 0
					if notlast {
						r = h(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x == 0 {
						continue
					}
					p /= x
					q /= x
					r /= x
				}
				s = math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s == 0 {
					continue
				}
				if k != m {
					hset(k, k-1, -s*x)
				} else if l != m {
					hset(k, k-1, -h(k, k-1))
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p

				// Row modification.
				for j := k; j < nn; j++ {
					p = h(k, j) + q*h(k+1, j)
					if notlast {
						p += r * h(k+2, j)
						hset(k+2, j, h(k+2, j)-p*z)
					}
					hset(k+1, j, h(k+1, j)-p*y)
					hset(k, j, h(k, j)-p*x)
				}
				// Column modification.
				iMax := min(n, k+3)
				for i := 0; i <= iMax; i++ {
					p = x*h(i, k) + y*h(i, k+1)
					if notlast {
						p += z * h(i, k+2)
						hset(i, k+2, h(i, k+2)-p*r)
					}
					hset(i, k+1, h(i, k+1)-p*q)
					hset(i, k, h(i, k)-p)
				}
			}
		}
	}
	return eig, nil
}

// SortEigenvalues sorts eigenvalues by descending modulus, breaking ties by
// real part then imaginary part, so conjugate pairs sit adjacently with the
// +imag member first.
func SortEigenvalues(ev []complex128) {
	sort.Slice(ev, func(i, j int) bool {
		ai := absC(ev[i])
		aj := absC(ev[j])
		if ai != aj {
			return ai > aj
		}
		if real(ev[i]) != real(ev[j]) {
			return real(ev[i]) > real(ev[j])
		}
		return imag(ev[i]) > imag(ev[j])
	})
}

func absC(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}
