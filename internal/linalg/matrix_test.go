package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZero(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %d×%d, want 3×4", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag([]float64{1, 2, 3})
	if m.At(0, 0) != 1 || m.At(1, 1) != 2 || m.At(2, 2) != 3 {
		t.Fatalf("diagonal wrong: %v", m)
	}
	if m.At(0, 1) != 0 || m.At(2, 0) != 0 {
		t.Fatalf("off-diagonal nonzero: %v", m)
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %d×%d, want 3×2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 1) != 2 {
		t.Fatalf("entries wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape %d×%d, want 3×2", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Errorf("T(%d,%d) mismatch", j, i)
			}
		}
	}
}

func TestTimesKnownProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Times(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equalish(want, 0) {
		t.Fatalf("product = %v, want %v", got, want)
	}
}

func TestTimesIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	if got := a.Times(Identity(5)); !got.Equalish(a, 1e-14) {
		t.Fatal("A·I != A")
	}
	if got := Identity(5).Times(a); !got.Equalish(a, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestPlusMinusScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Plus(b); !got.Equalish(FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Errorf("Plus wrong: %v", got)
	}
	if got := a.Minus(a); got.MaxAbs() != 0 {
		t.Errorf("A−A nonzero: %v", got)
	}
	if got := a.Scaled(2); !got.Equalish(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scaled wrong: %v", got)
	}
}

func TestVecTimesMatchesTimesVecOfTranspose(t *testing.T) {
	// v·M == Mᵀ·v as column vector.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 2+rng.Intn(5), 2+rng.Intn(5)
		m := randomMatrix(rng, r, c)
		v := randomVec(rng, r)
		a := m.VecTimes(v)
		b := m.T().TimesVec(v)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {-1, -2, 3}})
	got := m.RowSums()
	if got[0] != 6 || got[1] != 0 {
		t.Fatalf("RowSums = %v, want [6 0]", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{1, -7}, {3, 4}})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", m.MaxAbs())
	}
	if NewMatrix(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	NewMatrix(2, 2).Plus(NewMatrix(3, 3))
}

func TestProductAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 4, 3)
		b := randomMatrix(rng, 3, 5)
		c := randomMatrix(rng, 5, 2)
		left := a.Times(b).Times(c)
		right := a.Times(b.Times(c))
		return left.Equalish(right, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
