// Package transient computes time-dependent behaviour of the unreliable
// multi-server queue by uniformization (Jensen's method) on the truncated
// level×mode chain. The paper analyses the stationary regime only; this
// extension answers the operator's companion question — how long after a
// cold start, a mass outage or a load surge the queue takes to reach its
// steady state — using exactly the same generator as the exact solvers.
package transient

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/qbd"
)

// Options configures the uniformized transient solver.
type Options struct {
	// MaxLevel truncates the queue length (default 4·N + 64; raise it for
	// heavy loads where stationary mass lives deep in the tail).
	MaxLevel int
	// Tol is the truncation tolerance for the Poisson series (default 1e-10).
	Tol float64
}

// Solver evaluates transient distributions for one parameter set.
type Solver struct {
	p        qbd.Params
	maxLevel int
	tol      float64

	s    int
	dim  int
	rate float64   // uniformization rate Λ ≥ max total outflow
	rows [][]entry // P = I + Q/Λ in sparse row form
}

type entry struct {
	col int
	val float64
}

// NewSolver validates the parameters and precomputes the uniformized
// transition matrix.
func NewSolver(p qbd.Params, opts Options) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxLevel == 0 {
		opts.MaxLevel = 4*p.Threshold() + 64
	}
	if opts.MaxLevel < 1 {
		return nil, fmt.Errorf("transient: max level %d < 1", opts.MaxLevel)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-10
	}
	s := p.Size()
	dim := (opts.MaxLevel + 1) * s
	sv := &Solver{p: p, maxLevel: opts.MaxLevel, tol: opts.Tol, s: s, dim: dim}
	sv.build()
	return sv, nil
}

// idx maps (level, mode) to a flat state index.
func (sv *Solver) idx(level, mode int) int { return level*sv.s + mode }

// build assembles P = I + Q/Λ for the truncated chain (arrivals at the top
// level are dropped, matching qbd.SolveTruncated semantics).
func (sv *Solver) build() {
	p := sv.p
	s := sv.s
	da := p.A.RowSums()
	// Uniformization rate: a bound on total outflow of any state.
	maxC := 0.0
	top := p.ServiceDiag[len(p.ServiceDiag)-1]
	for _, v := range top {
		if v > maxC {
			maxC = v
		}
	}
	maxDA := 0.0
	for _, v := range da {
		if v > maxDA {
			maxDA = v
		}
	}
	sv.rate = p.Lambda + maxC + maxDA + 1
	sv.rows = make([][]entry, sv.dim)
	for level := 0; level <= sv.maxLevel; level++ {
		cj := serviceAt(p, level)
		for mode := 0; mode < s; mode++ {
			from := sv.idx(level, mode)
			var out float64
			var row []entry
			// Arrivals.
			if level < sv.maxLevel {
				row = append(row, entry{sv.idx(level+1, mode), p.Lambda / sv.rate})
				out += p.Lambda
			}
			// Departures.
			if level > 0 && cj[mode] > 0 {
				row = append(row, entry{sv.idx(level-1, mode), cj[mode] / sv.rate})
				out += cj[mode]
			}
			// Mode changes.
			for to := 0; to < s; to++ {
				if r := p.A.At(mode, to); r > 0 {
					row = append(row, entry{sv.idx(level, to), r / sv.rate})
					out += r
				}
			}
			// Self loop completes the stochastic row.
			row = append(row, entry{from, 1 - out/sv.rate})
			sv.rows[from] = row
		}
	}
}

// step computes v·P for a row distribution v.
func (sv *Solver) step(v []float64) []float64 {
	out := make([]float64, sv.dim)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		for _, e := range sv.rows[i] {
			out[e.col] += vi * e.val
		}
	}
	return out
}

// InitialState builds a distribution concentrated on one (queue length,
// mode) pair.
func (sv *Solver) InitialState(level, mode int) ([]float64, error) {
	if level < 0 || level > sv.maxLevel {
		return nil, fmt.Errorf("transient: level %d outside [0, %d]", level, sv.maxLevel)
	}
	if mode < 0 || mode >= sv.s {
		return nil, fmt.Errorf("transient: mode %d outside [0, %d)", mode, sv.s)
	}
	v := make([]float64, sv.dim)
	v[sv.idx(level, mode)] = 1
	return v, nil
}

// Distribution is a snapshot of the transient state at one time point.
type Distribution struct {
	s      int
	levels int
	v      []float64
}

// LevelProb returns P(queue length = j at time t).
func (d *Distribution) LevelProb(j int) float64 {
	if j < 0 || j >= d.levels {
		return 0
	}
	var pr float64
	for i := 0; i < d.s; i++ {
		pr += d.v[j*d.s+i]
	}
	return pr
}

// MeanQueue returns E[queue length at time t].
func (d *Distribution) MeanQueue() float64 {
	var l float64
	for j := 0; j < d.levels; j++ {
		l += float64(j) * d.LevelProb(j)
	}
	return l
}

// ModeMarginals returns the mode distribution at time t.
func (d *Distribution) ModeMarginals() []float64 {
	out := make([]float64, d.s)
	for j := 0; j < d.levels; j++ {
		for i := 0; i < d.s; i++ {
			out[i] += d.v[j*d.s+i]
		}
	}
	return out
}

// At computes the state distribution at time t ≥ 0 from the initial
// distribution v0, by the uniformized Poisson mixture
// v(t) = Σ_k e^{−Λt}(Λt)^k/k! · v0·P^k, truncated when the remaining
// Poisson mass falls below Tol.
func (sv *Solver) At(v0 []float64, t float64) (*Distribution, error) {
	if len(v0) != sv.dim {
		return nil, fmt.Errorf("transient: initial vector length %d, want %d", len(v0), sv.dim)
	}
	if t < 0 || math.IsNaN(t) {
		return nil, errors.New("transient: negative time")
	}
	acc := make([]float64, sv.dim)
	cur := append([]float64(nil), v0...)
	lt := sv.rate * t
	if math.IsInf(lt, 0) {
		return nil, errors.New("transient: time too large for uniformization")
	}
	// Poisson(Λt) weights tracked in log space: for large Λt the left tail
	// underflows float64 entirely (e^{−Λt} = 0 beyond Λt ≈ 745), so the
	// weight only materialises once log w_k = −Λt + k·ln Λt − ln k! climbs
	// back above the underflow threshold near the Poisson bulk.
	const logUnderflow = -745.0
	logw := -lt // k = 0
	cumulative := 0.0
	// Hard cap well beyond the Poisson bulk (Λt + 12√Λt).
	maxK := int(lt+12*math.Sqrt(lt+1)) + 64
	for k := 0; k <= maxK; k++ {
		if k > 0 {
			cur = sv.step(cur)
			logw += math.Log(lt) - math.Log(float64(k))
		}
		if logw > logUnderflow {
			w := math.Exp(logw)
			for i := range acc {
				acc[i] += w * cur[i]
			}
			cumulative += w
			// Past the Poisson mode the weights decay geometrically; stop
			// once the captured mass is within tolerance.
			if float64(k) > lt && 1-cumulative < sv.tol {
				break
			}
		}
	}
	// Distribute any residual Poisson mass onto the last iterate.
	if rem := 1 - cumulative; rem > 0 {
		for i := range acc {
			acc[i] += rem * cur[i]
		}
	}
	return &Distribution{s: sv.s, levels: sv.maxLevel + 1, v: acc}, nil
}

// MeanQueuePath evaluates E[Z(t)] on a grid of time points from one
// initial state.
func (sv *Solver) MeanQueuePath(v0 []float64, times []float64) ([]float64, error) {
	out := make([]float64, len(times))
	for i, t := range times {
		d, err := sv.At(v0, t)
		if err != nil {
			return nil, fmt.Errorf("transient: t = %v: %w", t, err)
		}
		out[i] = d.MeanQueue()
	}
	return out, nil
}

// TimeToSettle returns the first time on the grid where |E[Z(t)] − L∞| is
// within frac·L∞ of the stationary mean L∞, or −1 if never reached.
func (sv *Solver) TimeToSettle(v0 []float64, times []float64, stationary, frac float64) (float64, error) {
	path, err := sv.MeanQueuePath(v0, times)
	if err != nil {
		return 0, err
	}
	for i, l := range path {
		if math.Abs(l-stationary) <= frac*stationary {
			return times[i], nil
		}
	}
	return -1, nil
}

func serviceAt(p qbd.Params, j int) []float64 {
	if j >= len(p.ServiceDiag) {
		return p.ServiceDiag[len(p.ServiceDiag)-1]
	}
	return p.ServiceDiag[j]
}
