package transient

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
	"repro/internal/qbd"
)

var (
	paperOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	paperRepair = dist.Exp(25)
)

func solverFor(t *testing.T, n int, lambda, mu float64, opts Options) (*Solver, qbd.Params) {
	t.Helper()
	env, err := markov.NewEnv(n, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	p := qbd.Params{Lambda: lambda, A: env.AMatrix(), ServiceDiag: env.ServiceDiag(mu)}
	sv, err := NewSolver(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sv, p
}

func TestAtZeroReturnsInitialState(t *testing.T) {
	sv, _ := solverFor(t, 2, 1.0, 1.0, Options{MaxLevel: 30})
	v0, err := sv.InitialState(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sv.At(v0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p := d.LevelProb(5); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(level 5 at t=0) = %v, want 1", p)
	}
	if l := d.MeanQueue(); math.Abs(l-5) > 1e-12 {
		t.Errorf("E[Z(0)] = %v, want 5", l)
	}
}

func TestProbabilityConservedOverTime(t *testing.T) {
	sv, _ := solverFor(t, 2, 1.2, 1.0, Options{MaxLevel: 60})
	v0, err := sv.InitialState(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0.1, 1, 10, 100} {
		d, err := sv.At(v0, tm)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, m := range d.ModeMarginals() {
			if m < -1e-12 {
				t.Fatalf("t=%v: negative marginal %v", tm, m)
			}
			total += m
		}
		if math.Abs(total-1) > 1e-8 {
			t.Errorf("t=%v: total probability %v", tm, total)
		}
	}
}

func TestConvergesToStationary(t *testing.T) {
	// From an empty cold start, the transient mean must settle on the
	// spectral-expansion stationary value, and the transient mode marginals
	// on the environment's stationary law.
	sv, p := solverFor(t, 2, 1.0, 1.0, Options{MaxLevel: 120})
	sol, err := qbd.SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := sv.InitialState(0, sOperativeMode(p))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sv.At(v0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := sol.MeanQueue()
	if rel := math.Abs(d.MeanQueue()-want) / want; rel > 0.01 {
		t.Errorf("E[Z(∞)] = %v, stationary L = %v (rel %v)", d.MeanQueue(), want, rel)
	}
	pi, err := p.EnvStationary()
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range d.ModeMarginals() {
		if math.Abs(m-pi[i]) > 1e-4 {
			t.Errorf("mode %d marginal %v, stationary %v", i, m, pi[i])
		}
	}
	for j := 0; j <= 10; j++ {
		if diff := math.Abs(d.LevelProb(j) - sol.LevelProb(j)); diff > 1e-3 {
			t.Errorf("P(Z=%d): transient %v, stationary %v", j, d.LevelProb(j), sol.LevelProb(j))
		}
	}
}

func TestRelaxationFromEmptyIsMonotone(t *testing.T) {
	sv, _ := solverFor(t, 2, 1.2, 1.0, Options{MaxLevel: 80})
	v0, err := sv.InitialState(0, sOperativeModeParams(t))
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 1, 5, 20, 50, 150, 400}
	path, err := sv.MeanQueuePath(v0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(path); i++ {
		if path[i] < path[i-1]-1e-6 {
			t.Errorf("E[Z] not monotone from empty start at t=%v: %v < %v", times[i], path[i], path[i-1])
		}
	}
	if path[0] != 0 {
		t.Errorf("E[Z(0)] = %v from empty start", path[0])
	}
}

func TestDrainFromCongestion(t *testing.T) {
	// Starting with a long queue, the mean must drain toward stationarity.
	sv, p := solverFor(t, 2, 0.8, 1.0, Options{MaxLevel: 100})
	sol, err := qbd.SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := sv.InitialState(80, sOperativeMode(p))
	if err != nil {
		t.Fatal(err)
	}
	path, err := sv.MeanQueuePath(v0, []float64{0, 20, 60, 200, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(path); i++ {
		if path[i] > path[i-1]+1e-6 {
			t.Errorf("queue not draining at step %d: %v > %v", i, path[i], path[i-1])
		}
	}
	if rel := math.Abs(path[len(path)-1]-sol.MeanQueue()) / sol.MeanQueue(); rel > 0.02 {
		t.Errorf("drained to %v, stationary %v", path[len(path)-1], sol.MeanQueue())
	}
}

func TestTimeToSettle(t *testing.T) {
	sv, p := solverFor(t, 2, 1.0, 1.0, Options{MaxLevel: 100})
	sol, err := qbd.SolveSpectral(p)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := sv.InitialState(0, sOperativeMode(p))
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{1, 10, 50, 100, 300, 1000, 3000}
	settle, err := sv.TimeToSettle(v0, times, sol.MeanQueue(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if settle <= 0 {
		t.Fatalf("never settled: %v", settle)
	}
	// And an impossible tolerance never settles on this grid.
	never, err := sv.TimeToSettle(v0, times[:2], sol.MeanQueue(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if never != -1 {
		t.Errorf("expected -1 for unreachable tolerance, got %v", never)
	}
}

func TestValidation(t *testing.T) {
	sv, _ := solverFor(t, 2, 1.0, 1.0, Options{MaxLevel: 20})
	if _, err := sv.InitialState(21, 0); err == nil {
		t.Error("level out of range should fail")
	}
	if _, err := sv.InitialState(0, 99); err == nil {
		t.Error("mode out of range should fail")
	}
	v0, _ := sv.InitialState(0, 0)
	if _, err := sv.At(v0, -1); err == nil {
		t.Error("negative time should fail")
	}
	if _, err := sv.At(v0[:3], 1); err == nil {
		t.Error("wrong-length vector should fail")
	}
	if _, err := NewSolver(qbd.Params{}, Options{}); err == nil {
		t.Error("invalid params should fail")
	}
}

// sOperativeMode returns the index of the all-operative, all-phase-1 mode
// (a natural cold-start environment state).
func sOperativeMode(p qbd.Params) int {
	// The enumeration puts modes with more operative servers later; the
	// all-operative phase-1-heavy mode is the first of the last group. For
	// the tests the precise choice only sets the starting environment.
	return p.Size() - 1
}

func sOperativeModeParams(t *testing.T) int {
	t.Helper()
	env, err := markov.NewEnv(2, paperOps, paperRepair)
	if err != nil {
		t.Fatal(err)
	}
	return env.NumModes() - 1
}
