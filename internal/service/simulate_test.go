package service

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func simTestSystem() core.System {
	return core.System{
		Servers:     3,
		ArrivalRate: 1.8,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
}

func simTestOptions() core.SimOptions {
	return core.SimOptions{
		Seed:         11,
		Warmup:       200,
		Horizon:      5000,
		Replications: 3,
	}
}

func TestEngineSimulateCaches(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	ctx := context.Background()
	a, err := eng.Simulate(ctx, simTestSystem(), simTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Simulate(ctx, simTestSystem(), simTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("cached result differs from the original")
	}
	st := eng.Stats()
	if st.SimRuns != 1 {
		t.Errorf("SimRuns = %d, want 1 (second call must hit the cache)", st.SimRuns)
	}
	if st.SimCache.Hits != 1 || st.SimCache.Misses != 1 || st.SimCache.Entries != 1 {
		t.Errorf("sim cache stats %+v", st.SimCache)
	}
	// The engine path must agree bit-for-bit with a direct core run.
	direct, err := simTestSystem().Simulate(simTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, direct) {
		t.Errorf("engine result %+v differs from direct %+v", a, direct)
	}
}

func TestEngineSimulateKeyIncludesSeedAndPrecision(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	ctx := context.Background()
	base := simTestOptions()
	if _, err := eng.Simulate(ctx, simTestSystem(), base); err != nil {
		t.Fatal(err)
	}
	seeded := base
	seeded.Seed = 99
	if _, err := eng.Simulate(ctx, simTestSystem(), seeded); err != nil {
		t.Fatal(err)
	}
	precise := base
	precise.RelPrecision = 0.2
	precise.Replications = 6
	if _, err := eng.Simulate(ctx, simTestSystem(), precise); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.SimRuns != 3 {
		t.Errorf("SimRuns = %d, want 3 distinct cache entries", st.SimRuns)
	}
	// Same effective configuration spelled with explicit defaults → hit.
	spelled := base
	spelled.Confidence = 0.95
	spelled.MinReplications = base.Replications // RelPrecision 0 runs them all
	if _, err := eng.Simulate(ctx, simTestSystem(), spelled); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.SimRuns != 3 {
		t.Errorf("SimRuns = %d after normalized re-request, want 3", st.SimRuns)
	}
}

func TestEngineSimulateOverridesBypassCache(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	ctx := context.Background()
	opts := simTestOptions()
	opts.Operative = dist.Deterministic{Value: 30}
	for i := 0; i < 2; i++ {
		if _, err := eng.Simulate(ctx, simTestSystem(), opts); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.SimRuns != 2 {
		t.Errorf("SimRuns = %d, want 2 (override runs are uncacheable)", st.SimRuns)
	}
	if st.SimCache.Entries != 0 {
		t.Errorf("uncacheable run left %d cache entries", st.SimCache.Entries)
	}
}

func TestEngineSimulateSingleflight(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	const callers = 8
	results := make([]core.SimResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Simulate(context.Background(), simTestSystem(), simTestOptions())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if st := eng.Stats(); st.SimRuns != 1 {
		t.Errorf("SimRuns = %d, want 1 (concurrent identical requests share one run)", st.SimRuns)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
}

func TestEngineSimulateBatch(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	systems := []core.System{simTestSystem(), simTestSystem(), simTestSystem()}
	systems[1].ArrivalRate = 1.2
	systems[2].Servers = 0 // invalid: must fail per-entry, not abort
	out := eng.SimulateBatch(context.Background(), systems, simTestOptions())
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	if out[0].Err != nil || out[1].Err != nil {
		t.Errorf("valid entries failed: %v, %v", out[0].Err, out[1].Err)
	}
	if out[2].Err == nil {
		t.Error("invalid entry must carry its error")
	}
	if out[0].Res.MeanQueue <= out[1].Res.MeanQueue {
		t.Errorf("λ=1.8 queue %v should exceed λ=1.2 queue %v",
			out[0].Res.MeanQueue, out[1].Res.MeanQueue)
	}
	if err := FirstSimError(out); err == nil {
		t.Error("FirstSimError must surface the invalid entry")
	}
	// Entries 0 and 2 of a repeat batch: 0 hits cache.
	eng.SimulateBatch(context.Background(), systems[:1], simTestOptions())
	if st := eng.Stats(); st.SimCache.Hits == 0 {
		t.Error("repeat batch did not reuse the cache")
	}
}

func TestEngineSimulateCancellation(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Simulate(ctx, simTestSystem(), simTestOptions()); err == nil {
		t.Error("cancelled context must abort")
	}
}
