package service

import "repro/internal/obs"

// RegisterMetrics exposes the engine's counters and both caches on a
// metrics registry. Everything is collected at scrape time from the
// atomics (and mutex-guarded cache counters) the engine already keeps for
// Stats, so the evaluation hot path gains no new writes. Call once per
// engine per registry; duplicate registration panics by design.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("mus_engine_evaluations_total",
		"Evaluations answered by any means: cache hit, in-flight join, or fresh solve.",
		e.evals.Load)
	r.CounterFunc("mus_engine_solves_total",
		"Solver invocations that actually ran (evaluations minus cache hits and joins).",
		e.solves.Load)
	r.CounterFunc("mus_engine_solver_errors_total",
		"Solver invocations that returned an error.",
		e.errs.Load)
	r.CounterFunc("mus_engine_shared_inflight_total",
		"Evaluations deduplicated by joining an identical in-flight solve.",
		e.shared.Load)
	r.CounterFunc("mus_engine_sim_runs_total",
		"Replicated simulations that actually ran.",
		e.simRuns.Load)
	r.CounterFunc("mus_engine_sim_errors_total",
		"Replicated simulations that failed.",
		e.simErrs.Load)
	r.CounterFunc("mus_engine_batch_groups_total",
		"Shared sweep batch solvers actually constructed (λ-invariant work hoisted once per group).",
		e.batchGroups.Load)
	r.CounterFunc("mus_engine_batch_fallbacks_total",
		"Batched sweep points solved through the scalar fallback after a failed batch-solver construction.",
		e.batchFallbacks.Load)
	r.CounterFunc("mus_engine_warmed_entries_total",
		"Cache entries restored from a boot snapshot.",
		e.warmed.Load)
	r.GaugeFunc("mus_engine_workers",
		"Configured solver concurrency bound (the engine-wide gate).",
		func() float64 { return float64(e.workers) })
	registerCacheMetrics(r, "solver", e.cache)
	registerCacheMetrics(r, "sim", e.simCache)
}

// registerCacheMetrics exposes one LRU cache's counters under the shared
// mus_cache_* family, discriminated by the cache label. A disabled
// (nil) cache registers nothing — absent series read cleaner than
// permanent zeros.
func registerCacheMetrics[V any](r *obs.Registry, name string, c *lruCache[V]) {
	if c == nil {
		return
	}
	lbl := obs.L("cache", name)
	r.CounterFunc("mus_cache_hits_total",
		"Cache lookups answered from memory.",
		func() uint64 { return c.stats().Hits }, lbl)
	r.CounterFunc("mus_cache_misses_total",
		"Cache lookups that led a fresh run (in-flight joins count as neither hit nor miss).",
		func() uint64 { return c.stats().Misses }, lbl)
	r.CounterFunc("mus_cache_evictions_total",
		"Entries displaced by the LRU policy.",
		func() uint64 { return c.stats().Evictions }, lbl)
	r.GaugeFunc("mus_cache_entries",
		"Entries currently cached.",
		func() float64 { return float64(c.stats().Entries) }, lbl)
	r.GaugeFunc("mus_cache_capacity",
		"Configured maximum number of entries.",
		func() float64 { return float64(c.stats().Capacity) }, lbl)
}
