package service

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
)

// simKey builds the canonical memoisation key for a simulation request:
// the system fingerprint plus every result-affecting option of the
// normalized form — seed, warmup/horizon, replication cap and minimum,
// relative precision and confidence level. Floats are encoded in exact
// hexadecimal form, mirroring core.System.Fingerprint. The second return
// is false when the request is not cacheable: option-level distribution
// overrides have no canonical encoding, so those runs always execute.
func simKey(sys core.System, o core.SimOptions) (string, bool) {
	if o.Operative != nil || o.Repair != nil {
		return "", false
	}
	o = o.Normalized()
	hex := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
	return "sim|" + sys.Fingerprint() +
		"|s=" + strconv.FormatInt(o.Seed, 10) +
		"|w=" + hex(o.Warmup) +
		"|h=" + hex(o.Horizon) +
		"|r=" + strconv.Itoa(o.Replications) +
		"|m=" + strconv.Itoa(o.MinReplications) +
		"|e=" + hex(o.RelPrecision) +
		"|c=" + hex(o.Confidence), true
}

// Simulate estimates a system's steady state by replicated discrete-event
// simulation through the engine's simulation cache: results are memoised
// under (fingerprint, seed, precision), concurrent identical requests join
// one in-flight run, and distinct requests are serialised by the engine's
// worker gate. The run itself is bit-for-bit deterministic for a fixed
// (system, options), so a cached result is indistinguishable from a fresh
// one.
//
// Replicated runs share the engine's worker gate at replication
// granularity: every individual replication — across any number of
// concurrent Simulate calls, plus all solver work — holds one engine
// slot while it runs, so the configured Workers bound holds globally and
// concurrent simulations interleave instead of oversubscribing the pool.
func (e *Engine) Simulate(ctx context.Context, sys core.System, opts core.SimOptions) (core.SimResult, error) {
	if err := ctx.Err(); err != nil {
		return core.SimResult{}, err
	}
	if err := sys.Validate(); err != nil {
		return core.SimResult{}, err
	}
	if opts.Workers <= 0 {
		opts.Workers = e.workers
	}
	key, cacheable := simKey(sys, opts)
	if !cacheable {
		return e.runSim(ctx, sys, opts)
	}
	if e.simCache != nil {
		if res, ok := e.simCache.get(key); ok {
			e.simCache.recordHit()
			return res, nil
		}
	}

	e.mu.Lock()
	if f, ok := e.simInflight[key]; ok {
		e.mu.Unlock()
		e.shared.Add(1)
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return core.SimResult{}, ctx.Err()
		}
	}
	f := &simFlight{done: make(chan struct{})}
	e.simInflight[key] = f
	e.mu.Unlock()
	if e.simCache != nil {
		e.simCache.recordMiss()
	}

	f.res, f.err = e.runSim(ctx, sys, opts)
	if f.err == nil && e.simCache != nil {
		e.simCache.add(key, f.res)
	}
	e.mu.Lock()
	delete(e.simInflight, key)
	e.mu.Unlock()
	close(f.done)
	return f.res, f.err
}

// runSim executes one simulation under the engine's worker gate: a
// single-replication run holds one slot for its duration, a replicated
// run acquires a slot per replication through RepConfig.Gate so the
// engine-wide bound holds at replication granularity.
func (e *Engine) runSim(ctx context.Context, sys core.System, opts core.SimOptions) (core.SimResult, error) {
	if opts.Normalized().Replications <= 1 {
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return core.SimResult{}, ctx.Err()
		}
		defer func() { <-e.sem }()
	} else {
		opts.Gate = e.sem
	}
	e.simRuns.Add(1)
	res, err := sys.SimulateContext(ctx, opts)
	if err != nil && ctx.Err() == nil {
		// Cancellation is the caller's doing, not a simulation failure.
		e.simErrs.Add(1)
	}
	return res, err
}

// SimulateBatch simulates every system with the same options, returning
// one result per system in submission order. Errors are captured per
// entry, never aborting the batch. The batch dispatches serially — each
// replicated run already saturates the worker pool internally, so batching
// adds cache and dedup reuse, not extra concurrency.
func (e *Engine) SimulateBatch(ctx context.Context, systems []core.System, opts core.SimOptions) []SimBatchResult {
	out := make([]SimBatchResult, len(systems))
	for i, sys := range systems {
		if err := ctx.Err(); err != nil {
			out[i] = SimBatchResult{Index: i, System: sys, Err: err}
			continue
		}
		res, err := e.Simulate(ctx, sys, opts)
		out[i] = SimBatchResult{Index: i, System: sys, Res: res, Err: err}
	}
	return out
}

// SimBatchResult is the outcome of one SimulateBatch entry.
type SimBatchResult struct {
	// Index links the result back to its position in the submitted batch.
	Index int
	// System is the simulated configuration.
	System core.System
	// Res is the replicated-simulation estimate (zero-valued on error).
	Res core.SimResult
	// Err is the per-entry failure, if any.
	Err error
}

// FirstSimError returns the first per-entry error in a batch, or nil.
func FirstSimError(results []SimBatchResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("service: sim %d (N=%d, λ=%g): %w",
				r.Index, r.System.Servers, r.System.ArrivalRate, r.Err)
		}
	}
	return nil
}
