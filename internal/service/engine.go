// Package service is the shared model-evaluation subsystem: a bounded
// worker pool that solves batches of core.System configurations
// concurrently, backed by an LRU memoization of solver output keyed by the
// canonical system fingerprint. The paper's workload — dense λ- and
// N-sweeps for Figures 4–9 and the cost optimisation — is embarrassingly
// parallel and highly repetitive, so every figure run, benchmark and
// mus-serve request routes through one engine and shares its cache.
//
// The engine also fronts the replicated discrete-event simulator
// (Simulate, SimulateBatch): simulation results are memoised in their own
// LRU keyed by (fingerprint, seed, precision) — simulation output is
// deterministic for a fixed request, so a cached result is
// indistinguishable from a fresh run — with concurrent identical requests
// joining one in-flight run exactly like solver evaluations.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

// Config tunes an Engine. The zero value selects a worker per CPU, a
// 4096-entry solution cache and a 256-entry simulation cache.
type Config struct {
	// Workers bounds concurrent solver invocations (default GOMAXPROCS).
	Workers int
	// CacheSize is the maximum number of memoised solutions; negative
	// disables caching entirely (default 4096).
	CacheSize int
	// SimCacheSize is the maximum number of memoised simulation results;
	// negative disables the simulation cache (default 256 — simulation
	// output is far larger and far more expensive than solver output, so
	// the two families never share a cache or evict each other).
	SimCacheSize int
}

// DefaultCacheSize is the solver-cache capacity used when Config.CacheSize
// is 0.
const DefaultCacheSize = 4096

// DefaultSimCacheSize is the simulation-cache capacity used when
// Config.SimCacheSize is 0.
const DefaultSimCacheSize = 256

// Engine evaluates system configurations on a bounded worker pool with
// solver memoization. It is safe for concurrent use.
type Engine struct {
	workers  int
	cache    *lruCache[*core.Performance]
	simCache *lruCache[core.SimResult]
	// sem is the engine-wide solver gate: every solver invocation — from
	// Evaluate, any number of concurrent EvaluateBatch calls, or both —
	// holds one slot, so total concurrency never exceeds Workers.
	sem chan struct{}

	mu          sync.Mutex
	inflight    map[string]*flight
	simInflight map[string]*simFlight

	evals          atomic.Uint64 // evaluations answered by any means
	solves         atomic.Uint64 // solver invocations that actually ran
	errs           atomic.Uint64 // solver invocations that returned an error
	shared         atomic.Uint64 // evaluations that joined an in-flight solve
	simRuns        atomic.Uint64 // replicated simulations that actually ran
	simErrs        atomic.Uint64 // replicated simulations that failed
	batchGroups    atomic.Uint64 // shared batch solvers actually constructed
	batchFallbacks atomic.Uint64 // batched points solved scalar after a failed construction
	warmed         atomic.Uint64 // cache entries restored from a snapshot
}

// flight is one in-progress solve that concurrent callers of the same
// configuration join instead of duplicating.
type flight struct {
	done chan struct{}
	perf *core.Performance
	err  error
}

// simFlight is the simulation counterpart of flight.
type simFlight struct {
	done chan struct{}
	res  core.SimResult
	err  error
}

// NewEngine builds an engine from the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	simSize := cfg.SimCacheSize
	if simSize == 0 {
		simSize = DefaultSimCacheSize
	}
	return &Engine{
		workers:     cfg.Workers,
		cache:       newLRUCache[*core.Performance](size), // nil when size < 0
		simCache:    newLRUCache[core.SimResult](simSize),
		sem:         make(chan struct{}, cfg.Workers),
		inflight:    make(map[string]*flight),
		simInflight: make(map[string]*simFlight),
	}
}

// Workers returns the configured solver concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Job is one evaluation request: a system plus the solver to apply.
type Job struct {
	System core.System
	Method core.Method
}

// Result is the outcome of one Job. Index links it back to its position in
// the submitted batch — results are always returned in submission order.
type Result struct {
	Index int
	Job   Job
	Perf  *core.Performance
	Err   error
}

func jobKey(j Job) string {
	return j.System.Fingerprint() + "|" + j.Method.String()
}

// Evaluate solves one configuration through the cache. Identical
// configurations evaluated concurrently share a single solver run; waiting
// callers respect context cancellation. When ctx carries a live trace the
// solve is recorded as a mus.engine.solve child span (cache hits
// included — a hit's microsecond span is what makes the cache visible in
// a trace).
func (e *Engine) Evaluate(ctx context.Context, sys core.System, m core.Method) (*core.Performance, error) {
	sp := trace.StartLeaf(ctx, "mus.engine.solve")
	sp.Set(trace.Int("servers", int64(sys.Servers)))
	sp.Set(trace.Float("lambda", sys.ArrivalRate))
	perf, err := e.evaluate(ctx, sys, m, nil)
	sp.Fail(err)
	sp.End()
	return perf, err
}

// evaluate is Evaluate with a pluggable solver: when solve is non-nil it
// replaces sys.SolveWith(m) as the cache-miss path. The substitute must
// be result-equivalent to the scalar solver (the batched sweep path is,
// bit for bit) — cache keys, in-flight sharing and counters are identical
// either way, so callers joining an in-flight solve or hitting the cache
// cannot tell which path produced the entry.
func (e *Engine) evaluate(ctx context.Context, sys core.System, m core.Method, solve func(core.System) (*core.Performance, error)) (*core.Performance, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	e.evals.Add(1)
	key := jobKey(Job{System: sys, Method: m})
	if e.cache != nil {
		if perf, ok := e.cache.get(key); ok {
			e.cache.recordHit()
			return perf, nil
		}
	}

	e.mu.Lock()
	if f, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		// Joining an in-flight solve is neither a cache hit nor a miss —
		// no solver runs for this caller and nothing was served from
		// memory — so it only moves the SharedInFlight counter.
		e.shared.Add(1)
		select {
		case <-f.done:
			return f.perf, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.mu.Unlock()
	if e.cache != nil {
		e.cache.recordMiss()
	}

	// This caller leads the solve; take an engine-wide worker slot so the
	// configured bound holds across every concurrent entry point.
	select {
	case e.sem <- struct{}{}:
		e.solves.Add(1)
		if solve != nil {
			f.perf, f.err = solve(sys)
		} else {
			f.perf, f.err = sys.SolveWith(m)
		}
		<-e.sem
		if f.err != nil {
			e.errs.Add(1)
		} else if e.cache != nil {
			e.cache.add(key, f.perf)
		}
	case <-ctx.Done():
		f.err = ctx.Err() // cancelled waiting for a slot; not a solver error
	}
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(f.done)
	return f.perf, f.err
}

// EvaluateBatch evaluates all jobs on the worker pool and returns one
// Result per job, in submission order regardless of completion order.
// Errors are captured per job, never aborting the batch; cancelling the
// context stops dispatching and marks every unfinished job with ctx.Err().
func (e *Engine) EvaluateBatch(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	for i, j := range jobs {
		results[i] = Result{Index: i, Job: j, Err: context.Canceled}
	}
	if len(jobs) == 0 {
		return results
	}
	// One batch-level span, never one per point: a 10k-point sweep must
	// not flood the trace buffer (or pay per-point span overhead in the
	// hot loop).
	sp := trace.StartLeaf(ctx, "mus.engine.sweep")
	sp.Set(trace.Int("points", int64(len(jobs))))
	defer sp.End()
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	batches := newSweepBatches(jobs)
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				perf, err := e.evaluateJob(ctx, jobs[i], batches)
				results[i] = Result{Index: i, Job: jobs[i], Perf: perf, Err: err}
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Perf == nil && results[i].Err == context.Canceled {
				results[i].Err = err
			}
		}
	}
	return results
}

// EvaluateStream evaluates all jobs on the worker pool and calls emit
// exactly once per job, in submission order, as soon as that job's result
// (and every earlier one's) is available — the streaming counterpart of
// EvaluateBatch, built for incremental HTTP responses: the first grid
// point of a long sweep is delivered while later points are still being
// solved. emit is never called concurrently. Per-job failures are carried
// in Result.Err and do not stop the stream; the returned error is
// non-nil only when the context is cancelled or emit itself fails, and
// in both cases all remaining work is abandoned.
func (e *Engine) EvaluateStream(ctx context.Context, jobs []Job, emit func(Result) error) error {
	if len(jobs) == 0 {
		return nil
	}
	// Batch-level span, as in EvaluateBatch: one per stream, not per point.
	sp := trace.StartLeaf(ctx, "mus.engine.sweep")
	sp.Set(trace.Int("points", int64(len(jobs))))
	defer sp.End()
	ctx, cancel := context.WithCancel(ctx)
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	done := make([]chan struct{}, len(jobs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	batches := newSweepBatches(jobs)
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				perf, err := e.evaluateJob(ctx, jobs[i], batches)
				results[i] = Result{Index: i, Job: jobs[i], Perf: perf, Err: err}
				close(done[i])
			}
		}()
	}
	go func() {
		defer close(indices)
		for i := range jobs {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	defer func() {
		cancel()
		wg.Wait()
	}()
	for i := range jobs {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return ctx.Err()
		}
		if err := emit(results[i]); err != nil {
			return err
		}
	}
	return nil
}

// FirstError returns the first per-job error in a batch, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("service: job %d (N=%d, λ=%g, %v): %w",
				r.Index, r.Job.System.Servers, r.Job.System.ArrivalRate, r.Job.Method, r.Err)
		}
	}
	return nil
}

// SweepSystems evaluates one method across a slice of systems and returns
// the performances in input order, failing on the first per-job error.
func (e *Engine) SweepSystems(ctx context.Context, systems []core.System, m core.Method) ([]*core.Performance, error) {
	jobs := make([]Job, len(systems))
	for i, s := range systems {
		jobs[i] = Job{System: s, Method: m}
	}
	results := e.EvaluateBatch(ctx, jobs)
	if err := FirstError(results); err != nil {
		return nil, err
	}
	perfs := make([]*core.Performance, len(results))
	for i, r := range results {
		perfs[i] = r.Perf
	}
	return perfs, nil
}

// SweepLambda evaluates the base system at every arrival rate, in order.
func (e *Engine) SweepLambda(ctx context.Context, base core.System, lambdas []float64, m core.Method) ([]*core.Performance, error) {
	systems := make([]core.System, len(lambdas))
	for i, l := range lambdas {
		systems[i] = base
		systems[i].ArrivalRate = l
	}
	return e.SweepSystems(ctx, systems, m)
}

// SweepServers mirrors core.SweepServers — per-N performance and cost for
// every stable N in [minN, maxN], ascending — but runs on the engine's
// pool and cache, so repeated and overlapping sweeps reuse solves.
func (e *Engine) SweepServers(ctx context.Context, base core.System, cm core.CostModel, minN, maxN int, m core.Method) ([]core.ServerSweepPoint, error) {
	if minN < 1 || maxN < minN {
		return nil, fmt.Errorf("service: invalid server range [%d, %d]", minN, maxN)
	}
	var jobs []Job
	for n := minN; n <= maxN; n++ {
		sys := base
		sys.Servers = n
		if !sys.Stable() {
			continue
		}
		jobs = append(jobs, Job{System: sys, Method: m})
	}
	if len(jobs) == 0 {
		return nil, errors.New("service: no stable configuration in the requested range")
	}
	results := e.EvaluateBatch(ctx, jobs)
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]core.ServerSweepPoint, len(results))
	for i, r := range results {
		n := r.Job.System.Servers
		out[i] = core.ServerSweepPoint{Servers: n, Perf: r.Perf, Cost: cm.Cost(r.Perf.MeanJobs, n)}
	}
	return out, nil
}

// OptimizeServers returns the stable N in [minN, maxN] minimising
// C = c₁L + c₂N (the paper's Figure 5 question). Unlike the serial
// early-exit in core, the whole range is evaluated concurrently — with the
// pool and cache the extra points cost less than the lost parallelism
// would.
func (e *Engine) OptimizeServers(ctx context.Context, base core.System, cm core.CostModel, minN, maxN int, m core.Method) (core.ServerSweepPoint, error) {
	sweep, err := e.SweepServers(ctx, base, cm, minN, maxN, m)
	if err != nil {
		return core.ServerSweepPoint{}, err
	}
	best := sweep[0]
	for _, pt := range sweep[1:] {
		if pt.Cost < best.Cost {
			best = pt
		}
	}
	return best, nil
}

// MinServersForResponseTime returns the smallest stable N in [minN, maxN]
// with mean response time at most target (the paper's Figure 9 question).
// W falls monotonically in N, so the range is evaluated in ascending waves
// of one worker-pool width each: every wave solves concurrently, but the
// search still stops at the first satisfying N instead of paying for the
// huge state spaces near maxN that the answer never needs.
func (e *Engine) MinServersForResponseTime(ctx context.Context, base core.System, target float64, minN, maxN int, m core.Method) (core.ServerSweepPoint, error) {
	if target <= 0 {
		return core.ServerSweepPoint{}, fmt.Errorf("service: target response time %v must be positive", target)
	}
	if minN < 1 || maxN < minN {
		return core.ServerSweepPoint{}, fmt.Errorf("service: invalid server range [%d, %d]", minN, maxN)
	}
	for lo := minN; lo <= maxN; lo += e.workers {
		hi := lo + e.workers - 1
		if hi > maxN {
			hi = maxN
		}
		var jobs []Job
		for n := lo; n <= hi; n++ {
			sys := base
			sys.Servers = n
			if !sys.Stable() {
				continue
			}
			jobs = append(jobs, Job{System: sys, Method: m})
		}
		if len(jobs) == 0 {
			continue
		}
		results := e.EvaluateBatch(ctx, jobs)
		if err := FirstError(results); err != nil {
			return core.ServerSweepPoint{}, err
		}
		for _, r := range results {
			if r.Perf.MeanResponse <= target {
				return core.ServerSweepPoint{Servers: r.Job.System.Servers, Perf: r.Perf}, nil
			}
		}
	}
	return core.ServerSweepPoint{}, fmt.Errorf("service: no N in [%d, %d] achieves W ≤ %v", minN, maxN, target)
}

// Stats is a point-in-time snapshot of engine activity.
type Stats struct {
	// Workers is the solver concurrency bound.
	Workers int
	// Evaluations counts evaluations answered by any means — cache hit,
	// in-flight join, or fresh solve. Evaluations/Solves is the local
	// cache-affinity multiplier the cluster's fingerprint routing exists
	// to raise: the higher it is, the more of the node's shard is served
	// from memory.
	Evaluations uint64
	// Solves counts solver invocations that actually ran (cache misses).
	Solves uint64
	// Errors counts solver invocations that failed.
	Errors uint64
	// SharedInFlight counts evaluations answered by joining a concurrent
	// identical solve or simulation instead of running their own.
	SharedInFlight uint64
	// SimRuns counts replicated simulations that actually ran (simulation
	// cache misses and uncacheable runs).
	SimRuns uint64
	// SimErrors counts replicated simulations that failed.
	SimErrors uint64
	// BatchGroups counts shared batch solvers actually constructed — sweep
	// groups whose λ-invariant work was hoisted once instead of per point.
	BatchGroups uint64
	// BatchFallbacks counts batched points that fell back to the scalar
	// solver because their group's construction failed.
	BatchFallbacks uint64
	// WarmedEntries counts cache entries restored from a boot snapshot.
	WarmedEntries uint64
	// Cache reports solver memoization effectiveness; zero-valued when
	// disabled.
	Cache CacheStats
	// SimCache reports simulation memoization effectiveness; zero-valued
	// when disabled.
	SimCache CacheStats
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:        e.workers,
		Evaluations:    e.evals.Load(),
		Solves:         e.solves.Load(),
		Errors:         e.errs.Load(),
		SharedInFlight: e.shared.Load(),
		SimRuns:        e.simRuns.Load(),
		SimErrors:      e.simErrs.Load(),
		BatchGroups:    e.batchGroups.Load(),
		BatchFallbacks: e.batchFallbacks.Load(),
		WarmedEntries:  e.warmed.Load(),
	}
	if e.cache != nil {
		s.Cache = e.cache.stats()
	}
	if e.simCache != nil {
		s.SimCache = e.simCache.stats()
	}
	return s
}
