package service

import "repro/internal/core"

// This file is the engine's warm-restart surface: a serializable snapshot
// of the two LRU caches that internal/store persists periodically and a
// restarted node loads on boot, so its first owned-fingerprint solve is a
// cache hit instead of a cold spectral run. Snapshots are advisory — a
// missing, stale or truncated one only costs warmth, never correctness —
// because cache keys are canonical fingerprints: a key either matches a
// future request exactly or is never looked up.
//
// Restored solver entries carry only core.Performance's exported
// steady-state fields (the unexported spectral solution is not
// serializable); that is exactly the part every HTTP response path reads,
// so a warmed hit is indistinguishable from a memoised one on the wire.
// Callers needing the deeper solution structure (OperativeBreakdown) run
// through the figure pipeline, which never touches the service cache.

// CachedSolve is one solver-cache entry in snapshot form.
type CachedSolve struct {
	// Key is the engine's cache key: system fingerprint + solver method.
	Key string `json:"key"`
	// Perf is the memoised steady-state block (exported fields only).
	Perf *core.Performance `json:"perf"`
}

// CachedSim is one simulation-cache entry in snapshot form.
type CachedSim struct {
	// Key is the engine's simulation cache key: system fingerprint +
	// normalized simulation options.
	Key string `json:"key"`
	// Result is the memoised simulation output (fully exported).
	Result core.SimResult `json:"result"`
}

// CacheSnapshot is the engine's serializable cache state.
type CacheSnapshot struct {
	// Solves holds solver-cache entries, most recently used first.
	Solves []CachedSolve `json:"solves,omitempty"`
	// Sims holds simulation-cache entries, most recently used first.
	Sims []CachedSim `json:"sims,omitempty"`
}

// ExportCaches snapshots up to limit entries per cache (MRU first;
// limit <= 0 exports everything). The snapshot shares the cached
// *core.Performance pointers — safe because cached values are immutable
// by the cache's own contract.
func (e *Engine) ExportCaches(limit int) CacheSnapshot {
	var snap CacheSnapshot
	if e.cache != nil {
		keys, vals := e.cache.export(limit)
		snap.Solves = make([]CachedSolve, len(keys))
		for i := range keys {
			snap.Solves[i] = CachedSolve{Key: keys[i], Perf: vals[i]}
		}
	}
	if e.simCache != nil {
		keys, vals := e.simCache.export(limit)
		snap.Sims = make([]CachedSim, len(keys))
		for i := range keys {
			snap.Sims[i] = CachedSim{Key: keys[i], Result: vals[i]}
		}
	}
	return snap
}

// WarmCaches inserts snapshot entries into the engine caches and returns
// how many were restored. Entries are inserted oldest first so the
// snapshot's MRU order survives as the cache's LRU order; nil-performance
// entries (a hand-edited or corrupt snapshot) are skipped.
func (e *Engine) WarmCaches(snap CacheSnapshot) int {
	restored := 0
	if e.cache != nil {
		for i := len(snap.Solves) - 1; i >= 0; i-- {
			s := snap.Solves[i]
			if s.Key == "" || s.Perf == nil {
				continue
			}
			e.cache.add(s.Key, s.Perf)
			restored++
		}
	}
	if e.simCache != nil {
		for i := len(snap.Sims) - 1; i >= 0; i-- {
			s := snap.Sims[i]
			if s.Key == "" {
				continue
			}
			e.simCache.add(s.Key, s.Result)
			restored++
		}
	}
	e.warmed.Add(uint64(restored))
	return restored
}
