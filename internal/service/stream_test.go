package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

func streamTestSystem(n int, lambda float64) core.System {
	return core.System{
		Servers:     n,
		ArrivalRate: lambda,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
}

func TestEvaluateStreamOrderAndPerJobErrors(t *testing.T) {
	eng := NewEngine(Config{Workers: 4})
	jobs := []Job{
		{System: streamTestSystem(10, 4), Method: core.Spectral},
		{System: streamTestSystem(0, 4), Method: core.Spectral}, // invalid: 0 servers
		{System: streamTestSystem(10, 6), Method: core.Spectral},
	}
	var got []Result
	err := eng.EvaluateStream(context.Background(), jobs, func(r Result) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("%d emissions, want %d", len(got), len(jobs))
	}
	for i, r := range got {
		if r.Index != i {
			t.Errorf("emission %d has index %d — stream out of order", i, r.Index)
		}
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("valid points failed: %v, %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Error("invalid point did not carry its error")
	}
	if got[0].Perf.MeanJobs >= got[2].Perf.MeanJobs {
		t.Error("L should grow with λ")
	}
}

func TestEvaluateStreamEmitErrorStopsStream(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{System: streamTestSystem(10, 4+0.1*float64(i)), Method: core.Spectral}
	}
	sentinel := errors.New("client went away")
	calls := 0
	err := eng.EvaluateStream(context.Background(), jobs, func(r Result) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if calls != 2 {
		t.Errorf("emit called %d times after failing, want 2", calls)
	}
}

func TestEvaluateStreamCancelledContext(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := eng.EvaluateStream(ctx, []Job{{System: streamTestSystem(10, 4), Method: core.Spectral}},
		func(Result) error { t.Error("emit called after cancellation"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvaluateStreamMatchesBatch(t *testing.T) {
	eng := NewEngine(Config{})
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{System: streamTestSystem(10, 4+0.2*float64(i)), Method: core.Spectral}
	}
	batch := eng.EvaluateBatch(context.Background(), jobs)
	var streamed []Result
	if err := eng.EvaluateStream(context.Background(), jobs, func(r Result) error {
		streamed = append(streamed, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if batch[i].Err != nil || streamed[i].Err != nil {
			t.Fatalf("point %d failed: %v / %v", i, batch[i].Err, streamed[i].Err)
		}
		if batch[i].Perf.MeanJobs != streamed[i].Perf.MeanJobs {
			t.Errorf("point %d: batch L=%v stream L=%v", i, batch[i].Perf.MeanJobs, streamed[i].Perf.MeanJobs)
		}
	}
}
