package service_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/service"
)

// Example_sweepViaEngine evaluates a λ-sweep on the shared evaluation
// engine: the four exact solves run concurrently on the worker pool, and a
// repeated sweep is answered entirely from the solver cache (note Solves
// stays at 4 while the hit counter grows).
func Example_sweepViaEngine() {
	eng := service.NewEngine(service.Config{Workers: 4})
	base := core.System{
		Servers:     10,
		ServiceRate: 1,
		Operative:   dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091}),
		Repair:      dist.Exp(25),
	}
	lambdas := []float64{4, 5, 6, 7}
	for sweep := 0; sweep < 2; sweep++ {
		perfs, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral)
		if err != nil {
			panic(err)
		}
		if sweep > 0 {
			for i, p := range perfs {
				fmt.Printf("λ=%g  L=%.4f\n", lambdas[i], p.MeanJobs)
			}
		}
	}
	st := eng.Stats()
	fmt.Printf("solver runs: %d, cache hits: %d\n", st.Solves, st.Cache.Hits)
	// Output:
	// λ=4  L=4.0060
	// λ=5  L=5.0367
	// λ=6  L=6.1540
	// λ=7  L=7.5236
	// solver runs: 4, cache hits: 4
}
