package service

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/qbd"
)

// identicalF64 is the batched path's equivalence contract: bit-identical
// on amd64, 1e-12 relative elsewhere.
func identicalF64(a, b float64) bool {
	if runtime.GOARCH == "amd64" {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a))
}

// TestSweepLambdaBatchedMatchesScalar runs a λ-sweep through the engine
// (which batches it) and compares every point to a direct scalar solve,
// including queue tails and mode marginals. Caching is disabled so each
// point genuinely exercises the batched solver.
func TestSweepLambdaBatchedMatchesScalar(t *testing.T) {
	eng := NewEngine(Config{CacheSize: -1})
	base := testSystem(6, 1)
	lambdas := make([]float64, 24)
	for i := range lambdas {
		lambdas[i] = 0.4 + 5.2*float64(i)/23
	}
	perfs, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lambdas {
		sys := base
		sys.ArrivalRate = l
		want, err := sys.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got := perfs[i]
		if !identicalF64(want.MeanJobs, got.MeanJobs) ||
			!identicalF64(want.MeanResponse, got.MeanResponse) ||
			!identicalF64(want.TailDecay, got.TailDecay) ||
			!identicalF64(want.Load, got.Load) {
			t.Fatalf("λ=%v: performance diverges: %+v vs %+v", l, want, got)
		}
		for j := 0; j <= 10; j++ {
			if !identicalF64(want.QueueProb(j), got.QueueProb(j)) {
				t.Fatalf("λ=%v: QueueProb(%d) %v vs %v", l, j, want.QueueProb(j), got.QueueProb(j))
			}
			if !identicalF64(want.QueueTail(j), got.QueueTail(j)) {
				t.Fatalf("λ=%v: QueueTail(%d) %v vs %v", l, j, want.QueueTail(j), got.QueueTail(j))
			}
		}
		wm, gm := want.ModeMarginals(), got.ModeMarginals()
		for k := range wm {
			if !identicalF64(wm[k], gm[k]) {
				t.Fatalf("λ=%v: marginal %d %v vs %v", l, k, wm[k], gm[k])
			}
		}
	}
}

// TestSweepLambdaConcurrentRace is the pooled-workspace canary: many
// goroutines sweep overlapping λ-grids through one engine with caching
// off, so concurrent points continuously check workspaces in and out of
// the shared pools. Every result is checked against a precomputed scalar
// reference — an aliased or torn workspace surfaces as a wrong mean.
// CI runs this under -race.
func TestSweepLambdaConcurrentRace(t *testing.T) {
	eng := NewEngine(Config{Workers: 8, CacheSize: -1})
	base := testSystem(4, 1)
	lambdas := make([]float64, 12)
	want := make([]float64, 12)
	for i := range lambdas {
		lambdas[i] = 0.3 + 3.0*float64(i)/11
		sys := base
		sys.ArrivalRate = lambdas[i]
		perf, err := sys.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = perf.MeanJobs
	}
	const sweeps = 6
	var wg sync.WaitGroup
	failures := make(chan error, sweeps)
	for s := 0; s < sweeps; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Rotate the grid per goroutine so different points collide in
			// the pool at the same instant.
			grid := make([]float64, len(lambdas))
			for i := range grid {
				grid[i] = lambdas[(i+s)%len(lambdas)]
			}
			perfs, err := eng.SweepLambda(context.Background(), base, grid, core.Spectral)
			if err != nil {
				failures <- err
				return
			}
			for i, p := range perfs {
				if !identicalF64(want[(i+s)%len(want)], p.MeanJobs) {
					failures <- errors.New("concurrent sweep result diverged from scalar reference")
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}
}

// TestEvaluateBatchMidSweepError submits a sweep whose middle points are
// unstable: the good points must still match the scalar path exactly and
// the bad ones must carry the scalar path's errors — a mid-sweep failure
// cannot poison the group's shared solver state.
func TestEvaluateBatchMidSweepError(t *testing.T) {
	eng := NewEngine(Config{CacheSize: -1})
	base := testSystem(3, 1)
	lambdas := []float64{0.8, 1.4, 500, 2.0, -1, 2.4}
	jobs := make([]Job, len(lambdas))
	for i, l := range lambdas {
		sys := base
		sys.ArrivalRate = l
		jobs[i] = Job{System: sys, Method: core.Spectral}
	}
	results := eng.EvaluateBatch(context.Background(), jobs)
	for i, r := range results {
		sys := base
		sys.ArrivalRate = lambdas[i]
		want, wantErr := sys.Solve()
		if (wantErr == nil) != (r.Err == nil) {
			t.Fatalf("λ=%v: scalar err %v, batch err %v", lambdas[i], wantErr, r.Err)
		}
		if wantErr != nil {
			if wantErr.Error() != r.Err.Error() {
				t.Fatalf("λ=%v: error text %q vs %q", lambdas[i], wantErr, r.Err)
			}
			if errors.Is(wantErr, qbd.ErrUnstable) != errors.Is(r.Err, qbd.ErrUnstable) {
				t.Fatalf("λ=%v: ErrUnstable identity differs", lambdas[i])
			}
			continue
		}
		if !identicalF64(want.MeanJobs, r.Perf.MeanJobs) {
			t.Fatalf("λ=%v: MeanJobs %v vs %v after mid-sweep errors", lambdas[i], want.MeanJobs, r.Perf.MeanJobs)
		}
	}
}

// TestBatchedSweepSharesCache checks the cache interplay: a batched sweep
// populates the same keys a scalar Evaluate reads, so re-evaluating any
// point afterwards is a pure cache hit returning the identical pointer.
func TestBatchedSweepSharesCache(t *testing.T) {
	eng := NewEngine(Config{CacheSize: 64})
	base := testSystem(4, 1)
	lambdas := []float64{0.5, 1.0, 1.5, 2.0}
	perfs, err := eng.SweepLambda(context.Background(), base, lambdas, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	solvesAfterSweep := eng.Stats().Solves
	for i, l := range lambdas {
		sys := base
		sys.ArrivalRate = l
		cached, err := eng.Evaluate(context.Background(), sys, core.Spectral)
		if err != nil {
			t.Fatal(err)
		}
		if cached != perfs[i] {
			t.Fatalf("λ=%v: cache returned a different pointer than the batched sweep", l)
		}
	}
	if st := eng.Stats(); st.Solves != solvesAfterSweep {
		t.Fatalf("re-evaluating swept points ran %d extra solves", st.Solves-solvesAfterSweep)
	}
}

// TestMixedBatchGroupsOnlySweeps checks grouping boundaries: jobs from
// different environments and non-spectral methods coexist in one batch,
// each solved correctly — singleton groups and non-spectral jobs take the
// scalar path, multi-point groups the batched one.
func TestMixedBatchGroupsOnlySweeps(t *testing.T) {
	eng := NewEngine(Config{CacheSize: -1})
	mk := func(n int, l float64, m core.Method) Job {
		return Job{System: testSystem(n, l), Method: m}
	}
	jobs := []Job{
		mk(3, 1.0, core.Spectral), // group A (×3)
		mk(3, 1.5, core.Spectral),
		mk(3, 2.0, core.Spectral),
		mk(4, 1.0, core.Spectral),      // singleton: different environment
		mk(3, 1.0, core.Approximation), // non-spectral, same environment
	}
	results := eng.EvaluateBatch(context.Background(), jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Index, r.Err)
		}
		want, err := r.Job.System.SolveWith(r.Job.Method)
		if err != nil {
			t.Fatal(err)
		}
		if !identicalF64(want.MeanJobs, r.Perf.MeanJobs) {
			t.Fatalf("job %d: MeanJobs %v vs %v", r.Index, want.MeanJobs, r.Perf.MeanJobs)
		}
	}
}

// TestNewSweepBatchesGrouping unit-tests the grouping rules directly.
func TestNewSweepBatchesGrouping(t *testing.T) {
	mk := func(n int, l float64, m core.Method) Job {
		return Job{System: testSystem(n, l), Method: m}
	}
	if b := newSweepBatches([]Job{mk(3, 1, core.Spectral)}); b != nil {
		t.Fatal("single job must not batch")
	}
	if b := newSweepBatches([]Job{mk(3, 1, core.Approximation), mk(3, 2, core.Approximation)}); b != nil {
		t.Fatal("non-spectral jobs must not batch")
	}
	if b := newSweepBatches([]Job{mk(3, 1, core.Spectral), mk(4, 1, core.Spectral)}); b != nil {
		t.Fatal("distinct environments must not batch")
	}
	b := newSweepBatches([]Job{
		mk(3, 1, core.Spectral), mk(3, 2, core.Spectral), mk(4, 1, core.Spectral),
	})
	if len(b) != 1 {
		t.Fatalf("got %d groups, want 1", len(b))
	}
	fp := testSystem(3, 1).EnvFingerprint()
	if b[fp] == nil {
		t.Fatal("the N=3 sweep group is missing")
	}
	if _, ok := b[testSystem(4, 1).EnvFingerprint()]; ok {
		t.Fatal("the N=4 singleton must not have a group")
	}
}

// TestSweepGroupConstructionFallback checks that a group whose batch
// solver cannot be built falls back to the scalar path and reports the
// scalar error text. An unstable base is fine for construction (rates are
// per-point), so the failure is forced with a zero service rate, which
// only validation catches.
func TestSweepGroupConstructionFallback(t *testing.T) {
	bad := testSystem(3, 1)
	bad.ServiceRate = 0
	g := &sweepGroup{base: bad}
	e := NewEngine(Config{})
	_, err := g.solve(e, bad)
	if err == nil {
		t.Fatal("expected an error from the fallback scalar solve")
	}
	if s := e.Stats(); s.BatchGroups != 1 || s.BatchFallbacks != 1 {
		t.Fatalf("batch counters after a fallback: groups=%d fallbacks=%d, want 1/1", s.BatchGroups, s.BatchFallbacks)
	}
	_, wantErr := bad.SolveWith(core.Spectral)
	if wantErr == nil || err.Error() != wantErr.Error() {
		t.Fatalf("fallback error %q, scalar error %q", err, wantErr)
	}
	if !strings.Contains(err.Error(), "service rate") {
		t.Fatalf("unexpected error %q", err)
	}
}
