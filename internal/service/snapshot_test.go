package service

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// TestExportWarmRoundTrip proves the warm-restart path end to end at the
// engine level: entries exported from one engine, round-tripped through
// JSON (as the on-disk snapshot does), warm a second engine, whose first
// evaluation of the same configuration is then a cache hit — no solver
// run — with the wire-visible performance fields intact.
func TestExportWarmRoundTrip(t *testing.T) {
	hot := NewEngine(Config{Workers: 2})
	sys := testSystem(3, 0.9)
	want, err := hot.Evaluate(context.Background(), sys, core.Spectral)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	snap := hot.ExportCaches(0)
	if len(snap.Solves) != 1 {
		t.Fatalf("exported %d solver entries, want 1", len(snap.Solves))
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var decoded CacheSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}

	cold := NewEngine(Config{Workers: 2})
	if n := cold.WarmCaches(decoded); n != 1 {
		t.Fatalf("WarmCaches restored %d entries, want 1", n)
	}
	if s := cold.Stats(); s.WarmedEntries != 1 {
		t.Fatalf("WarmedEntries = %d, want 1", s.WarmedEntries)
	}
	got, err := cold.Evaluate(context.Background(), sys, core.Spectral)
	if err != nil {
		t.Fatalf("warmed Evaluate: %v", err)
	}
	s := cold.Stats()
	if s.Solves != 0 || s.Cache.Hits != 1 {
		t.Fatalf("warmed evaluation ran the solver: solves=%d hits=%d", s.Solves, s.Cache.Hits)
	}
	if got.MeanJobs != want.MeanJobs || got.MeanResponse != want.MeanResponse ||
		got.TailDecay != want.TailDecay || got.Load != want.Load {
		t.Fatalf("warmed performance diverged: got %+v, want %+v", got, want)
	}
}

// TestExportCachesMRULimit checks that a truncated export keeps the most
// recently used entries.
func TestExportCachesMRULimit(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	for _, lam := range []float64{0.3, 0.6, 0.9} {
		if _, err := e.Evaluate(context.Background(), testSystem(3, lam), core.Spectral); err != nil {
			t.Fatalf("Evaluate(λ=%g): %v", lam, err)
		}
	}
	snap := e.ExportCaches(2)
	if len(snap.Solves) != 2 {
		t.Fatalf("exported %d entries, want 2", len(snap.Solves))
	}
	mru := jobKey(Job{System: testSystem(3, 0.9), Method: core.Spectral})
	if snap.Solves[0].Key != mru {
		t.Fatalf("MRU entry is %q, want %q", snap.Solves[0].Key, mru)
	}
}

// TestBatchCountersOnSweep checks the PR 7 routing counters move on a
// real batched sweep: one group constructed, no fallbacks.
func TestBatchCountersOnSweep(t *testing.T) {
	e := NewEngine(Config{Workers: 2})
	if _, err := e.SweepLambda(context.Background(), testSystem(3, 0), []float64{0.2, 0.4, 0.6}, core.Spectral); err != nil {
		t.Fatalf("SweepLambda: %v", err)
	}
	s := e.Stats()
	if s.BatchGroups != 1 || s.BatchFallbacks != 0 {
		t.Fatalf("batch counters after a clean sweep: groups=%d fallbacks=%d, want 1/0", s.BatchGroups, s.BatchFallbacks)
	}
}
