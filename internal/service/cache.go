package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// CacheStats is a point-in-time snapshot of solver-cache effectiveness.
type CacheStats struct {
	// Hits counts lookups answered from memory.
	Hits uint64
	// Misses counts lookups not answered from memory, whose caller went on
	// to lead a solver run. Joining a concurrent in-flight solve counts as
	// neither — see Stats.SharedInFlight.
	Misses uint64
	// Evictions counts entries displaced by the LRU policy.
	Evictions uint64
	// Entries is the current number of cached solutions.
	Entries int
	// Capacity is the configured maximum number of entries.
	Capacity int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// solverCache is a mutex-guarded LRU of solved performances keyed by the
// canonical system fingerprint plus solver method. Solutions are immutable
// once computed, so cached *core.Performance values are shared freely.
type solverCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	perf *core.Performance
}

func newSolverCache(capacity int) *solverCache {
	if capacity <= 0 {
		return nil // cache disabled
	}
	return &solverCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached performance and promotes the entry. It does not
// touch the hit/miss counters: the engine records those once it knows how
// the lookup resolved (hit, solver run, or in-flight join).
func (c *solverCache) get(key string) (*core.Performance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).perf, true
}

func (c *solverCache) recordHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *solverCache) recordMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entry when full.
func (c *solverCache) add(key string, perf *core.Performance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).perf = perf
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, perf: perf})
}

// stats snapshots the counters.
func (c *solverCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Capacity:  c.cap,
	}
}
