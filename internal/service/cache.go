package service

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of one engine cache's
// effectiveness (the solver cache and the simulation cache report
// independently).
type CacheStats struct {
	// Hits counts lookups answered from memory.
	Hits uint64
	// Misses counts lookups not answered from memory, whose caller went on
	// to lead a solver run. Joining a concurrent in-flight solve counts as
	// neither — see Stats.SharedInFlight.
	Misses uint64
	// Evictions counts entries displaced by the LRU policy.
	Evictions uint64
	// Entries is the current number of cached solutions.
	Entries int
	// Capacity is the configured maximum number of entries.
	Capacity int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// lruCache is a mutex-guarded LRU keyed by canonical strings. The engine
// instantiates one per result family — solver output (*core.Performance,
// keyed by fingerprint + method) and simulation output (core.SimResult,
// keyed by fingerprint + seed + precision) — so the two workloads never
// evict each other. Cached values must be immutable once inserted, since
// they are handed out to concurrent readers without copying.
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry[V any] struct {
	key string
	val V
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		return nil // cache disabled
	}
	return &lruCache[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and promotes the entry. It does not touch
// the hit/miss counters: the engine records those once it knows how the
// lookup resolved (hit, fresh run, or in-flight join).
func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

func (c *lruCache[V]) recordHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *lruCache[V]) recordMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entry when full.
func (c *lruCache[V]) add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry[V]).key)
			c.evictions++
		}
	}
	c.items[key] = c.order.PushFront(&cacheEntry[V]{key: key, val: val})
}

// export snapshots up to limit entries, most recently used first — the
// traversal order that makes a truncated snapshot keep the hottest
// entries. limit <= 0 exports everything.
func (c *lruCache[V]) export(limit int) (keys []string, vals []V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.order.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	keys = make([]string, 0, n)
	vals = make([]V, 0, n)
	for el := c.order.Front(); el != nil && len(keys) < n; el = el.Next() {
		ent := el.Value.(*cacheEntry[V])
		keys = append(keys, ent.key)
		vals = append(vals, ent.val)
	}
	return keys, vals
}

// stats snapshots the counters.
func (c *lruCache[V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Capacity:  c.cap,
	}
}
