package service

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
)

// randomStableSystem draws a random configuration — random 2-phase
// operative distribution, random repair rate, random fleet size — scaled
// to a random stable load in (0.2, 0.9), in the style of the qbd
// cross-method property tests.
func randomStableSystem(rng *rand.Rand) core.System {
	w := 0.2 + 0.6*rng.Float64()
	r1 := math.Exp(rng.NormFloat64() - 1)
	r2 := r1 * (3 + 20*rng.Float64())
	sys := core.System{
		Servers:     1 + rng.Intn(4),
		ArrivalRate: 1,
		ServiceRate: 0.5 + rng.Float64(),
		Operative:   dist.MustHyperExp([]float64{w, 1 - w}, []float64{r1, r2}),
		Repair:      dist.Exp(math.Exp(rng.NormFloat64() + 1)),
	}
	target := 0.2 + 0.7*rng.Float64()
	sys.ArrivalRate = target / sys.Load() // Load is linear in λ
	return sys
}

// TestEngineMonotoneLambdaProperty checks the engine end-to-end against a
// law of the model itself: for fixed µ and N, the mean number of jobs L
// is monotone non-decreasing in the arrival rate λ. Violations would
// indicate result mixing in the pool, the cache or the singleflight map.
func TestEngineMonotoneLambdaProperty(t *testing.T) {
	eng := NewEngine(Config{})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomStableSystem(rng)
		// An increasing λ grid inside the stable region.
		lambdaMax := base.ArrivalRate / base.Load() * 0.95
		grid := make([]float64, 8)
		for i := range grid {
			grid[i] = lambdaMax * (0.1 + 0.9*float64(i)/float64(len(grid)-1)) * 0.99
		}
		perfs, err := eng.SweepLambda(context.Background(), base, grid, core.Spectral)
		if err != nil {
			t.Logf("seed %d: sweep failed: %v", seed, err)
			return false
		}
		for i := 1; i < len(perfs); i++ {
			// Allow for solver round-off at nearly equal loads.
			if perfs[i].MeanJobs < perfs[i-1].MeanJobs*(1-1e-9) {
				t.Logf("seed %d: L(λ=%g) = %v < L(λ=%g) = %v",
					seed, grid[i], perfs[i].MeanJobs, grid[i-1], perfs[i-1].MeanJobs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestEngineCachedEqualsColdCacheProperty checks that memoisation is
// invisible: a cache-hit evaluation returns bit-identical Performance to
// a cold-cache evaluation of the same configuration on a fresh engine,
// and to an engine with caching disabled.
func TestEngineCachedEqualsColdCacheProperty(t *testing.T) {
	warm := NewEngine(Config{})
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomStableSystem(rng)
		first, err := warm.Evaluate(ctx, sys, core.Spectral)
		if err != nil {
			t.Logf("seed %d: warm engine: %v", seed, err)
			return false
		}
		hit, err := warm.Evaluate(ctx, sys, core.Spectral) // cache hit
		if err != nil {
			return false
		}
		uncached := NewEngine(Config{CacheSize: -1}) // caching disabled
		cold, err := uncached.Evaluate(ctx, sys, core.Spectral)
		if err != nil {
			t.Logf("seed %d: uncached engine: %v", seed, err)
			return false
		}
		for _, got := range []*core.Performance{hit, cold} {
			if got.MeanJobs != first.MeanJobs || got.MeanResponse != first.MeanResponse ||
				got.TailDecay != first.TailDecay || got.Load != first.Load {
				t.Logf("seed %d: cached %+v vs cold %+v", seed, first, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestEvaluateBatchMatchesPointwiseProperty checks the metamorphic
// identity EvaluateBatch ≡ map(Evaluate): same order, bit-identical
// values, regardless of pool scheduling. The two engines are separate so
// the batch cannot trivially reuse the pointwise engine's cache.
func TestEvaluateBatchMatchesPointwiseProperty(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := make([]Job, 1+rng.Intn(12))
		for i := range jobs {
			m := []core.Method{core.Spectral, core.MatrixGeometric}[rng.Intn(2)]
			jobs[i] = Job{System: randomStableSystem(rng), Method: m}
		}
		batchEng := NewEngine(Config{Workers: 1 + rng.Intn(8)})
		pointEng := NewEngine(Config{})
		results := batchEng.EvaluateBatch(ctx, jobs)
		if len(results) != len(jobs) {
			t.Logf("seed %d: %d results for %d jobs", seed, len(results), len(jobs))
			return false
		}
		for i, res := range results {
			if res.Index != i || res.Err != nil {
				t.Logf("seed %d: result %d = %+v", seed, i, res)
				return false
			}
			want, err := pointEng.Evaluate(ctx, jobs[i].System, jobs[i].Method)
			if err != nil {
				t.Logf("seed %d: pointwise %d: %v", seed, i, err)
				return false
			}
			if res.Perf.MeanJobs != want.MeanJobs || res.Perf.MeanResponse != want.MeanResponse ||
				res.Perf.TailDecay != want.TailDecay || res.Perf.Load != want.Load {
				t.Logf("seed %d: job %d batch %+v vs pointwise %+v", seed, i, res.Perf, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
