package jobs

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/api"
	"repro/internal/cluster"
	"repro/internal/store"
)

// openTestLog opens a job log in strict-durability mode (every append
// syncs), so tests never race the fsync batcher.
func openTestLog(t *testing.T, dir string) *store.JobLog {
	t.Helper()
	l, err := store.OpenJobLog(dir, store.Options{})
	if err != nil {
		t.Fatalf("OpenJobLog: %v", err)
	}
	return l
}

// TestDurableJobHistorySurvivesRestart submits jobs against a log,
// finishes them, then boots a second scheduler on the same log: the
// history must reappear — the done sweep with its result re-synthesised
// from its persisted points, the optimize result served verbatim.
func TestDurableJobHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	s := New(Config{Engine: &fakeEngine{}, Log: l, NodeID: "node-a"})
	st, err := s.Submit(context.Background(), sweepJob(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "node-a" {
		t.Fatalf("submitted status Node = %q, want node-a", st.Node)
	}
	opt, err := s.Submit(context.Background(), api.NewOptimizeJob(api.OptimizeRequest{
		System: api.System{Servers: 2, Lambda: 0.5}, HoldingCost: 1, ServerCost: 1, MinServers: 1, MaxServers: 4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{st.ID, opt.ID} {
		if got, err := s.Wait(context.Background(), id); err != nil || got.State != api.JobStateDone {
			t.Fatalf("Wait(%s): %+v, %v", id, got, err)
		}
	}
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close()
	s2 := New(Config{Engine: &fakeEngine{}, Log: l2, NodeID: "node-a"})
	defer s2.Close()
	list := s2.List()
	if len(list) != 2 {
		t.Fatalf("replayed history has %d jobs, want 2: %+v", len(list), list)
	}
	if s2.recovered.Load() != 2 {
		t.Fatalf("recovered counter = %d, want 2", s2.recovered.Load())
	}
	res, err := s2.Result(st.ID)
	if err != nil {
		t.Fatalf("replayed sweep Result: %v", err)
	}
	if res.Sweep == nil || len(res.Sweep.Points) != 3 {
		t.Fatalf("replayed sweep result mangled: %+v", res)
	}
	for i, pt := range res.Sweep.Points {
		if pt.Index != i || pt.Perf == nil {
			t.Fatalf("replayed point %d mangled: %+v", i, pt)
		}
	}
	optRes, err := s2.Result(opt.ID)
	if err != nil {
		t.Fatalf("replayed optimize Result: %v", err)
	}
	if optRes.Optimize == nil || optRes.Optimize.Servers == 0 {
		t.Fatalf("replayed optimize result mangled: %+v", optRes)
	}
	stRec, err := s2.Status(st.ID)
	if err != nil || stRec.State != api.JobStateDone || stRec.Detail != "" {
		t.Fatalf("replayed terminal status: %+v, %v", stRec, err)
	}
}

// TestReplayResumesIncompleteSweep forges the log a kill -9 would leave —
// a submit record, a running transition and a two-point prefix of a
// five-point sweep — and boots a scheduler over it. The job must come
// back queued with Detail node_restarting, resume at index 2 (the engine
// sees exactly the three missing points), and finish with all five points
// once, in grid order.
func TestReplayResumesIncompleteSweep(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	req := sweepJob(1, 2, 3, 4, 5)
	now := time.Unix(1_700_000_000, 0).UTC()
	entries := []store.Entry{
		{Kind: store.EntrySubmit, Job: "j-crashed", Time: now, Origin: "node-a", Request: &req},
		{Kind: store.EntryState, Job: "j-crashed", Time: now, State: api.JobStateRunning},
		{Kind: store.EntryPoints, Job: "j-crashed", Time: now, Points: []api.SweepPoint{
			{Index: 0, Value: 1, Perf: &api.Performance{MeanJobs: 10}},
		}},
		{Kind: store.EntryPoints, Job: "j-crashed", Time: now, Points: []api.SweepPoint{
			{Index: 1, Value: 2, Perf: &api.Performance{MeanJobs: 20}},
		}},
	}
	for _, e := range entries {
		if err := l.Append(e); err != nil {
			t.Fatalf("forge entry: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close forged log: %v", err)
	}

	l2 := openTestLog(t, dir)
	defer l2.Close()
	eng := &fakeEngine{gate: make(chan struct{}, 8)}
	s := New(Config{Engine: eng, Log: l2, NodeID: "node-a"})
	defer s.Close()
	st, err := s.Status("j-crashed")
	if err != nil {
		t.Fatalf("Status after replay: %v", err)
	}
	if st.Detail != api.DetailNodeRestarting {
		t.Fatalf("recovered job Detail = %q, want %q", st.Detail, api.DetailNodeRestarting)
	}
	if st.Progress.Completed != 2 || st.Progress.Total != 5 {
		t.Fatalf("recovered progress %+v, want 2/5", st.Progress)
	}
	for i := 0; i < 3; i++ {
		eng.gate <- struct{}{} // release exactly the three missing points
	}
	final, err := s.Wait(context.Background(), "j-crashed")
	if err != nil || final.State != api.JobStateDone {
		t.Fatalf("resumed job: %+v, %v", final, err)
	}
	if final.Detail != "" {
		t.Fatalf("terminal job kept Detail %q", final.Detail)
	}
	res, err := s.Result("j-crashed")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	pts := res.Sweep.Points
	if len(pts) != 5 {
		t.Fatalf("resumed sweep has %d points, want 5", len(pts))
	}
	for i, pt := range pts {
		if pt.Index != i || pt.Value != float64(i+1) {
			t.Fatalf("point %d out of order: %+v", i, pt)
		}
	}
	// The recovered prefix was NOT re-solved: its persisted performances
	// survive verbatim, and the engine ran exactly one 3-point stream.
	if pts[0].Perf.MeanJobs != 10 || pts[1].Perf.MeanJobs != 20 {
		t.Fatalf("recovered prefix was re-solved: %+v %+v", pts[0], pts[1])
	}
	if n := eng.streamRuns.Load(); n != 1 {
		t.Fatalf("engine streams = %d, want 1", n)
	}
}

// TestBeginDrainRejectsSubmitImmediately is the drain-race regression
// test: once BeginDrain returns, every Submit must fail with
// api.CodeNodeUnavailable — no raced accept into a scheduler that is
// about to die with the process — while already-accepted jobs still run
// to completion under Drain.
func TestBeginDrainRejectsSubmitImmediately(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{}, 8)}
	s := New(Config{Engine: eng})
	defer s.Close()
	st, err := s.Submit(context.Background(), sweepJob(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()
	if _, err := s.Submit(context.Background(), sweepJob(3)); codeOf(t, err) != api.CodeNodeUnavailable {
		t.Fatalf("Submit after BeginDrain: %v, want node_unavailable", err)
	}
	eng.gate <- struct{}{}
	eng.gate <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got, _ := s.Status(st.ID); got.State != api.JobStateDone {
		t.Fatalf("accepted job after drain: %+v", got)
	}
	if _, err := s.Submit(context.Background(), sweepJob(4)); codeOf(t, err) != api.CodeNodeUnavailable {
		t.Fatalf("Submit after Drain: %v, want node_unavailable", err)
	}
}

// fakeRouter implements Router by serving every point locally (in one
// shard-ordered gather, like the real router) and reporting a fixed
// ring owner.
type fakeRouter struct {
	self  string
	owner string

	mu     sync.Mutex
	sweeps int
}

func (r *fakeRouter) Self() string           { return r.self }
func (r *fakeRouter) Owner(fp string) string { return r.owner }
func (r *fakeRouter) Sweep(ctx context.Context, req api.SweepRequest, fps []string, emit func(api.SweepPoint) error, local cluster.LocalEval) error {
	r.mu.Lock()
	r.sweeps++
	r.mu.Unlock()
	n := len(req.Values)
	results := make([]api.SweepPoint, n)
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	var mu sync.Mutex
	err := local(ctx, indices, func(pt api.SweepPoint) {
		mu.Lock()
		pt.Value = req.Values[pt.Index]
		results[pt.Index] = pt
		mu.Unlock()
	})
	if err != nil {
		return err
	}
	for _, pt := range results {
		if err := emit(pt); err != nil {
			return err
		}
	}
	return nil
}

// TestClusterSweepShardsAndStatus checks the clustered sweep path: the
// job routes through the router, and its status reports the planned
// shard map — one shard per environment fingerprint with its ring owner
// — fully completed at the end.
func TestClusterSweepShardsAndStatus(t *testing.T) {
	rt := &fakeRouter{self: "node-a", owner: "node-b"}
	s := New(Config{Engine: &fakeEngine{}, Router: rt})
	defer s.Close()
	if s.nodeID != "node-a" {
		t.Fatalf("NodeID not defaulted from Router.Self: %q", s.nodeID)
	}
	st, err := s.Submit(context.Background(), sweepJob(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil || final.State != api.JobStateDone {
		t.Fatalf("clustered sweep: %+v, %v", final, err)
	}
	rt.mu.Lock()
	sweeps := rt.sweeps
	rt.mu.Unlock()
	if sweeps != 1 {
		t.Fatalf("router saw %d sweeps, want 1", sweeps)
	}
	// A λ-sweep shares one environment: one shard, all four points.
	if len(final.Shards) != 1 {
		t.Fatalf("shard map %+v, want one shard", final.Shards)
	}
	sh := final.Shards[0]
	if sh.Node != "node-b" || sh.Points != 4 || sh.Completed != 4 || sh.Fingerprint == "" {
		t.Fatalf("shard %+v, want node-b 4/4 with a fingerprint", sh)
	}
	res, err := s.Result(st.ID)
	if err != nil || len(res.Sweep.Points) != 4 {
		t.Fatalf("clustered result: %+v, %v", res, err)
	}
}

// TestGCCompactsLog checks that TTL expiry also compacts the job log:
// after the janitor's gc, a fresh replay no longer sees the expired job.
func TestGCCompactsLog(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	clk := newFakeClock()
	s := New(Config{Engine: &fakeEngine{}, Log: l, TTL: time.Minute, Now: clk.Now})
	st, err := s.Submit(context.Background(), sweepJob(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Wait(context.Background(), st.ID); err != nil || got.State != api.JobStateDone {
		t.Fatalf("Wait: %+v, %v", got, err)
	}
	clk.Advance(2 * time.Minute)
	s.gc()
	if _, err := s.Status(st.ID); codeOf(t, err) != api.CodeNotFound {
		t.Fatalf("expired job still present: %v", err)
	}
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
	l2 := openTestLog(t, dir)
	defer l2.Close()
	s2 := New(Config{Engine: &fakeEngine{}, Log: l2})
	defer s2.Close()
	if list := s2.List(); len(list) != 0 {
		t.Fatalf("compacted log replayed %d jobs, want 0: %+v", len(list), list)
	}
}
