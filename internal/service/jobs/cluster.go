package jobs

import (
	"context"

	"repro/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/service"
)

// Router is the slice of internal/cluster.Router the scheduler drives to
// execute sweep jobs cluster-wide — *cluster.Router satisfies it; tests
// substitute controllable fakes.
type Router interface {
	// Sweep scatters a sweep grid by per-point fingerprint across the
	// live membership and gathers the points back in grid order, with
	// rank-order failover re-scattering a dead node's unanswered points.
	Sweep(ctx context.Context, req api.SweepRequest, fps []string, emit func(api.SweepPoint) error, local cluster.LocalEval) error
	// Self returns this node's membership ID.
	Self() string
	// Owner returns the ring-owner node of a fingerprint.
	Owner(fp string) string
}

// runSweepCluster executes grid points resume.. through the cluster
// router. Points are sharded by λ-excluded environment fingerprint, so
// every point of one environment lands on that fingerprint's ring owner
// as one sub-request — which is exactly the grouping the executing
// engine's batched solver hoists λ-invariant work for, keeping the PR 7
// per-point speedup intact across the scatter. The full-grid shard plan
// (including the recovered prefix) is published on the job for status
// reporting before any point is dispatched.
func (s *Scheduler) runSweepCluster(ctx context.Context, j *job, req api.SweepRequest, systems []core.System, m core.Method, resume int, record func(api.SweepPoint)) error {
	fps := make([]string, len(systems))
	shardIdx := make(map[string]int)
	var shards []api.JobShard
	pointShard := make([]int, len(systems))
	for i, sys := range systems {
		fp := sys.EnvFingerprint()
		fps[i] = fp
		k, ok := shardIdx[fp]
		if !ok {
			k = len(shards)
			shardIdx[fp] = k
			shards = append(shards, api.JobShard{Fingerprint: fp, Node: s.router.Owner(fp)})
		}
		shards[k].Points++
		pointShard[i] = k
	}
	s.mu.Lock()
	for i := 0; i < resume; i++ {
		shards[pointShard[i]].Completed++
	}
	j.shards = shards
	j.pointShard = pointShard
	s.mu.Unlock()

	// The sub-request covers only the unsolved suffix; its indices are
	// remapped back to absolute grid positions at the gather.
	sub := api.SweepRequest{System: req.System, Method: req.Method, Param: req.Param, Values: req.Values[resume:]}
	subSystems := systems[resume:]
	local := func(ctx context.Context, indices []int, out func(api.SweepPoint)) error {
		work := make([]service.Job, len(indices))
		for k, i := range indices {
			work[k] = service.Job{System: subSystems[i], Method: m}
		}
		return s.eng.EvaluateStream(ctx, work, func(res service.Result) error {
			pt := api.SweepPoint{Index: indices[res.Index]}
			if res.Err != nil {
				pt.Error = res.Err.Error()
			} else {
				perf := api.FromPerformance(res.Perf)
				pt.Perf = &perf
			}
			out(pt)
			return nil
		})
	}
	return s.router.Sweep(ctx, sub, fps[resume:], func(pt api.SweepPoint) error {
		pt.Index += resume
		pt.Value = req.Values[pt.Index]
		record(pt)
		return nil
	}, local)
}
