package jobs

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/api"
	"repro/internal/obs/olog"
	"repro/internal/obs/trace"
	"repro/internal/store"
)

// This file is the scheduler's durability surface: the write hooks that
// mirror a job's life into the internal/store job log, and the boot
// replay that reconstructs it. The invariants the two sides meet on:
//
//   - A submit record is fsynced before Submit acknowledges, so an
//     accepted job always survives a crash.
//   - Transition and point records ride the log's batched fsync; a crash
//     can cost at most the last fsync interval of progress, never an
//     acknowledged submission.
//   - Records of one job appear in execution order, and sweep points are
//     recorded in grid order — so a job's replayed points are always a
//     prefix of its grid, and a recovered job resumes at an index.
//   - A sweep's result is never persisted (it would double the log); a
//     replayed done sweep re-synthesises it from its points. Optimize
//     and simulate results are small and stored verbatim.
//   - Anything inconsistent (a done job missing its result or points)
//     re-queues instead of serving garbage: the engine cache makes
//     re-execution of already-solved work nearly free.

// persistSubmit makes an accepted job durable before it is acknowledged.
// Callers hold s.mu. A log that cannot store the record fails the
// submission — the acknowledgement is a durability promise. The append
// and fsync run under ctx so their spans (mus.store.append,
// mus.store.fsync) land inside the submission's trace; the submission's
// request ID and span context ride the record, so a restarted node's
// recovered job still knows which request — and which trace — created it.
func (s *Scheduler) persistSubmit(ctx context.Context, j *job) error {
	if s.jlog == nil {
		return nil
	}
	req := j.req
	e := store.Entry{
		Kind:      store.EntrySubmit,
		Job:       j.id,
		Time:      j.created,
		Origin:    s.nodeID,
		RequestID: j.origin,
		Request:   &req,
	}
	if j.trace.Valid() {
		e.Trace = j.trace.Traceparent()
	}
	err := s.jlog.AppendCtx(ctx, e)
	if err == nil {
		err = s.jlog.SyncCtx(ctx)
	}
	if err != nil {
		s.log.Warn("job submit not persisted; rejecting", olog.F{K: "job", V: j.id}, olog.F{K: "error", V: err.Error()})
		return api.Internal(fmt.Errorf("jobs: persisting submission: %w", err))
	}
	return nil
}

// persistState records a state transition (and, for terminal
// optimize/simulate jobs, the result). Callers hold s.mu; durability
// rides the log's batched fsync.
func (s *Scheduler) persistState(j *job, res *api.JobResult) {
	if s.jlog == nil {
		return
	}
	e := store.Entry{Kind: store.EntryState, Job: j.id, Time: s.now(), State: j.state, Error: j.err}
	if err := s.jlog.Append(e); err != nil {
		s.log.Warn("job transition not persisted", olog.F{K: "job", V: j.id}, olog.F{K: "error", V: err.Error()})
		return
	}
	if res != nil && j.req.Kind != api.JobKindSweep {
		if err := s.jlog.Append(store.Entry{Kind: store.EntryResult, Job: j.id, Time: s.now(), Result: res}); err != nil {
			s.log.Warn("job result not persisted", olog.F{K: "job", V: j.id}, olog.F{K: "error", V: err.Error()})
		}
	}
}

// persistPoint records one solved sweep point. Called in grid order from
// the sweep's sequencing goroutine, outside s.mu.
func (s *Scheduler) persistPoint(j *job, pt api.SweepPoint) {
	if s.jlog == nil {
		return
	}
	e := store.Entry{Kind: store.EntryPoints, Job: j.id, Time: s.now(), Points: []api.SweepPoint{pt}}
	if err := s.jlog.Append(e); err != nil {
		s.log.Warn("sweep point not persisted", olog.F{K: "job", V: j.id}, olog.F{K: "error", V: err.Error()})
	}
}

// replay reconstructs job records from the log at boot: terminal jobs
// reappear as fetchable history, and jobs the previous process died with
// re-enter the pending queue — marked api.DetailNodeRestarting — to
// resume from their last persisted point. Runs before the workers start,
// so no lock is contended; a replay failure degrades to partial history
// rather than refusing to boot (the log was already tail-truncated at
// open, so this only triggers on mid-log corruption).
func (s *Scheduler) replay() {
	if s.jlog == nil {
		return
	}
	// The replay runs under its own boot root span, so a restart's
	// recovery work is itself traceable; each recovered job additionally
	// re-attaches to its original submission trace when it runs.
	boot, ctx := s.tracer.StartRoot(context.Background(), "mus.jobs.replay", trace.SpanContext{})
	defer boot.End()
	err := s.jlog.ReplayCtx(ctx, func(e store.Entry) error {
		switch e.Kind {
		case store.EntrySubmit:
			if e.Job == "" || e.Request == nil {
				return nil
			}
			j := &job{
				id:      e.Job,
				req:     *e.Request,
				origin:  e.RequestID,
				state:   api.JobStateQueued,
				created: e.Time,
				node:    e.Origin,
				done:    make(chan struct{}),
			}
			if sc, ok := trace.ParseTraceparent(e.Trace); ok {
				j.trace = sc
			}
			s.jobs[e.Job] = j
		case store.EntryState:
			j := s.jobs[e.Job]
			if j == nil {
				return nil
			}
			switch e.State {
			case api.JobStateRunning:
				j.state = e.State
				j.started = e.Time
			case api.JobStateDone, api.JobStateFailed, api.JobStateCanceled:
				j.state = e.State
				j.finished = e.Time
				j.err = e.Error
			}
		case store.EntryPoints:
			if j := s.jobs[e.Job]; j != nil && j.req.Kind == api.JobKindSweep {
				j.partial = append(j.partial, e.Points...)
			}
		case store.EntryResult:
			if j := s.jobs[e.Job]; j != nil {
				j.result = e.Result
			}
		}
		return nil
	})
	if err != nil {
		s.log.Warn("job log replay incomplete; continuing with partial history",
			olog.F{K: "error", V: err.Error()})
	}
	var requeue []*job
	for _, j := range s.jobs {
		j.total = totalOf(j.req)
		terminal := false
		switch j.state {
		case api.JobStateDone:
			// A done job must be able to serve its result. A sweep rebuilds
			// it from its (necessarily complete — points precede the state
			// record in the log) point prefix; anything missing means the
			// terminal record outlived its payload, and the job re-runs.
			terminal = s.rebuildResult(j)
		case api.JobStateFailed, api.JobStateCanceled:
			j.completed = len(j.partial)
			terminal = true
		}
		if terminal {
			close(j.done)
			continue
		}
		// Queued or running at the crash: back to the queue, resuming
		// sweeps at their persisted prefix.
		if len(j.partial) > j.total {
			j.partial = j.partial[:j.total]
		}
		j.state = api.JobStateQueued
		j.detail = api.DetailNodeRestarting
		j.started = time.Time{}
		j.completed = len(j.partial)
		requeue = append(requeue, j)
	}
	sort.Slice(requeue, func(a, b int) bool {
		if !requeue[a].created.Equal(requeue[b].created) {
			return requeue[a].created.Before(requeue[b].created)
		}
		return requeue[a].id < requeue[b].id
	})
	s.pending = append(s.pending, requeue...)
	s.recovered.Add(uint64(len(s.jobs)))
	if len(s.jobs) > 0 {
		s.log.Info("job log replayed",
			olog.F{K: "jobs", V: len(s.jobs)}, olog.F{K: "resumed", V: len(requeue)})
	}
}

// rebuildResult makes a replayed done job servable, reporting whether it
// succeeded. Sweeps re-synthesise the result from their point prefix;
// optimize/simulate jobs need their persisted result record.
func (s *Scheduler) rebuildResult(j *job) bool {
	j.completed = j.total
	if j.req.Kind != api.JobKindSweep {
		return j.result != nil
	}
	if len(j.partial) != j.total {
		return false
	}
	m, _ := api.ParseMethod(j.req.Sweep.Method)
	j.result = &api.JobResult{
		ID:    j.id,
		Kind:  j.req.Kind,
		Sweep: &api.SweepResponse{Method: m.String(), Param: j.req.Sweep.Param, Points: j.partial},
	}
	return true
}

// totalOf computes a job's work-unit count from its request alone — the
// value run() would set, needed at replay before any run.
func totalOf(req api.JobRequest) int {
	if req.Kind == api.JobKindSweep && req.Sweep != nil {
		return len(req.Sweep.Values)
	}
	return 1
}
