// Package jobs is the asynchronous job layer of the evaluation service:
// a scheduler that wraps the service.Engine with job records so workloads
// too large for one synchronous HTTP request — 10k-point sweeps,
// high-precision replicated simulations, wide optimisations — can be
// submitted, polled, partially read, canceled and garbage-collected
// independently of any connection.
//
// Each job moves through the state machine
//
//	queued → running → done | failed | canceled
//
// and carries progress counters (per grid point for sweeps), timestamps
// and, for sweep jobs, the partial results solved so far. The queue is
// bounded: submissions beyond its capacity are rejected with the
// api.CodeQueueFull backpressure error instead of growing without limit.
// Terminal jobs are retained for a TTL and then garbage-collected.
//
// The scheduler adds no second worker pool: its workers only orchestrate,
// while all solver and simulation concurrency stays on the engine's
// existing gate, so synchronous requests and jobs share one global bound.
//
// Two optional Config fields lift the scheduler beyond one process:
//
//   - Log (an internal/store.JobLog) makes jobs durable: submissions are
//     fsynced before they are acknowledged, every transition and solved
//     sweep point is appended behind batched fsyncs, and New replays the
//     log on boot — terminal jobs reappear with their results, jobs
//     caught mid-flight are re-queued with Detail "node_restarting" and
//     resume from their last persisted point (persisted points are always
//     a grid-order prefix, so resumption is an index, not a merge).
//   - Router (the internal/cluster scatter/gather tier) makes sweep jobs
//     cluster-wide: the grid is split by λ-excluded environment
//     fingerprint into shards executed on their ring-owner nodes — where
//     the engine's batched solver hoists each shard's λ-invariant work
//     once — with the router's rank-order failover re-scattering only a
//     dead node's unanswered points, so a node kill mid-job delays its
//     shard but never loses a point.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/trace"
	"repro/internal/service"
	"repro/internal/store"
)

// Engine is the slice of service.Engine the scheduler drives —
// *service.Engine satisfies it; tests substitute controllable fakes.
type Engine interface {
	// EvaluateStream solves jobs in submission order, emitting each result
	// as soon as it (and every earlier one) is available.
	EvaluateStream(ctx context.Context, jobs []service.Job, emit func(service.Result) error) error
	// Simulate runs one replicated simulation through the engine's cache.
	Simulate(ctx context.Context, sys core.System, opts core.SimOptions) (core.SimResult, error)
	// OptimizeServers returns the cost-minimising fleet size in a range.
	OptimizeServers(ctx context.Context, base core.System, cm core.CostModel, minN, maxN int, m core.Method) (core.ServerSweepPoint, error)
	// MinServersForResponseTime returns the smallest fleet size meeting a
	// response-time target.
	MinServersForResponseTime(ctx context.Context, base core.System, target float64, minN, maxN int, m core.Method) (core.ServerSweepPoint, error)
}

// Defaults applied by New for zero Config fields.
const (
	// DefaultQueueDepth bounds jobs waiting for a worker.
	DefaultQueueDepth = 64
	// DefaultWorkers is how many jobs execute concurrently. Two keeps a
	// long sweep from blocking a quick optimize behind it while the real
	// parallelism still comes from the engine's own worker gate.
	DefaultWorkers = 2
	// DefaultTTL is how long terminal jobs stay fetchable before the
	// garbage collector drops them.
	DefaultTTL = 15 * time.Minute
)

// Config tunes a Scheduler. Engine is required; every other zero field
// takes the package default.
type Config struct {
	// Engine executes the jobs' evaluations.
	Engine Engine
	// QueueDepth bounds jobs waiting for a worker (default
	// DefaultQueueDepth); submissions beyond it fail with queue_full.
	QueueDepth int
	// Workers is how many jobs execute concurrently (default
	// DefaultWorkers).
	Workers int
	// TTL is the retention of terminal jobs (default DefaultTTL).
	TTL time.Duration
	// Now substitutes the clock (default time.Now); tests use it to drive
	// TTL expiry deterministically.
	Now func() time.Time
	// Logger receives one line per job state transition (default: discard).
	Logger *olog.Logger
	// Log, when set, persists job records to a write-ahead log and replays
	// it in New: submissions are durable once acknowledged, and a restart
	// recovers job history and resumes incomplete jobs.
	Log *store.JobLog
	// Router, when set, executes sweep jobs cluster-wide: grid shards run
	// on their environment fingerprint's ring-owner node with rank-order
	// failover. Nil keeps every job on the local engine.
	Router Router
	// NodeID names this node in persisted records and job statuses
	// (default: the Router's Self, or "" standalone).
	NodeID string
	// Tracer, when set, re-attaches each job's execution to the
	// distributed trace its submission belonged to: the worker starts a
	// mus.jobs.run root span parented on the submission's propagated
	// span context — across process restarts, since the context is
	// persisted with the submit record. Nil disables job spans.
	Tracer *trace.Tracer
}

// Scheduler runs jobs on an Engine. It is safe for concurrent use.
type Scheduler struct {
	eng     Engine
	ttl     time.Duration
	now     func() time.Time
	depth   int
	workers int
	log     *olog.Logger
	jlog    *store.JobLog
	router  Router
	nodeID  string
	tracer  *trace.Tracer

	// recovered counts jobs reconstructed from the write-ahead log at
	// boot (terminal history and re-queued incomplete jobs alike).
	recovered atomic.Uint64

	// Transition counters, atomics so a metrics scrape never touches the
	// scheduler mutex mid-run. Indexed queued → running → terminal.
	transRunning  atomic.Uint64
	transDone     atomic.Uint64
	transFailed   atomic.Uint64
	transCanceled atomic.Uint64
	// sweepPoints counts grid points completed by sweep jobs — the
	// scheduler's throughput signal, advanced once per point as it lands.
	sweepPoints atomic.Uint64

	mu sync.Mutex
	// cond signals workers when pending grows or the scheduler closes.
	cond *sync.Cond
	// pending is the bounded FIFO of queued jobs. A slice rather than a
	// channel so Cancel can remove a queued job and free its slot
	// immediately — with a channel the slot would stay occupied (and new
	// submissions rejected) until a worker happened to drain the entry.
	pending   []*job
	jobs      map[string]*job
	submitted uint64
	rejected  uint64
	closed    bool
	draining  bool

	stop   context.CancelFunc
	ctx    context.Context
	wg     sync.WaitGroup
	gcDone chan struct{}
}

// job is one scheduler record. All mutable fields are guarded by the
// scheduler's mutex; done closes when the job reaches a terminal state.
type job struct {
	id  string
	req api.JobRequest
	// origin is the X-Request-ID of the submitting HTTP request; job
	// execution runs under a context carrying it, so engine-level traces
	// join back to the submission.
	origin string
	// trace is the submission's propagated span context, captured by
	// value at Submit (never the span itself — spans are pooled and
	// recycled at End). The worker parents its mus.jobs.run root span on
	// it, joining the execution to the submission's distributed trace.
	trace trace.SpanContext

	state            string
	total, completed int
	created          time.Time
	started          time.Time
	finished         time.Time
	cancel           context.CancelFunc
	err              *api.Error
	result           *api.JobResult
	partial          []api.SweepPoint
	done             chan struct{}

	// node is the accepting node's ID (empty standalone); detail is the
	// recovery qualifier (api.DetailNodeRestarting on replayed jobs).
	node   string
	detail string
	// shards is the clustered sweep's planned shard map; pointShard maps
	// grid index → position in shards for per-shard progress counting.
	shards     []api.JobShard
	pointShard []int
}

// New builds a scheduler and starts its workers and garbage collector.
// Call Close to stop them.
func New(cfg Config) *Scheduler {
	if cfg.Engine == nil {
		panic("jobs: Config.Engine is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = olog.Nop()
	}
	if cfg.NodeID == "" && cfg.Router != nil {
		cfg.NodeID = cfg.Router.Self()
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{
		eng:     cfg.Engine,
		ttl:     cfg.TTL,
		now:     cfg.Now,
		depth:   cfg.QueueDepth,
		workers: cfg.Workers,
		log:     cfg.Logger,
		jlog:    cfg.Log,
		router:  cfg.Router,
		nodeID:  cfg.NodeID,
		tracer:  cfg.Tracer,
		jobs:    make(map[string]*job),
		stop:    stop,
		ctx:     ctx,
		gcDone:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	// Replay before the first worker starts: recovered jobs re-enter the
	// pending queue with no goroutine racing the reconstruction.
	s.replay()
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker()
	}
	go s.janitor()
	return s
}

// BeginDrain flips the submission gate and returns immediately: every
// Submit from this instant on is rejected with api.CodeNodeUnavailable.
// It exists so a serving front end can close its own drain gate and the
// scheduler's in one breath — without it, a submission that slipped past
// the HTTP middleware before the flag flip could be accepted into a
// scheduler about to die with the process. Idempotent; Drain implies it.
func (s *Scheduler) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain prepares for a graceful shutdown: new submissions are rejected
// with api.CodeNodeUnavailable from this point on, while every queued
// and running job is given until ctx expires to reach a terminal state.
// A nil return means all work finished; ctx.Err() means the deadline hit
// first and the stragglers are still running — either way the follow-up
// Close cancels whatever remains. Drain after Close is a no-op.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	// No new submissions can arrive past the flag, so the non-terminal
	// population only shrinks from here: a snapshot of done channels is a
	// complete wait list.
	var waits []chan struct{}
	for _, j := range s.jobs {
		switch j.state {
		case api.JobStateQueued, api.JobStateRunning:
			waits = append(waits, j.done)
		}
	}
	s.mu.Unlock()
	for _, d := range waits {
		select {
		case <-d:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Close stops accepting submissions, cancels running and queued jobs,
// and waits for the workers and garbage collector to exit. Records stay
// readable.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast() // wakes idle workers, which drain pending as canceled
	s.mu.Unlock()
	s.stop() // cancels running jobs
	s.wg.Wait()
	<-s.gcDone
}

// Submit validates the request, assigns an ID and enqueues the job,
// returning its queued status. A full queue fails fast with
// api.CodeQueueFull — the caller's backpressure signal. A request ID on
// ctx (api.ContextWithRequestID) is recorded as the job's origin and
// reattached to the execution context, so the async evaluation traces
// back to the HTTP submission that caused it.
func (s *Scheduler) Submit(ctx context.Context, req api.JobRequest) (api.JobStatus, error) {
	if err := req.Validate(); err != nil {
		return api.JobStatus{}, err
	}
	j := &job{
		id:     newJobID(),
		req:    req,
		origin: api.RequestIDFrom(ctx),
		trace:  trace.SpanContextFrom(ctx),
		state:  api.JobStateQueued,
		node:   s.nodeID,
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return api.JobStatus{}, api.Internal(errors.New("jobs: scheduler is shut down"))
	}
	if s.draining {
		s.mu.Unlock()
		return api.JobStatus{}, api.NodeUnavailable("node is draining for shutdown; resubmit elsewhere or after a delay")
	}
	if len(s.pending) >= s.depth {
		s.rejected++
		s.mu.Unlock()
		return api.JobStatus{}, api.QueueFull(s.depth)
	}
	j.created = s.now()
	// The acknowledgement below promises the job survives a crash, so the
	// submit record must be on disk — not merely buffered — before it is
	// sent. A log that cannot make that promise rejects the submission.
	if err := s.persistSubmit(ctx, j); err != nil {
		s.mu.Unlock()
		return api.JobStatus{}, err
	}
	s.pending = append(s.pending, j)
	s.submitted++
	s.jobs[j.id] = j
	st := s.statusLocked(j)
	s.cond.Signal()
	s.mu.Unlock()
	s.log.Info("job queued", olog.F{K: "job", V: j.id}, olog.F{K: "kind", V: req.Kind},
		olog.F{K: "id", V: j.origin})
	return st, nil
}

// Status returns the poll view of one job, or api.CodeNotFound.
func (s *Scheduler) Status(id string) (api.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return api.JobStatus{}, api.JobNotFound(id)
	}
	return s.statusLocked(j), nil
}

// Result returns the outcome of a done job. Non-terminal jobs fail with
// api.CodeNotReady, canceled jobs with api.CodeCanceled, failed jobs with
// their recorded evaluation error, unknown IDs with api.CodeNotFound.
func (s *Scheduler) Result(id string) (api.JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return api.JobResult{}, api.JobNotFound(id)
	}
	switch j.state {
	case api.JobStateDone:
		return *j.result, nil
	case api.JobStateFailed:
		return api.JobResult{}, j.err
	case api.JobStateCanceled:
		return api.JobResult{}, &api.Error{Code: api.CodeCanceled, Message: fmt.Sprintf("job %q was canceled", id)}
	default:
		return api.JobResult{}, api.NotReady(id, j.state)
	}
}

// PartialSweep returns a snapshot of the sweep points solved so far, in
// grid order, together with the job's current status — readable while the
// job is still running (a queued job yields an empty snapshot) and after
// it is done. Non-sweep jobs fail with api.CodeInvalidArgument.
func (s *Scheduler) PartialSweep(id string) ([]api.SweepPoint, api.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, api.JobStatus{}, api.JobNotFound(id)
	}
	if j.req.Kind != api.JobKindSweep {
		return nil, api.JobStatus{}, api.InvalidArgument("id", "job %q is a %s job; partial results exist only for sweeps", id, j.req.Kind)
	}
	pts := make([]api.SweepPoint, len(j.partial))
	copy(pts, j.partial)
	return pts, s.statusLocked(j), nil
}

// Cancel requests cancelation and returns the job's status. A queued job
// is canceled immediately; a running job has its context canceled and
// reaches the canceled state once the engine releases its in-flight
// evaluations — poll Status to observe it. Canceling a terminal job is a
// no-op returning the final status, so Cancel is idempotent.
func (s *Scheduler) Cancel(id string) (api.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return api.JobStatus{}, api.JobNotFound(id)
	}
	switch j.state {
	case api.JobStateQueued:
		// Remove the entry from the pending FIFO so its queue slot frees
		// for new submissions immediately, then finalise the record.
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		s.finishLocked(j, api.JobStateCanceled, nil, nil)
	case api.JobStateRunning:
		j.cancel()
	}
	return s.statusLocked(j), nil
}

// Wait blocks until the job reaches a terminal state (or ctx expires) and
// returns its final status — the in-process counterpart of polling
// GET /v1/jobs/{id}.
func (s *Scheduler) Wait(ctx context.Context, id string) (api.JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return api.JobStatus{}, api.JobNotFound(id)
	}
	select {
	case <-j.done:
		return s.Status(id)
	case <-ctx.Done():
		return api.JobStatus{}, ctx.Err()
	}
}

// List returns the status of every retained job, newest first — the
// GET /v1/jobs history view, which after a restart includes everything
// recovered from the write-ahead log.
func (s *Scheduler) List() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].CreatedAt.Equal(out[b].CreatedAt) {
			return out[a].CreatedAt.After(out[b].CreatedAt)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Stats snapshots the scheduler's population and queue counters.
func (s *Scheduler) Stats() api.JobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := api.JobStats{
		QueueCapacity: s.depth,
		Submitted:     s.submitted,
		Rejected:      s.rejected,
	}
	for _, j := range s.jobs {
		switch j.state {
		case api.JobStateQueued:
			st.Queued++
		case api.JobStateRunning:
			st.Running++
		case api.JobStateDone:
			st.Done++
		case api.JobStateFailed:
			st.Failed++
		case api.JobStateCanceled:
			st.Canceled++
		}
	}
	return st
}

// FlowSample is the scheduler snapshot the admission controller fits into
// its self-model: cumulative offered and terminal counts (rate-estimator
// inputs) plus the current occupancy levels.
type FlowSample struct {
	// Offered counts every submission presented to the queue — accepted
	// and rejected alike, because rejected work is still offered load λ.
	Offered uint64
	// Completed counts jobs that reached any terminal state.
	Completed uint64
	// Queued and Running are the current backlog split by state.
	Queued, Running int
	// Workers is the scheduler's worker count — the N of the fitted system.
	Workers int
}

// Flow snapshots the counters the admission controller samples each refit.
func (s *Scheduler) Flow() FlowSample {
	completed := s.transDone.Load() + s.transFailed.Load() + s.transCanceled.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	f := FlowSample{
		Offered:   s.submitted + s.rejected,
		Completed: completed,
		Queued:    len(s.pending),
		Workers:   s.workers,
	}
	for _, j := range s.jobs {
		if j.state == api.JobStateRunning {
			f.Running++
		}
	}
	return f
}

// Backlog returns the number of jobs queued or running — the live queue
// length the admission controller's Decide compares against its limit.
func (s *Scheduler) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pending)
	for _, j := range s.jobs {
		if j.state == api.JobStateRunning {
			n++
		}
	}
	return n
}

// worker executes queued jobs until the scheduler closes. On shutdown,
// whatever is still pending is finalised as canceled so no record is
// left in a non-terminal state.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			for _, j := range s.pending {
				s.finishLocked(j, api.JobStateCanceled, nil, nil)
			}
			s.pending = nil
			s.mu.Unlock()
			return
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		ctx, cancel := context.WithCancel(s.ctx)
		j.state = api.JobStateRunning
		j.started = s.now()
		j.cancel = cancel
		s.persistState(j, nil)
		s.mu.Unlock()
		s.transRunning.Add(1)
		s.log.Info("job running", olog.F{K: "job", V: j.id}, olog.F{K: "kind", V: j.req.Kind},
			olog.F{K: "id", V: j.origin})
		// The execution context carries the submitting request's ID, so
		// engine work done on the job's behalf traces back to its origin —
		// and a mus.jobs.run root span parented on the submission's
		// propagated span context, so the async execution (including a
		// WAL-recovered one, whose context was replayed from the submit
		// record) appears in the same distributed trace as the POST that
		// created it.
		rctx := api.ContextWithRequestID(ctx, j.origin)
		root, rctx := s.tracer.StartRoot(rctx, "mus.jobs.run", j.trace)
		root.Set(trace.Str("job", j.id))
		root.Set(trace.Str("kind", j.req.Kind))
		s.run(rctx, j)
		s.mu.Lock()
		if j.err != nil {
			root.FailMsg(j.err.Message)
		}
		s.mu.Unlock()
		root.End()
		cancel()
	}
}

// run moves one running job to a terminal state.
func (s *Scheduler) run(ctx context.Context, j *job) {
	var res *api.JobResult
	var err error
	switch j.req.Kind {
	case api.JobKindSweep:
		res, err = s.runSweep(ctx, j)
	case api.JobKindOptimize:
		res, err = s.runOptimize(ctx, j)
	case api.JobKindSimulate:
		res, err = s.runSimulate(ctx, j)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		j.completed = j.total
		s.finishLocked(j, api.JobStateDone, res, nil)
	case isCanceled(err):
		s.finishLocked(j, api.JobStateCanceled, nil, nil)
	default:
		s.finishLocked(j, api.JobStateFailed, nil, api.Classify(err))
	}
}

// isCanceled recognises a cancelation in either form it reaches run():
// the raw context error, or an *api.Error carrying the canceled code with
// no error chain (the classifiers — unsatisfiable, api.Classify — flatten
// context.Canceled into one). Either can only mean job cancelation or
// daemon shutdown here.
func isCanceled(err error) bool {
	if errors.Is(err, context.Canceled) {
		return true
	}
	var ae *api.Error
	return errors.As(err, &ae) && ae.Code == api.CodeCanceled
}

// runSweep executes a sweep payload, recording each point (and advancing
// the progress counter) as it lands, so partial results are readable
// mid-run. Execution starts at the first unsolved index — zero normally,
// the length of the WAL-recovered prefix after a restart (persisted
// points are always a grid-order prefix, so resumption never merges) —
// and routes through the cluster router when one is configured, the local
// engine stream otherwise.
func (s *Scheduler) runSweep(ctx context.Context, j *job) (*api.JobResult, error) {
	req := *j.req.Sweep
	systems, err := req.Systems()
	if err != nil { // unreachable after Submit's validation
		return nil, err
	}
	m, _ := api.ParseMethod(req.Method)
	s.mu.Lock()
	if len(j.partial) > len(systems) { // a log replaying more points than the grid holds
		j.partial = j.partial[:len(systems)]
	}
	j.total = len(systems)
	resume := len(j.partial)
	j.completed = resume
	s.mu.Unlock()

	// record lands one solved point with its absolute grid index. Both
	// execution paths call it from a single sequencing goroutine in grid
	// order, so the persisted point stream stays a replayable prefix.
	record := func(pt api.SweepPoint) {
		s.mu.Lock()
		j.partial = append(j.partial, pt)
		j.completed = len(j.partial)
		if j.pointShard != nil && pt.Index < len(j.pointShard) {
			j.shards[j.pointShard[pt.Index]].Completed++
		}
		s.mu.Unlock()
		s.persistPoint(j, pt)
		s.sweepPoints.Add(1)
	}

	if s.router != nil {
		err = s.runSweepCluster(ctx, j, req, systems, m, resume, record)
	} else {
		err = s.runSweepLocal(ctx, req, systems, m, resume, record)
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	points := make([]api.SweepPoint, len(j.partial))
	copy(points, j.partial)
	s.mu.Unlock()
	return &api.JobResult{
		ID:    j.id,
		Kind:  j.req.Kind,
		Sweep: &api.SweepResponse{Method: m.String(), Param: req.Param, Points: points},
	}, nil
}

// runSweepLocal evaluates grid points resume.. on the local engine's
// ordered stream.
func (s *Scheduler) runSweepLocal(ctx context.Context, req api.SweepRequest, systems []core.System, m core.Method, resume int, record func(api.SweepPoint)) error {
	work := make([]service.Job, len(systems)-resume)
	for k, sys := range systems[resume:] {
		work[k] = service.Job{System: sys, Method: m}
	}
	return s.eng.EvaluateStream(ctx, work, func(res service.Result) error {
		i := resume + res.Index
		pt := api.SweepPoint{Index: i, Value: req.Values[i]}
		if res.Err != nil {
			pt.Error = res.Err.Error()
		} else {
			perf := api.FromPerformance(res.Perf)
			pt.Perf = &perf
		}
		record(pt)
		return nil
	})
}

// runOptimize executes an optimize payload — the same two provisioning
// questions the synchronous endpoint answers.
func (s *Scheduler) runOptimize(ctx context.Context, j *job) (*api.JobResult, error) {
	req := *j.req.Optimize
	base, m, minN, maxN, err := req.Resolve()
	if err != nil { // unreachable after Submit's validation
		return nil, err
	}
	s.mu.Lock()
	j.total = 1
	s.mu.Unlock()
	var resp api.OptimizeResponse
	if req.TargetResponse > 0 {
		pt, err := s.eng.MinServersForResponseTime(ctx, base, req.TargetResponse, minN, maxN, m)
		if err != nil {
			return nil, unsatisfiable(err)
		}
		resp = api.OptimizeResponse{
			Objective: fmt.Sprintf("min N in [%d, %d] with W ≤ %g", minN, maxN, req.TargetResponse),
			Servers:   pt.Servers,
			Perf:      api.FromPerformance(pt.Perf),
		}
	} else {
		cm := core.CostModel{HoldingCost: req.HoldingCost, ServerCost: req.ServerCost}
		best, err := s.eng.OptimizeServers(ctx, base, cm, minN, maxN, m)
		if err != nil {
			return nil, unsatisfiable(err)
		}
		resp = api.OptimizeResponse{
			Objective: fmt.Sprintf("min %g·L + %g·N over [%d, %d]", cm.HoldingCost, cm.ServerCost, minN, maxN),
			Servers:   best.Servers,
			Cost:      &best.Cost,
			Perf:      api.FromPerformance(best.Perf),
		}
	}
	return &api.JobResult{ID: j.id, Kind: j.req.Kind, Optimize: &resp}, nil
}

// unsatisfiable classifies an optimisation failure exactly like the
// synchronous handler: cancellations keep their code, everything else is
// a well-formed question with no answer.
func unsatisfiable(err error) error {
	if ae := api.Classify(err); ae.Code != api.CodeInternal {
		return ae
	}
	return &api.Error{Code: api.CodeUnsatisfiable, Message: err.Error()}
}

// runSimulate executes a simulate payload through the engine's simulation
// cache.
func (s *Scheduler) runSimulate(ctx context.Context, j *job) (*api.JobResult, error) {
	req := *j.req.Simulate
	sys, opts, err := req.Resolve()
	if err != nil { // unreachable after Submit's validation
		return nil, err
	}
	s.mu.Lock()
	j.total = 1
	s.mu.Unlock()
	if !sys.Stable() {
		ae := api.Unstable(sys)
		ae.Message += " — a simulation would never reach steady state"
		return nil, ae
	}
	res, err := s.eng.Simulate(ctx, sys, opts)
	if err != nil {
		return nil, err
	}
	return &api.JobResult{ID: j.id, Kind: j.req.Kind, Simulate: &api.SimulateResponse{
		Fingerprint:  sys.Fingerprint(),
		Replications: res.Replications,
		Converged:    res.Converged,
		Confidence:   res.Confidence,
		MeanQueue:    api.CI{Mean: res.MeanQueue, HalfWidth: res.MeanQueueHalfWidth},
		MeanResponse: api.CI{Mean: res.MeanResponse, HalfWidth: res.MeanResponseHalfWidth},
		Availability: api.CI{Mean: res.Availability, HalfWidth: res.AvailabilityHalfWidth},
		Completed:    res.Completed,
	}}, nil
}

// finishLocked moves a job to a terminal state. Callers hold s.mu. (The
// logger is safe under the scheduler mutex: it only takes its own writer
// lock, never the scheduler's.)
func (s *Scheduler) finishLocked(j *job, state string, res *api.JobResult, ae *api.Error) {
	j.state = state
	j.finished = s.now()
	j.result = res
	j.err = ae
	j.detail = "" // a recovered job that terminates is no longer restarting
	s.persistState(j, res)
	close(j.done)
	fields := []olog.F{
		{K: "job", V: j.id}, {K: "kind", V: j.req.Kind}, {K: "id", V: j.origin},
		{K: "duration_ms", V: float64(j.finished.Sub(j.created)) / float64(time.Millisecond)},
	}
	switch state {
	case api.JobStateDone:
		s.transDone.Add(1)
		s.log.Info("job done", fields...)
	case api.JobStateFailed:
		s.transFailed.Add(1)
		if ae != nil {
			fields = append(fields, olog.F{K: "error", V: ae.Message})
		}
		s.log.Warn("job failed", fields...)
	case api.JobStateCanceled:
		s.transCanceled.Add(1)
		s.log.Info("job canceled", fields...)
	}
}

// statusLocked snapshots a job's poll view. Callers hold s.mu.
func (s *Scheduler) statusLocked(j *job) api.JobStatus {
	st := api.JobStatus{
		ID:        j.id,
		Kind:      j.req.Kind,
		State:     j.state,
		Progress:  api.JobProgress{Total: j.total, Completed: j.completed},
		CreatedAt: j.created,
		Error:     j.err,
		Node:      j.node,
		RequestID: j.origin,
		Detail:    j.detail,
	}
	if j.trace.Valid() {
		st.TraceID = j.trace.TraceID.String()
	}
	if len(j.shards) > 0 {
		st.Shards = make([]api.JobShard, len(j.shards))
		copy(st.Shards, j.shards)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// janitor garbage-collects expired terminal jobs until the scheduler
// closes.
func (s *Scheduler) janitor() {
	defer close(s.gcDone)
	interval := s.ttl / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gc()
		case <-s.ctx.Done():
			return
		}
	}
}

// gc drops terminal jobs whose retention TTL has expired, then compacts
// the write-ahead log down to the records of still-retained jobs — boot
// replay stays proportional to the live population, not to history.
func (s *Scheduler) gc() {
	s.mu.Lock()
	cutoff := s.now().Add(-s.ttl)
	dropped := 0
	for id, j := range s.jobs {
		if !j.finished.IsZero() && j.finished.Before(cutoff) {
			delete(s.jobs, id)
			dropped++
		}
	}
	var retained map[string]bool
	if dropped > 0 && s.jlog != nil {
		retained = make(map[string]bool, len(s.jobs))
		for id := range s.jobs {
			retained[id] = true
		}
	}
	s.mu.Unlock()
	// Compaction reads and rewrites the whole log; run it outside the
	// scheduler mutex so status polls never wait on it. The retained set
	// is a snapshot — a job submitted during compaction appends behind
	// the compaction point and is never dropped by it.
	if retained != nil {
		if err := s.jlog.Compact(func(id string) bool { return retained[id] }); err != nil {
			s.log.Warn("job log compaction failed", olog.F{K: "error", V: err.Error()})
		}
	}
}

// RegisterMetrics exposes the scheduler's queue and state-machine
// counters on a metrics registry. Population gauges snapshot under the
// scheduler mutex at scrape time; transition and throughput counters read
// atomics, so the job execution path is untouched. Call once per
// scheduler per registry.
func (s *Scheduler) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("mus_jobs_queue_depth",
		"Jobs waiting for a worker.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.pending))
		})
	r.GaugeFunc("mus_jobs_queue_capacity",
		"Bound on queued jobs; submissions beyond it are rejected with queue_full.",
		func() float64 { return float64(s.depth) })
	r.GaugeFunc("mus_jobs_running",
		"Jobs currently executing.",
		func() float64 { return float64(s.Stats().Running) })
	r.CounterFunc("mus_jobs_submitted_total",
		"Jobs accepted into the queue.",
		func() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.submitted })
	r.CounterFunc("mus_jobs_rejected_total",
		"Submissions rejected because the queue was full.",
		func() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.rejected })
	for _, t := range []struct {
		state string
		v     *atomic.Uint64
	}{
		{api.JobStateRunning, &s.transRunning},
		{api.JobStateDone, &s.transDone},
		{api.JobStateFailed, &s.transFailed},
		{api.JobStateCanceled, &s.transCanceled},
	} {
		r.CounterFunc("mus_jobs_transitions_total",
			"Job state-machine transitions, by target state.",
			t.v.Load, obs.L("state", t.state))
	}
	r.CounterFunc("mus_jobs_sweep_points_total",
		"Grid points completed by sweep jobs.",
		s.sweepPoints.Load)
	r.CounterFunc("mus_jobs_recovered_total",
		"Jobs reconstructed from the write-ahead log at boot (history and re-queued jobs alike).",
		s.recovered.Load)
}

// newJobID draws a 64-bit random hex job identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}
