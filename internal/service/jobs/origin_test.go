package jobs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/api"
	"repro/internal/core"
	"repro/internal/obs/olog"
	"repro/internal/service"
)

// originEngine wraps fakeEngine to record the request ID visible on the
// execution context — the observable end of origin propagation.
type originEngine struct {
	*fakeEngine
	mu  sync.Mutex
	ids []string
}

func (e *originEngine) EvaluateStream(ctx context.Context, jobs []service.Job, emit func(service.Result) error) error {
	e.mu.Lock()
	e.ids = append(e.ids, api.RequestIDFrom(ctx))
	e.mu.Unlock()
	return e.fakeEngine.EvaluateStream(ctx, jobs, emit)
}

func (e *originEngine) Simulate(ctx context.Context, sys core.System, opts core.SimOptions) (core.SimResult, error) {
	e.mu.Lock()
	e.ids = append(e.ids, api.RequestIDFrom(ctx))
	e.mu.Unlock()
	return e.fakeEngine.Simulate(ctx, sys, opts)
}

// TestJobOriginRequestIDPropagates: the X-Request-ID captured at Submit
// time must reappear on the context the job's engine work runs under —
// asynchronously, on a worker goroutine, long after the HTTP request
// that submitted it has returned — and in every job lifecycle log line.
func TestJobOriginRequestIDPropagates(t *testing.T) {
	eng := &originEngine{fakeEngine: &fakeEngine{}}
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	s := New(Config{Engine: eng, Logger: olog.New(syncWriter{&logMu, &logBuf}, olog.Debug)})
	defer s.Close()

	ctx := api.ContextWithRequestID(context.Background(), "edge-7f3a")
	st, err := s.Submit(ctx, sweepJob(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "job done", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.State == api.JobStateDone
	})
	eng.mu.Lock()
	ids := append([]string(nil), eng.ids...)
	eng.mu.Unlock()
	if len(ids) != 1 || ids[0] != "edge-7f3a" {
		t.Fatalf("engine saw request ids %q, want [\"edge-7f3a\"]", ids)
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	for _, line := range []string{"job queued", "job running", "job done"} {
		if !strings.Contains(logs, `"msg":"`+line+`"`) {
			t.Errorf("missing %q log line in:\n%s", line, logs)
		}
	}
	if got := strings.Count(logs, `"id":"edge-7f3a"`); got != 3 {
		t.Errorf("origin id appears in %d log lines, want 3:\n%s", got, logs)
	}

	// A submission without an ID must not invent one: origin stays empty.
	eng.mu.Lock()
	eng.ids = nil
	eng.mu.Unlock()
	st2, err := s.Submit(context.Background(), sweepJob(4))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "second job done", func() bool {
		got, err := s.Status(st2.ID)
		return err == nil && got.State == api.JobStateDone
	})
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if len(eng.ids) != 1 || eng.ids[0] != "" {
		t.Fatalf("id-less submission produced engine request ids %q, want one empty", eng.ids)
	}
}

// syncWriter serializes concurrent log writes from worker goroutines.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
