package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/service"
)

// fakeEngine implements Engine with controllable pacing: with a gate set,
// every sweep point (and every simulate call) consumes one token before
// proceeding, so tests freeze a job mid-run deterministically instead of
// racing real solver latencies.
type fakeEngine struct {
	gate chan struct{} // nil = free-running

	simRuns    atomic.Int64
	streamRuns atomic.Int64
	// lastStreamErr records what EvaluateStream returned, so tests can
	// assert that cancelation actually released the in-flight evaluation.
	mu            sync.Mutex
	lastStreamErr error
}

func (f *fakeEngine) wait(ctx context.Context) error {
	if f.gate == nil {
		return nil
	}
	select {
	case <-f.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *fakeEngine) EvaluateStream(ctx context.Context, jobs []service.Job, emit func(service.Result) error) error {
	f.streamRuns.Add(1)
	err := func() error {
		for i := range jobs {
			if err := f.wait(ctx); err != nil {
				return err
			}
			perf := &core.Performance{MeanJobs: float64(i + 1), MeanResponse: 1, TailDecay: 0.5, Load: 0.5}
			if err := emit(service.Result{Index: i, Job: jobs[i], Perf: perf}); err != nil {
				return err
			}
		}
		return nil
	}()
	f.mu.Lock()
	f.lastStreamErr = err
	f.mu.Unlock()
	return err
}

func (f *fakeEngine) Simulate(ctx context.Context, sys core.System, opts core.SimOptions) (core.SimResult, error) {
	f.simRuns.Add(1)
	if err := f.wait(ctx); err != nil {
		return core.SimResult{}, err
	}
	return core.SimResult{Replications: opts.Replications, Converged: true, Confidence: 0.95, MeanQueue: 4.2, Completed: 1000}, nil
}

func (f *fakeEngine) OptimizeServers(ctx context.Context, base core.System, cm core.CostModel, minN, maxN int, m core.Method) (core.ServerSweepPoint, error) {
	if err := f.wait(ctx); err != nil {
		return core.ServerSweepPoint{}, err
	}
	return core.ServerSweepPoint{Servers: minN, Perf: &core.Performance{MeanJobs: 1}, Cost: 7}, nil
}

func (f *fakeEngine) MinServersForResponseTime(ctx context.Context, base core.System, target float64, minN, maxN int, m core.Method) (core.ServerSweepPoint, error) {
	if err := f.wait(ctx); err != nil {
		return core.ServerSweepPoint{}, err
	}
	return core.ServerSweepPoint{Servers: maxN, Perf: &core.Performance{MeanJobs: 2, MeanResponse: target}}, nil
}

// fakeClock is an injectable, advanceable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func sweepJob(values ...float64) api.JobRequest {
	return api.NewSweepJob(api.SweepRequest{
		System: api.System{Servers: 4},
		Param:  api.ParamLambda,
		Values: values,
	})
}

// pollUntil spins on cond with a deadline — the test-side analogue of a
// client polling GET /v1/jobs/{id}.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func codeOf(t *testing.T, err error) api.Code {
	t.Helper()
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *api.Error", err)
	}
	return ae.Code
}

func TestSubmitRejectsInvalidRequests(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	defer s.Close()
	cases := []api.JobRequest{
		{Kind: "resolve"},
		{Kind: api.JobKindSweep}, // missing payload
		{Kind: api.JobKindSweep, Sweep: &api.SweepRequest{}, Simulate: &api.SimulateRequest{}}, // two payloads
		api.NewSweepJob(api.SweepRequest{Param: "bogus", Values: []float64{1}}),
	}
	for _, req := range cases {
		if _, err := s.Submit(context.Background(), req); codeOf(t, err) != api.CodeInvalidArgument {
			t.Errorf("Submit(%+v): want invalid_argument, got %v", req, err)
		}
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	defer s.Close()
	st, err := s.Submit(context.Background(), sweepJob(1, 2, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != api.JobKindSweep || st.Terminal() {
		t.Fatalf("fresh job status %+v", st)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobStateDone {
		t.Fatalf("state %s, error %v", final.State, final.Error)
	}
	if final.Progress.Total != 5 || final.Progress.Completed != 5 {
		t.Errorf("progress %+v, want 5/5", final.Progress)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("terminal job missing timestamps: %+v", final)
	}
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != api.JobKindSweep || res.Sweep == nil || len(res.Sweep.Points) != 5 {
		t.Fatalf("result %+v", res)
	}
	for i, pt := range res.Sweep.Points {
		if pt.Index != i || pt.Value != float64(i+1) || pt.Perf == nil {
			t.Errorf("point %d = %+v", i, pt)
		}
	}
}

func TestOptimizeAndSimulateJobs(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	defer s.Close()
	opt, err := s.Submit(context.Background(), api.NewOptimizeJob(api.OptimizeRequest{
		System: api.System{Lambda: 3}, HoldingCost: 4, ServerCost: 1, MinServers: 2, MaxServers: 9,
	}))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := s.Submit(context.Background(), api.NewSimulateJob(api.SimulateRequest{System: api.System{Servers: 8, Lambda: 3}}))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{opt.ID, sim.ID} {
		if st, err := s.Wait(context.Background(), id); err != nil || st.State != api.JobStateDone {
			t.Fatalf("job %s: %+v, %v", id, st, err)
		}
	}
	optRes, err := s.Result(opt.ID)
	if err != nil || optRes.Optimize == nil || optRes.Optimize.Servers != 2 || optRes.Optimize.Cost == nil {
		t.Fatalf("optimize result %+v, %v", optRes, err)
	}
	simRes, err := s.Result(sim.ID)
	if err != nil || simRes.Simulate == nil || simRes.Simulate.MeanQueue.Mean != 4.2 {
		t.Fatalf("simulate result %+v, %v", simRes, err)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng, Workers: 1, QueueDepth: 1})
	defer s.Close()
	running, err := s.Submit(context.Background(), sweepJob(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker holds the first job, so the next
	// submission deterministically occupies the queue's one slot.
	pollUntil(t, "first job running", func() bool {
		st, err := s.Status(running.ID)
		return err == nil && st.State == api.JobStateRunning
	})
	queued, err := s.Submit(context.Background(), sweepJob(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), sweepJob(1)); codeOf(t, err) != api.CodeQueueFull {
		t.Fatalf("third submission: want queue_full, got %v", err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Submitted != 2 || st.Queued != 1 || st.Running != 1 || st.QueueCapacity != 1 {
		t.Errorf("stats %+v", st)
	}
	close(eng.gate) // release everything
	for _, id := range []string{running.ID, queued.ID} {
		if fin, err := s.Wait(context.Background(), id); err != nil || fin.State != api.JobStateDone {
			t.Fatalf("job %s: %+v, %v", id, fin, err)
		}
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng, Workers: 1, QueueDepth: 4})
	defer s.Close()
	running, err := s.Submit(context.Background(), sweepJob(1))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "first job running", func() bool {
		st, err := s.Status(running.ID)
		return err == nil && st.State == api.JobStateRunning
	})
	queued, err := s.Submit(context.Background(), sweepJob(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobStateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	if _, err := s.Result(queued.ID); codeOf(t, err) != api.CodeCanceled {
		t.Errorf("result of canceled job: %v", err)
	}
	eng.gate <- struct{}{} // let the running job finish its one point
	if fin, err := s.Wait(context.Background(), running.ID); err != nil || fin.State != api.JobStateDone {
		t.Fatalf("running job: %+v, %v", fin, err)
	}
	// The canceled job must never have reached the engine: exactly one
	// stream ran (the first job's).
	if n := eng.streamRuns.Load(); n != 1 {
		t.Errorf("engine ran %d streams, want 1", n)
	}
}

// TestCancelQueuedJobFreesQueueSlot pins a behaviour found by driving the
// live daemon: canceling a queued job must free its queue slot for new
// submissions immediately, even while every worker is busy — not only
// once a worker gets around to draining the entry.
func TestCancelQueuedJobFreesQueueSlot(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng, Workers: 1, QueueDepth: 1})
	defer s.Close()
	running, err := s.Submit(context.Background(), sweepJob(1))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "first job running", func() bool {
		st, err := s.Status(running.ID)
		return err == nil && st.State == api.JobStateRunning
	})
	queued, err := s.Submit(context.Background(), sweepJob(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), sweepJob(1)); codeOf(t, err) != api.CodeQueueFull {
		t.Fatalf("queue not full: %v", err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// The worker is still blocked on the gated engine; the slot must be
	// free regardless.
	replacement, err := s.Submit(context.Background(), sweepJob(2))
	if err != nil {
		t.Fatalf("submit after canceling the queued job: %v", err)
	}
	close(eng.gate)
	if fin, err := s.Wait(context.Background(), replacement.ID); err != nil || fin.State != api.JobStateDone {
		t.Fatalf("replacement job: %+v, %v", fin, err)
	}
}

func TestCancelRunningJobReleasesEngine(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng})
	defer s.Close()
	st, err := s.Submit(context.Background(), sweepJob(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "job running", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.State == api.JobStateRunning
	})
	eng.gate <- struct{}{} // let exactly one point through
	pollUntil(t, "one point solved", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.Progress.Completed == 1
	})
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobStateCanceled {
		t.Fatalf("state after cancel: %s", fin.State)
	}
	// The engine's stream observed the cancelation and returned — the
	// in-flight evaluation was released, not abandoned mid-run.
	eng.mu.Lock()
	streamErr := eng.lastStreamErr
	eng.mu.Unlock()
	if !errors.Is(streamErr, context.Canceled) {
		t.Errorf("engine stream returned %v, want context.Canceled", streamErr)
	}
	// Partial results up to the cancelation stay readable.
	pts, got, err := s.PartialSweep(st.ID)
	if err != nil || got.State != api.JobStateCanceled || len(pts) != 1 {
		t.Errorf("partial after cancel: %d points, status %+v, err %v", len(pts), got, err)
	}
	// Cancel is idempotent on terminal jobs.
	again, err := s.Cancel(st.ID)
	if err != nil || again.State != api.JobStateCanceled {
		t.Errorf("second cancel: %+v, %v", again, err)
	}
}

// TestCancelRunningOptimizeJob pins a bug found in review: the optimize
// runner classifies engine failures through unsatisfiable(), which
// flattens context.Canceled into a chain-less *api.Error — the job must
// still finish canceled, not failed.
func TestCancelRunningOptimizeJob(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng})
	defer s.Close()
	st, err := s.Submit(context.Background(), api.NewOptimizeJob(api.OptimizeRequest{
		System: api.System{Lambda: 3}, HoldingCost: 4, ServerCost: 1, MinServers: 1, MaxServers: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "optimize job running", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.State == api.JobStateRunning
	})
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobStateCanceled {
		t.Fatalf("canceled optimize job ended %s (error %v)", fin.State, fin.Error)
	}
}

func TestPartialSweepMidRun(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng})
	defer s.Close()
	st, err := s.Submit(context.Background(), sweepJob(10, 20, 30))
	if err != nil {
		t.Fatal(err)
	}
	eng.gate <- struct{}{}
	eng.gate <- struct{}{}
	pollUntil(t, "two points solved", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.Progress.Completed == 2
	})
	pts, got, err := s.PartialSweep(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobStateRunning || len(pts) != 2 {
		t.Fatalf("mid-run partial: state %s, %d points", got.State, len(pts))
	}
	if pts[0].Value != 10 || pts[1].Value != 20 {
		t.Errorf("partial points %+v", pts)
	}
	if _, err := s.Result(st.ID); codeOf(t, err) != api.CodeNotReady {
		t.Errorf("mid-run result: %v", err)
	}
	eng.gate <- struct{}{}
	if fin, err := s.Wait(context.Background(), st.ID); err != nil || fin.State != api.JobStateDone {
		t.Fatalf("final: %+v, %v", fin, err)
	}
}

func TestPartialSweepRejectsNonSweepJobs(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	defer s.Close()
	st, err := s.Submit(context.Background(), api.NewSimulateJob(api.SimulateRequest{System: api.System{Servers: 8, Lambda: 3}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PartialSweep(st.ID); codeOf(t, err) != api.CodeInvalidArgument {
		t.Errorf("partial of simulate job: %v", err)
	}
}

func TestUnstableSimulateJobFails(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	defer s.Close()
	st, err := s.Submit(context.Background(), api.NewSimulateJob(api.SimulateRequest{System: api.System{Servers: 1, Lambda: 1000}}))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobStateFailed || fin.Error == nil || fin.Error.Code != api.CodeUnstableSystem {
		t.Fatalf("unstable simulate job: %+v", fin)
	}
	if _, err := s.Result(st.ID); codeOf(t, err) != api.CodeUnstableSystem {
		t.Errorf("result of failed job: %v", err)
	}
}

func TestUnknownJobIsNotFound(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	defer s.Close()
	if _, err := s.Status("nope"); codeOf(t, err) != api.CodeNotFound {
		t.Errorf("Status: %v", err)
	}
	if _, err := s.Result("nope"); codeOf(t, err) != api.CodeNotFound {
		t.Errorf("Result: %v", err)
	}
	if _, err := s.Cancel("nope"); codeOf(t, err) != api.CodeNotFound {
		t.Errorf("Cancel: %v", err)
	}
	if _, _, err := s.PartialSweep("nope"); codeOf(t, err) != api.CodeNotFound {
		t.Errorf("PartialSweep: %v", err)
	}
}

func TestTTLGarbageCollection(t *testing.T) {
	clock := newFakeClock()
	s := New(Config{Engine: &fakeEngine{}, TTL: time.Minute, Now: clock.Now})
	defer s.Close()
	st, err := s.Submit(context.Background(), sweepJob(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	s.gc() // fresh terminal job survives
	if _, err := s.Status(st.ID); err != nil {
		t.Fatalf("job collected before TTL: %v", err)
	}
	clock.Advance(2 * time.Minute)
	s.gc()
	if _, err := s.Status(st.ID); codeOf(t, err) != api.CodeNotFound {
		t.Errorf("job after TTL: %v", err)
	}
}

func TestCloseCancelsRunningJobs(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng})
	st, err := s.Submit(context.Background(), sweepJob(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "job running", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.State == api.JobStateRunning
	})
	s.Close() // must not hang on the gated engine
	got, err := s.Status(st.ID)
	if err != nil || got.State != api.JobStateCanceled {
		t.Fatalf("job after Close: %+v, %v", got, err)
	}
	if _, err := s.Submit(context.Background(), sweepJob(1)); err == nil {
		t.Error("Submit after Close succeeded")
	}
	s.Close() // idempotent
}

func TestEngineInterfaceIsSatisfiedByServiceEngine(t *testing.T) {
	var _ Engine = service.NewEngine(service.Config{Workers: 1})
}

// TestDrainWaitsForRunningJobsAndRejectsNew pins the graceful-shutdown
// contract: Drain flips submissions to node_unavailable immediately,
// reports ctx expiry while work is still running, and returns nil once
// every job reached a terminal state — with the records still readable.
func TestDrainWaitsForRunningJobsAndRejectsNew(t *testing.T) {
	eng := &fakeEngine{gate: make(chan struct{})}
	s := New(Config{Engine: eng, Workers: 1})
	defer s.Close()
	st, err := s.Submit(context.Background(), sweepJob(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "job running", func() bool {
		got, err := s.Status(st.ID)
		return err == nil && got.State == api.JobStateRunning
	})
	// Deadline already expired, job still gated: Drain must report it.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with expired ctx = %v, want context.Canceled", err)
	}
	// The draining flag is in force: new work is turned away with the
	// retryable node_unavailable code, not queue_full and not an accept.
	if _, err := s.Submit(context.Background(), sweepJob(3)); codeOf(t, err) != api.CodeNodeUnavailable {
		t.Fatalf("Submit while draining: %v, want node_unavailable", err)
	}
	// Let the job's two points finish; a fresh Drain now completes clean.
	eng.gate <- struct{}{}
	eng.gate <- struct{}{}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain after work finished: %v", err)
	}
	got, err := s.Status(st.ID)
	if err != nil || got.State != api.JobStateDone {
		t.Fatalf("drained job: %+v, %v (want done — drain never cancels)", got, err)
	}
}

// TestDrainAfterCloseIsNoOp: the shutdown paths compose in either order.
func TestDrainAfterCloseIsNoOp(t *testing.T) {
	s := New(Config{Engine: &fakeEngine{}})
	s.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after Close: %v", err)
	}
}
