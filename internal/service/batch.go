package service

// This file is the engine's sweep batching: a λ-sweep submits many jobs
// that differ only in the arrival rate, and the spectral solver's
// λ-independent work (environment enumeration, companion scaffolding,
// boundary structure) dominates a point when rebuilt from scratch each
// time. EvaluateBatch and EvaluateStream therefore group their jobs by
// core.System.EnvFingerprint — equality under "differs in at most λ" —
// and route each group of two or more spectral jobs through one shared
// core.BatchSolver, which hoists that work once and evaluates points into
// pooled workspaces.
//
// The batched path is proven result-equivalent to the scalar one
// (bit-identical on amd64; see internal/qbd's metamorphic suite), so
// nothing else changes: cache keys, in-flight sharing, counters, NDJSON
// streaming order and per-point errors are exactly as if every job had
// been solved individually.

import (
	"context"
	"sync"

	"repro/internal/core"
)

// sweepGroup is one batch of spectral jobs sharing an environment. The
// BatchSolver is built lazily by the first worker to reach the group —
// groups whose points are all served from cache never pay construction —
// and exactly once, however many workers arrive concurrently.
type sweepGroup struct {
	base core.System
	once sync.Once
	bs   *core.BatchSolver
	err  error
}

// solve evaluates one point through the shared solver, falling back to
// the scalar path when construction failed — the scalar solver then
// reports the configuration's error with its usual precedence, keeping
// error behaviour identical to the unbatched engine. The engine's batch
// counters record both outcomes: one BatchGroups tick per solver actually
// constructed (lazily, so all-cached groups never count) and one
// BatchFallbacks tick per point solved scalar after a failed
// construction.
func (g *sweepGroup) solve(e *Engine, sys core.System) (*core.Performance, error) {
	g.once.Do(func() {
		g.bs, g.err = core.NewBatchSolver(g.base)
		e.batchGroups.Add(1)
	})
	if g.err != nil {
		e.batchFallbacks.Add(1)
		return sys.SolveWith(core.Spectral)
	}
	return g.bs.Solve(sys.ArrivalRate)
}

// sweepBatches maps environment fingerprints to their shared group.
type sweepBatches map[string]*sweepGroup

// newSweepBatches groups the spectral jobs of a batch by environment
// fingerprint. Only groups with at least two members batch — a singleton
// gains nothing from hoisting and keeps the scalar path's exact
// allocation profile. Non-spectral jobs never batch: the approximation
// and matrix-geometric solvers have no hoisted form.
func newSweepBatches(jobs []Job) sweepBatches {
	if len(jobs) < 2 {
		return nil
	}
	counts := make(map[string]int)
	for _, j := range jobs {
		if j.Method == core.Spectral {
			counts[j.System.EnvFingerprint()]++
		}
	}
	var batches sweepBatches
	for _, j := range jobs {
		if j.Method != core.Spectral {
			continue
		}
		fp := j.System.EnvFingerprint()
		if counts[fp] < 2 {
			continue
		}
		if batches == nil {
			batches = make(sweepBatches)
		}
		if _, ok := batches[fp]; !ok {
			batches[fp] = &sweepGroup{base: j.System}
		}
	}
	return batches
}

// evaluateJob evaluates one batch member, routing it through its sweep
// group's shared solver when it has one and the plain scalar path
// otherwise. Caching and in-flight semantics are identical either way.
func (e *Engine) evaluateJob(ctx context.Context, j Job, batches sweepBatches) (*core.Performance, error) {
	if j.Method == core.Spectral && batches != nil {
		if g, ok := batches[j.System.EnvFingerprint()]; ok {
			return e.evaluate(ctx, j.System, j.Method, func(sys core.System) (*core.Performance, error) {
				return g.solve(e, sys)
			})
		}
	}
	return e.Evaluate(ctx, j.System, j.Method)
}
