package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

var (
	testOps    = dist.MustHyperExp([]float64{0.7246, 0.2754}, []float64{0.1663, 0.0091})
	testRepair = dist.Exp(25)
)

func testSystem(n int, lambda float64) core.System {
	return core.System{
		Servers:     n,
		ArrivalRate: lambda,
		ServiceRate: 1,
		Operative:   testOps,
		Repair:      testRepair,
	}
}

func TestEvaluateMatchesDirectSolve(t *testing.T) {
	eng := NewEngine(Config{})
	sys := testSystem(10, 8)
	perf, err := eng.Evaluate(context.Background(), sys, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perf.MeanJobs-direct.MeanJobs) > 1e-12 {
		t.Errorf("engine L = %v, direct L = %v", perf.MeanJobs, direct.MeanJobs)
	}
}

func TestEvaluateCacheHitOnRepeat(t *testing.T) {
	eng := NewEngine(Config{Workers: 2, CacheSize: 8})
	ctx := context.Background()
	sys := testSystem(6, 4)
	first, err := eng.Evaluate(ctx, sys, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Evaluate(ctx, sys, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeat evaluation did not return the cached pointer")
	}
	st := eng.Stats()
	if st.Solves != 1 {
		t.Errorf("solver ran %d times, want 1", st.Solves)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
}

func TestMethodsDoNotAliasInCache(t *testing.T) {
	eng := NewEngine(Config{CacheSize: 8})
	ctx := context.Background()
	sys := testSystem(6, 4)
	exact, err := eng.Evaluate(ctx, sys, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := eng.Evaluate(ctx, sys, core.Approximation)
	if err != nil {
		t.Fatal(err)
	}
	if exact == approx {
		t.Error("spectral and approximation shared one cache entry")
	}
	if st := eng.Stats(); st.Solves != 2 {
		t.Errorf("solver ran %d times, want 2", st.Solves)
	}
}

func TestCacheEviction(t *testing.T) {
	eng := NewEngine(Config{Workers: 1, CacheSize: 2})
	ctx := context.Background()
	for _, lambda := range []float64{3, 4, 5} {
		if _, err := eng.Evaluate(ctx, testSystem(6, lambda), core.Approximation); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Cache.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Cache.Evictions)
	}
	if st.Cache.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Cache.Entries)
	}
	// λ=3 was evicted (LRU); λ=5 must still hit.
	if _, err := eng.Evaluate(ctx, testSystem(6, 5), core.Approximation); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats(); got.Cache.Hits != st.Cache.Hits+1 {
		t.Errorf("λ=5 was not served from cache (hits %d → %d)", st.Cache.Hits, got.Cache.Hits)
	}
	if _, err := eng.Evaluate(ctx, testSystem(6, 3), core.Approximation); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats(); got.Solves != 4 {
		t.Errorf("evicted λ=3 should have re-solved: %d solves, want 4", got.Solves)
	}
}

func TestCacheDisabled(t *testing.T) {
	eng := NewEngine(Config{CacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := eng.Evaluate(ctx, testSystem(6, 4), core.Approximation); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Solves != 2 {
		t.Errorf("solver ran %d times with cache disabled, want 2", st.Solves)
	}
	if st.Cache.Capacity != 0 {
		t.Errorf("disabled cache reports capacity %d", st.Cache.Capacity)
	}
}

func TestEvaluateBatchDeterministicOrdering(t *testing.T) {
	eng := NewEngine(Config{Workers: 8})
	lambdas := []float64{3, 7, 4.5, 6, 2, 5.5, 6.5, 4, 3.5, 5}
	jobs := make([]Job, len(lambdas))
	for i, l := range lambdas {
		jobs[i] = Job{System: testSystem(8, l), Method: core.Spectral}
	}
	results := eng.EvaluateBatch(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
			continue
		}
		if r.Job.System.ArrivalRate != lambdas[i] {
			t.Errorf("result %d is for λ=%v, want %v", i, r.Job.System.ArrivalRate, lambdas[i])
		}
		// Cross-check one point against a direct solve.
		if i == 1 {
			direct, err := testSystem(8, lambdas[i]).Solve()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Perf.MeanJobs-direct.MeanJobs) > 1e-12 {
				t.Errorf("λ=%v: batch L %v vs direct %v", lambdas[i], r.Perf.MeanJobs, direct.MeanJobs)
			}
		}
	}
	// L must increase with λ at fixed N — verify via a sorted comparison.
	byLambda := map[float64]float64{}
	for i, r := range results {
		byLambda[lambdas[i]] = r.Perf.MeanJobs
	}
	if byLambda[7] <= byLambda[2] {
		t.Errorf("L(λ=7)=%v not above L(λ=2)=%v", byLambda[7], byLambda[2])
	}
}

func TestEvaluateBatchCapturesPerJobErrors(t *testing.T) {
	eng := NewEngine(Config{})
	jobs := []Job{
		{System: testSystem(8, 5), Method: core.Spectral},
		{System: testSystem(0, 5), Method: core.Spectral},  // invalid: no servers
		{System: testSystem(8, -1), Method: core.Spectral}, // invalid: negative λ
		{System: testSystem(8, 6), Method: core.Spectral},
	}
	results := eng.EvaluateBatch(context.Background(), jobs)
	if results[0].Err != nil || results[3].Err != nil {
		t.Errorf("valid jobs failed: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Error("invalid jobs did not report errors")
	}
	if err := FirstError(results); err == nil {
		t.Error("FirstError missed the failures")
	}
}

func TestEvaluateBatchCancellation(t *testing.T) {
	eng := NewEngine(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{System: testSystem(12, 0.1+0.1*float64(i)), Method: core.Spectral}
	}
	results := eng.EvaluateBatch(ctx, jobs)
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no job reported cancellation after the context was cancelled")
	}
}

func TestEvaluateValidatesBeforeSolving(t *testing.T) {
	eng := NewEngine(Config{})
	if _, err := eng.Evaluate(context.Background(), core.System{}, core.Spectral); err == nil {
		t.Error("invalid system accepted")
	}
	if st := eng.Stats(); st.Solves != 0 {
		t.Errorf("validation failure still ran the solver %d times", st.Solves)
	}
}

func TestConcurrentIdenticalEvaluationsShareOneSolve(t *testing.T) {
	eng := NewEngine(Config{Workers: 8, CacheSize: -1}) // cache off isolates dedup
	sys := testSystem(12, 9)
	const callers = 16
	var wg sync.WaitGroup
	perfs := make([]*core.Performance, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			perfs[i], errs[i] = eng.Evaluate(context.Background(), sys, core.Spectral)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	st := eng.Stats()
	if st.Solves >= callers {
		t.Errorf("%d solves for %d identical concurrent calls; dedup did nothing", st.Solves, callers)
	}
	if st.SharedInFlight == 0 {
		t.Error("no caller joined an in-flight solve")
	}
}

func TestSweepServersMatchesCore(t *testing.T) {
	eng := NewEngine(Config{})
	base := testSystem(0, 8)
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	got, err := eng.SweepServers(context.Background(), base, cm, 9, 17, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SweepServers(base, cm, 9, 17, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("engine sweep has %d points, core has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Servers != want[i].Servers {
			t.Errorf("point %d: N = %d vs %d", i, got[i].Servers, want[i].Servers)
		}
		if math.Abs(got[i].Cost-want[i].Cost) > 1e-9 {
			t.Errorf("N=%d: cost %v vs %v", got[i].Servers, got[i].Cost, want[i].Cost)
		}
	}
	if _, err := eng.SweepServers(context.Background(), base, cm, 5, 3, core.Spectral); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestOptimizeServersMatchesPaper(t *testing.T) {
	eng := NewEngine(Config{})
	cm := core.CostModel{HoldingCost: 4, ServerCost: 1}
	// Figure 5: λ = 7, 8, 8.5 → N* = 11, 12, 13.
	for _, c := range []struct {
		lambda float64
		wantN  int
	}{{7, 11}, {8, 12}, {8.5, 13}} {
		best, err := eng.OptimizeServers(context.Background(), testSystem(0, c.lambda), cm, 9, 17, core.Spectral)
		if err != nil {
			t.Fatal(err)
		}
		if best.Servers != c.wantN {
			t.Errorf("λ=%v: N* = %d, paper says %d", c.lambda, best.Servers, c.wantN)
		}
	}
}

func TestMinServersForResponseTime(t *testing.T) {
	eng := NewEngine(Config{})
	// Figure 9: λ = 7.5, W ≤ 1.5 needs at least 9 servers.
	pt, err := eng.MinServersForResponseTime(context.Background(), testSystem(0, 7.5), 1.5, 1, 20, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Servers != 9 {
		t.Errorf("min N = %d, paper says 9", pt.Servers)
	}
	if _, err := eng.MinServersForResponseTime(context.Background(), testSystem(0, 7.5), -1, 1, 20, core.Spectral); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := eng.MinServersForResponseTime(context.Background(), testSystem(0, 7.5), 1.5, 12, 9, core.Spectral); err == nil {
		t.Error("inverted range accepted")
	}
	// A floor above the unconstrained answer must be respected.
	floored, err := eng.MinServersForResponseTime(context.Background(), testSystem(0, 7.5), 1.5, 11, 20, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	if floored.Servers != 11 {
		t.Errorf("min N with floor 11 = %d, want 11", floored.Servers)
	}
}

func TestSweepLambdaOrdersAndCaches(t *testing.T) {
	eng := NewEngine(Config{})
	lambdas := []float64{4, 5, 6, 7}
	perfs, err := eng.SweepLambda(context.Background(), testSystem(10, 0), lambdas, core.Spectral)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(perfs); i++ {
		if perfs[i].MeanJobs <= perfs[i-1].MeanJobs {
			t.Errorf("L not increasing with λ at index %d", i)
		}
	}
	// A second, overlapping sweep must be served from cache.
	before := eng.Stats().Solves
	if _, err := eng.SweepLambda(context.Background(), testSystem(10, 0), lambdas[1:], core.Spectral); err != nil {
		t.Fatal(err)
	}
	if after := eng.Stats().Solves; after != before {
		t.Errorf("overlapping sweep re-ran %d solves", after-before)
	}
}

func TestCacheHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Error("empty stats should report 0 hit rate")
	}
	s = CacheStats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", s.HitRate())
	}
}
