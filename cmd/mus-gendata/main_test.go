package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "log.csv")
	err := run([]string{"-out", out, "-events", "500", "-servers", "5", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 501 { // header + 500 rows
		t.Fatalf("got %d lines, want 501", len(lines))
	}
	if !strings.HasPrefix(lines[0], "event_id,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-events", "-5"}); err == nil {
		t.Error("negative events should fail")
	}
	if err := run([]string{"-anomaly", "2"}); err == nil {
		t.Error("anomaly ≥ 1 should fail")
	}
}
