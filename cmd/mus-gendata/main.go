// Command mus-gendata emits a synthetic server-breakdown event log in the
// schema of the Sun Microsystems data set analysed in Palmer & Mitrani §2:
// one CSV row per breakdown with its outage duration and the time to the
// next breakdown of the same server, including a configurable share of
// anomalous rows (Time Between Events < Outage Duration).
//
//	mus-gendata -out sun.csv                # 140,000 events, paper defaults
//	mus-gendata -events 1000 -anomaly 0.1   # small noisy log to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mus-gendata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mus-gendata", flag.ContinueOnError)
	var (
		out     = fs.String("out", "", "output file (default stdout)")
		events  = fs.Int("events", 140000, "number of breakdown events")
		servers = fs.Int("servers", 200, "number of servers in the fleet")
		anomaly = fs.Float64("anomaly", 0.04, "fraction of anomalous rows")
		seed    = fs.Int64("seed", 0, "random seed (0 = fixed default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	evs, err := dataset.Generate(dataset.GenConfig{
		Events:          *events,
		Servers:         *servers,
		AnomalyFraction: *anomaly,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, evs); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", len(evs), *out)
	}
	return nil
}
