package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/api"
	"repro/client"
)

// TestCrashRecoveryAcceptance is the durability acceptance run, against
// the real binary: three daemons federate with per-node data dirs, one is
// SIGKILLed mid-10k-point sweep job, and the cluster must finish the job
// with zero lost or duplicated points. The killed node is then restarted
// on its old data dir and must (a) replay its write-ahead log — its own
// job history answers GET /v1/jobs again — and (b) boot with caches
// warmed from its snapshot, proven by the warmed-entry counter and a
// cache hit on the first solve of a system it solved before the kill.
func TestCrashRecoveryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess acceptance test; skipped under -short")
	}
	bin := buildServer(t)
	ports := freePorts(t, 3)
	ids := []string{"n1", "n2", "n3"}
	urls := make([]string, 3)
	peers := ""
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
		if i > 0 {
			peers += ","
		}
		peers += ids[i] + "=" + urls[i]
	}
	dirs := make([]string, 3)
	procs := make([]*exec.Cmd, 3)
	start := func(i int) {
		t.Helper()
		procs[i] = startNode(t, bin, fmt.Sprintf("127.0.0.1:%d", ports[i]), ids[i], peers, dirs[i])
	}
	for i := range procs {
		dirs[i] = t.TempDir()
		start(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill() //nolint:errcheck
				p.Wait()         //nolint:errcheck
			}
		}
	}()
	for _, u := range urls {
		waitHealthy(t, u)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Learn the ring owner of the sweep family's environment fingerprint
	// from a tiny probe job: a λ-sweep over one system is a single shard,
	// and the big job below shares its environment, hence its owner.
	probe, err := client.New(urls[0]).SubmitJob(ctx, api.NewSweepJob(sweepReqN(2)))
	if err != nil {
		t.Fatalf("probe job: %v", err)
	}
	probeFinal, err := client.New(urls[0]).WaitJob(ctx, probe.ID, nil)
	if err != nil || probeFinal.State != api.JobStateDone {
		t.Fatalf("probe job: %+v, %v", probeFinal, err)
	}
	if len(probeFinal.Shards) != 1 {
		t.Fatalf("probe shards %+v, want exactly one", probeFinal.Shards)
	}
	victim := -1
	for i, id := range ids {
		if id == probeFinal.Shards[0].Node {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("shard owner %q is not a member", probeFinal.Shards[0].Node)
	}
	coord := (victim + 1) % 3
	t.Logf("victim=%s coordinator=%s", ids[victim], ids[coord])

	// Seed the victim's own durability surfaces: a small job of its own
	// (the history the replayed WAL must answer with) and a locally-served
	// solve (the cache entry the snapshot must carry into the next boot).
	victimClient := client.New(urls[victim])
	hist, err := victimClient.SubmitJob(ctx, api.NewSweepJob(sweepReqN(3)))
	if err != nil {
		t.Fatalf("victim history job: %v", err)
	}
	if st, err := victimClient.WaitJob(ctx, hist.ID, nil); err != nil || st.State != api.JobStateDone {
		t.Fatalf("victim history job: %+v, %v", st, err)
	}
	warmSys := api.SolveRequest{System: api.System{Servers: 9, Lambda: 0.7}}
	pinned := client.New(urls[victim], client.WithHeader(api.HeaderForwarded, "1"))
	if _, err := pinned.Solve(ctx, warmSys); err != nil {
		t.Fatalf("victim warm solve: %v", err)
	}
	// The kill is a SIGKILL: only state already snapshotted survives, so
	// wait for a snapshot written after the solve landed in the cache.
	solvedAt := time.Now()
	snapPath := filepath.Join(dirs[victim], "snapshot.json")
	waitFor(t, "victim cache snapshot", func() bool {
		fi, err := os.Stat(snapPath)
		return err == nil && fi.ModTime().After(solvedAt)
	})

	// The 10k-point job: submitted on the coordinator, executed — whole
	// shard — on the victim, killed mid-flight.
	coordClient := client.New(urls[coord])
	big, err := coordClient.SubmitJob(ctx, api.NewSweepJob(sweepReqN(10000)))
	if err != nil {
		t.Fatalf("big job: %v", err)
	}
	waitFor(t, "big job under way", func() bool {
		st, err := coordClient.JobStatus(ctx, big.ID)
		return err == nil && st.Progress.Completed > 0
	})
	mid, _ := coordClient.JobStatus(ctx, big.ID)
	if err := procs[victim].Process.Kill(); err != nil { // SIGKILL, no drain
		t.Fatalf("killing victim: %v", err)
	}
	procs[victim].Wait() //nolint:errcheck
	procs[victim] = nil
	if mid != nil && mid.Progress.Completed >= mid.Progress.Total {
		t.Logf("note: job already complete at kill time (%d/%d); failover not exercised this run",
			mid.Progress.Completed, mid.Progress.Total)
	}

	final, err := coordClient.WaitJob(ctx, big.ID, nil)
	if err != nil {
		t.Fatalf("big job after kill: %v", err)
	}
	if final.State != api.JobStateDone {
		t.Fatalf("big job ended %s (error %v)", final.State, final.Error)
	}
	res, err := coordClient.JobResult(ctx, big.ID)
	if err != nil {
		t.Fatalf("big job result: %v", err)
	}
	pts := res.Sweep.Points
	if len(pts) != 10000 {
		t.Fatalf("big job has %d points, want 10000", len(pts))
	}
	for i, pt := range pts {
		// Grid-ordered and gap-free ⇒ no point lost, none duplicated.
		if pt.Index != i {
			t.Fatalf("point %d has index %d: lost or duplicated work", i, pt.Index)
		}
		if pt.Error != "" {
			t.Fatalf("point %d failed: %s", i, pt.Error)
		}
	}

	// Restart the victim on its old data dir: WAL replay must bring its
	// job history back, and the snapshot must warm its caches.
	start(victim)
	waitHealthy(t, urls[victim])
	list, err := victimClient.ListJobs(ctx)
	if err != nil {
		t.Fatalf("victim history after restart: %v", err)
	}
	found := false
	for _, st := range list.Jobs {
		if st.ID == hist.ID && st.State == api.JobStateDone {
			found = true
		}
	}
	if !found {
		t.Fatalf("replayed history %+v misses job %s", list.Jobs, hist.ID)
	}
	if res, err := victimClient.JobResult(ctx, hist.ID); err != nil || len(res.Sweep.Points) != 3 {
		t.Fatalf("replayed job result: %+v, %v", res, err)
	}
	stats, err := victimClient.Stats(ctx)
	if err != nil {
		t.Fatalf("victim stats after restart: %v", err)
	}
	if stats.WarmedEntries == 0 {
		t.Fatal("restarted victim warmed no cache entries from its snapshot")
	}
	if _, err := pinned.Solve(ctx, warmSys); err != nil {
		t.Fatalf("victim solve after restart: %v", err)
	}
	after, err := victimClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits := after.Cache.Hits - stats.Cache.Hits; hits != 1 {
		t.Fatalf("first solve after restart scored %d cache hits, want 1 (snapshot warm-up)", hits)
	}
}

// buildServer compiles the daemon once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mus-serve-test")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building mus-serve: %v\n%s", err, out)
	}
	return bin
}

// startNode launches one daemon process with aggressive durability
// cadences, so the acceptance run does not wait on production intervals.
func startNode(t *testing.T, bin, addr, id, peers, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr, "-node-id", id, "-peers", peers, "-data-dir", dir,
		"-fsync-interval", "1ms", "-snapshot-interval", "100ms",
		"-workers", "2", "-log-level", "warn")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting node %s: %v", id, err)
	}
	return cmd
}

// freePorts reserves n distinct listening ports and releases them for the
// subprocesses to claim.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = l.Addr().(*net.TCPAddr).Port
		l.Close()
	}
	return ports
}

// waitHealthy polls a node's healthz until it answers.
func waitHealthy(t *testing.T, url string) {
	t.Helper()
	c := client.New(url)
	waitFor(t, "node "+url+" healthy", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_, err := c.Health(ctx)
		return err == nil
	})
}

// waitFor polls cond with a generous deadline (subprocesses boot slowly
// under race builds).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
