package main

// Full-stack round trips: the client SDK (package client) against the
// real daemon handlers, so the one wire schema in package api is
// exercised end to end from both sides. The SDK's wire mechanics in
// isolation (retries, stub errors) are covered in package client; here
// the numbers are real.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/service"
)

func TestClientServerRoundTripAllEndpoints(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	ctx := context.Background()

	solve, err := c.Solve(ctx, api.SolveRequest{
		System:      api.System{Servers: 12, Lambda: 8},
		HoldingCost: 4, ServerCost: 1,
	})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if solve.Cost == nil || !solve.Stable {
		t.Errorf("solve response incomplete: %+v", solve)
	}

	sweep, err := c.Sweep(ctx, api.SweepRequest{
		System: api.System{Servers: 10},
		Param:  api.ParamLambda,
		Values: []float64{4, 5, 6},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sweep.Points) != 3 || sweep.Points[2].Perf == nil {
		t.Fatalf("sweep response incomplete: %+v", sweep)
	}
	// The λ=8, N=12 point must agree between /v1/solve and /v1/sweep.
	one, err := c.Sweep(ctx, api.SweepRequest{
		System: api.System{Servers: 12},
		Param:  api.ParamLambda,
		Values: []float64{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.Points[0].Perf.MeanJobs-solve.Perf.MeanJobs) > 1e-12 {
		t.Errorf("sweep L=%v vs solve L=%v", one.Points[0].Perf.MeanJobs, solve.Perf.MeanJobs)
	}

	opt, err := c.Optimize(ctx, api.OptimizeRequest{
		System:      api.System{Lambda: 8},
		HoldingCost: 4, ServerCost: 1,
		MinServers: 9, MaxServers: 17,
	})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if opt.Servers != 12 {
		t.Errorf("N* = %d, paper says 12", opt.Servers)
	}

	sim, err := c.Simulate(ctx, api.SimulateRequest{
		System: api.System{Servers: 3, Lambda: 1.8},
		Seed:   11, Warmup: 500, Horizon: 20000, Replications: 4,
	})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if sim.Replications != 4 || sim.MeanQueue.HalfWidth <= 0 {
		t.Errorf("simulate response incomplete: %+v", sim)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Requests == 0 || st.Solves == 0 {
		t.Errorf("stats counters empty: %+v", st)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || h.Workers != st.Workers {
		t.Errorf("health response inconsistent: %+v vs workers %d", h, st.Workers)
	}
}

func TestClientServerTypedErrors(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	ctx := context.Background()

	_, err := c.Solve(ctx, api.SolveRequest{System: api.System{Servers: 2, Lambda: 50}})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeUnstableSystem {
		t.Errorf("unstable over the wire: got %v", err)
	}

	_, err = c.Optimize(ctx, api.OptimizeRequest{
		System:         api.System{Lambda: 8},
		TargetResponse: 0.9, MinServers: 1, MaxServers: 2,
	})
	ae = nil
	if !errors.As(err, &ae) || ae.Code != api.CodeUnsatisfiable {
		t.Errorf("unsatisfiable over the wire: got %v", err)
	}

	_, err = c.Simulate(ctx, api.SimulateRequest{System: api.System{Servers: 3, Lambda: 1}, Confidence: 2})
	ae = nil
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument || ae.Field != "confidence" {
		t.Errorf("invalid argument over the wire: got %v", err)
	}
}

// TestSweepStreamDeliversFirstPointEarly pins the NDJSON contract: with a
// single-worker engine and increasingly expensive grid points, the first
// point must arrive while most of the sweep is still unsolved — i.e. the
// server streams incrementally instead of buffering the whole response.
func TestSweepStreamDeliversFirstPointEarly(t *testing.T) {
	// One worker, no cache: the points solve strictly in order, each
	// N=15..18 point costing hundreds of milliseconds to seconds.
	eng := service.NewEngine(service.Config{Workers: 1, CacheSize: -1})
	ts := httptest.NewServer(newTestHandler(t, eng))
	defer ts.Close()

	body, err := json.Marshal(api.SweepRequest{
		System: api.System{Lambda: 5},
		Param:  api.ParamServers,
		Values: []float64{10, 15, 16, 17, 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+api.PathSweep, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", api.ContentTypeJSON)
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.ContentTypeNDJSON {
		t.Fatalf("content type %q, want %s", ct, api.ContentTypeNDJSON)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first api.SweepPoint
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line is not a SweepPoint: %v\n%s", err, sc.Bytes())
	}
	if first.Index != 0 || first.Value != 10 || first.Perf == nil {
		t.Fatalf("first point wrong: %+v", first)
	}
	// The first point is in hand; the engine must still be far from done.
	// Each remaining point needs ≥700ms of solver time on one worker, so
	// even generous scheduling slack cannot have finished the sweep.
	if solves := eng.Stats().Solves; solves >= 5 {
		t.Errorf("all %d points solved before the first was read — stream is buffering", solves)
	}
	// Abandoning the stream cancels the remaining evaluations server-side.
	cancel()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if eng.Stats().Solves < 5 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if solves := eng.Stats().Solves; solves >= 5 {
		t.Errorf("sweep ran to completion (%d solves) despite client cancellation", solves)
	}
}

// TestSweepStreamOutlivesServerWriteTimeout pins the per-point write
// deadline: the server's absolute WriteTimeout would cut a long stream
// mid-flight, so streamSweep must roll the deadline forward at every
// point. With a 1-second WriteTimeout and a sweep that streams for
// several seconds, every point must still arrive.
func TestSweepStreamOutlivesServerWriteTimeout(t *testing.T) {
	eng := service.NewEngine(service.Config{Workers: 1, CacheSize: -1})
	ts := httptest.NewUnstartedServer(newTestHandler(t, eng))
	ts.Config.WriteTimeout = time.Second
	ts.Start()
	defer ts.Close()

	// Ten distinct N=14 solves on one worker with no cache: each costs
	// hundreds of milliseconds, so the stream far outlasts the timeout.
	values := make([]float64, 10)
	for i := range values {
		values[i] = 4 + 0.3*float64(i)
	}
	c := client.New(ts.URL, client.WithRetries(0))
	count := 0
	err := c.SweepStream(context.Background(), api.SweepRequest{
		System: api.System{Servers: 14},
		Param:  api.ParamLambda,
		Values: values,
	}, func(pt api.SweepPoint) error {
		if pt.Error != "" {
			t.Errorf("point %d failed: %s", pt.Index, pt.Error)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatalf("stream died before the grid was done (after %d points): %v", count, err)
	}
	if count != len(values) {
		t.Errorf("%d points, want %d", count, len(values))
	}
}

// TestClientSweepStreamAgainstRealServer round-trips the streaming path
// through the SDK: every point arrives, in order, with per-point errors
// carried in-band.
func TestClientSweepStreamAgainstRealServer(t *testing.T) {
	ts := testServer(t)
	c := client.New(ts.URL)
	var got []api.SweepPoint
	err := c.SweepStream(context.Background(), api.SweepRequest{
		System: api.System{Lambda: 8},
		Param:  api.ParamServers,
		Values: []float64{0, 9, 12}, // N=0 is invalid: its point carries the error
	}, func(pt api.SweepPoint) error {
		got = append(got, pt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d points, want 3", len(got))
	}
	for i, pt := range got {
		if pt.Index != i {
			t.Errorf("point %d has index %d — out of order", i, pt.Index)
		}
	}
	if got[0].Error == "" || got[0].Perf != nil {
		t.Errorf("invalid point not reported in-band: %+v", got[0])
	}
	if got[1].Perf == nil || got[2].Perf == nil {
		t.Fatalf("valid points missing perf: %+v", got)
	}
	if got[1].Perf.MeanJobs <= got[2].Perf.MeanJobs {
		t.Error("L(N=9) should exceed L(N=12)")
	}
}
