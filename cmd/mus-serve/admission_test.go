package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/service"
	"repro/internal/service/jobs"
)

// submitRaw posts one job request over raw HTTP so response headers are
// visible — the SDK hides them behind its retry loop.
func submitRaw(t *testing.T, url string, req api.JobRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+api.PathJobs, api.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// onePointSweep is the smallest job that can occupy the gated engine.
func onePointSweep() api.JobRequest {
	return api.NewSweepJob(api.SweepRequest{
		System: api.System{Servers: 4},
		Param:  api.ParamLambda,
		Values: []float64{1},
	})
}

// TestQueueFull429CarriesRetryAfter is the regression for the stranded-
// caller bug at the handler layer: the scheduler's own queue_full gate —
// the backstop when no self-model exists — must stamp the static
// Retry-After fallback, because the SDK treats a hintless 429 as a
// permanent fast-fail and never resubmits.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	ts, _ := gatedServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	c := client.New(ts.URL)
	ctx := context.Background()
	first, err := c.SubmitJob(ctx, onePointSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, first.ID, api.JobStateRunning)
	if _, err := c.SubmitJob(ctx, onePointSweep()); err != nil {
		t.Fatal(err)
	}
	resp := submitRaw(t, ts.URL, onePointSweep())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(api.RetryAfterQueueFull) {
		t.Fatalf("Retry-After = %q, want %q (a hintless 429 strands SDK callers)",
			got, strconv.Itoa(api.RetryAfterQueueFull))
	}
}

// TestAdmissionShedsWithModelHint exercises the self-modeling loop's shed
// path end to end over HTTP: a backlog built up before the model existed
// exceeds the fitted admission limit, so the next submission is rejected
// by the controller — before the static queue bound is reached — with a
// Retry-After computed from the model's predicted drain rate, not the
// static fallback.
func TestAdmissionShedsWithModelHint(t *testing.T) {
	fake := &gatedEngine{gate: make(chan struct{})}
	sched := jobs.New(jobs.Config{Engine: fake, Workers: 1, QueueDepth: 8})
	t.Cleanup(sched.Close)
	srv := newServerJobs(service.NewEngine(service.Config{Workers: 2}), sched)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	ctx := context.Background()

	// Four jobs accepted while no model exists: one running, three queued.
	first, err := c.SubmitJob(ctx, onePointSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, first.ID, api.JobStateRunning)
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitJob(ctx, onePointSweep()); err != nil {
			t.Fatal(err)
		}
	}

	// Fit a model of a 1-worker tier draining ≈1 job/s with a 2 s target
	// wait: Limit ≈ 2, so the standing backlog of 4 is 2 over the limit.
	fitController(t, srv, 1, 2*time.Second)

	resp := submitRaw(t, ts.URL, onePointSweep())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded tier answered %d, want 429", resp.StatusCode)
	}
	// Drain hint: (excess + 1) / capacity = (4 − 2 + 1) / 1 ≈ 3 s; the
	// availability factor (≈ 0.999999) nudges it just past 3, so the
	// whole-second ceiling stamps 4 — visibly model-derived, not the
	// static fallback of 1.
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Errorf("Retry-After = %q, want %q (model-derived drain hint)", got, "4")
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("shed body is not an error envelope: %v\n%s", err, raw)
	}
	if env.Error == nil || env.Error.Code != api.CodeQueueFull {
		t.Errorf("shed envelope %+v, want code queue_full", env)
	}
	if env.Error != nil && !strings.Contains(env.Error.Message, "admission control") {
		t.Errorf("shed message %q does not name admission control", env.Error.Message)
	}
}

// TestOverloadRetryLoopEventuallySucceeds is the bugfix acceptance
// scenario through the SDK: a caller submitting into a full queue is shed
// with a hinted 429, the SDK honours the hint, and the resubmission lands
// once the tier drains — the caller never sees the rejection at all.
func TestOverloadRetryLoopEventuallySucceeds(t *testing.T) {
	ts, fake := gatedServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	c := client.New(ts.URL, client.WithRetries(3))
	ctx := context.Background()

	first, err := c.SubmitJob(ctx, onePointSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, first.ID, api.JobStateRunning)
	if _, err := c.SubmitJob(ctx, onePointSweep()); err != nil {
		t.Fatal(err)
	}

	// The tier drains shortly after the overloaded submission's first
	// attempt: the hinted wait (1 s) comfortably covers the release.
	release := time.AfterFunc(200*time.Millisecond, func() {
		for i := 0; i < 3; i++ {
			fake.gate <- struct{}{}
		}
	})
	t.Cleanup(func() { release.Stop() })

	st, err := c.SubmitJob(ctx, onePointSweep())
	if err != nil {
		t.Fatalf("retry loop did not recover from backpressure: %v", err)
	}
	waitForState(t, c, st.ID, api.JobStateDone)
}
