package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs/trace"
	"repro/internal/service"
	"repro/internal/service/jobs"
	"repro/internal/store"
)

// traceNode is one member of a trace-instrumented in-process cluster: the
// plain clusterNode harness plus the node's tracer and its short span
// node name (distinct from the ring ID, which is the node's URL).
type traceNode struct {
	*clusterNode
	tracer *trace.Tracer
	name   string
}

// startTraceCluster boots n federated nodes wired the way main.go wires a
// production daemon's observability: a per-node tracer (Sample: 1 so
// every trace is retained and listable, not just the errored/slow tail),
// a write-ahead job log (so submissions emit mus.store.* spans and jobs
// survive restarts), the cluster router as the scheduler's sweep
// executor, and the admission controller attached (model-less, so it
// admits everything while still emitting mus.admission.decide spans).
func startTraceCluster(t *testing.T, n int) []*traceNode {
	t.Helper()
	base := startTestClusterNodes(t, n)
	nodes := make([]*traceNode, n)
	cfgs := make([]cluster.NodeConfig, n)
	for i, nd := range base {
		cfgs[i] = cluster.NodeConfig{ID: nd.url, URL: nd.url}
	}
	for i, nd := range base {
		name := fmt.Sprintf("n%d", i)
		tracer := trace.New(trace.Config{Node: name, Sample: 1})
		nd.eng = service.NewEngine(service.Config{})
		jlog, err := store.OpenJobLog(t.TempDir(), store.Options{FsyncInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { jlog.Close() })
		clu, err := cluster.New(cluster.Config{SelfID: cfgs[i].ID, Nodes: cfgs, ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(clu.Close)
		nd.clu = clu
		sched := jobs.New(jobs.Config{
			Engine: nd.eng, Log: jlog, Router: clu, NodeID: cfgs[i].ID, Tracer: tracer,
		})
		t.Cleanup(sched.Close)
		srv := newServerCluster(nd.eng, sched, clu)
		srv.tracer = tracer
		srv.attachAdmission(admission.Config{Interval: -1})
		inner := srv.handler()
		me := nd
		nd.swap.h.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if me.blockForwardedSweeps.Load() && r.URL.Path == api.PathSweep && r.Header.Get(api.HeaderForwarded) != "" {
				select {
				case <-me.release:
				case <-r.Context().Done():
				}
				return
			}
			inner.ServeHTTP(w, r)
		})))
		nodes[i] = &traceNode{clusterNode: nd, tracer: tracer, name: name}
	}
	return nodes
}

// startTestClusterNodes is the URL-bootstrap half of startTestCluster:
// listeners up and ring configs known, wiring left to the caller.
func startTestClusterNodes(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{url: ts.URL, ts: ts, swap: sh, release: make(chan struct{})}
	}
	return nodes
}

// shardOwner learns which node owns the sweep family's environment
// fingerprint from a tiny probe job, so tests can pick a coordinator that
// is NOT the owner — guaranteeing the job's single shard really executes
// remotely (and can be killed out from under the coordinator).
func shardOwner(t *testing.T, ctx context.Context, nodes []*traceNode) int {
	t.Helper()
	c := client.New(nodes[0].url)
	probe, err := c.SubmitJob(ctx, api.NewSweepJob(sweepReqN(2)))
	if err != nil {
		t.Fatalf("probe job: %v", err)
	}
	st, err := c.WaitJob(ctx, probe.ID, nil)
	if err != nil || st.State != api.JobStateDone {
		t.Fatalf("probe job: %+v, %v", st, err)
	}
	if len(st.Shards) != 1 {
		t.Fatalf("probe shards %+v, want exactly one (single environment)", st.Shards)
	}
	for i, nd := range nodes {
		if nd.url == st.Shards[0].Node {
			return i
		}
	}
	t.Fatalf("shard owner %q is not a member", st.Shards[0].Node)
	return -1
}

// spansByName indexes an assembled trace's spans by operation name.
func spansByName(tr *api.TraceResponse) map[string][]api.TraceSpan {
	byName := make(map[string][]api.TraceSpan)
	for _, sp := range tr.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	return byName
}

// waitForTrace polls the assembled trace until every wanted span name has
// arrived — job execution and span recording are asynchronous with
// respect to the job reaching its terminal state.
func waitForTrace(t *testing.T, ctx context.Context, c *client.Client, id string, want []string) *api.TraceResponse {
	t.Helper()
	var tr *api.TraceResponse
	waitFor(t, "trace "+id+" complete", func() bool {
		var err error
		tr, err = c.Trace(ctx, id)
		if err != nil {
			return false
		}
		byName := spansByName(tr)
		for _, name := range want {
			if len(byName[name]) == 0 {
				return false
			}
		}
		return true
	})
	return tr
}

// TestClusterJobTraceAssembly is the tracing acceptance criterion: a
// sweep job submitted through the SDK to a 3-node cluster yields ONE
// connected trace tree at GET /v1/traces/{id} — the root HTTP span, the
// admission decision, the WAL append, the scatter and its per-shard
// remote sub-stream, and the executing node's solver spans, assembled
// across nodes by the serving node's peer gather.
func TestClusterJobTraceAssembly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	nodes := startTraceCluster(t, 3)
	owner := shardOwner(t, ctx, nodes)
	coord := nodes[(owner+1)%3]
	c := client.New(coord.url)

	sub, err := c.SubmitJob(ctx, api.NewSweepJob(sweepReqN(24)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Satellite contract: the accepted job already knows which request —
	// and which trace — created it.
	if sub.RequestID == "" || sub.TraceID == "" {
		t.Fatalf("submit status carries no provenance: request_id=%q trace_id=%q", sub.RequestID, sub.TraceID)
	}
	final, err := c.WaitJob(ctx, sub.ID, nil)
	if err != nil || final.State != api.JobStateDone {
		t.Fatalf("job: %+v, %v", final, err)
	}
	if final.TraceID != sub.TraceID {
		t.Fatalf("terminal status trace %q, want submission trace %q", final.TraceID, sub.TraceID)
	}

	tr := waitForTrace(t, ctx, c, sub.TraceID, []string{
		"mus.http.request",      // submission root on the coordinator
		"mus.admission.decide",  // admission decision before the queue
		"mus.store.append",      // WAL submit record
		"mus.jobs.run",          // async execution re-attached to the trace
		"mus.cluster.scatter",   // grid scattered by the router
		"mus.cluster.substream", // the shard's remote sub-request
		"mus.engine.sweep",      // the owner's batched solver
	})
	if tr.Orphans != 0 {
		t.Fatalf("assembled trace has %d orphans, want 0: %+v", tr.Orphans, tr.Spans)
	}
	if len(tr.Nodes) < 2 {
		t.Fatalf("trace touched nodes %v, want the coordinator AND the shard owner", tr.Nodes)
	}
	// One connected tree, literally: exactly one span has no parent at
	// all, and every other span's parent is present in the assembled set —
	// including the remote local-root spans, whose parents are the
	// coordinator's substream spans.
	present := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		present[sp.SpanID] = true
	}
	topRoots := 0
	for _, sp := range tr.Spans {
		if sp.Parent == "" {
			topRoots++
			if sp.Name != "mus.http.request" || !sp.Root {
				t.Fatalf("trace top is %+v, want the submission's root HTTP span", sp)
			}
			continue
		}
		if !present[sp.Parent] {
			t.Fatalf("span %s (%s) has absent parent %s", sp.SpanID, sp.Name, sp.Parent)
		}
	}
	if topRoots != 1 {
		t.Fatalf("trace has %d parentless spans, want exactly 1", topRoots)
	}
	byName := spansByName(tr)
	for _, sub := range byName["mus.cluster.substream"] {
		if sub.Error != "" {
			t.Fatalf("healthy-cluster substream failed: %+v", sub)
		}
	}
	// And the trace is discoverable: the cluster-gathered listing names it.
	list, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range list.Traces {
		if s.TraceID == sub.TraceID && s.Name == "mus.http.request" {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET /v1/traces listing misses trace %s", sub.TraceID)
	}
}

// TestClusterTraceSurvivesShardOwnerKill: when the node executing a
// job's shard is hard-killed mid-sweep, the assembled trace must stay
// connected — the dead substream appears as a failed span, its failover
// replacement as a sibling, and the gather (which can no longer reach
// the victim's buffer) reports zero orphans because cross-node parents
// are only ever declared by local roots.
func TestClusterTraceSurvivesShardOwnerKill(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	nodes := startTraceCluster(t, 3)
	owner := shardOwner(t, ctx, nodes)
	victim := nodes[owner]
	coord := nodes[(owner+1)%3]
	c := client.New(coord.url)

	// The victim's forwarded sweep sub-requests hang, guaranteeing it
	// still owes its whole shard when it dies.
	victim.blockForwardedSweeps.Store(true)
	sub, err := c.SubmitJob(ctx, api.NewSweepJob(sweepReqN(24)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, "job under way", func() bool {
		st, err := c.JobStatus(ctx, sub.ID)
		return err == nil && st.State == api.JobStateRunning
	})
	time.Sleep(300 * time.Millisecond) // let the scatter reach the victim
	victim.kill()

	final, err := c.WaitJob(ctx, sub.ID, nil)
	if err != nil || final.State != api.JobStateDone {
		t.Fatalf("job after kill: %+v, %v", final, err)
	}
	res, err := c.JobResult(ctx, sub.ID)
	if err != nil || len(res.Sweep.Points) != 24 {
		t.Fatalf("failover result: %+v, %v", res, err)
	}

	tr := waitForTrace(t, ctx, c, sub.TraceID, []string{
		"mus.jobs.run", "mus.cluster.scatter", "mus.cluster.substream", "mus.engine.sweep",
	})
	if tr.Orphans != 0 {
		t.Fatalf("post-failover trace has %d orphans, want 0: %+v", tr.Orphans, tr.Spans)
	}
	byName := spansByName(tr)
	failed := 0
	for _, sp := range byName["mus.cluster.substream"] {
		if sp.Error != "" {
			failed++
		}
	}
	if failed == 0 {
		t.Fatalf("no failed substream span recorded for the killed shard owner: %+v",
			byName["mus.cluster.substream"])
	}
	// The failover re-execution left solver spans on a SURVIVOR — either
	// under a sibling substream (re-scattered to the third node) or
	// directly under the scatter (absorbed by the coordinator's local
	// path, which emits no substream span). The victim's own buffer died
	// with it, so any engine span here is post-kill work by definition.
	for _, sp := range byName["mus.engine.sweep"] {
		if sp.Node == nodes[owner].name {
			t.Fatalf("engine span attributed to the killed node %s: %+v", nodes[owner].name, sp)
		}
	}
}

// TestReplayedJobRejoinsItsSubmissionTrace: a job recovered from the
// write-ahead log after a restart must execute under its ORIGINAL trace
// — the span context persisted with the submit record — so the resumed
// run's spans answer GET /v1/traces/{original id} with zero orphans,
// and the replayed status still names the originating request. The
// restart itself is traceable too, as a mus.jobs.replay boot trace.
func TestReplayedJobRejoinsItsSubmissionTrace(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dir := t.TempDir()
	const (
		traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
		spanID  = "00f067aa0ba902b7"
	)
	// Forge the WAL a crashed node would leave behind: an acknowledged
	// submission — carrying its request ID and trace context — that went
	// running and never finished.
	l, err := store.OpenJobLog(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	req := api.NewSweepJob(sweepReqN(5))
	now := time.Unix(1_700_000_000, 0).UTC()
	entries := []store.Entry{
		{Kind: store.EntrySubmit, Job: "j-crashed", Time: now, Origin: "n1",
			RequestID: "req-original", Trace: "00-" + traceID + "-" + spanID + "-01", Request: &req},
		{Kind: store.EntryState, Job: "j-crashed", Time: now, State: api.JobStateRunning},
	}
	for _, e := range entries {
		if err := l.Append(e); err != nil {
			t.Fatalf("forge entry: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same data dir.
	l2, err := store.OpenJobLog(dir, store.Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l2.Close() })
	tracer := trace.New(trace.Config{Node: "n1", Sample: 1})
	eng := service.NewEngine(service.Config{})
	sched := jobs.New(jobs.Config{Engine: eng, Log: l2, NodeID: "n1", Tracer: tracer})
	t.Cleanup(sched.Close)
	srv := newServerJobs(eng, sched)
	srv.tracer = tracer
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)

	final, err := c.WaitJob(ctx, "j-crashed", nil)
	if err != nil || final.State != api.JobStateDone {
		t.Fatalf("resumed job: %+v, %v", final, err)
	}
	if final.RequestID != "req-original" {
		t.Fatalf("replayed job forgot its request: %q", final.RequestID)
	}
	if final.TraceID != traceID {
		t.Fatalf("replayed job trace %q, want the original %q", final.TraceID, traceID)
	}

	tr := waitForTrace(t, ctx, c, traceID, []string{"mus.jobs.run", "mus.engine.sweep"})
	if tr.Orphans != 0 {
		t.Fatalf("resumed trace has %d orphans, want 0 (the pre-restart parent is excused as a root's upstream): %+v",
			tr.Orphans, tr.Spans)
	}
	var run *api.TraceSpan
	for i := range tr.Spans {
		if tr.Spans[i].Name == "mus.jobs.run" {
			run = &tr.Spans[i]
		}
	}
	if run == nil || !run.Root || run.Parent != spanID {
		t.Fatalf("mus.jobs.run span %+v, want a local root parented on the persisted span %s", run, spanID)
	}
	// The recovery pass itself left a trace: the boot replay root.
	list, err := c.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	replayed := false
	for _, s := range list.Traces {
		if s.Name == "mus.jobs.replay" {
			replayed = true
		}
	}
	if !replayed {
		t.Fatalf("no mus.jobs.replay boot trace retained: %+v", list.Traces)
	}
}
